//! Micro-benchmarks: tokenizers and similarity measures (the inner loops
//! every blocker and feature extractor spins on).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use magellan_textsim::seqsim::{jaro_winkler, levenshtein};
use magellan_textsim::setsim::{jaccard, monge_elkan_jw};
use magellan_textsim::tokenize::{AlphanumericTokenizer, QgramTokenizer, Tokenizer};
use magellan_textsim::TfIdfModel;

const NAMES: &[&str] = &[
    "david d smith",
    "daniel w smith",
    "sony wireless mouse wm-2400 black",
    "panasonic professional hd camcorder ag-cx350 with case",
    "acme global industries incorporated",
];

fn bench_tokenizers(c: &mut Criterion) {
    let mut g = c.benchmark_group("tokenize");
    let alnum = AlphanumericTokenizer::as_set();
    let qgram = QgramTokenizer::as_set(3);
    g.bench_function("alnum_words", |b| {
        b.iter(|| {
            for s in NAMES {
                black_box(alnum.tokenize(black_box(s)));
            }
        })
    });
    g.bench_function("3gram", |b| {
        b.iter(|| {
            for s in NAMES {
                black_box(qgram.tokenize(black_box(s)));
            }
        })
    });
    g.finish();
}

fn bench_measures(c: &mut Criterion) {
    let mut g = c.benchmark_group("similarity");
    g.bench_function("levenshtein", |b| {
        b.iter(|| black_box(levenshtein(black_box(NAMES[2]), black_box(NAMES[3]))))
    });
    g.bench_function("jaro_winkler", |b| {
        b.iter(|| black_box(jaro_winkler(black_box(NAMES[0]), black_box(NAMES[1]))))
    });
    let tok = AlphanumericTokenizer::as_set();
    let a = tok.tokenize(NAMES[2]);
    let bb = tok.tokenize(NAMES[3]);
    g.bench_function("jaccard_tokens", |b| {
        b.iter(|| black_box(jaccard(black_box(&a), black_box(&bb))))
    });
    g.bench_function("monge_elkan_jw", |b| {
        b.iter(|| black_box(monge_elkan_jw(black_box(&a), black_box(&bb))))
    });
    let corpus: Vec<Vec<String>> = NAMES.iter().map(|s| tok.tokenize(s)).collect();
    let model = TfIdfModel::fit(&corpus);
    g.bench_function("tfidf", |b| {
        b.iter(|| black_box(model.tfidf(black_box(&a), black_box(&bb))))
    });
    g.finish();
}

criterion_group!(benches, bench_tokenizers, bench_measures);
criterion_main!(benches);
