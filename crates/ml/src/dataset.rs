//! Dense binary-classification datasets.

/// A dense feature matrix (row-major) with boolean labels and feature
/// names. Feature names are carried through so that learned trees can be
/// pretty-printed as EM rules, e.g.
/// `jaccard(3gram(A.name), 3gram(B.name)) <= 0.31 -> No`.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    features: Vec<f64>,
    n_features: usize,
    labels: Vec<bool>,
    feature_names: Vec<String>,
}

impl Dataset {
    /// Create an empty dataset with the given feature names.
    pub fn new(feature_names: Vec<String>) -> Self {
        let n_features = feature_names.len();
        Dataset {
            features: Vec::new(),
            n_features,
            labels: Vec::new(),
            feature_names,
        }
    }

    /// Create a dataset with anonymous feature names `f0..f{n-1}`.
    pub fn with_dims(n_features: usize) -> Self {
        Dataset::new((0..n_features).map(|i| format!("f{i}")).collect())
    }

    /// Build from rows of features and labels. Panics on ragged rows.
    pub fn from_rows(rows: &[Vec<f64>], labels: &[bool]) -> Self {
        assert_eq!(rows.len(), labels.len(), "rows/labels length mismatch");
        let n_features = rows.first().map_or(0, Vec::len);
        let mut d = Dataset::with_dims(n_features);
        for (row, &label) in rows.iter().zip(labels) {
            d.push(row, label);
        }
        d
    }

    /// Append one labeled example.
    pub fn push(&mut self, row: &[f64], label: bool) {
        assert_eq!(
            row.len(),
            self.n_features,
            "feature vector has wrong arity"
        );
        self.features.extend_from_slice(row);
        self.labels.push(label);
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if there are no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per example.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Feature names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// The feature vector of example `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.features[i * self.n_features..(i + 1) * self.n_features]
    }

    /// The label of example `i`.
    pub fn label(&self, i: usize) -> bool {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Number of positive examples.
    pub fn n_positive(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// A new dataset containing the examples at `indices` (may repeat —
    /// that is how bootstrap sampling works).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut d = Dataset::new(self.feature_names.clone());
        d.n_features = self.n_features;
        d.features.reserve(indices.len() * self.n_features);
        d.labels.reserve(indices.len());
        for &i in indices {
            d.features.extend_from_slice(self.row(i));
            d.labels.push(self.labels[i]);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut d = Dataset::with_dims(2);
        d.push(&[1.0, 2.0], true);
        d.push(&[3.0, f64::NAN], false);
        assert_eq!(d.len(), 2);
        assert_eq!(d.row(0), &[1.0, 2.0]);
        assert!(d.row(1)[1].is_nan());
        assert!(d.label(0));
        assert_eq!(d.n_positive(), 1);
        assert_eq!(d.feature_names(), &["f0".to_owned(), "f1".to_owned()]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        let mut d = Dataset::with_dims(2);
        d.push(&[1.0], true);
    }

    #[test]
    fn subset_with_repeats() {
        let d = Dataset::from_rows(
            &[vec![0.0], vec![1.0], vec![2.0]],
            &[false, true, false],
        );
        let s = d.subset(&[1, 1, 2]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.row(0), &[1.0]);
        assert_eq!(s.row(1), &[1.0]);
        assert_eq!(s.n_positive(), 2);
    }

    #[test]
    fn named_features() {
        let d = Dataset::new(vec!["jaccard_name".into(), "exact_isbn".into()]);
        assert_eq!(d.n_features(), 2);
        assert!(d.is_empty());
    }
}
