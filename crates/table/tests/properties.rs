//! Property tests for the tabular substrate: CSV round-trips, row-op
//! invariants, and catalog validation stability.

use magellan_table::{csv, Catalog, Dtype, MappedTable, Schema, Table, Value};
use proptest::prelude::*;

/// Arbitrary cell for a column of the given dtype (with nulls).
fn cell(dtype: Dtype) -> BoxedStrategy<Value> {
    match dtype {
        Dtype::Int => prop_oneof![4 => any::<i64>().prop_map(Value::Int), 1 => Just(Value::Null)].boxed(),
        Dtype::Bool => prop_oneof![4 => any::<bool>().prop_map(Value::Bool), 1 => Just(Value::Null)].boxed(),
        Dtype::Float => prop_oneof![
            4 => (-1e9f64..1e9).prop_map(Value::Float),
            1 => Just(Value::Null)
        ]
        .boxed(),
        Dtype::Str => prop_oneof![
            // Exercise the CSV quoting paths: commas, quotes, newlines.
            4 => "[a-z ,\"\n]{0,12}".prop_map(Value::Str),
            1 => Just(Value::Null)
        ]
        .boxed(),
    }
}

fn table() -> impl Strategy<Value = Table> {
    let dtypes = proptest::collection::vec(
        prop_oneof![
            Just(Dtype::Int),
            Just(Dtype::Float),
            Just(Dtype::Str),
            Just(Dtype::Bool)
        ],
        1..5,
    );
    dtypes.prop_flat_map(|dts| {
        let row = dts
            .iter()
            .map(|&d| cell(d))
            .collect::<Vec<_>>();
        let schema_dts = dts.clone();
        proptest::collection::vec(row, 0..15).prop_map(move |rows| {
            let pairs: Vec<(String, Dtype)> = schema_dts
                .iter()
                .enumerate()
                .map(|(i, &d)| (format!("c{i}"), d))
                .collect();
            let pair_refs: Vec<(&str, Dtype)> =
                pairs.iter().map(|(n, d)| (n.as_str(), *d)).collect();
            Table::from_rows("T", &pair_refs, rows).expect("consistent rows")
        })
    })
}

/// Like [`table`] but with non-ASCII string cells (multi-byte UTF-8),
/// for the binary `emtbl` round-trip: offsets in the string heap are
/// byte offsets, so multi-byte codepoints are where an off-by-one
/// would surface.
fn emtbl_table() -> impl Strategy<Value = Table> {
    let dtypes = proptest::collection::vec(
        prop_oneof![
            Just(Dtype::Int),
            Just(Dtype::Float),
            Just(Dtype::Str),
            Just(Dtype::Bool)
        ],
        1..5,
    );
    dtypes.prop_flat_map(|dts| {
        let row = dts
            .iter()
            .map(|&d| match d {
                Dtype::Str => prop_oneof![
                    4 => "[a-zµéλ☃ ,\"\n]{0,8}".prop_map(Value::Str),
                    1 => Just(Value::Null)
                ]
                .boxed(),
                other => cell(other),
            })
            .collect::<Vec<_>>();
        let schema_dts = dts.clone();
        proptest::collection::vec(row, 0..15).prop_map(move |rows| {
            let pairs: Vec<(String, Dtype)> = schema_dts
                .iter()
                .enumerate()
                .map(|(i, &d)| (format!("c{i}"), d))
                .collect();
            let pair_refs: Vec<(&str, Dtype)> =
                pairs.iter().map(|(n, d)| (n.as_str(), *d)).collect();
            Table::from_rows("T", &pair_refs, rows).expect("consistent rows")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csv_roundtrip_preserves_string_tables(t in table()) {
        // Float display forms may not round-trip bit-exactly through text;
        // compare via display strings, which is the CSV contract.
        let mut buf = Vec::new();
        csv::write_csv(&t, &mut buf).unwrap();
        let schema = Schema::new(t.schema().fields().to_vec()).unwrap();
        let back = csv::read_csv(buf.as_slice(), "T", schema).unwrap();
        prop_assert_eq!(back.nrows(), t.nrows());
        for r in 0..t.nrows() {
            for c in 0..t.ncols() {
                prop_assert_eq!(
                    back.value(r, c).display_string(),
                    t.value(r, c).display_string(),
                    "cell ({}, {})", r, c
                );
            }
        }
    }

    #[test]
    fn take_then_take_composes(t in table(), seed in 0u64..100) {
        if t.nrows() == 0 {
            return Ok(());
        }
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rows1: Vec<usize> = (0..t.nrows()).map(|_| rng.gen_range(0..t.nrows())).collect();
        let rows2: Vec<usize> = (0..5).map(|_| rng.gen_range(0..rows1.len())).collect();
        let direct: Vec<usize> = rows2.iter().map(|&i| rows1[i]).collect();
        let two_step = t.take(&rows1).take(&rows2);
        let one_step = t.take(&direct);
        for r in 0..two_step.nrows() {
            prop_assert_eq!(two_step.row(r), one_step.row(r));
        }
    }

    #[test]
    fn filter_preserves_schema_and_subsets(t in table()) {
        let even = t.filter(|r| r % 2 == 0);
        prop_assert_eq!(even.schema(), t.schema());
        prop_assert_eq!(even.nrows(), t.nrows().div_ceil(2));
        for (out_r, in_r) in (0..t.nrows()).step_by(2).enumerate() {
            prop_assert_eq!(even.row(out_r), t.row(in_r));
        }
    }

    #[test]
    fn profile_counts_are_consistent(t in table()) {
        for p in magellan_table::profile::profile_table(&t) {
            prop_assert_eq!(p.count, t.nrows());
            prop_assert!(p.nulls <= p.count);
            prop_assert!(p.distinct <= p.count - p.nulls);
            prop_assert!((0.0..=1.0).contains(&p.null_fraction()));
            prop_assert!((0.0..=1.0).contains(&p.distinctness()));
        }
    }

    #[test]
    fn emtbl_roundtrip_is_exact(t in emtbl_table(), salt in any::<u64>()) {
        // Unlike the CSV round-trip above, the binary format owes the
        // caller *bit-exact* cells: floats compare by value (no NaNs in
        // the strategy), strings byte-for-byte, nulls as nulls.
        let path = std::env::temp_dir().join(format!(
            "magellan_emtbl_prop_{}_{salt:x}.emtbl",
            std::process::id()
        ));
        magellan_table::emtbl::write_path(&t, &path).unwrap();

        // Mapped (zero-copy) reads.
        let m = MappedTable::open(&path).unwrap();
        prop_assert_eq!(m.nrows(), t.nrows());
        prop_assert_eq!(m.schema(), t.schema());
        for r in 0..t.nrows() {
            for c in 0..t.ncols() {
                prop_assert_eq!(m.value(r, c), t.value(r, c), "mapped cell ({}, {})", r, c);
            }
        }

        // Materialized open: a full in-RAM Table again.
        let back = magellan_table::emtbl::open_table(&path).unwrap();
        prop_assert_eq!(back.nrows(), t.nrows());
        prop_assert_eq!(back.schema(), t.schema());
        for r in 0..t.nrows() {
            for c in 0..t.ncols() {
                prop_assert_eq!(back.value(r, c), t.value(r, c), "cell ({}, {})", r, c);
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn catalog_key_validation_is_stable_under_projection(n in 1usize..30) {
        // A table with a synthetic unique key: validation passes, and the
        // projection (fresh id) starts metadata-free.
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| vec![Value::Str(format!("k{i}")), Value::Int(i as i64)])
            .collect();
        let t = Table::from_rows("T", &[("id", Dtype::Str), ("v", Dtype::Int)], rows).unwrap();
        let mut cat = Catalog::new();
        cat.set_key(&t, "id").unwrap();
        cat.validate_key(&t).unwrap();
        let p = t.project(&["id"]).unwrap();
        prop_assert!(cat.key(&p).is_none());
    }
}
