//! The failure flight recorder: a bounded, deterministic post-mortem of
//! a run that noted at least one failure.
//!
//! Failures are *recorded* the moment they happen — [`crate::flight_on_failure`]
//! emits a canonical `flight_failure` event and bumps a counter — but the
//! dump itself is *written at run end* ([`Obs::flight_autodump`], called
//! from pipeline `finish` paths). Deferring the write makes the dump a
//! pure function of the final canonical snapshot: which spans had
//! completed at the instant of a mid-run failure depends on scheduling,
//! but the end-of-run snapshot does not. Under a pinned clock the dump
//! bytes are therefore identical at any worker count.
//!
//! The artifact is keyed by `(seed, worker count)` through the
//! `MAGELLAN_FLIGHT_DUMP` path template (`{seed}` / `{workers}`
//! placeholders); the seed also travels in the body, the worker count
//! deliberately does not — it would break cross-worker byte-identity.

use crate::snapshot::{json_str, json_val};
use crate::{ClockMode, MetricValue, Obs};
use std::fmt::Write as _;
use std::sync::atomic::Ordering;

/// Most recent spans (canonical order) carried in a flight dump.
pub const FLIGHT_SPANS: usize = 256;
/// Most recent events (canonical order) carried in a flight dump.
pub const FLIGHT_EVENTS: usize = 256;
/// Most recent `flight_failure` events listed in the dump's dedicated
/// failure section.
pub const FLIGHT_FAILURES: usize = 64;

impl Obs {
    /// Build the flight-recorder dump body: the last [`FLIGHT_SPANS`]
    /// spans and [`FLIGHT_EVENTS`] events of the canonical snapshot, the
    /// noted failures, and the metrics registry with counter values
    /// expressed as *deltas* since the previous dump (first dump: since
    /// recorder creation). Byte-deterministic under a pinned clock.
    pub fn flight_dump_json(&self) -> String {
        let snap = self.snapshot();
        let seed = self.inner.run_seed.load(Ordering::Relaxed);
        let clock = match snap.clock {
            ClockMode::Wall => "wall",
            ClockMode::Pinned => "pinned",
        };
        let mut out = String::from("{\"magellan_flight\":1");
        let _ = write!(out, ",\"clock\":\"{clock}\",\"seed\":{seed}");
        let _ = write!(out, ",\"failures\":{}", self.failure_count());
        let _ = write!(
            out,
            ",\"dropped_spans\":{},\"dropped_events\":{}",
            snap.dropped_spans, snap.dropped_events
        );

        // ---- dedicated failure section ------------------------------
        let fails: Vec<_> = snap.events_named("flight_failure");
        let tail = fails.len().saturating_sub(FLIGHT_FAILURES);
        out.push_str(",\"failure_events\":[");
        for (i, e) in fails[tail..].iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"t_ns\":{},\"span\":{}", e.t_ns, e.span);
            for (k, v) in &e.fields {
                let _ = write!(out, ",{}:{}", json_str(k), json_val(v));
            }
            out.push('}');
        }
        out.push(']');

        // ---- recent spans (canonical-order tail) --------------------
        let tail = snap.spans.len().saturating_sub(FLIGHT_SPANS);
        out.push_str(",\"spans\":[");
        for (i, s) in snap.spans[tail..].iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"key\":{},\"depth\":{},\"start_ns\":{},\"end_ns\":{}",
                json_str(s.name),
                s.key,
                snap.depths[tail + i],
                s.start_ns,
                s.end_ns
            );
            if !s.res.is_empty() {
                out.push_str(",\"res\":{");
                for (j, (k, v)) in s.res.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}:{v}", json_str(k));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push(']');

        // ---- recent events (time-order tail) ------------------------
        let tail = snap.events.len().saturating_sub(FLIGHT_EVENTS);
        out.push_str(",\"events\":[");
        for (i, e) in snap.events[tail..].iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"t_ns\":{},\"name\":{},\"span\":{}",
                e.t_ns,
                json_str(e.name),
                e.span
            );
            for (k, v) in &e.fields {
                let _ = write!(out, ",{}:{}", json_str(k), json_val(v));
            }
            out.push('}');
        }
        out.push(']');

        // ---- metrics: counter deltas since last dump, gauges, hist --
        let mut last = self
            .inner
            .last_dump_counters
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        out.push_str(",\"metrics\":{");
        let mut first = true;
        for (name, v) in &snap.metrics {
            let item = match v {
                MetricValue::Counter(c) => {
                    let prev = last.get(name).copied().unwrap_or(0);
                    let delta = c.saturating_sub(prev);
                    format!("{}:{{\"total\":{c},\"delta\":{delta}}}", json_str(name))
                }
                MetricValue::Gauge(g) => {
                    format!("{}:{}", json_str(name), json_val(&crate::EvVal::F(*g)))
                }
                MetricValue::Histogram(h) => format!(
                    "{}:{{\"count\":{},\"sum\":{}}}",
                    json_str(name),
                    h.count,
                    h.sum
                ),
            };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&item);
        }
        out.push('}');
        // Remember counter levels so the *next* dump reports deltas.
        for (name, v) in &snap.metrics {
            if let MetricValue::Counter(c) = v {
                last.insert(name.clone(), *c);
            }
        }
        drop(last);

        out.push('}');
        out
    }

    /// Substitute `{seed}` / `{workers}` in `path_tmpl`, write the dump
    /// there, and return the resolved path.
    pub fn write_flight_dump(&self, path_tmpl: &str) -> std::io::Result<String> {
        let seed = self.inner.run_seed.load(Ordering::Relaxed);
        let workers = self.inner.run_workers.load(Ordering::Relaxed);
        let path = path_tmpl
            .replace("{seed}", &seed.to_string())
            .replace("{workers}", &workers.to_string());
        std::fs::write(&path, self.flight_dump_json())?;
        Ok(path)
    }

    /// Write the flight dump iff a failure was noted this run and the
    /// `MAGELLAN_FLIGHT_DUMP` template is set. Returns the path written.
    pub fn flight_autodump(&self) -> Option<String> {
        if self.failure_count() == 0 {
            return None;
        }
        let tmpl = crate::flight_dump_path()?;
        self.write_flight_dump(&tmpl).ok()
    }
}

#[cfg(test)]
mod tests {
    use crate::{
        event, flight_on_failure, span, span_res_add, EvVal, Obs,
    };

    #[test]
    fn dump_carries_failures_spans_and_counter_deltas() {
        let obs = Obs::pinned();
        obs.set_run_context(42, 8);
        let _g = obs.install();
        {
            let _run = span("run", 0);
            obs.advance_ns(10);
            span_res_add("csr_index_bytes", 512);
            event("checkpoint_written", &[("bytes", EvVal::U(64))]);
            crate::counter_add("magellan_test_total", 5);
            flight_on_failure("panic_contained", &[("chunk", EvVal::U(3))]);
        }
        assert_eq!(obs.failure_count(), 1);
        let txt = obs.flight_dump_json();
        let parsed = crate::parse_json(&txt).expect("dump is valid JSON");
        assert_eq!(
            parsed.get("magellan_flight").and_then(|v| v.as_f64()),
            Some(1.0)
        );
        assert_eq!(parsed.get("seed").and_then(|v| v.as_f64()), Some(42.0));
        assert!(
            parsed.get("workers").is_none(),
            "worker count must not enter the body (cross-worker byte-identity)"
        );
        assert_eq!(parsed.get("failures").and_then(|v| v.as_f64()), Some(1.0));
        let fails = parsed
            .get("failure_events")
            .and_then(|v| v.as_array())
            .unwrap();
        assert_eq!(fails.len(), 1);
        assert_eq!(
            fails[0].get("reason").and_then(|v| v.as_str()),
            Some("panic_contained")
        );
        let spans = parsed.get("spans").and_then(|v| v.as_array()).unwrap();
        assert_eq!(spans.len(), 1);
        let res = spans[0].get("res").unwrap();
        assert_eq!(
            res.get("csr_index_bytes").and_then(|v| v.as_f64()),
            Some(512.0)
        );
        // Counter deltas reset between dumps.
        let metrics = parsed.get("metrics").unwrap();
        let c = metrics.get("magellan_test_total").unwrap();
        assert_eq!(c.get("delta").and_then(|v| v.as_f64()), Some(5.0));
        let _g2 = obs.install();
        crate::counter_add("magellan_test_total", 2);
        let txt2 = obs.flight_dump_json();
        let parsed2 = crate::parse_json(&txt2).unwrap();
        let c2 = parsed2
            .get("metrics")
            .and_then(|m| m.get("magellan_test_total"))
            .unwrap();
        assert_eq!(c2.get("total").and_then(|v| v.as_f64()), Some(7.0));
        assert_eq!(c2.get("delta").and_then(|v| v.as_f64()), Some(2.0));
    }

    #[test]
    fn autodump_is_silent_without_failures() {
        let obs = Obs::pinned();
        assert!(obs.flight_autodump().is_none());
    }

    #[test]
    fn dump_path_substitutes_seed_and_workers() {
        let obs = Obs::pinned();
        obs.set_run_context(7, 4);
        obs.note_failure();
        let dir = std::env::temp_dir().join(format!(
            "magellan_flight_test_{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let tmpl = dir.join("flight_s{seed}_w{workers}.json");
        let path = obs.write_flight_dump(tmpl.to_str().unwrap()).unwrap();
        assert!(path.ends_with("flight_s7_w4.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        crate::parse_json(&body).expect("written dump parses");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
