//! Property tests on the ML substrate: classifier output contracts,
//! metric identities, CV fold structure, and persistence round-trips.

use magellan_ml::cv::stratified_folds;
use magellan_ml::naive_bayes::{BernoulliNbLearner, GaussianNbLearner};
use magellan_ml::persist::{load_forest, save_forest};
use magellan_ml::{
    Dataset, DecisionTreeLearner, Learner, LogisticRegressionLearner, Metrics,
    RandomForestLearner,
};
use proptest::prelude::*;

/// Random small dataset with at least one example of each class.
fn dataset() -> impl Strategy<Value = Dataset> {
    (
        proptest::collection::vec(
            (
                proptest::collection::vec(
                    prop_oneof![4 => 0.0f64..1.0, 1 => Just(f64::NAN)],
                    3,
                ),
                any::<bool>(),
            ),
            8..40,
        ),
    )
        .prop_map(|(mut rows,)| {
            // Force both classes to be present.
            rows[0].1 = true;
            rows[1].1 = false;
            let mut d = Dataset::with_dims(3);
            for (x, y) in rows {
                d.push(&x, y);
            }
            d
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn classifiers_emit_probabilities_in_unit_interval(d in dataset()) {
        let tree = DecisionTreeLearner::default();
        let forest = RandomForestLearner { n_trees: 4, ..Default::default() };
        let logit = LogisticRegressionLearner { epochs: 5, ..Default::default() };
        let gnb = GaussianNbLearner;
        let bnb = BernoulliNbLearner::default();
        let learners: [&dyn Learner; 5] = [&tree, &forest, &logit, &gnb, &bnb];
        for learner in learners {
            let c = learner.fit(&d);
            for i in 0..d.len() {
                let p = c.predict_proba(d.row(i));
                prop_assert!((0.0..=1.0).contains(&p), "{} emitted {p}", learner.name());
                // Hard predictions agree with the soft score's side of 0.5
                // except for forests, whose hard vote is the majority of
                // tree votes rather than the thresholded mean probability.
                if learner.name() != "random_forest" {
                    prop_assert_eq!(c.predict(d.row(i)), p >= 0.5);
                }
            }
            // NaN-heavy probes must still yield valid probabilities.
            let p = c.predict_proba(&[f64::NAN, 0.5, f64::NAN]);
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn training_is_deterministic(d in dataset()) {
        let mk = || RandomForestLearner { n_trees: 3, seed: 9, ..Default::default() }.fit_forest(&d);
        let (f1, f2) = (mk(), mk());
        for i in 0..d.len() {
            prop_assert_eq!(f1.vote_fraction(d.row(i)), f2.vote_fraction(d.row(i)));
        }
    }

    #[test]
    fn forest_persistence_roundtrip(d in dataset()) {
        let forest = RandomForestLearner { n_trees: 3, ..Default::default() }.fit_forest(&d);
        let back = load_forest(&save_forest(&forest)).unwrap();
        for i in 0..d.len() {
            prop_assert_eq!(
                forest.vote_fraction(d.row(i)),
                back.vote_fraction(d.row(i))
            );
        }
    }

    #[test]
    fn metrics_identities(preds in proptest::collection::vec(any::<bool>(), 1..60),
                          golds in proptest::collection::vec(any::<bool>(), 1..60)) {
        let n = preds.len().min(golds.len());
        let (p, g) = (&preds[..n], &golds[..n]);
        let m = Metrics::from_predictions(p, g);
        prop_assert_eq!(m.total(), n);
        prop_assert!((0.0..=1.0).contains(&m.precision()));
        prop_assert!((0.0..=1.0).contains(&m.recall()));
        prop_assert!((0.0..=1.0).contains(&m.f1()));
        prop_assert!((0.0..=1.0).contains(&m.accuracy()));
        // F1 (a harmonic mean) lies between precision and recall.
        if m.f1() > 0.0 {
            let lo = m.precision().min(m.recall());
            let hi = m.precision().max(m.recall());
            prop_assert!(m.f1() >= lo - 1e-12 && m.f1() <= hi + 1e-12);
        }
        // Flipping predictions: the gold positives split between the two
        // runs' true positives exactly.
        let flipped: Vec<bool> = p.iter().map(|x| !x).collect();
        let mf = Metrics::from_predictions(&flipped, g);
        prop_assert_eq!(m.tp + mf.tp, g.iter().filter(|&&x| x).count());
    }

    #[test]
    fn stratified_folds_cover_everything(labels in proptest::collection::vec(any::<bool>(), 10..80),
                                         k in 2usize..6) {
        let folds = stratified_folds(&labels, k, 3);
        prop_assert_eq!(folds.len(), labels.len());
        prop_assert!(folds.iter().all(|&f| f < k));
        // Per-fold positive counts differ by at most 1 (stratification).
        let mut pos_per_fold = vec![0usize; k];
        for (i, &f) in folds.iter().enumerate() {
            if labels[i] {
                pos_per_fold[f] += 1;
            }
        }
        let lo = pos_per_fold.iter().min().unwrap();
        let hi = pos_per_fold.iter().max().unwrap();
        prop_assert!(hi - lo <= 1, "{pos_per_fold:?}");
    }

    #[test]
    fn forest_vote_is_tree_vote_average(d in dataset()) {
        let forest = RandomForestLearner { n_trees: 5, ..Default::default() }.fit_forest(&d);
        for i in 0..d.len().min(10) {
            let row = d.row(i);
            let manual = forest
                .trees()
                .iter()
                .filter(|t| magellan_ml::Classifier::predict(*t, row))
                .count() as f64
                / forest.trees().len() as f64;
            prop_assert_eq!(manual, forest.vote_fraction(row));
        }
    }
}
