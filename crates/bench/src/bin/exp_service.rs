//! Multi-tenant service-layer experiment: throughput, p99 fragment
//! latency, and shed rate of the CloudMatcher service core under a
//! seeded Poisson arrival storm.
//!
//! Two modes:
//!
//! * **default** — drives a synthetic tenant fleet through the service
//!   (admission control, fair-share scheduling, degradation policy),
//!   asserts the run is byte-deterministic before timing, and writes
//!   `results/exp_service.txt` plus `BENCH_service.json` at the repo
//!   root.
//! * **`--overload-smoke`** — CI's service-chaos gate: concurrent
//!   demand is pinned at ≥ 2× service capacity, and the run must shed
//!   load deterministically (stable rejection set, solo-identical
//!   accepted outcomes) under a seeded fault plan.
//!
//! `BENCH_SMOKE=1` shrinks the fleet to seconds of work.

use std::fmt::Write as _;
use std::time::Instant;

use magellan_falcon::service::{
    MatchService, Priority, ServiceConfig, ServiceReport, SyntheticTask, TenantQuota, TenantSpec,
    TenantSubmission, Workload,
};
use magellan_faults::{ArrivalPlan, FaultPlan};
use magellan_obs::{log, MetricValue, Obs};

/// Build a seeded synthetic tenant fleet. Every number is derived from
/// the arrival plan's seed, so the fleet (and therefore the whole run)
/// is replayable.
fn fleet(seed: u64, n_tenants: u32, mean_gap_s: f64) -> Vec<TenantSubmission<'static>> {
    let plan = ArrivalPlan::poisson(seed, n_tenants, mean_gap_s);
    (0..n_tenants)
        .map(|i| {
            let crowd = i % 3 == 0;
            let quota = if i % 7 == 6 {
                // Every 7th tenant under-budgets its labeling: the
                // admission controller must bounce it.
                TenantQuota { label_dollars: 1.0, ..TenantQuota::unlimited() }
            } else {
                TenantQuota::unlimited()
            };
            TenantSubmission {
                tenant: TenantSpec {
                    name: format!("t{i}"),
                    arrival_s: plan.arrival_s(i),
                    priority: Priority::from_class(plan.priority_class(i, 3)),
                    weight: plan.weight(i, 4),
                    quota,
                    task_seed: 0x5EED_0000 + u64::from(i),
                },
                workload: Workload::Synthetic(SyntheticTask {
                    rows: (300 + 40 * (i as usize % 5), 300),
                    questions_blocking: 30 + 5 * (i as usize % 4),
                    questions_matching: 50 + 10 * (i as usize % 3),
                    n_candidates: 4_000 + 500 * (i as usize % 6),
                    crowd,
                    on_cloud: i % 2 == 0,
                }),
            }
        })
        .collect()
}

fn config(faults: FaultPlan) -> ServiceConfig {
    ServiceConfig {
        batch_slots: 4,
        crowd_slots: 2,
        max_active_tenants: 8,
        max_queue: 16,
        faults,
        ..Default::default()
    }
}

/// Run the fleet under a pinned-clock recorder; returns the report plus
/// the service-wide p99 fragment latency (ms) from the exported
/// histogram.
fn run_once(cfg: &ServiceConfig, subs: &[TenantSubmission<'_>]) -> (ServiceReport, u64) {
    let obs = Obs::pinned();
    let report = {
        let _g = obs.install();
        MatchService::new(cfg.clone())
            .expect("valid service config")
            .run(subs)
            .expect("service run")
    };
    let snap = obs.snapshot();
    let p99 = match snap.metrics.get("magellan_service_fragment_latency_ms") {
        Some(MetricValue::Histogram(h)) => h.quantile(0.99),
        _ => 0,
    };
    (report, p99)
}

fn main() {
    magellan_obs::init_bin_logging(magellan_obs::Level::Info);
    let overload = std::env::args().any(|a| a == "--overload-smoke");
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");

    let n_tenants: u32 = if smoke { 64 } else { 512 };
    // Overload mode packs arrivals into a window far smaller than the
    // service can drain: ≥ 2× the 8 active + 16 queued it can hold.
    let mean_gap_s = if overload { 0.5 } else { 30.0 };
    let cfg = config(FaultPlan::seeded(4242));
    let subs = fleet(17, n_tenants, mean_gap_s);

    // --- determinism gate: identical bytes before any timing ----------
    let (r1, p99_a) = run_once(&cfg, &subs);
    let (r2, p99_b) = run_once(&cfg, &subs);
    assert_eq!(r1.rejection_set(), r2.rejection_set(), "rejection set must replay");
    assert_eq!(
        r1.makespan_s.to_bits(),
        r2.makespan_s.to_bits(),
        "simulated makespan must replay bit for bit"
    );
    assert_eq!(p99_a, p99_b, "p99 fragment latency must replay");
    for (a, b) in r1.tenants.iter().zip(&r2.tenants) {
        assert_eq!(a.outcome, b.outcome, "tenant outcomes must replay");
    }

    if overload {
        let capacity = cfg.max_active_tenants + cfg.max_queue;
        assert!(
            n_tenants as usize >= 2 * capacity,
            "overload smoke needs demand >= 2x capacity ({n_tenants} vs {capacity})"
        );
        assert!(
            r1.rejection_set().iter().any(|(_, r)| r == "queue_full"),
            "an overloaded service must shed by queue_full"
        );
        assert!(
            r1.rejection_set().iter().any(|(_, r)| r.contains("label_dollars")),
            "under-budgeted tenants must be bounced by quota"
        );
        // Accepted tenants keep their solo outcomes even while the
        // service sheds their neighbors.
        let solo_cfg = config(FaultPlan::seeded(4242));
        let solo = MatchService::new(solo_cfg).expect("solo service");
        for (i, t) in r1.accepted().take(8) {
            let mut one = fleet(17, n_tenants, mean_gap_s).swap_remove(i);
            one.tenant.arrival_s = 0.0;
            let rep = solo.run(std::slice::from_ref(&one)).expect("solo run");
            assert_eq!(
                t.outcome,
                rep.tenants[0].outcome,
                "tenant {i}: overload must not leak into outcomes"
            );
        }
        log!(info, "overload smoke OK: {} rejected of {n_tenants}", r1.rejection_set().len());
    }

    // --- timing: wall-clock throughput of the service simulator -------
    let reps = if smoke { 3 } else { 10 };
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            let (r, _) = run_once(&cfg, &subs);
            std::hint::black_box(r.makespan_s);
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let wall_s = samples[samples.len() / 2];

    let completed = f64::from(r1.telemetry.completed);
    let tenants_per_sec = if wall_s > 0.0 { completed / wall_s } else { 0.0 };
    let shed_rate = r1.shed_rate();

    let mut txt = String::new();
    writeln!(
        txt,
        "Multi-tenant service — {n_tenants} tenants, mean gap {mean_gap_s}s, {} active + {} queue slots",
        cfg.max_active_tenants, cfg.max_queue
    )
    .unwrap();
    writeln!(txt, "admitted/queued/rejected: {}/{}/{}", r1.telemetry.admitted, r1.telemetry.queued, r1.telemetry.rejected).unwrap();
    writeln!(txt, "completed:        {:>8}", r1.telemetry.completed).unwrap();
    writeln!(txt, "sim makespan:     {:>11.1} s", r1.makespan_s).unwrap();
    writeln!(txt, "wall per run:     {:>11.2} ms (median of {reps})", wall_s * 1e3).unwrap();
    writeln!(txt, "tenants/sec:      {:>11.0} (wall)", tenants_per_sec).unwrap();
    writeln!(txt, "p99 frag latency: {:>8} ms (simulated)", p99_a).unwrap();
    writeln!(txt, "crowd shed rate:  {:>11.3}", shed_rate).unwrap();
    writeln!(txt, "determinism: two runs byte-identical (rejections, outcomes, makespan, p99)")
        .unwrap();
    log!(info, "{txt}");
    let _ = std::fs::create_dir_all("results");
    std::fs::write("results/exp_service.txt", &txt).expect("write results/exp_service.txt");

    let json = format!(
        "{{\n  \"experiment\": \"service_layer\",\n  \"workload\": {{\"n_tenants\": {n_tenants}, \"mean_gap_s\": {mean_gap_s}, \"overload\": {overload}, \"smoke\": {smoke}}},\n  \"capacity\": {{\"batch_slots\": {}, \"crowd_slots\": {}, \"max_active_tenants\": {}, \"max_queue\": {}}},\n  \"admitted\": {},\n  \"queued\": {},\n  \"rejected\": {},\n  \"completed\": {},\n  \"sim_makespan_s\": {:.3},\n  \"wall_ms_median\": {:.3},\n  \"tenants_per_sec\": {:.1},\n  \"p99_fragment_latency_ms\": {},\n  \"shed_rate\": {:.4}\n}}\n",
        cfg.batch_slots,
        cfg.crowd_slots,
        cfg.max_active_tenants,
        cfg.max_queue,
        r1.telemetry.admitted,
        r1.telemetry.queued,
        r1.telemetry.rejected,
        r1.telemetry.completed,
        r1.makespan_s,
        wall_s * 1e3,
        tenants_per_sec,
        p99_a,
        shed_rate,
    );
    std::fs::write("BENCH_service.json", json).expect("write BENCH_service.json");
    log!(info, "wrote results/exp_service.txt and BENCH_service.json");
}
