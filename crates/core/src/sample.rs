//! Sampling candidate pairs for labeling (Fig. 2: "take a sample S from
//! C, and label the pairs in S").

use magellan_block::CandidateSet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A uniform random sample of `n` candidate pairs (without replacement;
/// clamped to the candidate-set size). Returns positions into
/// `candidates.pairs()`.
pub fn sample_positions(candidates: &CandidateSet, n: usize, seed: u64) -> Vec<usize> {
    let mut positions: Vec<usize> = (0..candidates.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    positions.shuffle(&mut rng);
    positions.truncate(n.min(candidates.len()));
    positions.sort_unstable();
    positions
}

/// Sample the pairs themselves.
pub fn sample_pairs(candidates: &CandidateSet, n: usize, seed: u64) -> Vec<(u32, u32)> {
    sample_positions(candidates, n, seed)
        .into_iter()
        .map(|i| candidates.pairs()[i])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands(n: u32) -> CandidateSet {
        CandidateSet::new((0..n).map(|i| (i, i)).collect())
    }

    #[test]
    fn sample_is_without_replacement_and_sized() {
        let c = cands(100);
        let s = sample_positions(&c, 30, 42);
        assert_eq!(s.len(), 30);
        let mut dedup = s.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 30);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn oversized_sample_clamps() {
        let c = cands(5);
        assert_eq!(sample_positions(&c, 50, 1).len(), 5);
        assert!(sample_positions(&CandidateSet::default(), 3, 1).is_empty());
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let c = cands(50);
        assert_eq!(sample_positions(&c, 10, 7), sample_positions(&c, 10, 7));
        assert_ne!(sample_positions(&c, 10, 7), sample_positions(&c, 10, 8));
    }

    #[test]
    fn sample_pairs_maps_positions() {
        let c = CandidateSet::new(vec![(0, 5), (1, 6), (2, 7)]);
        let pairs = sample_pairs(&c, 2, 3);
        assert_eq!(pairs.len(), 2);
        for p in pairs {
            assert!(c.contains(p));
        }
    }
}
