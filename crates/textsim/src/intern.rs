//! Token interning and integer-set similarity.
//!
//! Every batch consumer of the set-based measures — feature extraction,
//! rule evaluation, blocking — ultimately compares *deduplicated token
//! sets*. Comparing them as strings re-hashes (or re-sorts) the same
//! tokens for every pair a record participates in. This module provides
//! the shared alternative: a [`TokenInterner`] mapping each distinct token
//! string to a dense `u32` id, plus similarity kernels over **sorted,
//! deduplicated id slices** that run as branchy-but-allocation-free merge
//! intersections.
//!
//! ## Invariants (shared with `magellan-simjoin`'s `TokenizedCollection`)
//!
//! * equal strings ⇔ equal ids (the interner is injective both ways);
//! * an interned record set is sorted ascending and deduplicated, so
//!   `|A|`, `|B|`, and `|A ∩ B|` computed over id slices are **exactly**
//!   the values the string-based [`crate::setsim`] measures compute —
//!   and since every measure is a pure arithmetic function of those three
//!   integers, the resulting `f64`s are bit-identical;
//! * id *order* carries no meaning (insertion order), which is fine:
//!   no measure below depends on which ids are smaller, only on equality.
//!
//! The `*_ids` kernels intentionally mirror the arithmetic of their
//! [`crate::setsim`] counterparts expression-for-expression so the
//! bit-identity holds even where floating-point evaluation order could
//! matter (e.g. cosine's `(|A| as f64) * (|B| as f64)` product).

use std::collections::HashMap;

/// A token → dense `u32` id table, append-only.
///
/// Ids are assigned in first-intern order. The interner is the single
/// shared vocabulary for one prepared workload (both tables of an EM
/// task), so ids are comparable across sides.
#[derive(Debug, Clone, Default)]
pub struct TokenInterner {
    ids: HashMap<String, u32>,
    tokens: Vec<String>,
}

impl TokenInterner {
    /// Empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Id of `token`, interning it if new.
    pub fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.ids.get(token) {
            return id;
        }
        let id = self.tokens.len() as u32;
        self.ids.insert(token.to_owned(), id);
        self.tokens.push(token.to_owned());
        id
    }

    /// Id of `token` if already interned.
    pub fn get(&self, token: &str) -> Option<u32> {
        self.ids.get(token).copied()
    }

    /// The token string behind an id.
    pub fn resolve(&self, id: u32) -> &str {
        &self.tokens[id as usize]
    }

    /// Number of distinct tokens interned.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Approximate resident bytes of the vocabulary: every token string
    /// is stored twice (map key + id table) plus fixed per-entry
    /// overheads. Deterministic — a pure function of the interned
    /// strings, never of capacity growth — so it is safe to publish as a
    /// pinned-export resource attribution.
    pub fn vocab_bytes(&self) -> usize {
        let text: usize = self.tokens.iter().map(String::len).sum();
        let per_entry =
            2 * std::mem::size_of::<String>() + std::mem::size_of::<u32>();
        2 * text + self.tokens.len() * per_entry
    }

    /// Intern a token bag into its **sorted, deduplicated** id set — the
    /// representation every `*_ids` kernel below consumes.
    pub fn intern_set<S: AsRef<str>>(&mut self, tokens: &[S]) -> Vec<u32> {
        let mut ids: Vec<u32> = tokens.iter().map(|t| self.intern(t.as_ref())).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Vocabulary generation: advances by exactly one per *new* token
    /// interned and never otherwise (currently `== len()`). Streaming
    /// consumers (the incremental join, `StreamSession` checkpoints) pin
    /// this number to detect and audit vocabulary growth across mutation
    /// batches; because the interner is append-only, equal generations
    /// imply the id ↔ token mapping is unchanged, not merely same-sized.
    pub fn generation(&self) -> u64 {
        self.tokens.len() as u64
    }
}

/// `|a ∩ b|` of two sorted deduplicated id slices (merge walk, no
/// hashing, no allocation).
///
/// This is the **scalar reference kernel**: the [`crate::kernels`] tier
/// answers the same question with branchless/galloping/bitset kernels
/// and is held bit-identical to this walk by the kernel-oracle harness.
/// The similarity measures below go through the adaptive tier
/// ([`crate::kernels::intersect_auto`]); this function stays the
/// preserved oracle.
pub fn intersect_size_sorted(a: &[u32], b: &[u32]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut n = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Jaccard `|A ∩ B| / |A ∪ B|` over sorted deduplicated id sets.
/// Bit-identical to [`crate::setsim::jaccard`] on the same token sets.
pub fn jaccard_ids(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = crate::kernels::intersect_auto(a, b);
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Dice `2|A ∩ B| / (|A| + |B|)` over sorted deduplicated id sets.
/// Bit-identical to [`crate::setsim::dice`].
pub fn dice_ids(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = crate::kernels::intersect_auto(a, b);
    2.0 * inter as f64 / (a.len() + b.len()) as f64
}

/// Set cosine `|A ∩ B| / sqrt(|A|·|B|)` over sorted deduplicated id sets.
/// Bit-identical to [`crate::setsim::cosine`] (the denominator multiplies
/// the two lengths as `f64`s exactly like the string version).
pub fn cosine_ids(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = crate::kernels::intersect_auto(a, b);
    inter as f64 / ((a.len() as f64) * (b.len() as f64)).sqrt()
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)` over sorted deduplicated
/// id sets. Bit-identical to [`crate::setsim::overlap_coefficient`].
pub fn overlap_coefficient_ids(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = crate::kernels::intersect_auto(a, b);
    inter as f64 / a.len().min(b.len()) as f64
}

/// Raw overlap size `|A ∩ B|` over sorted deduplicated id sets.
pub fn overlap_size_ids(a: &[u32], b: &[u32]) -> usize {
    crate::kernels::intersect_auto(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setsim;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn interner_is_injective_and_stable() {
        let mut it = TokenInterner::new();
        let a = it.intern("alpha");
        let b = it.intern("beta");
        assert_ne!(a, b);
        assert_eq!(it.intern("alpha"), a);
        assert_eq!(it.resolve(a), "alpha");
        assert_eq!(it.get("beta"), Some(b));
        assert_eq!(it.get("gamma"), None);
        assert_eq!(it.len(), 2);
        assert!(!it.is_empty());
    }

    #[test]
    fn intern_set_sorts_and_dedupes() {
        let mut it = TokenInterner::new();
        let ids = it.intern_set(&toks("b a b c a"));
        assert_eq!(ids.len(), 3);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn merge_intersection_matches_naive() {
        assert_eq!(intersect_size_sorted(&[1, 3, 5], &[2, 3, 5, 7]), 2);
        assert_eq!(intersect_size_sorted(&[], &[1]), 0);
        assert_eq!(intersect_size_sorted(&[4], &[4]), 1);
        assert_eq!(intersect_size_sorted(&[0, 1, 2], &[0, 1, 2]), 3);
    }

    /// The id kernels are bit-identical to the string measures on the
    /// same token sets, including duplicate-token and empty-set inputs.
    #[test]
    fn id_kernels_bit_identical_to_string_measures() {
        let cases = [
            ("a b c", "b c d"),
            ("a a a", "a b"),
            ("", "x y"),
            ("", ""),
            ("q w e r t y", "q"),
            ("z z", "z z"),
        ];
        for (x, y) in cases {
            let (tx, ty) = (toks(x), toks(y));
            let mut it = TokenInterner::new();
            let (ix, iy) = (it.intern_set(&tx), it.intern_set(&ty));
            assert!(crate::kernels::is_sorted_dedup(&ix));
            assert!(crate::kernels::is_sorted_dedup(&iy));
            assert_eq!(
                jaccard_ids(&ix, &iy).to_bits(),
                setsim::jaccard(&tx, &ty).to_bits(),
                "jaccard {x:?}/{y:?}"
            );
            assert_eq!(
                dice_ids(&ix, &iy).to_bits(),
                setsim::dice(&tx, &ty).to_bits(),
                "dice {x:?}/{y:?}"
            );
            assert_eq!(
                cosine_ids(&ix, &iy).to_bits(),
                setsim::cosine(&tx, &ty).to_bits(),
                "cosine {x:?}/{y:?}"
            );
            assert_eq!(
                overlap_coefficient_ids(&ix, &iy).to_bits(),
                setsim::overlap_coefficient(&tx, &ty).to_bits(),
                "overlap {x:?}/{y:?}"
            );
            assert_eq!(overlap_size_ids(&ix, &iy), setsim::overlap_size(&tx, &ty));
        }
    }

    /// Regression: an empty probe slice (every token OOV-clamped away
    /// upstream, e.g. a record whose tokens are all unseen during a
    /// prepared-cache probe) must hit the documented guards, not the
    /// kernels — jaccard/dice on `([], [])` is defined as 1.0, cosine and
    /// overlap-coefficient on a single empty side as 0.0, and the raw
    /// overlap size as 0, regardless of which kernel the adaptive tier
    /// would otherwise pick for the non-empty side's shape.
    #[test]
    fn empty_probe_slice_after_oov_clamp() {
        let dense: Vec<u32> = (0..256).collect(); // shape that selects the bitset kernel
        let empty: [u32; 0] = [];
        for other in [&dense[..], &empty[..]] {
            assert_eq!(overlap_size_ids(&empty, other), 0);
            assert_eq!(overlap_size_ids(other, &empty), 0);
        }
        assert_eq!(jaccard_ids(&empty, &empty).to_bits(), 1.0f64.to_bits());
        assert_eq!(dice_ids(&empty, &empty).to_bits(), 1.0f64.to_bits());
        assert_eq!(cosine_ids(&empty, &empty).to_bits(), 1.0f64.to_bits());
        assert_eq!(
            overlap_coefficient_ids(&empty, &empty).to_bits(),
            1.0f64.to_bits()
        );
        assert_eq!(jaccard_ids(&empty, &dense).to_bits(), 0.0f64.to_bits());
        assert_eq!(dice_ids(&dense, &empty).to_bits(), 0.0f64.to_bits());
        assert_eq!(cosine_ids(&empty, &dense).to_bits(), 0.0f64.to_bits());
        assert_eq!(
            overlap_coefficient_ids(&dense, &empty).to_bits(),
            0.0f64.to_bits()
        );
    }

    /// Regression: `intern_set` upholds the sorted-dedup invariant the
    /// kernel tier assumes, even for pathological bags (all-duplicate,
    /// reverse-insertion-order, single token), and the measures agree
    /// with the scalar reference on those sets.
    #[test]
    fn duplicate_free_invariant_feeds_kernels() {
        let mut it = TokenInterner::new();
        // Insertion order deliberately scrambles id order.
        for t in ["zeta", "alpha", "mu", "beta"] {
            it.intern(t);
        }
        let bags = [
            toks("zeta zeta zeta"),
            toks("beta alpha beta alpha"),
            toks("mu"),
            toks("alpha beta mu zeta alpha beta mu zeta"),
        ];
        let sets: Vec<Vec<u32>> = bags.iter().map(|b| it.intern_set(b)).collect();
        for s in &sets {
            assert!(crate::kernels::is_sorted_dedup(s), "invariant broken: {s:?}");
        }
        for x in &sets {
            for y in &sets {
                assert_eq!(
                    overlap_size_ids(x, y),
                    intersect_size_sorted(x, y),
                    "adaptive tier diverged from scalar oracle on {x:?} vs {y:?}"
                );
            }
        }
    }
}
