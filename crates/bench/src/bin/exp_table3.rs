//! Table 3 — developing tools for the steps of the guide.
//!
//! Regenerated from the live command registry: for every guide step, the
//! commands that serve it, split by origin (existing substrate / own code
//! / pain-point tool), plus the per-step command count (the paper's
//! column E).

use magellan_core::registry::{commands, commands_per_step, CommandOrigin, GuideStep};

fn main() {
    // Experiment narration is leveled logging: MAGELLAN_LOG=off silences it.
    magellan_obs::init_bin_logging(magellan_obs::Level::Info);
    magellan_obs::log!(info, "Table 3 analog — tools per guide step");
    magellan_obs::log!(info, 
        "{:26} {:>9} {:>9} {:>11} {:>9}",
        "guide step", "substrate", "own code", "pain points", "commands"
    );
    let all = commands();
    for (step, count) in commands_per_step() {
        let by = |origin: CommandOrigin| {
            all.iter()
                .filter(|c| c.step == step && c.origin == origin)
                .count()
        };
        magellan_obs::log!(info, 
            "{:26} {:>9} {:>9} {:>11} {:>9}",
            step.to_string(),
            by(CommandOrigin::ExistingPackage),
            by(CommandOrigin::OwnCode),
            by(CommandOrigin::PainPointTool),
            count
        );
    }
    magellan_obs::log!(info, "\ntotal commands: {}", all.len());
    magellan_obs::log!(info, "\npain-point tools (the paper's column D):");
    for c in all.iter().filter(|c| c.origin == CommandOrigin::PainPointTool) {
        magellan_obs::log!(info, "  [{:26}] {}", c.step.to_string(), c.name);
    }
    magellan_obs::log!(info, "\nmain packages (the paper lists 6 making up PyMatcher):");
    for p in [
        "magellan-table",
        "magellan-textsim (py_stringmatching)",
        "magellan-simjoin (py_stringsimjoin)",
        "magellan-ml",
        "magellan-block",
        "magellan-features",
        "magellan-core (py_entitymatching)",
    ] {
        magellan_obs::log!(info, "  {p}");
    }
    let _ = GuideStep::all();
}
