//! Property oracle for the incremental tier: under *any* random sequence
//! of inserts, deletes, and in-place updates — across all four set
//! measures and multiple worker counts — the delta-maintained live view
//! must stay **bit-identical** (same `(l, r)` pair set, exact same f64
//! similarity bits) to a from-scratch batch join over the current
//! records, and the signed deltas must replay to the same view.

use std::collections::BTreeMap;

use magellan_par::ParConfig;
use magellan_simjoin::{IncrementalJoin, PairDelta, RecordMutation, SetSimMeasure, Side};
use magellan_textsim::tokenize::WhitespaceTokenizer;
use proptest::prelude::*;

/// Abstract op: sides are booleans, victims are raw words reduced modulo
/// the record count at apply time (so every generated sequence is valid).
#[derive(Debug, Clone)]
enum Op {
    Insert(bool, Option<String>),
    Delete(bool, u16),
    Update(bool, u16, Option<String>),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    let text = || proptest::option::weighted(0.9, "[ab]{0,3}( [ab]{1,3}){0,3}");
    proptest::collection::vec(
        prop_oneof![
            3 => (any::<bool>(), text()).prop_map(|(s, t)| Op::Insert(s, t)),
            1 => (any::<bool>(), any::<u16>()).prop_map(|(s, v)| Op::Delete(s, v)),
            2 => (any::<bool>(), any::<u16>(), text()).prop_map(|(s, v, t)| Op::Update(s, v, t)),
        ],
        1..40,
    )
}

fn side_of(left: bool) -> Side {
    if left {
        Side::Left
    } else {
        Side::Right
    }
}

/// Resolve abstract ops against the engine's current population; ops
/// against an empty side are dropped (nothing to delete/update yet).
fn materialize(engine: &IncrementalJoin, ops: &[Op]) -> Vec<RecordMutation> {
    let mut out = Vec::with_capacity(ops.len());
    // Count records as the batch will see them applied *sequentially*:
    // an insert earlier in the batch is a valid victim later in it.
    let mut n_l = engine.n_records(Side::Left);
    let mut n_r = engine.n_records(Side::Right);
    for op in ops {
        match op {
            Op::Insert(left, text) => {
                if *left {
                    n_l += 1;
                } else {
                    n_r += 1;
                }
                out.push(RecordMutation::Insert {
                    side: side_of(*left),
                    text: text.clone(),
                });
            }
            Op::Delete(left, v) => {
                let n = if *left { n_l } else { n_r };
                if n > 0 {
                    out.push(RecordMutation::Delete {
                        side: side_of(*left),
                        rid: *v as usize % n,
                    });
                }
            }
            Op::Update(left, v, text) => {
                let n = if *left { n_l } else { n_r };
                if n > 0 {
                    out.push(RecordMutation::Update {
                        side: side_of(*left),
                        rid: *v as usize % n,
                        text: text.clone(),
                    });
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random mutation sequences × 4 measures × worker counts {1, 4}:
    /// after **every** batch the live view equals the from-scratch
    /// rebuild bit-for-bit, the deltas replay to the live view, and the
    /// worker count changes neither the deltas nor the view.
    #[test]
    fn live_view_always_equals_from_scratch_rebuild(op_seq in ops()) {
        let tok = WhitespaceTokenizer::new();
        let measures = [
            SetSimMeasure::Jaccard(0.5),
            SetSimMeasure::Cosine(0.6),
            SetSimMeasure::Dice(0.5),
            SetSimMeasure::OverlapSize(1),
        ];
        for measure in measures {
            let mut serial = IncrementalJoin::new(measure);
            let mut par = IncrementalJoin::new(measure);
            let mut replayed: BTreeMap<(usize, usize), u64> = BTreeMap::new();
            for chunk in op_seq.chunks(7) {
                let batch = materialize(&serial, chunk);
                let batch_par = materialize(&par, chunk);
                prop_assert_eq!(&batch, &batch_par, "materialization must not depend on engine");
                let (deltas, _) = serial.apply_batch(&batch, &tok, &ParConfig::serial());
                let (deltas_par, _) = par.apply_batch(&batch, &tok, &ParConfig::workers(4));
                prop_assert_eq!(&deltas, &deltas_par,
                    "worker count changed the deltas for {:?}", measure);

                // Replay the signed deltas into an independent view.
                for d in &deltas {
                    match d {
                        PairDelta::Removed { l, r } => {
                            prop_assert!(replayed.remove(&(*l, *r)).is_some(),
                                "Removed a pair the replayed view never had");
                        }
                        PairDelta::Added(p) => {
                            let prev = replayed.insert((p.l, p.r), p.sim.to_bits());
                            prop_assert!(prev.is_none(), "Added an already-live pair");
                        }
                    }
                }

                // The live view is bit-identical to a batch join from
                // scratch over the current records.
                let live = serial.live_pairs();
                let rebuilt = serial.rebuild_from_scratch(&tok);
                prop_assert_eq!(live.len(), rebuilt.len(), "cardinality for {:?}", measure);
                for (a, b) in live.iter().zip(&rebuilt) {
                    prop_assert_eq!((a.l, a.r), (b.l, b.r), "pair set for {:?}", measure);
                    prop_assert_eq!(a.sim.to_bits(), b.sim.to_bits(),
                        "similarity bits for {:?}", measure);
                }
                // And the replayed deltas reconstruct exactly that view.
                prop_assert_eq!(replayed.len(), live.len());
                for p in &live {
                    prop_assert_eq!(replayed.get(&(p.l, p.r)), Some(&p.sim.to_bits()));
                }
            }
        }
    }

    /// Eager compaction (threshold ~0) and lazy compaction (threshold ∞)
    /// agree with each other and the rebuild under the same mutations.
    #[test]
    fn compaction_policy_never_changes_the_view(op_seq in ops()) {
        let tok = WhitespaceTokenizer::new();
        let measure = SetSimMeasure::Jaccard(0.4);
        let mut eager = IncrementalJoin::new(measure).with_compaction_threshold(1e-9);
        let mut lazy = IncrementalJoin::new(measure).with_compaction_threshold(1e9);
        for chunk in op_seq.chunks(5) {
            let batch = materialize(&eager, chunk);
            eager.apply_batch(&batch, &tok, &ParConfig::serial());
            lazy.apply_batch(&batch, &tok, &ParConfig::serial());
            let (ve, vl) = (eager.live_pairs(), lazy.live_pairs());
            prop_assert_eq!(ve.len(), vl.len());
            for (a, b) in ve.iter().zip(&vl) {
                prop_assert_eq!((a.l, a.r), (b.l, b.r));
                prop_assert_eq!(a.sim.to_bits(), b.sim.to_bits());
            }
        }
    }
}
