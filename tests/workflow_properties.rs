//! Property-based cross-crate invariants on randomly generated scenarios.

use magellan_block::{
    AttrEquivalenceBlocker, Blocker, BlockingRule, CandidateSet, OverlapBlocker, Predicate,
    RuleBasedBlocker, SimFeature, TokSpec,
};
use magellan_block::metrics::evaluate_blocking;
use magellan_datagen::domains;
use magellan_datagen::{DirtModel, ScenarioConfig};
use proptest::prelude::*;

fn any_scenario() -> impl Strategy<Value = magellan_datagen::EmScenario> {
    (
        prop_oneof![
            Just("persons"),
            Just("products"),
            Just("restaurants"),
            Just("citations"),
            Just("ranches"),
        ],
        20usize..80,
        20usize..80,
        0u64..1000,
        prop_oneof![
            Just(DirtModel::clean()),
            Just(DirtModel::light()),
            Just(DirtModel::moderate()),
        ],
    )
        .prop_map(|(name, size_a, size_b, seed, dirt)| {
            let n_matches = size_a.min(size_b) / 3;
            domains::by_name(
                name,
                &ScenarioConfig {
                    size_a,
                    size_b,
                    n_matches,
                    dirt,
                    seed,
                },
            )
            .expect("known scenario")
        })
}

/// The full cross product as a candidate set.
fn cross(s: &magellan_datagen::EmScenario) -> CandidateSet {
    (0..s.table_a.nrows() as u32)
        .flat_map(|ra| (0..s.table_b.nrows() as u32).map(move |rb| (ra, rb)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn blockers_emit_valid_pairs_within_bounds(s in any_scenario()) {
        let first_attr = s.table_a.schema().field(1).name.clone();
        let blockers: Vec<Box<dyn Blocker>> = vec![
            Box::new(OverlapBlocker::words(&first_attr, 1)),
            Box::new(AttrEquivalenceBlocker::on(&first_attr)),
        ];
        for blocker in &blockers {
            let c = blocker.block(&s.table_a, &s.table_b).unwrap();
            prop_assert!(c.len() <= s.table_a.nrows() * s.table_b.nrows());
            for &(ra, rb) in c.pairs() {
                prop_assert!((ra as usize) < s.table_a.nrows());
                prop_assert!((rb as usize) < s.table_b.nrows());
            }
        }
    }

    #[test]
    fn union_recall_dominates_components(s in any_scenario()) {
        let first_attr = s.table_a.schema().field(1).name.clone();
        let c1 = OverlapBlocker::words(&first_attr, 1).block(&s.table_a, &s.table_b).unwrap();
        let c2 = AttrEquivalenceBlocker::on(&first_attr).block(&s.table_a, &s.table_b).unwrap();
        let u = c1.union(&c2);
        let r = |c: &CandidateSet| {
            evaluate_blocking(c, &s.table_a, &s.table_b, "id", "id", &s.gold)
                .unwrap()
                .recall()
        };
        prop_assert!(r(&u) >= r(&c1) - 1e-12);
        prop_assert!(r(&u) >= r(&c2) - 1e-12);
        // Intersection recall never exceeds either component.
        let i = c1.intersect(&c2);
        prop_assert!(r(&i) <= r(&c1) + 1e-12);
        prop_assert!(r(&i) <= r(&c2) + 1e-12);
    }

    #[test]
    fn rule_blocker_join_execution_equals_pairwise_refinement(s in any_scenario()) {
        let first_attr = s.table_a.schema().field(1).name.clone();
        let rule = BlockingRule {
            predicates: vec![Predicate {
                l_attr: first_attr.clone(),
                r_attr: first_attr,
                feature: SimFeature::Jaccard(TokSpec::Word),
                threshold: 0.4,
            }],
        };
        let blocker = RuleBasedBlocker::new(vec![rule]);
        let via_join = blocker.block(&s.table_a, &s.table_b).unwrap();
        let via_refine = blocker.refine(&cross(&s), &s.table_a, &s.table_b);
        prop_assert_eq!(via_join, via_refine);
    }

    #[test]
    fn gold_pairs_always_resolve(s in any_scenario()) {
        let ak = s.table_a.key_index("id").unwrap();
        let bk = s.table_b.key_index("id").unwrap();
        for (x, y) in &s.gold {
            prop_assert!(ak.contains_key(x));
            prop_assert!(bk.contains_key(y));
        }
        // Gold is one-to-one in these generators.
        let mut lefts: Vec<&String> = s.gold.iter().map(|(x, _)| x).collect();
        lefts.sort_unstable();
        let n = lefts.len();
        lefts.dedup();
        prop_assert_eq!(n, lefts.len());
    }

    #[test]
    fn feature_matrix_values_bounded_or_nan(s in any_scenario()) {
        let features =
            magellan_features::generate_features(&s.table_a, &s.table_b, &["id"]).unwrap();
        let first_attr = s.table_a.schema().field(1).name.clone();
        let cands = OverlapBlocker::words(&first_attr, 1)
            .block(&s.table_a, &s.table_b)
            .unwrap();
        let take: Vec<(u32, u32)> = cands.pairs().iter().copied().take(50).collect();
        let m = magellan_features::extract_feature_matrix(&take, &s.table_a, &s.table_b, &features)
            .unwrap();
        for row in &m.rows {
            for &v in row {
                prop_assert!(v.is_nan() || (-1e-9..=1.0 + 1e-9).contains(&v), "{v}");
            }
        }
    }
}
