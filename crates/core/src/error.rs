//! The unified Magellan error taxonomy.
//!
//! Every layer of the stack has its own failure vocabulary — `TableError`
//! for the tabular substrate, `PersistError` for model/workflow text
//! formats, I/O errors from checkpoints — and the execution layer needs
//! one more axis over all of them: **is retrying worth it?**
//! [`MagellanError::transient`] answers that question, and the
//! fault-injected executors ([`crate::exec::ProductionExecutor`] and the
//! Falcon metamanager) base every retry decision on it via the
//! [`magellan_faults::Transience`] trait.

use std::fmt;

use magellan_faults::Transience;
use magellan_ml::persist::PersistError;
use magellan_table::TableError;

/// The workspace-wide error type of the execution layer.
#[derive(Debug)]
pub enum MagellanError {
    /// A tabular-substrate failure (schema, catalog, CSV, I/O).
    Table(TableError),
    /// A model/workflow persistence failure (corrupt or truncated text).
    Persist(PersistError),
    /// A pipeline phase failed. `transient` records whether the failure
    /// was environmental (worth retrying) or logical (fatal).
    Phase {
        /// Which phase failed (`"blocking"`, `"matching"`, ...).
        phase: &'static str,
        /// Human-readable cause.
        message: String,
        /// Whether a retry can plausibly succeed.
        transient: bool,
    },
    /// A checkpoint could not be written, read, or parsed.
    Checkpoint {
        /// Human-readable cause.
        message: String,
        /// Whether a retry can plausibly succeed (I/O blips are
        /// transient; a corrupt checkpoint is not).
        transient: bool,
    },
    /// An operation exceeded its (simulated or wall-clock) budget.
    Timeout {
        /// What timed out.
        what: String,
        /// Budget that was exceeded, seconds.
        budget_s: f64,
    },
    /// The caller asked for an impossible configuration (zero scheduler
    /// slots, zero-weight tenant, ...). Always fatal: retrying the same
    /// configuration cannot succeed.
    Config {
        /// Human-readable description of the bad configuration.
        message: String,
    },
    /// The workflow was killed mid-run (used by the chaos suite to model
    /// process death between phases). The checkpoint on disk is the
    /// recovery path — rerunning resumes, so the kill itself is fatal for
    /// *this* invocation.
    Killed {
        /// The last phase whose checkpoint was durably written.
        after_phase: &'static str,
    },
}

impl MagellanError {
    /// True when a retry of the failed operation can plausibly succeed.
    pub fn transient(&self) -> bool {
        match self {
            MagellanError::Table(e) => io_transient(e),
            MagellanError::Persist(_) => false,
            MagellanError::Phase { transient, .. } => *transient,
            MagellanError::Checkpoint { transient, .. } => *transient,
            MagellanError::Timeout { .. } => true,
            MagellanError::Config { .. } => false,
            MagellanError::Killed { .. } => false,
        }
    }

    /// True when retrying cannot help.
    pub fn fatal(&self) -> bool {
        !self.transient()
    }

    /// Static variant name, for deterministic telemetry fields (the
    /// flight recorder tags `fatal_error` failures with it).
    pub fn kind_name(&self) -> &'static str {
        match self {
            MagellanError::Table(_) => "table",
            MagellanError::Persist(_) => "persist",
            MagellanError::Phase { .. } => "phase",
            MagellanError::Checkpoint { .. } => "checkpoint",
            MagellanError::Timeout { .. } => "timeout",
            MagellanError::Config { .. } => "config",
            MagellanError::Killed { .. } => "killed",
        }
    }
}

/// `TableError`'s only plausibly-transient face is an I/O error of a
/// retryable kind; everything else (schema mismatch, CSV syntax, key
/// violations) is deterministic.
fn io_transient(e: &TableError) -> bool {
    match e {
        TableError::Io(io) => matches!(
            io.kind(),
            std::io::ErrorKind::Interrupted
                | std::io::ErrorKind::WouldBlock
                | std::io::ErrorKind::TimedOut
        ),
        _ => false,
    }
}

impl Transience for MagellanError {
    fn transient(&self) -> bool {
        MagellanError::transient(self)
    }
}

impl fmt::Display for MagellanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MagellanError::Table(e) => write!(f, "table error: {e}"),
            MagellanError::Persist(e) => write!(f, "persistence error: {e}"),
            MagellanError::Phase {
                phase,
                message,
                transient,
            } => write!(
                f,
                "{phase} phase failed ({}): {message}",
                if *transient { "transient" } else { "fatal" }
            ),
            MagellanError::Checkpoint { message, .. } => {
                write!(f, "checkpoint error: {message}")
            }
            MagellanError::Timeout { what, budget_s } => {
                write!(f, "{what} exceeded its {budget_s}s budget")
            }
            MagellanError::Config { message } => {
                write!(f, "invalid configuration: {message}")
            }
            MagellanError::Killed { after_phase } => {
                write!(f, "workflow killed after phase `{after_phase}` (checkpoint saved)")
            }
        }
    }
}

impl std::error::Error for MagellanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MagellanError::Table(e) => Some(e),
            MagellanError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TableError> for MagellanError {
    fn from(e: TableError) -> Self {
        MagellanError::Table(e)
    }
}

impl From<PersistError> for MagellanError {
    fn from(e: PersistError) -> Self {
        MagellanError::Persist(e)
    }
}

impl From<std::io::Error> for MagellanError {
    fn from(e: std::io::Error) -> Self {
        MagellanError::Table(TableError::Io(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_classification() {
        let e = MagellanError::from(TableError::UnknownColumn("x".into()));
        assert!(e.fatal());
        let e = MagellanError::from(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            "blip",
        ));
        assert!(e.transient());
        let e = MagellanError::from(std::io::Error::other("disk on fire"));
        assert!(e.fatal());
        let e = MagellanError::Phase {
            phase: "blocking",
            message: "worker pool crashed".into(),
            transient: true,
        };
        assert!(e.transient());
        assert!(MagellanError::Timeout {
            what: "fragment".into(),
            budget_s: 5.0
        }
        .transient());
        assert!(MagellanError::Killed { after_phase: "blocking" }.fatal());
        let e = MagellanError::Config {
            message: "batch_slots must be >= 1".into(),
        };
        assert!(e.fatal());
        assert!(e.to_string().contains("batch_slots"));
        let e = MagellanError::from(PersistError {
            line: 3,
            message: "bad".into(),
        });
        assert!(e.fatal());
    }

    #[test]
    fn displays_are_informative_and_sources_chain() {
        use std::error::Error;
        let e = MagellanError::from(TableError::UnknownColumn("nm".into()));
        assert!(e.to_string().contains("nm"));
        assert!(e.source().is_some());
        let e = MagellanError::Phase {
            phase: "matching",
            message: "boom".into(),
            transient: false,
        };
        let s = e.to_string();
        assert!(s.contains("matching") && s.contains("fatal") && s.contains("boom"));
        let e = MagellanError::Killed { after_phase: "matching" };
        assert!(e.to_string().contains("matching"));
    }

    #[test]
    fn transience_trait_matches_inherent_method() {
        let e = MagellanError::Timeout {
            what: "x".into(),
            budget_s: 1.0,
        };
        assert_eq!(Transience::transient(&e), e.transient());
    }
}
