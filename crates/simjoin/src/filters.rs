//! Size and prefix filter mathematics for set-similarity joins.
//!
//! For each measure and threshold `t`, three quantities drive the
//! filter-verify plan (Chaudhuri et al., Xiao et al.):
//!
//! * **size bounds**: the token-set sizes a partner may have;
//! * **required overlap** `α(|x|, |y|)`: the minimum intersection size two
//!   sets of the given sizes need to reach `t`;
//! * **prefix length**: indexing/probing only the first
//!   `|x| − minoverlap(x) + 1` rarest tokens of each set is sufficient —
//!   any qualifying pair must collide in those prefixes.
//!
//! All bounds here are conservative (never prune a qualifying pair); the
//! join verifies exact similarity afterwards, so a loose bound costs time,
//! not correctness. Property tests in the join module check the
//! no-false-negative guarantee against a naive cross product.

/// Floating-point ceil hardened against values that are already integral
/// up to rounding error (e.g. `0.3 * 10` evaluating to `3.0000000000000004`).
fn safe_ceil(v: f64) -> usize {
    let eps = 1e-9;
    (v - eps).ceil().max(0.0) as usize
}

/// Minimum overlap two sets of sizes `sx`, `sy` need for Jaccard ≥ t:
/// `⌈ t·(sx+sy) / (1+t) ⌉`.
pub fn jaccard_min_overlap(sx: usize, sy: usize, t: f64) -> usize {
    safe_ceil(t * (sx + sy) as f64 / (1.0 + t))
}

/// Size bounds `[lo, hi]` for the partner of a set of size `s` under
/// Jaccard ≥ t: `⌈t·s⌉ ≤ |y| ≤ ⌊s/t⌋`.
pub fn jaccard_size_bounds(s: usize, t: f64) -> (usize, usize) {
    (safe_ceil(t * s as f64), (s as f64 / t + 1e-9).floor() as usize)
}

/// Minimum overlap for cosine ≥ t: `⌈ t·√(sx·sy) ⌉`.
pub fn cosine_min_overlap(sx: usize, sy: usize, t: f64) -> usize {
    safe_ceil(t * ((sx as f64) * (sy as f64)).sqrt())
}

/// Size bounds for cosine ≥ t: `⌈t²·s⌉ ≤ |y| ≤ ⌊s/t²⌋`.
pub fn cosine_size_bounds(s: usize, t: f64) -> (usize, usize) {
    (
        safe_ceil(t * t * s as f64),
        (s as f64 / (t * t) + 1e-9).floor() as usize,
    )
}

/// Minimum overlap for Dice ≥ t: `⌈ t·(sx+sy) / 2 ⌉`.
pub fn dice_min_overlap(sx: usize, sy: usize, t: f64) -> usize {
    safe_ceil(t * (sx + sy) as f64 / 2.0)
}

/// Size bounds for Dice ≥ t: `⌈ s·t/(2−t) ⌉ ≤ |y| ≤ ⌊ s·(2−t)/t ⌋`.
pub fn dice_size_bounds(s: usize, t: f64) -> (usize, usize) {
    (
        safe_ceil(s as f64 * t / (2.0 - t)),
        (s as f64 * (2.0 - t) / t + 1e-9).floor() as usize,
    )
}

/// The *self* minimum overlap of a set of size `s` — the overlap it would
/// need with the smallest admissible partner. The prefix length is
/// `s − α_self + 1`.
///
/// For Jaccard the smallest partner has size `⌈t·s⌉`, giving
/// `α_self = ⌈t·s⌉`; for cosine `α_self = ⌈t²·s⌉`... but a simpler bound
/// that is always correct uses the overlap the set needs with *itself
/// scaled*: we use the standard `α_self = min over admissible |y| of
/// α(s,|y|)`, which for all three normalized measures equals the value at
/// the lower size bound.
pub fn prefix_len(s: usize, min_self_overlap: usize) -> usize {
    if s == 0 {
        0
    } else {
        s - min_self_overlap.min(s) + 1
    }
}

/// Jaccard prefix length of a set of size `s` at threshold `t`.
pub fn jaccard_prefix_len(s: usize, t: f64) -> usize {
    // Smallest admissible partner: ⌈t·s⌉; α(s, ⌈t·s⌉) = ⌈t(s+⌈t·s⌉)/(1+t)⌉
    // ≥ ⌈t·s⌉. Using α_self = ⌈t·s⌉ is the standard conservative choice.
    prefix_len(s, safe_ceil(t * s as f64))
}

/// Cosine prefix length of a set of size `s` at threshold `t`.
pub fn cosine_prefix_len(s: usize, t: f64) -> usize {
    prefix_len(s, safe_ceil(t * t * s as f64))
}

/// Dice prefix length of a set of size `s` at threshold `t`.
pub fn dice_prefix_len(s: usize, t: f64) -> usize {
    prefix_len(s, safe_ceil(s as f64 * t / (2.0 - t)))
}

/// Overlap-size prefix length: a set of size `s` that must share at least
/// `c` tokens can skip its last `c − 1` tokens.
pub fn overlap_prefix_len(s: usize, c: usize) -> usize {
    if s == 0 {
        0
    } else {
        s - c.min(s) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safe_ceil_handles_float_noise() {
        assert_eq!(safe_ceil(3.0000000000000004), 3);
        assert_eq!(safe_ceil(2.999_999_999), 3);
        assert_eq!(safe_ceil(3.1), 4);
        assert_eq!(safe_ceil(0.0), 0);
        assert_eq!(safe_ceil(-0.5), 0);
    }

    #[test]
    fn jaccard_bounds_known_values() {
        // |x| = 10, t = 0.8: partner in [8, 12]; α(10,10) = ⌈16/1.8⌉ = 9.
        assert_eq!(jaccard_size_bounds(10, 0.8), (8, 12));
        assert_eq!(jaccard_min_overlap(10, 10, 0.8), 9);
        assert_eq!(jaccard_prefix_len(10, 0.8), 3);
    }

    #[test]
    fn cosine_bounds_known_values() {
        // |x| = 10, t = 0.7: partner in [⌈4.9⌉, ⌊20.4⌋] = [5, 20].
        assert_eq!(cosine_size_bounds(10, 0.7), (5, 20));
        assert_eq!(cosine_min_overlap(9, 16, 0.5), 6);
        assert_eq!(cosine_prefix_len(10, 0.7), 6);
    }

    #[test]
    fn dice_bounds_known_values() {
        // |x| = 10, t = 0.8: partner in [⌈10·0.8/1.2⌉, ⌊10·1.2/0.8⌋] = [7, 15].
        assert_eq!(dice_size_bounds(10, 0.8), (7, 15));
        assert_eq!(dice_min_overlap(10, 10, 0.8), 8);
        assert_eq!(dice_prefix_len(10, 0.8), 4);
    }

    #[test]
    fn min_overlap_is_sufficient() {
        // If overlap = α, the similarity really is ≥ t (α is not too small).
        for &(sx, sy) in &[(5usize, 8usize), (10, 10), (3, 30), (1, 1)] {
            for &t in &[0.3, 0.5, 0.8, 0.95] {
                let a = jaccard_min_overlap(sx, sy, t);
                if a <= sx.min(sy) {
                    let j = a as f64 / (sx + sy - a) as f64;
                    assert!(j >= t - 1e-9, "jaccard α={a} sx={sx} sy={sy} t={t} j={j}");
                }
                let a = cosine_min_overlap(sx, sy, t);
                if a <= sx.min(sy) {
                    let c = a as f64 / ((sx * sy) as f64).sqrt();
                    assert!(c >= t - 1e-9);
                }
                let a = dice_min_overlap(sx, sy, t);
                if a <= sx.min(sy) {
                    let d = 2.0 * a as f64 / (sx + sy) as f64;
                    assert!(d >= t - 1e-9);
                }
            }
        }
    }

    #[test]
    fn min_overlap_is_necessary() {
        // With overlap = α − 1 the threshold is unreachable (α is tight
        // enough to be a *necessary* condition).
        for &(sx, sy) in &[(5usize, 8usize), (10, 10), (4, 4)] {
            for &t in &[0.5, 0.8] {
                let a = jaccard_min_overlap(sx, sy, t);
                if a > 0 {
                    let j = (a - 1) as f64 / (sx + sy - (a - 1)) as f64;
                    assert!(j < t, "jaccard below α must fail");
                }
            }
        }
    }

    #[test]
    fn prefix_lengths_degenerate() {
        assert_eq!(jaccard_prefix_len(0, 0.8), 0);
        assert_eq!(overlap_prefix_len(5, 2), 4);
        assert_eq!(overlap_prefix_len(5, 10), 1);
        assert_eq!(overlap_prefix_len(0, 3), 0);
        // t = 1 keeps only one prefix token.
        assert_eq!(jaccard_prefix_len(7, 1.0), 1);
    }
}
