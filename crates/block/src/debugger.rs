//! The blocking debugger — one of the paper's named "pain point" tools
//! (Table 3, column D: "Blocking debugger").
//!
//! After blocking, the user needs to know whether the blocker killed
//! likely matches *without* having gold labels. The debugger runs a very
//! permissive similarity join over the concatenation of the chosen
//! attributes, removes everything already in the candidate set, and
//! returns the top-k most similar surviving pairs — if those look like
//! matches, the blocker is too aggressive and should be loosened.

use magellan_simjoin::{set_sim_join, set_sim_join_stats, JoinStats, SetSimMeasure};
use magellan_table::Table;
use magellan_textsim::tokenize::AlphanumericTokenizer;

use crate::candidate::CandidateSet;

/// A potential match the blocker dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct DroppedPair {
    /// Row index in the left table.
    pub l_row: usize,
    /// Row index in the right table.
    pub r_row: usize,
    /// Word-Jaccard similarity of the concatenated attributes.
    pub sim: f64,
}

/// [`debug_blocker`] output plus the permissive join's pruning-cascade
/// telemetry: which filter stage (size window / positional / suffix)
/// killed the candidates around the missed matches. A debugger session
/// where most kills are positional, say, tells the user the blocker's
/// token prefixes barely overlap — loosening the threshold (not the
/// attribute choice) is the fix.
#[derive(Debug, Clone, PartialEq)]
pub struct DebugReport {
    /// Top-k most similar pairs the blocker dropped.
    pub dropped: Vec<DroppedPair>,
    /// Per-stage kill counters of the permissive sim-join that searched
    /// for the dropped pairs.
    pub join: JoinStats,
}

/// Concatenate the display forms of `attrs` for each row.
fn concat_attrs(t: &Table, attrs: &[&str]) -> magellan_table::Result<Vec<Option<String>>> {
    let idxs: Vec<usize> = attrs
        .iter()
        .map(|a| t.schema().try_index_of(a))
        .collect::<magellan_table::Result<_>>()?;
    Ok(t.rows()
        .map(|r| {
            let parts: Vec<String> = idxs
                .iter()
                .filter_map(|&i| {
                    let v = t.value(r, i);
                    (!v.is_null()).then(|| v.display_string())
                })
                .collect();
            (!parts.is_empty()).then(|| parts.join(" "))
        })
        .collect())
}

/// Find the `k` most similar pairs **not** in the candidate set.
///
/// `min_sim` bounds the permissive join (default suggestion: 0.2 — low
/// enough to catch near-misses, high enough to stay sub-cross-product).
pub fn debug_blocker(
    candidates: &CandidateSet,
    a: &Table,
    b: &Table,
    attrs: &[&str],
    k: usize,
    min_sim: f64,
) -> magellan_table::Result<Vec<DroppedPair>> {
    Ok(debug_blocker_report(candidates, a, b, attrs, k, min_sim)?.dropped)
}

/// [`debug_blocker`] also returning the permissive join's [`JoinStats`]
/// so users see which pruning stage killed the candidates that contained
/// the missed matches.
pub fn debug_blocker_report(
    candidates: &CandidateSet,
    a: &Table,
    b: &Table,
    attrs: &[&str],
    k: usize,
    min_sim: f64,
) -> magellan_table::Result<DebugReport> {
    let la = concat_attrs(a, attrs)?;
    let rb = concat_attrs(b, attrs)?;
    let tok = AlphanumericTokenizer::as_set();
    let (joined, join) =
        set_sim_join_stats(&la, &rb, &tok, SetSimMeasure::Jaccard(min_sim.max(1e-6)));
    let mut dropped: Vec<DroppedPair> = joined
        .into_iter()
        .filter(|p| !candidates.contains((p.l as u32, p.r as u32)))
        .map(|p| DroppedPair {
            l_row: p.l,
            r_row: p.r,
            sim: p.sim,
        })
        .collect();
    dropped.sort_by(|x, y| {
        y.sim
            .partial_cmp(&x.sim)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (x.l_row, x.r_row).cmp(&(y.l_row, y.r_row)))
    });
    dropped.truncate(k);
    Ok(DebugReport { dropped, join })
}

/// Estimated blocker recall against *probable* matches: the fraction of
/// high-similarity pairs (≥ `hi_sim` on the concatenated attributes) that
/// the candidate set retains. A cheap label-free proxy for true recall.
pub fn estimate_recall(
    candidates: &CandidateSet,
    a: &Table,
    b: &Table,
    attrs: &[&str],
    hi_sim: f64,
) -> magellan_table::Result<f64> {
    let la = concat_attrs(a, attrs)?;
    let rb = concat_attrs(b, attrs)?;
    let tok = AlphanumericTokenizer::as_set();
    let joined = set_sim_join(&la, &rb, &tok, SetSimMeasure::Jaccard(hi_sim));
    if joined.is_empty() {
        return Ok(1.0);
    }
    let kept = joined
        .iter()
        .filter(|p| candidates.contains((p.l as u32, p.r as u32)))
        .count();
    Ok(kept as f64 / joined.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_table::{Dtype, Value};

    fn tables() -> (Table, Table) {
        let a = Table::from_rows(
            "A",
            &[("id", Dtype::Str), ("name", Dtype::Str), ("city", Dtype::Str)],
            vec![
                vec!["a0".into(), "dave smith".into(), "madison".into()],
                vec!["a1".into(), "joe wilson".into(), "san jose".into()],
                vec!["a2".into(), "dan smith".into(), "middleton".into()],
            ],
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            &[("id", Dtype::Str), ("name", Dtype::Str), ("city", Dtype::Str)],
            vec![
                vec!["b0".into(), "dave smith".into(), "madison".into()],
                vec!["b1".into(), "dan smith".into(), "middleton".into()],
                vec!["b2".into(), "maria garcia".into(), Value::Null],
            ],
        )
        .unwrap();
        (a, b)
    }

    #[test]
    fn surfaces_the_killed_match_first() {
        let (a, b) = tables();
        // Blocker kept (a0,b0) but killed (a2,b1).
        let cands = CandidateSet::new(vec![(0, 0)]);
        let dropped = debug_blocker(&cands, &a, &b, &["name", "city"], 5, 0.2).unwrap();
        assert!(!dropped.is_empty());
        assert_eq!((dropped[0].l_row, dropped[0].r_row), (2, 1));
        assert!(dropped[0].sim > 0.9);
    }

    #[test]
    fn pairs_already_in_candidates_are_excluded() {
        let (a, b) = tables();
        let cands = CandidateSet::new(vec![(0, 0), (2, 1)]);
        let dropped = debug_blocker(&cands, &a, &b, &["name", "city"], 5, 0.2).unwrap();
        assert!(dropped
            .iter()
            .all(|d| !((d.l_row, d.r_row) == (0, 0) || (d.l_row, d.r_row) == (2, 1))));
    }

    #[test]
    fn k_truncates() {
        let (a, b) = tables();
        let cands = CandidateSet::default();
        let dropped = debug_blocker(&cands, &a, &b, &["name"], 1, 0.1).unwrap();
        assert_eq!(dropped.len(), 1);
    }

    #[test]
    fn recall_estimate_reflects_kept_fraction() {
        let (a, b) = tables();
        let all = CandidateSet::new(vec![(0, 0), (2, 1)]);
        let r = estimate_recall(&all, &a, &b, &["name", "city"], 0.8).unwrap();
        assert_eq!(r, 1.0);
        let half = CandidateSet::new(vec![(0, 0)]);
        let r = estimate_recall(&half, &a, &b, &["name", "city"], 0.8).unwrap();
        assert!((r - 0.5).abs() < 1e-12);
        // No high-sim pairs at an impossible threshold: vacuous recall 1.
        let r = estimate_recall(&half, &a, &b, &["name"], 1.0).unwrap();
        assert!(r > 0.0);
    }

    #[test]
    fn report_carries_join_cascade_telemetry() {
        let (a, b) = tables();
        let cands = CandidateSet::new(vec![(0, 0)]);
        let report = debug_blocker_report(&cands, &a, &b, &["name", "city"], 5, 0.2).unwrap();
        // Same dropped pairs as the plain entry point...
        let plain = debug_blocker(&cands, &a, &b, &["name", "city"], 5, 0.2).unwrap();
        assert_eq!(report.dropped, plain);
        // ...plus consistent cascade counters from the permissive join.
        let j = report.join;
        assert!(j.probes > 0, "{j:?}");
        assert!(j.candidates > 0, "{j:?}");
        assert_eq!(j.candidates, j.killed_by_position + j.verified, "{j:?}");
        assert_eq!(j.verified, j.killed_by_suffix + j.pairs, "{j:?}");
        assert!(j.pairs >= report.dropped.len(), "{j:?}");
    }

    #[test]
    fn unknown_attr_is_an_error() {
        let (a, b) = tables();
        assert!(debug_blocker(&CandidateSet::default(), &a, &b, &["zzz"], 3, 0.2).is_err());
    }
}
