//! Worker-count scaling of the `magellan-par` hot paths (the ISSUE's
//! 1/2/4/8-worker speedup record).
//!
//! Every benchmark below runs the *same* computation at 1, 2, 4, and 8
//! workers; the determinism contract guarantees the outputs are
//! bit-identical, so the only thing that changes across the parameter
//! axis is wall-clock. Compare the per-worker medians to read off the
//! speedup curve.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use magellan_block::{Blocker, OverlapBlocker};
use magellan_datagen::domains::persons;
use magellan_datagen::{DirtModel, ScenarioConfig};
use magellan_features::{extract_feature_matrix_par, generate_features};
use magellan_ml::{predict_proba_batch, Dataset, RandomForestLearner};
use magellan_par::ParConfig;
use magellan_simjoin::{join_tokenized_par, SetSimMeasure, TokenizedCollection};
use magellan_textsim::tokenize::AlphanumericTokenizer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn scenario() -> magellan_datagen::EmScenario {
    persons(&ScenarioConfig {
        size_a: 1500,
        size_b: 1500,
        n_matches: 400,
        dirt: DirtModel::light(),
        seed: 17,
    })
}

fn strings(n: usize, seed: u64) -> Vec<Option<String>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let k = rng.gen_range(3..8);
            Some(
                (0..k)
                    .map(|_| format!("tok{}", rng.gen_range(0..800)))
                    .collect::<Vec<_>>()
                    .join(" "),
            )
        })
        .collect()
}

fn bench_simjoin_scaling(c: &mut Criterion) {
    let left = strings(4000, 1);
    let right = strings(4000, 2);
    let tok = AlphanumericTokenizer::as_set();
    let coll = TokenizedCollection::build(&left, &right, &tok);
    let mut g = c.benchmark_group("par_scaling/simjoin");
    g.sample_size(10);
    for w in WORKERS {
        g.bench_with_input(BenchmarkId::new("jaccard_0.5", w), &w, |b, &w| {
            let cfg = ParConfig::workers(w);
            b.iter(|| {
                black_box(join_tokenized_par(
                    black_box(&coll),
                    SetSimMeasure::Jaccard(0.5),
                    &cfg,
                ))
            });
        });
    }
    g.finish();
}

fn bench_blocking_scaling(c: &mut Criterion) {
    let s = scenario();
    let blocker = OverlapBlocker::words("name", 1);
    let mut g = c.benchmark_group("par_scaling/blocking");
    g.sample_size(10);
    for w in WORKERS {
        g.bench_with_input(BenchmarkId::new("overlap_words", w), &w, |b, &w| {
            let cfg = ParConfig::workers(w);
            b.iter(|| {
                black_box(
                    blocker
                        .block_par(black_box(&s.table_a), black_box(&s.table_b), &cfg)
                        .unwrap(),
                )
            });
        });
    }
    g.finish();
}

fn bench_features_scaling(c: &mut Criterion) {
    let s = scenario();
    let features = generate_features(&s.table_a, &s.table_b, &["id"]).unwrap();
    let (pairs, _) = OverlapBlocker::words("name", 1)
        .block_par(&s.table_a, &s.table_b, &ParConfig::workers(4))
        .unwrap();
    let pairs = pairs.pairs().to_vec();
    let mut g = c.benchmark_group("par_scaling/features");
    g.sample_size(10);
    for w in WORKERS {
        g.bench_with_input(
            BenchmarkId::new(format!("extract_{}_pairs", pairs.len()), w),
            &w,
            |b, &w| {
                let cfg = ParConfig::workers(w);
                b.iter(|| {
                    black_box(
                        extract_feature_matrix_par(
                            black_box(&pairs),
                            &s.table_a,
                            &s.table_b,
                            &features,
                            &cfg,
                        )
                        .unwrap(),
                    )
                });
            },
        );
    }
    g.finish();
}

fn bench_forest_scaling(c: &mut Criterion) {
    // Training data: synthetic blobs, big enough that tree fitting is the
    // dominant cost.
    let mut rng = StdRng::seed_from_u64(3);
    let mut data = Dataset::with_dims(8);
    for _ in 0..4000 {
        let pos: bool = rng.gen_bool(0.5);
        let center = if pos { 0.8 } else { 0.2 };
        let row: Vec<f64> = (0..8).map(|_| center + rng.gen_range(-0.3..0.3)).collect();
        data.push(&row, pos);
    }
    let rows: Vec<Vec<f64>> = (0..20_000)
        .map(|_| (0..8).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let forest = RandomForestLearner {
        n_trees: 32,
        n_workers: 1,
        ..Default::default()
    }
    .fit_forest(&data);

    let mut g = c.benchmark_group("par_scaling/forest");
    g.sample_size(10);
    for w in WORKERS {
        g.bench_with_input(BenchmarkId::new("fit_32_trees", w), &w, |b, &w| {
            let learner = RandomForestLearner {
                n_trees: 32,
                n_workers: w,
                ..Default::default()
            };
            b.iter(|| black_box(learner.fit_forest(black_box(&data))));
        });
        g.bench_with_input(BenchmarkId::new("predict_20k", w), &w, |b, &w| {
            let cfg = ParConfig::workers(w);
            b.iter(|| black_box(predict_proba_batch(&forest, black_box(&rows), &cfg)));
        });
    }
    g.finish();
}

criterion_group!(
    par_scaling,
    bench_simjoin_scaling,
    bench_blocking_scaling,
    bench_features_scaling,
    bench_forest_scaling
);
criterion_main!(par_scaling);
