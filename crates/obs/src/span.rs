//! Span records and the RAII span guard.
//!
//! A span is a named, keyed interval on the recorder's clock. Its id is a
//! pure function of the span *path* — `span_id(parent, name, key)` — so
//! the same logical scope gets the same id in every run regardless of
//! which worker thread executes it. Open spans live on the installed
//! context's thread-local stack; completed spans are pushed into the
//! thread's bounded buffer and merged canonically at snapshot time.

use crate::{span_id, with_ctx, with_ctx_of};

/// One completed span interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Deterministic id: `span_id(parent, name, key)`.
    pub id: u64,
    /// Parent span id (`0` = root).
    pub parent: u64,
    /// Static scope name (e.g. `"phase"`, `"chunk"`, `"retry"`).
    pub name: &'static str,
    /// Disambiguating key within the parent (chunk index, attempt, …).
    pub key: u64,
    /// Start time on the recorder's clock (ns).
    pub start_ns: u64,
    /// End time on the recorder's clock (ns, `>= start_ns`).
    pub end_ns: u64,
    /// Buffer lane (thread-registration order); scheduling-dependent, so
    /// it never participates in canonical ordering or pinned exports.
    pub lane: u32,
    /// Resource attribution attached while the span was open via
    /// [`crate::span_res_add`] — `(kind, bytes)` sorted by kind, one
    /// entry per kind (repeated attributions of a kind sum). Empty for
    /// the vast majority of spans (and allocation-free when empty).
    pub res: Vec<(&'static str, u64)>,
}

struct Open {
    obs_id: u64,
    id: u64,
    parent: u64,
    name: &'static str,
    key: u64,
    start_ns: u64,
}

/// RAII guard for an open span: records the completed [`SpanRec`] when
/// dropped. Inert (no allocation, no recording) when no recorder was
/// installed at open time.
#[must_use = "the span is recorded when the guard drops"]
pub struct SpanGuard {
    open: Option<Open>,
}

impl SpanGuard {
    /// The open span's deterministic id, or `None` when disabled.
    pub fn id(&self) -> Option<u64> {
        self.open.as_ref().map(|o| o.id)
    }
}

pub(crate) fn open(name: &'static str, key: u64) -> SpanGuard {
    let open = with_ctx(|ctx| {
        let parent = ctx.stack.last().copied().unwrap_or(0);
        let id = span_id(parent, name, key);
        ctx.stack.push(id);
        Open {
            obs_id: ctx.obs.inner.id,
            id,
            parent,
            name,
            key,
            start_ns: ctx.now_ns(),
        }
    });
    SpanGuard { open }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(o) = self.open.take() {
            with_ctx_of(o.obs_id, |ctx| {
                // Pop this span — and defensively anything opened above it
                // that leaked without dropping (guards normally unwind in
                // LIFO order, including during panics).
                if let Some(pos) = ctx.stack.iter().rposition(|&id| id == o.id) {
                    ctx.stack.truncate(pos);
                }
                // Claim the resource attributions recorded against this
                // span while it was open; entries for spans no longer on
                // the stack (leaked scopes truncated above) are dropped.
                let mut res: Vec<(&'static str, u64)> = Vec::new();
                let stack = &ctx.stack;
                ctx.open_res.retain(|&(id, kind, bytes)| {
                    if id != o.id {
                        return stack.contains(&id);
                    }
                    match res.iter_mut().find(|(k, _)| *k == kind) {
                        Some((_, b)) => *b = b.saturating_add(bytes),
                        None => res.push((kind, bytes)),
                    }
                    false
                });
                res.sort_unstable_by_key(|&(k, _)| k);
                let end_ns = ctx.now_ns().max(o.start_ns);
                let rec = SpanRec {
                    id: o.id,
                    parent: o.parent,
                    name: o.name,
                    key: o.key,
                    start_ns: o.start_ns,
                    end_ns,
                    lane: ctx.buf.lane,
                    res,
                };
                ctx.buf.push_span(rec, ctx.obs.inner.span_capacity);
            });
        }
    }
}
