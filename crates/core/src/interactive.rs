//! Interactive labeling — the `py_labeler` analog (Table 3 lists a GUI
//! labeler among PyMatcher's packages; the console is our GUI).
//!
//! [`InteractiveLabeler`] renders the two tuples side by side and reads
//! `y`/`n` answers. I/O is injected (`BufRead` + `Write`), so the labeler
//! is fully testable and embeddable; wire it to stdin/stdout with
//! [`InteractiveLabeler::stdio`].

use std::io::{BufRead, Write};

use magellan_table::Table;

use crate::labeling::{Label, Labeler};

/// A console labeler: prints both tuples, asks `match? [y/n]`, and
/// re-prompts on anything else.
pub struct InteractiveLabeler<R: BufRead, W: Write> {
    input: R,
    output: W,
    questions: usize,
}

impl InteractiveLabeler<std::io::BufReader<std::io::Stdin>, std::io::Stdout> {
    /// A labeler wired to the process's stdin/stdout.
    pub fn stdio() -> Self {
        InteractiveLabeler::new(
            std::io::BufReader::new(std::io::stdin()),
            std::io::stdout(),
        )
    }
}

impl<R: BufRead, W: Write> InteractiveLabeler<R, W> {
    /// A labeler over arbitrary I/O (tests inject cursors here).
    pub fn new(input: R, output: W) -> Self {
        InteractiveLabeler {
            input,
            output,
            questions: 0,
        }
    }

    fn render_tuple(&mut self, tag: &str, t: &Table, row: usize) -> std::io::Result<()> {
        write!(self.output, "  {tag}: ")?;
        let parts: Vec<String> = t
            .schema()
            .names()
            .iter()
            .enumerate()
            .map(|(c, name)| format!("{name}={}", t.value(row, c).display_string()))
            .collect();
        writeln!(self.output, "{}", parts.join(" | "))
    }
}

impl<R: BufRead, W: Write> Labeler for InteractiveLabeler<R, W> {
    fn label(&mut self, a: &Table, ra: usize, b: &Table, rb: usize) -> Label {
        self.questions += 1;
        writeln!(self.output, "pair #{}:", self.questions).expect("labeler output");
        self.render_tuple("A", a, ra).expect("labeler output");
        self.render_tuple("B", b, rb).expect("labeler output");
        loop {
            write!(self.output, "match? [y/n] ").expect("labeler output");
            self.output.flush().expect("labeler output");
            let mut line = String::new();
            let n = self
                .input
                .read_line(&mut line)
                .expect("labeler input");
            if n == 0 {
                // EOF: the conservative answer is no-match (never invent
                // positives from a closed stream).
                writeln!(self.output, "(input closed; assuming no-match)")
                    .expect("labeler output");
                return Label::NoMatch;
            }
            match line.trim().to_lowercase().as_str() {
                "y" | "yes" => return Label::Match,
                "n" | "no" => return Label::NoMatch,
                other => {
                    writeln!(self.output, "unrecognized answer `{other}`; type y or n")
                        .expect("labeler output");
                }
            }
        }
    }

    fn questions_asked(&self) -> usize {
        self.questions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_table::Dtype;
    use std::io::Cursor;

    fn tables() -> (Table, Table) {
        let a = Table::from_rows(
            "A",
            &[("id", Dtype::Str), ("name", Dtype::Str)],
            vec![vec!["a0".into(), "dave smith".into()]],
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            &[("id", Dtype::Str), ("name", Dtype::Str)],
            vec![vec!["b0".into(), "david smith".into()]],
        )
        .unwrap();
        (a, b)
    }

    #[test]
    fn reads_yes_and_no_answers() {
        let (a, b) = tables();
        let input = Cursor::new("y\nn\n");
        let mut out = Vec::new();
        let mut labeler = InteractiveLabeler::new(input, &mut out);
        assert_eq!(labeler.label(&a, 0, &b, 0), Label::Match);
        assert_eq!(labeler.label(&a, 0, &b, 0), Label::NoMatch);
        assert_eq!(labeler.questions_asked(), 2);
        let rendered = String::from_utf8(out).unwrap();
        assert!(rendered.contains("dave smith"));
        assert!(rendered.contains("david smith"));
        assert!(rendered.contains("match? [y/n]"));
    }

    #[test]
    fn reprompts_on_garbage() {
        let (a, b) = tables();
        let input = Cursor::new("maybe\nYES\n");
        let mut out = Vec::new();
        let mut labeler = InteractiveLabeler::new(input, &mut out);
        assert_eq!(labeler.label(&a, 0, &b, 0), Label::Match);
        let rendered = String::from_utf8(out).unwrap();
        assert!(rendered.contains("unrecognized answer `maybe`"));
    }

    #[test]
    fn eof_defaults_to_no_match() {
        let (a, b) = tables();
        let input = Cursor::new("");
        let mut out = Vec::new();
        let mut labeler = InteractiveLabeler::new(input, &mut out);
        assert_eq!(labeler.label(&a, 0, &b, 0), Label::NoMatch);
        assert!(String::from_utf8(out).unwrap().contains("input closed"));
    }
}
