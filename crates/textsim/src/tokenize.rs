//! Tokenizers.
//!
//! Every tokenizer can run in *bag* mode (keep duplicates, the default) or
//! *set* mode (dedupe while preserving first-occurrence order), matching
//! `py_stringmatching`'s `return_set` flag. Set mode is what the set-based
//! similarity measures and the sim-join prefix filters consume.

use std::collections::HashSet;

/// A named tokenizer turning a string into tokens.
pub trait Tokenizer: Send + Sync {
    /// Tokenize `s`.
    fn tokenize(&self, s: &str) -> Vec<String>;

    /// A short, stable name used in generated feature names, e.g. `"3gram"`
    /// (so features print as `jaccard(3gram(A.name), 3gram(B.name))`).
    fn name(&self) -> String;
}

/// Dedupe tokens preserving first occurrence.
fn dedupe(tokens: Vec<String>) -> Vec<String> {
    let mut seen: HashSet<&str> = HashSet::with_capacity(tokens.len());
    let mut keep = vec![false; tokens.len()];
    for (i, t) in tokens.iter().enumerate() {
        // Safety note not needed: we only compare, lifetime bounded to loop.
        if seen.insert(t.as_str()) {
            keep[i] = true;
        }
    }
    tokens
        .into_iter()
        .zip(keep)
        .filter_map(|(t, k)| k.then_some(t))
        .collect()
}

/// Split on Unicode whitespace.
#[derive(Debug, Clone, Copy, Default)]
pub struct WhitespaceTokenizer {
    /// Dedupe tokens (set semantics).
    pub return_set: bool,
}

impl WhitespaceTokenizer {
    /// Bag-semantics whitespace tokenizer.
    pub fn new() -> Self {
        Self { return_set: false }
    }

    /// Set-semantics whitespace tokenizer.
    pub fn as_set() -> Self {
        Self { return_set: true }
    }
}

impl Tokenizer for WhitespaceTokenizer {
    fn tokenize(&self, s: &str) -> Vec<String> {
        let toks: Vec<String> = s.split_whitespace().map(str::to_owned).collect();
        if self.return_set {
            dedupe(toks)
        } else {
            toks
        }
    }

    fn name(&self) -> String {
        "ws".to_owned()
    }
}

/// Split on any of a fixed set of delimiter characters.
#[derive(Debug, Clone)]
pub struct DelimiterTokenizer {
    delimiters: Vec<char>,
    /// Dedupe tokens (set semantics).
    pub return_set: bool,
}

impl DelimiterTokenizer {
    /// Tokenizer splitting on the given delimiter characters.
    pub fn new(delimiters: &[char]) -> Self {
        Self {
            delimiters: delimiters.to_vec(),
            return_set: false,
        }
    }
}

impl Tokenizer for DelimiterTokenizer {
    fn tokenize(&self, s: &str) -> Vec<String> {
        let toks: Vec<String> = s
            .split(|c: char| self.delimiters.contains(&c))
            .filter(|t| !t.is_empty())
            .map(str::to_owned)
            .collect();
        if self.return_set {
            dedupe(toks)
        } else {
            toks
        }
    }

    fn name(&self) -> String {
        let d: String = self.delimiters.iter().collect();
        format!("delim[{d}]")
    }
}

/// Maximal runs of ASCII-alphanumeric characters, lowercased.
/// This is the tokenizer EM feature generators default to for noisy name
/// fields: punctuation and case drift disappear.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlphanumericTokenizer {
    /// Dedupe tokens (set semantics).
    pub return_set: bool,
}

impl AlphanumericTokenizer {
    /// Bag-semantics alphanumeric tokenizer.
    pub fn new() -> Self {
        Self { return_set: false }
    }

    /// Set-semantics alphanumeric tokenizer.
    pub fn as_set() -> Self {
        Self { return_set: true }
    }
}

impl Tokenizer for AlphanumericTokenizer {
    fn tokenize(&self, s: &str) -> Vec<String> {
        let mut toks = Vec::new();
        let mut cur = String::new();
        for ch in s.chars() {
            if ch.is_ascii_alphanumeric() {
                cur.extend(ch.to_lowercase());
            } else if !cur.is_empty() {
                toks.push(std::mem::take(&mut cur));
            }
        }
        if !cur.is_empty() {
            toks.push(cur);
        }
        if self.return_set {
            dedupe(toks)
        } else {
            toks
        }
    }

    fn name(&self) -> String {
        "alnum".to_owned()
    }
}

/// Character q-grams, optionally padded with `#`/`$` sentinels the way
/// `py_stringmatching` pads (so that string prefixes/suffixes are
/// distinguishable from interior substrings).
#[derive(Debug, Clone, Copy)]
pub struct QgramTokenizer {
    /// Gram size (≥ 1).
    pub q: usize,
    /// Pad with `q-1` leading `#` and trailing `$` sentinels.
    pub padded: bool,
    /// Dedupe tokens (set semantics).
    pub return_set: bool,
}

impl QgramTokenizer {
    /// Padded bag-semantics q-gram tokenizer.
    pub fn new(q: usize) -> Self {
        assert!(q >= 1, "q must be at least 1");
        Self {
            q,
            padded: true,
            return_set: false,
        }
    }

    /// Padded set-semantics q-gram tokenizer (what sim-joins consume).
    pub fn as_set(q: usize) -> Self {
        Self {
            return_set: true,
            ..Self::new(q)
        }
    }

    /// Unpadded variant.
    pub fn unpadded(q: usize) -> Self {
        Self {
            padded: false,
            ..Self::new(q)
        }
    }
}

impl Tokenizer for QgramTokenizer {
    fn tokenize(&self, s: &str) -> Vec<String> {
        let mut chars: Vec<char> = Vec::with_capacity(s.len() + 2 * (self.q - 1));
        if self.padded {
            chars.extend(std::iter::repeat_n('#', self.q - 1));
        }
        chars.extend(s.chars());
        if self.padded {
            chars.extend(std::iter::repeat_n('$', self.q - 1));
        }
        if chars.len() < self.q {
            return Vec::new();
        }
        let toks: Vec<String> = chars
            .windows(self.q)
            .map(|w| w.iter().collect())
            .collect();
        if self.return_set {
            dedupe(toks)
        } else {
            toks
        }
    }

    fn name(&self) -> String {
        format!("{}gram", self.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitespace_bag_and_set() {
        let bag = WhitespaceTokenizer::new();
        assert_eq!(bag.tokenize("a  b a\tc"), vec!["a", "b", "a", "c"]);
        let set = WhitespaceTokenizer::as_set();
        assert_eq!(set.tokenize("a  b a\tc"), vec!["a", "b", "c"]);
        assert!(bag.tokenize("   ").is_empty());
    }

    #[test]
    fn delimiter_skips_empty_fields() {
        let t = DelimiterTokenizer::new(&[',', ';']);
        assert_eq!(t.tokenize("a,,b;c,"), vec!["a", "b", "c"]);
        assert_eq!(t.name(), "delim[,;]");
    }

    #[test]
    fn alphanumeric_lowercases_and_splits_on_punctuation() {
        let t = AlphanumericTokenizer::new();
        assert_eq!(
            t.tokenize("O'Brien-Smith, J.R. (2nd)"),
            vec!["o", "brien", "smith", "j", "r", "2nd"]
        );
        assert!(t.tokenize("!!!").is_empty());
    }

    #[test]
    fn qgram_padded() {
        let t = QgramTokenizer::new(3);
        assert_eq!(
            t.tokenize("ab"),
            vec!["##a", "#ab", "ab$", "b$$"]
        );
        assert_eq!(t.name(), "3gram");
    }

    #[test]
    fn qgram_unpadded_short_string_yields_nothing() {
        let t = QgramTokenizer::unpadded(3);
        assert!(t.tokenize("ab").is_empty());
        assert_eq!(t.tokenize("abc"), vec!["abc"]);
        assert_eq!(t.tokenize("abcd"), vec!["abc", "bcd"]);
    }

    #[test]
    fn qgram_set_mode_dedupes() {
        let t = QgramTokenizer::as_set(2);
        // "aaa" padded: #a aa aa a$ -> dedupe keeps first "aa"
        assert_eq!(t.tokenize("aaa"), vec!["#a", "aa", "a$"]);
    }

    #[test]
    fn qgram_handles_multibyte_chars() {
        let t = QgramTokenizer::unpadded(2);
        assert_eq!(t.tokenize("héllo").len(), 4);
    }

    #[test]
    fn empty_string_is_empty_tokens() {
        assert!(WhitespaceTokenizer::new().tokenize("").is_empty());
        assert!(AlphanumericTokenizer::new().tokenize("").is_empty());
        // padded 1-gram of "" is empty: no chars.
        assert!(QgramTokenizer::new(1).tokenize("").is_empty());
    }
}
