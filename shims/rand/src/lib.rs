//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships a tiny, dependency-free re-implementation of the
//! slice of `rand` 0.8 that the Magellan crates actually use:
//!
//! * [`rngs::StdRng`] — a xoshiro256\*\* generator (not ChaCha12 like the
//!   real crate; streams differ from upstream `rand`, which is fine because
//!   every consumer in this workspace only relies on *determinism under a
//!   fixed seed*, never on a specific stream),
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen_range`] over half-open integer and float ranges,
//! * [`Rng::gen_bool`],
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Everything is `#![forbid(unsafe_code)]` and deterministic.

#![forbid(unsafe_code)]

/// Low-level source of 64-bit randomness.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

const F64_SCALE: f64 = 1.0 / ((1u64 << 53) as f64);

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
        ((self.next_u64() >> 11) as f64 * F64_SCALE) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A half-open range a value can be sampled from.
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable from a range. The *generic* [`SampleRange`]
/// impls below mirror real `rand`'s shape: `Range<T>: SampleRange<T>`
/// unifies `T` with the range's element type during inference, so literal
/// expressions like `rng.gen_range(-0.02..0.02)` resolve through the
/// default float fallback exactly as they do with the real crate.
pub trait SampleUniform: Sized + PartialOrd {
    /// Sample from `lo..hi`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Sample from `lo..=hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo of 128-bit state: bias is < 2^-64, irrelevant here.
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                let off = (wide % span) as i128;
                (lo as i128 + off) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                let off = (wide % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let f = (rng.next_u64() >> 11) as f64 * F64_SCALE;
                lo + (f as $t) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let f = (rng.next_u64() >> 11) as f64 * F64_SCALE;
                lo + (f as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256\*\* — small, fast, and statistically solid; deterministic
    /// under [`SeedableRng::seed_from_u64`].
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::Rng;

    /// In-place slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..64).filter(|_| a.gen_range(0u64..1 << 60) == c.gen_range(0u64..1 << 60)).count();
        assert!(same < 4, "independent seeds should diverge");
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(3u8..9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left slice untouched");
    }
}
