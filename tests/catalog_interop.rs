//! The §4.1 interoperability story, across crates: generic tables flow
//! through CSV I/O, the catalog carries key/FK metadata beside them, and
//! self-contained commands detect metadata invalidated by tools that know
//! nothing about the catalog.

use magellan_block::{Blocker, OverlapBlocker};
use magellan_datagen::domains::persons;
use magellan_datagen::{DirtModel, ScenarioConfig};
use magellan_table::{csv, Catalog, Schema, Value};

fn scenario() -> magellan_datagen::EmScenario {
    persons(&ScenarioConfig {
        size_a: 120,
        size_b: 120,
        n_matches: 40,
        dirt: DirtModel::light(),
        seed: 8,
    })
}

#[test]
fn csv_roundtrip_preserves_generated_tables() {
    let s = scenario();
    let mut buf = Vec::new();
    csv::write_csv(&s.table_a, &mut buf).unwrap();
    let schema = Schema::new(s.table_a.schema().fields().to_vec()).unwrap();
    let back = csv::read_csv(buf.as_slice(), "A", schema).unwrap();
    assert_eq!(back.nrows(), s.table_a.nrows());
    for r in 0..back.nrows() {
        assert_eq!(back.row(r), s.table_a.row(r), "row {r} drifted");
    }
    // The reread table is a *different* table instance: catalog metadata
    // does not silently transfer.
    assert_ne!(back.id(), s.table_a.id());
}

#[test]
fn candidate_table_fk_metadata_survives_the_full_chain() {
    let s = scenario();
    let mut catalog = Catalog::new();
    catalog.set_key(&s.table_a, "id").unwrap();
    catalog.set_key(&s.table_b, "id").unwrap();

    let cands = OverlapBlocker::words("name", 1)
        .block(&s.table_a, &s.table_b)
        .unwrap();
    let c = cands
        .to_table("C", &s.table_a, &s.table_b, &mut catalog)
        .unwrap();
    catalog
        .validate_candidate(&c, &s.table_a, &s.table_b)
        .unwrap();
    assert_eq!(c.schema().names(), vec!["l_id", "r_id"]);
}

#[test]
fn catalog_detects_base_table_mutation_behind_its_back() {
    let s = scenario();
    let mut a = s.table_a.clone();
    let mut catalog = Catalog::new();
    catalog.set_key(&a, "id").unwrap();
    catalog.set_key(&s.table_b, "id").unwrap();
    let cands = OverlapBlocker::words("name", 1)
        .block(&a, &s.table_b)
        .unwrap();
    let c = cands.to_table("C", &a, &s.table_b, &mut catalog).unwrap();

    // A catalog-unaware tool appends a row duplicating an existing key —
    // the pandas-style mutation of the paper's example.
    let dup_key = a.value_by_name(0, "id").unwrap().to_owned();
    let mut row = a.row(0);
    row[0] = dup_key;
    row[1] = Value::Str("impostor".into());
    a.push_row(row).unwrap();

    // Self-contained validation notices.
    assert!(catalog.validate_key(&a).is_err());
    assert!(catalog.validate_candidate(&c, &a, &s.table_b).is_err());
}

#[test]
fn projection_does_not_inherit_metadata() {
    let s = scenario();
    let mut catalog = Catalog::new();
    catalog.set_key(&s.table_a, "id").unwrap();
    let projected = s.table_a.project(&["id", "name"]).unwrap();
    // Fresh table id: no metadata until declared.
    assert!(catalog.key(&projected).is_none());
    catalog.set_key(&projected, "id").unwrap();
    catalog.validate_key(&projected).unwrap();
}

#[test]
fn profiling_flags_the_key_column() {
    let s = scenario();
    let keys = magellan_table::profile::key_candidates(&s.table_a);
    assert!(keys.contains(&"id".to_owned()));
}
