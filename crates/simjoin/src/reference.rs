//! The pre-CSR HashMap join engine, preserved as a baseline.
//!
//! This is the original filter-verify implementation: a
//! `HashMap<u32, Vec<(rid, pos)>>` prefix index, a first-collision-only
//! positional filter, and an unbounded full-merge verification. It is
//! kept (not dead-coded) for two jobs:
//!
//! * the **oracle tests** pin the CSR engine bit-identical to it, and
//! * the **benches** (`benches/simjoin.rs`, `exp_simjoin`) measure the
//!   CSR engine's speedup against it on the same tokenized inputs.
//!
//! Do not route production callers here — use [`crate::join_tokenized`].

use std::collections::HashMap;

use crate::collection::{overlap_sorted, TokenizedCollection};
use crate::join::{JoinPair, SetSimMeasure};

/// HashMap-based prefix index: token id → `(rid, pos)` postings.
struct HashPrefixIndex {
    map: HashMap<u32, Vec<(u32, u32)>>,
}

impl HashPrefixIndex {
    fn build(records: &[Vec<u32>], prefix_len_of: impl Fn(usize) -> usize) -> Self {
        let mut map: HashMap<u32, Vec<(u32, u32)>> = HashMap::new();
        for (rid, rec) in records.iter().enumerate() {
            let plen = prefix_len_of(rec.len()).min(rec.len());
            for (pos, &tok) in rec[..plen].iter().enumerate() {
                map.entry(tok)
                    .or_default()
                    .push((rid as u32, pos as u32));
            }
        }
        HashPrefixIndex { map }
    }

    fn get(&self, token: u32) -> &[(u32, u32)] {
        self.map.get(&token).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// The seed join: probe left against a HashMap prefix index over right,
/// first-collision position filter, unbounded verification. Returns
/// pairs sorted by `(l, r)` — the exact output contract of
/// [`crate::join_tokenized`].
pub fn join_tokenized_hashmap(
    coll: &TokenizedCollection,
    measure: SetSimMeasure,
) -> Vec<JoinPair> {
    measure.validate();
    let index = HashPrefixIndex::build(&coll.right, |s| measure.prefix_len(s));
    let mut out = Vec::new();
    let mut stamps = vec![u32::MAX; coll.right.len()];
    for (l, x) in coll.left.iter().enumerate() {
        let sx = x.len();
        if sx == 0 {
            continue;
        }
        let (lo, hi) = measure.size_bounds(sx);
        let probe_len = measure.prefix_len(sx).min(sx);
        let stamp = l as u32;
        for (px, &tok) in x[..probe_len].iter().enumerate() {
            for &(rid, py) in index.get(tok) {
                let rid = rid as usize;
                if stamps[rid] == stamp {
                    continue; // already considered for this probe
                }
                stamps[rid] = stamp;
                let y = &coll.right[rid];
                let sy = y.len();
                if sy < lo || sy > hi {
                    continue;
                }
                // First-collision position filter only.
                let ubound = 1 + (sx - px - 1).min(sy - py as usize - 1);
                if ubound < measure.min_overlap(sx, sy) {
                    continue;
                }
                let overlap = overlap_sorted(x, y);
                if measure.qualifies(sx, sy, overlap) {
                    out.push(JoinPair {
                        l,
                        r: rid,
                        sim: measure.similarity(sx, sy, overlap),
                    });
                }
            }
        }
    }
    out.sort_unstable_by_key(|a| (a.l, a.r));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_textsim::tokenize::WhitespaceTokenizer;

    #[test]
    fn reference_engine_still_joins() {
        let tok = WhitespaceTokenizer::new();
        let left = vec![Some("dave smith"), Some("joe wilson")];
        let right = vec![Some("dave smith"), Some("dave jones")];
        let coll = TokenizedCollection::build(&left, &right, &tok);
        let out = join_tokenized_hashmap(&coll, SetSimMeasure::Jaccard(0.9));
        assert_eq!(out.len(), 1);
        assert_eq!((out[0].l, out[0].r, out[0].sim), (0, 0, 1.0));
    }
}
