//! Rule-based blocking.
//!
//! A blocking rule is a conjunction of *low-similarity* predicates that
//! **drops** a pair when every predicate fires — exactly the shape Falcon
//! extracts from random-forest root→"No"-leaf paths (Fig. 4 of the paper):
//!
//! ```text
//! jaccard(3gram(A.isbn), 3gram(B.isbn)) <= 0.55 -> No
//! ```
//!
//! A pair *survives* a rule by violating at least one predicate, and
//! survives blocking by surviving **every** rule. Because the complement
//! of each predicate (`sim > t`) is a similarity join, a rule's survivor
//! set is a union of sim-joins and the overall candidate set an
//! intersection across rules — so rule blocking scales without touching
//! the cross product.

use magellan_simjoin::{set_sim_join, SetSimMeasure};
use magellan_table::Table;
use magellan_textsim::setsim;
use magellan_textsim::tokenize::{AlphanumericTokenizer, QgramTokenizer, Tokenizer};

use crate::blockers::Blocker;
use crate::candidate::CandidateSet;

/// Tokenization spec for a rule feature (kept as plain data so rules are
/// cloneable and printable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokSpec {
    /// Lowercased alphanumeric word tokens.
    Word,
    /// Padded character q-grams (set semantics).
    Qgram(usize),
}

impl TokSpec {
    /// Materialize the tokenizer.
    pub fn tokenizer(&self) -> Box<dyn Tokenizer> {
        match self {
            TokSpec::Word => Box::new(AlphanumericTokenizer::as_set()),
            TokSpec::Qgram(q) => Box::new(QgramTokenizer::as_set(*q)),
        }
    }

    /// Display name used in printed rules (`word`, `3gram`).
    pub fn label(&self) -> String {
        match self {
            TokSpec::Word => "word".to_owned(),
            TokSpec::Qgram(q) => format!("{q}gram"),
        }
    }
}

/// The similarity feature a predicate thresholds on. Every variant's
/// complement is executable as a join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimFeature {
    /// Jaccard over the tokenization.
    Jaccard(TokSpec),
    /// Cosine over the tokenization.
    Cosine(TokSpec),
    /// Dice over the tokenization.
    Dice(TokSpec),
    /// Exact string equality (sim ∈ {0, 1}).
    ExactMatch,
}

impl SimFeature {
    /// Compute the similarity for one pair of (possibly missing) values.
    /// Missing values score 0 (a missing attribute cannot demonstrate
    /// similarity, so drop-rules fire on it).
    pub fn similarity(&self, a: Option<&str>, b: Option<&str>) -> f64 {
        let (Some(a), Some(b)) = (a, b) else { return 0.0 };
        match self {
            SimFeature::ExactMatch => f64::from(a.trim().to_lowercase() == b.trim().to_lowercase()),
            SimFeature::Jaccard(t) | SimFeature::Cosine(t) | SimFeature::Dice(t) => {
                let tok = t.tokenizer();
                let ta = tok.tokenize(a);
                let tb = tok.tokenize(b);
                if ta.is_empty() || tb.is_empty() {
                    return 0.0;
                }
                match self {
                    SimFeature::Jaccard(_) => setsim::jaccard(&ta, &tb),
                    SimFeature::Cosine(_) => setsim::cosine(&ta, &tb),
                    SimFeature::Dice(_) => setsim::dice(&ta, &tb),
                    SimFeature::ExactMatch => unreachable!(),
                }
            }
        }
    }

    /// Display label (`jaccard(3gram(·))`).
    pub fn label(&self) -> String {
        match self {
            SimFeature::Jaccard(t) => format!("jaccard({})", t.label()),
            SimFeature::Cosine(t) => format!("cosine({})", t.label()),
            SimFeature::Dice(t) => format!("dice({})", t.label()),
            SimFeature::ExactMatch => "exact_match".to_owned(),
        }
    }
}

/// One predicate: fires (votes to drop) when
/// `sim(l_attr, r_attr) <= threshold`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Attribute of the left table.
    pub l_attr: String,
    /// Attribute of the right table.
    pub r_attr: String,
    /// The similarity feature.
    pub feature: SimFeature,
    /// Fires when similarity ≤ this value.
    pub threshold: f64,
}

impl Predicate {
    /// Does the predicate fire (drop-vote) on this value pair?
    pub fn fires(&self, a: Option<&str>, b: Option<&str>) -> bool {
        self.feature.similarity(a, b) <= self.threshold + 1e-12
    }

    /// Render like the paper's Fig. 4 rules.
    pub fn pretty(&self) -> String {
        format!(
            "{}(A.{}, B.{}) <= {:.3}",
            self.feature.label(),
            self.l_attr,
            self.r_attr,
            self.threshold
        )
    }
}

/// A conjunction of predicates; fires (drops the pair) when **all**
/// predicates fire.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockingRule {
    /// The conjunction.
    pub predicates: Vec<Predicate>,
}

impl BlockingRule {
    /// Does the rule drop this pair?
    pub fn fires(&self, a: &Table, ra: usize, b: &Table, rb: usize) -> bool {
        self.predicates.iter().all(|p| {
            let va = a
                .value_by_name(ra, &p.l_attr)
                .ok()
                .and_then(|v| v.as_str().map(str::to_owned));
            let vb = b
                .value_by_name(rb, &p.r_attr)
                .ok()
                .and_then(|v| v.as_str().map(str::to_owned));
            p.fires(va.as_deref(), vb.as_deref())
        })
    }

    /// Render like Fig. 4: `p1 AND p2 -> No`.
    pub fn pretty(&self) -> String {
        let parts: Vec<String> = self.predicates.iter().map(Predicate::pretty).collect();
        format!("{} -> No", parts.join(" AND "))
    }
}

/// A set of blocking rules executed as sim-joins.
#[derive(Debug, Clone, Default)]
pub struct RuleBasedBlocker {
    /// The rules; a pair must survive all of them.
    pub rules: Vec<BlockingRule>,
}

impl RuleBasedBlocker {
    /// Blocker from a rule list. At least one rule is required — zero
    /// rules would mean "keep the entire cross product".
    pub fn new(rules: Vec<BlockingRule>) -> Self {
        assert!(!rules.is_empty(), "rule-based blocker needs at least one rule");
        RuleBasedBlocker { rules }
    }

    fn column_strings(t: &Table, attr: &str) -> magellan_table::Result<Vec<Option<String>>> {
        let idx = t.schema().try_index_of(attr)?;
        Ok(t.rows()
            .map(|r| {
                let v = t.value(r, idx);
                (!v.is_null()).then(|| v.display_string())
            })
            .collect())
    }

    /// Survivors of one predicate's *complement* (`sim > threshold`),
    /// computed as a similarity join.
    fn violators(
        pred: &Predicate,
        a: &Table,
        b: &Table,
    ) -> magellan_table::Result<CandidateSet> {
        let la = Self::column_strings(a, &pred.l_attr)?;
        let rb = Self::column_strings(b, &pred.r_attr)?;
        match pred.feature {
            SimFeature::ExactMatch => {
                // sim > t for t < 1 means equality; for t >= 1 nothing
                // violates (sim can't exceed 1).
                if pred.threshold >= 1.0 {
                    return Ok(CandidateSet::default());
                }
                let blocker = crate::blockers::AttrEquivalenceBlocker {
                    l_attr: pred.l_attr.clone(),
                    r_attr: pred.r_attr.clone(),
                };
                blocker.block(a, b)
            }
            SimFeature::Jaccard(ts) | SimFeature::Cosine(ts) | SimFeature::Dice(ts) => {
                if pred.threshold >= 1.0 {
                    return Ok(CandidateSet::default());
                }
                let measure = match pred.feature {
                    SimFeature::Jaccard(_) => SetSimMeasure::Jaccard(pred.threshold.max(1e-6)),
                    SimFeature::Cosine(_) => SetSimMeasure::Cosine(pred.threshold.max(1e-6)),
                    SimFeature::Dice(_) => SetSimMeasure::Dice(pred.threshold.max(1e-6)),
                    SimFeature::ExactMatch => unreachable!(),
                };
                let tok = ts.tokenizer();
                let joined = set_sim_join(&la, &rb, tok.as_ref(), measure);
                // The join returns sim >= threshold; the complement needs
                // the strict sim > threshold.
                Ok(joined
                    .into_iter()
                    .filter(|p| p.sim > pred.threshold + 1e-12)
                    .map(|p| (p.l as u32, p.r as u32))
                    .collect())
            }
        }
    }

    /// Apply the rules to an existing candidate set (exact, pairwise).
    pub fn refine(&self, cands: &CandidateSet, a: &Table, b: &Table) -> CandidateSet {
        cands
            .pairs()
            .iter()
            .copied()
            .filter(|&(ra, rb)| {
                !self
                    .rules
                    .iter()
                    .any(|rule| rule.fires(a, ra as usize, b, rb as usize))
            })
            .collect()
    }

    /// Render all rules.
    pub fn pretty(&self) -> String {
        self.rules
            .iter()
            .map(BlockingRule::pretty)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl Blocker for RuleBasedBlocker {
    fn name(&self) -> String {
        format!("rule_based({} rules)", self.rules.len())
    }

    fn block(&self, a: &Table, b: &Table) -> magellan_table::Result<CandidateSet> {
        assert!(!self.rules.is_empty(), "rule-based blocker needs at least one rule");
        // Survivors = ∩_rules ∪_predicates violators(predicate).
        let mut result: Option<CandidateSet> = None;
        for rule in &self.rules {
            let mut rule_survivors = CandidateSet::default();
            for pred in &rule.predicates {
                rule_survivors = rule_survivors.union(&Self::violators(pred, a, b)?);
            }
            result = Some(match result {
                None => rule_survivors,
                Some(acc) => acc.intersect(&rule_survivors),
            });
        }
        Ok(result.unwrap_or_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_table::{Dtype, Value};

    fn tables() -> (Table, Table) {
        let a = Table::from_rows(
            "A",
            &[("id", Dtype::Str), ("isbn", Dtype::Str), ("title", Dtype::Str)],
            vec![
                vec!["a0".into(), "978-0262033848".into(), "introduction to algorithms".into()],
                vec!["a1".into(), "978-1491927083".into(), "programming rust".into()],
                vec!["a2".into(), Value::Null, "mystery book".into()],
            ],
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            &[("id", Dtype::Str), ("isbn", Dtype::Str), ("title", Dtype::Str)],
            vec![
                vec!["b0".into(), "978-0262033848".into(), "intro to algorithms".into()],
                vec!["b1".into(), "978-3161484100".into(), "unrelated tome".into()],
                vec!["b2".into(), "978-1491927083".into(), "programming rust 2nd".into()],
            ],
        )
        .unwrap();
        (a, b)
    }

    fn isbn_rule() -> BlockingRule {
        BlockingRule {
            predicates: vec![Predicate {
                l_attr: "isbn".into(),
                r_attr: "isbn".into(),
                feature: SimFeature::ExactMatch,
                threshold: 0.5,
            }],
        }
    }

    #[test]
    fn exact_match_rule_keeps_only_equal_isbns() {
        let (a, b) = tables();
        let blocker = RuleBasedBlocker::new(vec![isbn_rule()]);
        let c = blocker.block(&a, &b).unwrap();
        assert_eq!(c.pairs(), &[(0, 0), (1, 2)]);
    }

    #[test]
    fn join_execution_equals_pairwise_refinement() {
        let (a, b) = tables();
        let rule = BlockingRule {
            predicates: vec![Predicate {
                l_attr: "title".into(),
                r_attr: "title".into(),
                feature: SimFeature::Jaccard(TokSpec::Word),
                threshold: 0.3,
            }],
        };
        let blocker = RuleBasedBlocker::new(vec![rule]);
        let via_join = blocker.block(&a, &b).unwrap();
        // Reference: cross product refined pairwise.
        let all: CandidateSet = (0..a.nrows() as u32)
            .flat_map(|ra| (0..b.nrows() as u32).map(move |rb| (ra, rb)))
            .collect();
        let via_refine = blocker.refine(&all, &a, &b);
        assert_eq!(via_join, via_refine);
        assert!(via_join.contains((1, 2)), "programming rust pair survives");
    }

    #[test]
    fn conjunction_survives_by_violating_any_predicate() {
        let (a, b) = tables();
        // Drop only if BOTH isbn differs AND title jaccard low — i.e. keep
        // anything with equal isbn OR similar title.
        let rule = BlockingRule {
            predicates: vec![
                Predicate {
                    l_attr: "isbn".into(),
                    r_attr: "isbn".into(),
                    feature: SimFeature::ExactMatch,
                    threshold: 0.5,
                },
                Predicate {
                    l_attr: "title".into(),
                    r_attr: "title".into(),
                    feature: SimFeature::Jaccard(TokSpec::Word),
                    threshold: 0.3,
                },
            ],
        };
        let blocker = RuleBasedBlocker::new(vec![rule]);
        let c = blocker.block(&a, &b).unwrap();
        // (0,0): isbn equal -> survives. (1,2): isbn equal AND title similar.
        assert!(c.contains((0, 0)));
        assert!(c.contains((1, 2)));
        // (0,1): different isbn, dissimilar title -> dropped.
        assert!(!c.contains((0, 1)));
    }

    #[test]
    fn multiple_rules_intersect() {
        let (a, b) = tables();
        let title_rule = BlockingRule {
            predicates: vec![Predicate {
                l_attr: "title".into(),
                r_attr: "title".into(),
                feature: SimFeature::Jaccard(TokSpec::Word),
                threshold: 0.2,
            }],
        };
        let blocker = RuleBasedBlocker::new(vec![isbn_rule(), title_rule]);
        let c = blocker.block(&a, &b).unwrap();
        // Must pass both: equal isbn AND title jaccard > 0.2.
        for &(ra, rb) in c.pairs() {
            let ia = a.value_by_name(ra as usize, "isbn").unwrap().display_string();
            let ib = b.value_by_name(rb as usize, "isbn").unwrap().display_string();
            assert_eq!(ia, ib);
        }
        assert!(c.contains((1, 2)));
    }

    #[test]
    fn null_attributes_fire_drop_rules() {
        let (a, b) = tables();
        let blocker = RuleBasedBlocker::new(vec![isbn_rule()]);
        let c = blocker.block(&a, &b).unwrap();
        // a2 has a null isbn: it can never survive an isbn-based rule.
        assert!(c.pairs().iter().all(|&(ra, _)| ra != 2));
    }

    #[test]
    fn pretty_renders_fig4_style() {
        let rule = BlockingRule {
            predicates: vec![
                Predicate {
                    l_attr: "isbn".into(),
                    r_attr: "isbn".into(),
                    feature: SimFeature::ExactMatch,
                    threshold: 0.5,
                },
                Predicate {
                    l_attr: "title".into(),
                    r_attr: "title".into(),
                    feature: SimFeature::Jaccard(TokSpec::Qgram(3)),
                    threshold: 0.31,
                },
            ],
        };
        let s = rule.pretty();
        assert!(s.contains("exact_match(A.isbn, B.isbn) <= 0.500"), "{s}");
        assert!(s.contains("jaccard(3gram)(A.title, B.title) <= 0.310"), "{s}");
        assert!(s.ends_with("-> No"));
    }

    #[test]
    #[should_panic(expected = "at least one rule")]
    fn empty_rule_list_panics() {
        RuleBasedBlocker::new(vec![]);
    }

    #[test]
    fn threshold_at_one_drops_everything() {
        let (a, b) = tables();
        let rule = BlockingRule {
            predicates: vec![Predicate {
                l_attr: "isbn".into(),
                r_attr: "isbn".into(),
                feature: SimFeature::ExactMatch,
                threshold: 1.0,
            }],
        };
        let c = RuleBasedBlocker::new(vec![rule]).block(&a, &b).unwrap();
        assert!(c.is_empty());
    }
}
