//! Candidate sets: the output of blocking.

use std::collections::{BTreeSet, HashSet};

use magellan_simjoin::PairDelta;
use magellan_table::{CandidateMeta, Catalog, Dtype, Schema, Table, Value};

/// What [`CandidateSet::apply_deltas`] actually changed: deltas that were
/// already reflected in the set (an `Added` pair that was present, a
/// `Removed` pair that was absent) are counted but not re-applied, so the
/// caller can audit drift between the blocker and the join's live view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaApplyStats {
    /// Pairs newly inserted.
    pub added: usize,
    /// Pairs actually removed.
    pub removed: usize,
    /// Deltas that were already reflected (no-ops).
    pub redundant: usize,
}

/// A set of candidate row pairs `(row in A, row in B)`, kept as indices
/// until materialization. Always sorted and deduplicated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CandidateSet {
    pairs: Vec<(u32, u32)>,
}

impl CandidateSet {
    /// Build from raw pairs (sorts and dedups).
    pub fn new(mut pairs: Vec<(u32, u32)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        CandidateSet { pairs }
    }

    /// The sorted, deduplicated pairs.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// Number of candidate pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no candidates survived.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Set union (blockers are often OR-ed to improve recall — the paper's
    /// guide has users experiment with blocker combinations).
    pub fn union(&self, other: &CandidateSet) -> CandidateSet {
        let mut pairs = self.pairs.clone();
        pairs.extend_from_slice(&other.pairs);
        CandidateSet::new(pairs)
    }

    /// Set intersection (AND-ing blockers raises precision).
    pub fn intersect(&self, other: &CandidateSet) -> CandidateSet {
        let other_set: HashSet<(u32, u32)> = other.pairs.iter().copied().collect();
        CandidateSet {
            pairs: self
                .pairs
                .iter()
                .copied()
                .filter(|p| other_set.contains(p))
                .collect(),
        }
    }

    /// Set difference `self − other`.
    pub fn minus(&self, other: &CandidateSet) -> CandidateSet {
        let other_set: HashSet<(u32, u32)> = other.pairs.iter().copied().collect();
        CandidateSet {
            pairs: self
                .pairs
                .iter()
                .copied()
                .filter(|p| !other_set.contains(p))
                .collect(),
        }
    }

    /// Membership test.
    pub fn contains(&self, pair: (u32, u32)) -> bool {
        self.pairs.binary_search(&pair).is_ok()
    }

    /// Apply a batch of signed pair deltas from the incremental join tier
    /// ([`magellan_simjoin::incremental`]) in **one merge pass** —
    /// O(|Δ| log |Δ| + |self|) instead of a full re-block — preserving the
    /// sorted-dedup invariant. Removals win over additions of the same
    /// pair within one batch (the engine never emits both, but a union of
    /// delta streams may).
    pub fn apply_deltas(&mut self, deltas: &[PairDelta]) -> DeltaApplyStats {
        let mut stats = DeltaApplyStats::default();
        let mut removed: BTreeSet<(u32, u32)> = BTreeSet::new();
        let mut added: BTreeSet<(u32, u32)> = BTreeSet::new();
        for d in deltas {
            match d {
                PairDelta::Added(p) => {
                    added.insert((p.l as u32, p.r as u32));
                }
                PairDelta::Removed { l, r } => {
                    removed.insert((*l as u32, *r as u32));
                }
            }
        }
        added.retain(|p| !removed.contains(p));

        let old = std::mem::take(&mut self.pairs);
        self.pairs = Vec::with_capacity(old.len() + added.len());
        let mut add_iter = added.into_iter().peekable();
        for p in old {
            // Flush additions that sort before the next existing pair.
            while let Some(&a) = add_iter.peek() {
                if a >= p {
                    break;
                }
                self.pairs.push(a);
                stats.added += 1;
                add_iter.next();
            }
            if add_iter.peek() == Some(&p) {
                // Already present: the addition is redundant.
                stats.redundant += 1;
                add_iter.next();
            }
            if removed.remove(&p) {
                stats.removed += 1;
                continue;
            }
            self.pairs.push(p);
        }
        for a in add_iter {
            self.pairs.push(a);
            stats.added += 1;
        }
        stats.redundant += removed.len();
        stats
    }

    /// Drop every pair referencing left row `ra` (`left = true`) or right
    /// row `rb` (`left = false`) — the blocking-side reaction to a record
    /// tombstone before re-blocked pairs arrive as `Added` deltas.
    pub fn retain_without_record(&mut self, left: bool, rid: u32) -> usize {
        let before = self.pairs.len();
        self.pairs
            .retain(|&(ra, rb)| if left { ra != rid } else { rb != rid });
        before - self.pairs.len()
    }

    /// Materialize as an `(l_id, r_id)` table and register its FK metadata
    /// in the catalog — §4.1's space-efficiency principle: the candidate
    /// table carries only the keys.
    ///
    /// Requires both base tables to have keys registered in the catalog.
    pub fn to_table(
        &self,
        name: &str,
        a: &Table,
        b: &Table,
        catalog: &mut Catalog,
    ) -> magellan_table::Result<Table> {
        let a_key = catalog.require_key(a)?.to_owned();
        let b_key = catalog.require_key(b)?.to_owned();
        // Self-containment: re-validate the keys before emitting FKs
        // against them.
        catalog.validate_key(a)?;
        catalog.validate_key(b)?;
        let a_key_idx = a.schema().try_index_of(&a_key)?;
        let b_key_idx = b.schema().try_index_of(&b_key)?;
        let schema = Schema::from_pairs(&[("l_id", Dtype::Str), ("r_id", Dtype::Str)])?;
        let mut t = Table::with_capacity(name, schema, self.pairs.len());
        for &(ra, rb) in &self.pairs {
            t.push_row(vec![
                Value::Str(a.value(ra as usize, a_key_idx).display_string()),
                Value::Str(b.value(rb as usize, b_key_idx).display_string()),
            ])?;
        }
        let meta = CandidateMeta {
            fk_ltable: "l_id".to_owned(),
            fk_rtable: "r_id".to_owned(),
            ltable: a.id(),
            rtable: b.id(),
            ltable_key: a_key,
            rtable_key: b_key,
        };
        catalog.set_candidate_meta(&t, meta, a, b)?;
        Ok(t)
    }
}

impl FromIterator<(u32, u32)> for CandidateSet {
    fn from_iter<I: IntoIterator<Item = (u32, u32)>>(iter: I) -> Self {
        CandidateSet::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(pairs: &[(u32, u32)]) -> CandidateSet {
        CandidateSet::new(pairs.to_vec())
    }

    #[test]
    fn new_sorts_and_dedups() {
        let c = cs(&[(2, 1), (0, 0), (2, 1), (1, 5)]);
        assert_eq!(c.pairs(), &[(0, 0), (1, 5), (2, 1)]);
        assert_eq!(c.len(), 3);
        assert!(c.contains((1, 5)));
        assert!(!c.contains((9, 9)));
    }

    #[test]
    fn set_algebra() {
        let x = cs(&[(0, 0), (1, 1), (2, 2)]);
        let y = cs(&[(1, 1), (3, 3)]);
        assert_eq!(x.union(&y).pairs(), &[(0, 0), (1, 1), (2, 2), (3, 3)]);
        assert_eq!(x.intersect(&y).pairs(), &[(1, 1)]);
        assert_eq!(x.minus(&y).pairs(), &[(0, 0), (2, 2)]);
        assert!(cs(&[]).is_empty());
    }

    #[test]
    fn apply_deltas_merges_in_one_pass() {
        use magellan_simjoin::JoinPair;
        let mut c = cs(&[(0, 0), (1, 1), (2, 2), (5, 5)]);
        let deltas = vec![
            PairDelta::Added(JoinPair { l: 3, r: 3, sim: 0.9 }),
            PairDelta::Removed { l: 1, r: 1 },
            PairDelta::Added(JoinPair { l: 0, r: 7, sim: 0.8 }),
            // Redundant: already present.
            PairDelta::Added(JoinPair { l: 2, r: 2, sim: 1.0 }),
            // Redundant: never present.
            PairDelta::Removed { l: 9, r: 9 },
        ];
        let stats = c.apply_deltas(&deltas);
        assert_eq!(c.pairs(), &[(0, 0), (0, 7), (2, 2), (3, 3), (5, 5)]);
        assert_eq!(
            stats,
            DeltaApplyStats {
                added: 2,
                removed: 1,
                redundant: 2
            }
        );
        // Invariant: still sorted + deduplicated ⇒ re-normalizing is a
        // no-op.
        let renorm = CandidateSet::new(c.pairs().to_vec());
        assert_eq!(&renorm, &c);
    }

    #[test]
    fn apply_deltas_removal_wins_within_a_batch() {
        use magellan_simjoin::JoinPair;
        let mut c = cs(&[(4, 4)]);
        let stats = c.apply_deltas(&[
            PairDelta::Added(JoinPair { l: 4, r: 4, sim: 1.0 }),
            PairDelta::Removed { l: 4, r: 4 },
        ]);
        assert!(c.is_empty());
        assert_eq!(stats.removed, 1);
        assert_eq!(stats.added, 0);
    }

    #[test]
    fn retain_without_record_drops_one_side() {
        let mut c = cs(&[(0, 1), (2, 1), (2, 3), (4, 1)]);
        assert_eq!(c.retain_without_record(false, 1), 3);
        assert_eq!(c.pairs(), &[(2, 3)]);
        let mut c2 = cs(&[(0, 1), (2, 1), (2, 3)]);
        assert_eq!(c2.retain_without_record(true, 2), 2);
        assert_eq!(c2.pairs(), &[(0, 1)]);
    }

    #[test]
    fn to_table_materializes_ids_and_registers_metadata() {
        let a = Table::from_rows(
            "A",
            &[("id", Dtype::Str), ("x", Dtype::Int)],
            vec![
                vec!["a0".into(), Value::Int(1)],
                vec!["a1".into(), Value::Int(2)],
            ],
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            &[("id", Dtype::Str)],
            vec![vec!["b0".into()], vec!["b1".into()]],
        )
        .unwrap();
        let mut catalog = Catalog::new();
        catalog.set_key(&a, "id").unwrap();
        catalog.set_key(&b, "id").unwrap();
        let c = cs(&[(0, 1), (1, 0)]);
        let t = c.to_table("C", &a, &b, &mut catalog).unwrap();
        assert_eq!(t.nrows(), 2);
        assert_eq!(t.schema().names(), vec!["l_id", "r_id"]);
        assert_eq!(t.value_by_name(0, "l_id").unwrap().as_str(), Some("a0"));
        assert_eq!(t.value_by_name(0, "r_id").unwrap().as_str(), Some("b1"));
        catalog.validate_candidate(&t, &a, &b).unwrap();
    }

    #[test]
    fn to_table_requires_registered_keys() {
        let a = Table::from_rows("A", &[("id", Dtype::Str)], vec![vec!["a0".into()]]).unwrap();
        let b = Table::from_rows("B", &[("id", Dtype::Str)], vec![vec!["b0".into()]]).unwrap();
        let mut catalog = Catalog::new();
        let c = cs(&[(0, 0)]);
        assert!(c.to_table("C", &a, &b, &mut catalog).is_err());
    }
}
