//! The production-stage executor.
//!
//! §4.1: "We have developed tools that can execute these commands on a
//! multi-core single machine, using customized code or Dask." This module
//! is that Dask substitute: it runs a captured [`crate::EmWorkflow`] over
//! the full tables on the `magellan-par` work-stealing pool, and reports
//! per-phase wall-clock timings (the "Machine" time column of Table 2)
//! *and* per-phase executor counters — pairs/sec, chunks stolen, and
//! per-worker busy time ([`PhaseCounters`]).
//!
//! The executor inherits the pool's determinism contract: a production run
//! produces **bit-identical matches for any worker count**, which is what
//! lets the lab stage (small samples, one core) hand a workflow to the
//! production stage (full tables, many cores) without re-validating it.

//!
//! ## Self-healing runs ([`ProductionExecutor::run_with_recovery`])
//!
//! The fault-hardened entry point layers four defenses over the plain
//! [`ProductionExecutor::run`]:
//!
//! * **panic containment** — each parallel region runs with a seeded
//!   [`magellan_faults::FaultPlan`]'s chunk faults; contained panics,
//!   recovered chunks, and worker deaths surface in
//!   [`RecoveryTelemetry`];
//! * **retries with backoff** — transient phase and checkpoint-store
//!   failures retry under a [`RetryPolicy`] on a simulated clock;
//! * **phase checkpointing** — the candidate set is durably saved after
//!   blocking and the match set when done, via any
//!   [`CheckpointStore`];
//! * **resume** — a rerun after a kill picks up from the last durable
//!   checkpoint and produces a **bit-identical** match set
//!   (`crates/core/tests/chaos.rs` enforces this across seeds).

use std::time::{Duration, Instant};

use magellan_block::CandidateSet;
use magellan_faults::{run_with_retry, FaultPlan, RetryPolicy, SimClock};
use magellan_features::extract_feature_matrix_par;
use magellan_obs::{EvVal, ObsSnapshot};
use magellan_par::{ParConfig, ParStats};
use magellan_table::Table;

use crate::checkpoint::{Checkpoint, CheckpointStore, Phase};
use crate::error::MagellanError;
use crate::workflow::EmWorkflow;

/// Stable region ids keying per-region chunk-fault streams, so a fault
/// plan injects independently into blocking, extraction, and prediction.
const REGION_BLOCKING: u64 = 1;
const REGION_EXTRACT: u64 = 2;
const REGION_PREDICT: u64 = 3;

/// Per-phase timings of a production run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Blocking wall-clock.
    pub blocking: Duration,
    /// Feature extraction + prediction wall-clock.
    pub matching: Duration,
}

impl PhaseTimings {
    /// Total machine time.
    pub fn total(&self) -> Duration {
        self.blocking + self.matching
    }
}

/// Per-phase executor counters of a production run: the [`ParStats`] of
/// every parallel region, folded per phase.
#[derive(Debug, Clone, Default)]
pub struct PhaseCounters {
    /// Blocking-phase counters (candidate generation / sim-join probes).
    pub blocking: ParStats,
    /// Matching-phase counters (feature extraction + prediction, merged).
    pub matching: ParStats,
}

impl PhaseCounters {
    /// Candidate pairs scored per second of matching wall-clock.
    pub fn pairs_per_sec(&self) -> f64 {
        self.matching.throughput()
    }

    /// Chunks executed by a worker other than their static-partition owner,
    /// across both phases.
    pub fn chunks_stolen(&self) -> usize {
        self.blocking.chunks_stolen + self.matching.chunks_stolen
    }

    /// Per-worker busy time across both phases.
    pub fn worker_busy(&self) -> Vec<Duration> {
        let mut total = ParStats::default();
        total.merge(&self.blocking);
        total.merge(&self.matching);
        total.worker_busy
    }

    /// Prepared-cache counters of the matching phase's feature
    /// extraction: records prepared, tokenize calls spent and saved
    /// versus the per-pair scalar path, lookups/hits, and the shared
    /// interner's vocabulary size (see [`magellan_par::CacheStats`]).
    pub fn feature_cache(&self) -> magellan_par::CacheStats {
        self.matching.cache
    }

    /// Tokenizer invocations the prepared cache avoided during matching,
    /// relative to the per-pair scalar extraction path.
    pub fn tokenize_calls_saved(&self) -> usize {
        self.matching.cache.tokenize_calls_saved
    }

    /// Fraction of prepared-cell lookups served by earlier preparation.
    pub fn cache_hit_rate(&self) -> f64 {
        self.matching.cache.hit_rate()
    }

    /// Pruning-cascade counters of the blocking phase's sim-joins:
    /// probes, candidates generated, kills per filter stage (size /
    /// position / suffix), verification attempts and merge steps, and
    /// emitted pairs (see [`magellan_par::JoinStats`]).
    pub fn join_stats(&self) -> magellan_par::JoinStats {
        self.blocking.join
    }

    /// Fraction of generated candidates abandoned by the accumulating
    /// positional filter during blocking.
    pub fn join_position_kill_rate(&self) -> f64 {
        self.blocking.join.position_kill_rate()
    }
}

/// What the self-healing machinery did during a run: how much damage was
/// absorbed, and what it cost. All zeros for a fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryTelemetry {
    /// Whole-phase retries after a transient failure.
    pub phase_retries: u32,
    /// Checkpoint-store operations retried after a transient I/O failure.
    pub store_retries: u32,
    /// Chunk panics contained by the parallel pool (injected or genuine).
    pub panics_contained: usize,
    /// Chunks whose output was recovered by retry or serial fallback.
    pub chunks_recovered: usize,
    /// Workers that died (exhausted in-worker retries) and were routed
    /// around by the serial fallback.
    pub worker_deaths: usize,
    /// Checkpoints durably written this run.
    pub checkpoints_written: u32,
    /// The phase whose checkpoint this run resumed from, if any.
    pub resumed_from: Option<Phase>,
    /// Total simulated backoff spent sleeping between retries, seconds.
    pub sim_backoff_s: f64,
}

impl RecoveryTelemetry {
    fn absorb_stats(&mut self, s: &ParStats) {
        self.panics_contained += s.panics_contained;
        self.chunks_recovered += s.chunks_recovered;
        self.worker_deaths += s.worker_deaths;
    }

    /// Publish the recovery counters into the ambient [`magellan_obs`]
    /// recorder. Worker deaths are scheduling-dependent, so they are only
    /// published on wall-clock recorders (same policy as
    /// [`ParStats::publish`]) — pinned snapshots stay byte-identical
    /// across worker counts.
    fn publish(&self) {
        magellan_obs::counter_add(
            "magellan_core_phase_retries_total",
            u64::from(self.phase_retries),
        );
        magellan_obs::counter_add(
            "magellan_core_store_retries_total",
            u64::from(self.store_retries),
        );
        magellan_obs::counter_add(
            "magellan_core_checkpoints_written_total",
            u64::from(self.checkpoints_written),
        );
        magellan_obs::gauge_set("magellan_core_sim_backoff_seconds", self.sim_backoff_s);
        let wall = magellan_obs::current().map(|o| !o.is_pinned()).unwrap_or(false);
        if wall && self.worker_deaths > 0 {
            magellan_obs::counter_add(
                "magellan_core_worker_deaths_total",
                self.worker_deaths as u64,
            );
        }
    }
}

/// Result of a production run.
#[derive(Debug)]
pub struct ProductionReport {
    /// Predicted matches.
    pub matches: CandidateSet,
    /// Candidate pairs examined.
    pub n_candidates: usize,
    /// Wall-clock per phase.
    pub timings: PhaseTimings,
    /// Executor counters per phase.
    pub counters: PhaseCounters,
    /// Worker threads used.
    pub n_workers: usize,
    /// What the self-healing machinery absorbed (all zeros under
    /// [`ProductionExecutor::run`], populated by
    /// [`ProductionExecutor::run_with_recovery`]).
    pub recovery: RecoveryTelemetry,
    /// The run's observability snapshot: `run → phase → chunk → retry`
    /// spans, the `magellan_*` metrics registry, and the discrete event
    /// log, exportable as Prometheus text or Chrome-trace JSON. Under a
    /// pinned-clock recorder and a fixed chunk size, both exports are
    /// byte-identical across worker counts
    /// (`crates/core/tests/obs_determinism.rs`).
    pub obs: ObsSnapshot,
}

/// Knobs for [`ProductionExecutor::run_with_recovery`].
#[derive(Debug, Clone, Copy)]
pub struct RecoveryOptions {
    /// Backoff schedule for transient phase and checkpoint failures.
    pub retry: RetryPolicy,
    /// Seeded fault plan; [`FaultPlan::none`] for production.
    pub faults: FaultPlan,
    /// Test hook: die (return [`MagellanError::Killed`]) right after the
    /// named phase's checkpoint is durably written, modeling process
    /// death between phases. The next run resumes from that checkpoint.
    pub kill_after: Option<Phase>,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            retry: RetryPolicy::default(),
            faults: FaultPlan::none(),
            kill_after: None,
        }
    }
}

/// Multi-core workflow executor.
#[derive(Debug, Clone, Copy)]
pub struct ProductionExecutor {
    /// Worker threads for every phase (≥ 1).
    pub n_workers: usize,
    /// Fixed items-per-chunk for every parallel region. `None` keeps the
    /// pool's adaptive default (`len / (8 · n_workers)`), which *varies
    /// with the worker count* — pin this when you need chunk spans and
    /// chunk counters to be identical across worker counts (the
    /// byte-identical-export contract).
    pub chunk_size: Option<usize>,
}

impl ProductionExecutor {
    /// Executor with the given parallelism.
    pub fn new(n_workers: usize) -> Self {
        ProductionExecutor {
            n_workers: n_workers.max(1),
            chunk_size: None,
        }
    }

    /// Pin the chunk size of every parallel region (see
    /// [`ProductionExecutor::chunk_size`]).
    pub fn with_chunk_size(mut self, chunk: usize) -> Self {
        self.chunk_size = Some(chunk.max(1));
        self
    }

    /// The pool configuration every phase starts from.
    fn par_cfg(&self) -> ParConfig {
        let mut cfg = ParConfig::workers(self.n_workers);
        if let Some(c) = self.chunk_size {
            cfg = cfg.with_chunk_size(c);
        }
        cfg
    }

    /// Use the ambient recorder if one is installed; otherwise install a
    /// private wall-clock recorder for the duration of the run so the
    /// report always carries a populated snapshot.
    fn obs_handle(&self) -> (magellan_obs::Obs, Option<magellan_obs::InstallGuard>) {
        match magellan_obs::current() {
            Some(obs) => (obs, None),
            None => {
                let obs = magellan_obs::Obs::wall();
                let guard = obs.install();
                (obs, Some(guard))
            }
        }
    }

    /// Snapshot the recorder into the report and honor the export env
    /// vars, best effort: `MAGELLAN_TRACE` (Chrome trace),
    /// `MAGELLAN_PROFILE` (collapsed-stack or `.json` profile), and
    /// `MAGELLAN_FLIGHT_DUMP` (flight-recorder dump, written only when
    /// the run noted a failure).
    fn finish_obs(obs: &magellan_obs::Obs) -> ObsSnapshot {
        let snap = obs.snapshot();
        if let Some(path) = magellan_obs::trace_export_path() {
            if let Err(e) = snap.write_chrome_trace(&path) {
                magellan_obs::log!(warn, "MAGELLAN_TRACE export to {path} failed: {e}");
            }
        }
        if let Some(path) = magellan_obs::profile_export_path() {
            if let Err(e) = snap.profile().write(&path) {
                magellan_obs::log!(warn, "MAGELLAN_PROFILE export to {path} failed: {e}");
            }
        }
        if let Some(path) = obs.flight_autodump() {
            magellan_obs::log!(info, "flight-recorder dump written to {path}");
        }
        snap
    }

    /// Run the workflow over full tables.
    ///
    /// Every phase runs on the `magellan-par` pool: blocking via
    /// [`magellan_block::Blocker::block_par`], feature extraction via
    /// [`extract_feature_matrix_par`], prediction via
    /// [`magellan_par::map_indexed`]. The matches are identical for any
    /// `n_workers` (see `crates/core/tests/par_determinism.rs`).
    pub fn run(
        &self,
        workflow: &EmWorkflow,
        a: &Table,
        b: &Table,
    ) -> magellan_table::Result<ProductionReport> {
        let cfg = self.par_cfg();
        let (obs, _own_guard) = self.obs_handle();
        let run_span = magellan_obs::span("run", 0);

        let t0 = Instant::now();
        let (candidates, blocking_stats) = {
            let _phase = magellan_obs::span("blocking", 0);
            let out = workflow.blocker.block_par(a, b, &cfg)?;
            out.1.publish("blocking");
            out
        };
        let blocking = t0.elapsed();

        let t1 = Instant::now();
        let pairs = candidates.pairs();
        let _phase = magellan_obs::span("matching", 0);
        let (matrix, extract_stats) = {
            let _region = magellan_obs::span("extract", 0);
            let out = extract_feature_matrix_par(pairs, a, b, &workflow.features, &cfg)?;
            out.1.publish("extract");
            out
        };
        let (predicted, predict_stats) = {
            let _region = magellan_obs::span("predict", 0);
            let out = magellan_par::map_indexed(matrix.len(), &cfg, |i| {
                workflow.matcher.predict_proba(&matrix.rows[i]) >= workflow.threshold
            });
            out.1.publish("predict");
            out
        };
        // The rule layer is a cheap per-row pass over the already-extracted
        // matrix; it stays serial so its decisions are trivially ordered.
        let decisions: Vec<(u32, u32)> = workflow
            .rule_layer
            .apply(&matrix, &predicted)
            .into_iter()
            .zip(pairs.iter().copied())
            .filter_map(|(d, p)| d.then_some(p))
            .collect();
        let matching = t1.elapsed();
        drop(_phase);

        let mut matching_stats = extract_stats;
        matching_stats.merge(&predict_stats);

        magellan_obs::counter_add("magellan_core_candidates_total", pairs.len() as u64);
        magellan_obs::counter_add("magellan_core_matches_total", decisions.len() as u64);
        if !obs.is_pinned() {
            obs.hist_record(
                "magellan_core_phase_us{phase=\"blocking\"}",
                blocking.as_micros() as u64,
            );
            obs.hist_record(
                "magellan_core_phase_us{phase=\"matching\"}",
                matching.as_micros() as u64,
            );
        }
        drop(run_span);

        Ok(ProductionReport {
            matches: CandidateSet::new(decisions),
            n_candidates: pairs.len(),
            timings: PhaseTimings { blocking, matching },
            counters: PhaseCounters {
                blocking: blocking_stats,
                matching: matching_stats,
            },
            n_workers: self.n_workers,
            recovery: RecoveryTelemetry::default(),
            obs: Self::finish_obs(&obs),
        })
    }

    /// Run the workflow with the full self-healing stack: fault-injected
    /// parallel regions with panic containment, phase-level retries with
    /// simulated backoff, checkpoint after every phase, and resume from
    /// the last durable checkpoint on rerun.
    ///
    /// The recovery contract is the determinism contract extended to
    /// chaos: for any fault plan the executor survives (bounded faults),
    /// the match set is **bit-identical** to a fault-free run, and a run
    /// killed after a phase resumes to an identical final match set.
    pub fn run_with_recovery(
        &self,
        workflow: &EmWorkflow,
        a: &Table,
        b: &Table,
        store: &mut dyn CheckpointStore,
        opts: &RecoveryOptions,
    ) -> Result<ProductionReport, MagellanError> {
        let (obs, _own_guard) = self.obs_handle();
        obs.set_run_context(opts.faults.seed, self.n_workers as u64);
        let out = self.run_recovery_inner(workflow, a, b, store, opts);
        if let Err(e) = &out {
            // Fatal errors escape the report path, so the flight recorder
            // dumps here instead of in `finish_obs`.
            magellan_obs::flight_on_failure(
                "fatal_error",
                &[("error", EvVal::S(e.kind_name()))],
            );
            if let Some(path) = obs.flight_autodump() {
                magellan_obs::log!(info, "flight-recorder dump written to {path}");
            }
        }
        out
    }

    fn run_recovery_inner(
        &self,
        workflow: &EmWorkflow,
        a: &Table,
        b: &Table,
        store: &mut dyn CheckpointStore,
        opts: &RecoveryOptions,
    ) -> Result<ProductionReport, MagellanError> {
        let mut clock = SimClock::new();
        let mut tel = RecoveryTelemetry::default();
        let (obs, _own_guard) = self.obs_handle();
        let run_span = magellan_obs::span("run", 0);

        // Pick up where a previous invocation left off, if anywhere.
        let resume = match retry_store(&opts.retry, &mut clock, &mut tel, || store.load_bytes())? {
            Some(bytes) => {
                let ck = Checkpoint::from_bytes(&bytes)?;
                tel.resumed_from = Some(ck.phase());
                magellan_obs::event(
                    "resumed",
                    &[("phase", EvVal::S(ck.phase().name()))],
                );
                Some(ck)
            }
            None => None,
        };

        if let Some(Checkpoint::Done {
            matches,
            n_candidates,
        }) = resume
        {
            // The previous run finished; reconstitute its report. Timings
            // and counters are wall-clock artifacts of the dead process
            // and come back empty — only the *results* are durable.
            tel.sim_backoff_s = clock.now_s();
            tel.publish();
            drop(run_span);
            return Ok(ProductionReport {
                matches: CandidateSet::new(matches),
                n_candidates,
                timings: PhaseTimings::default(),
                counters: PhaseCounters::default(),
                n_workers: self.n_workers,
                recovery: tel,
                obs: Self::finish_obs(&obs),
            });
        }

        // --- blocking phase (skipped when resuming past it) -------------
        let (candidates, blocking_stats, blocking) = match resume {
            Some(Checkpoint::Blocked { candidates }) => (
                CandidateSet::new(candidates),
                ParStats::default(),
                Duration::ZERO,
            ),
            _ => {
                let _phase = magellan_obs::span("blocking", 0);
                let cfg = self
                    .par_cfg()
                    .with_faults(opts.faults.chunk_faults(REGION_BLOCKING));
                let t0 = Instant::now();
                let (c, stats) =
                    retry_phase(&opts.retry, &mut clock, &mut tel, Phase::Blocking, || {
                        workflow.blocker.block_par(a, b, &cfg).map_err(Into::into)
                    })?;
                stats.publish("blocking");
                tel.absorb_stats(&stats);
                let elapsed = t0.elapsed();
                retry_store(&opts.retry, &mut clock, &mut tel, || {
                    store.save_bytes(
                        &Checkpoint::Blocked {
                            candidates: c.pairs().to_vec(),
                        }
                        .to_bytes(),
                    )
                })?;
                tel.checkpoints_written += 1;
                magellan_obs::event(
                    "checkpoint_written",
                    &[("phase", EvVal::S("blocking"))],
                );
                if opts.kill_after == Some(Phase::Blocking) {
                    return Err(MagellanError::Killed {
                        after_phase: "blocking",
                    });
                }
                (c, stats, elapsed)
            }
        };

        // --- matching phase ---------------------------------------------
        let matching_span = magellan_obs::span("matching", 0);
        let extract_cfg = self
            .par_cfg()
            .with_faults(opts.faults.chunk_faults(REGION_EXTRACT));
        let predict_cfg = self
            .par_cfg()
            .with_faults(opts.faults.chunk_faults(REGION_PREDICT));
        let t1 = Instant::now();
        let pairs = candidates.pairs();
        let (decisions, matching_stats) =
            retry_phase(&opts.retry, &mut clock, &mut tel, Phase::Matching, || {
                let (matrix, extract_stats) = {
                    let _region = magellan_obs::span("extract", 0);
                    let out =
                        extract_feature_matrix_par(pairs, a, b, &workflow.features, &extract_cfg)
                            .map_err(MagellanError::from)?;
                    out.1.publish("extract");
                    out
                };
                let (predicted, predict_stats) = {
                    let _region = magellan_obs::span("predict", 0);
                    let out = magellan_par::map_indexed(matrix.len(), &predict_cfg, |i| {
                        workflow.matcher.predict_proba(&matrix.rows[i]) >= workflow.threshold
                    });
                    out.1.publish("predict");
                    out
                };
                let decisions: Vec<(u32, u32)> = workflow
                    .rule_layer
                    .apply(&matrix, &predicted)
                    .into_iter()
                    .zip(pairs.iter().copied())
                    .filter_map(|(d, p)| d.then_some(p))
                    .collect();
                let mut stats = extract_stats;
                stats.merge(&predict_stats);
                Ok((decisions, stats))
            })?;
        tel.absorb_stats(&matching_stats);
        let matching = t1.elapsed();
        drop(matching_span);

        retry_store(&opts.retry, &mut clock, &mut tel, || {
            store.save_bytes(
                &Checkpoint::Done {
                    matches: decisions.clone(),
                    n_candidates: pairs.len(),
                }
                .to_bytes(),
            )
        })?;
        tel.checkpoints_written += 1;
        magellan_obs::event(
            "checkpoint_written",
            &[("phase", EvVal::S("matching"))],
        );
        if opts.kill_after == Some(Phase::Matching) {
            return Err(MagellanError::Killed {
                after_phase: "matching",
            });
        }

        tel.sim_backoff_s = clock.now_s();
        let n_candidates = pairs.len();
        magellan_obs::counter_add("magellan_core_candidates_total", n_candidates as u64);
        magellan_obs::counter_add("magellan_core_matches_total", decisions.len() as u64);
        tel.publish();
        drop(run_span);
        Ok(ProductionReport {
            matches: CandidateSet::new(decisions),
            n_candidates,
            timings: PhaseTimings { blocking, matching },
            counters: PhaseCounters {
                blocking: blocking_stats,
                matching: matching_stats,
            },
            n_workers: self.n_workers,
            recovery: tel,
            obs: Self::finish_obs(&obs),
        })
    }
}

/// Retry a checkpoint-store operation under the policy, charging backoff
/// to the simulated clock and counting retries in the telemetry.
fn retry_store<T>(
    policy: &RetryPolicy,
    clock: &mut SimClock,
    tel: &mut RecoveryTelemetry,
    mut f: impl FnMut() -> Result<T, MagellanError>,
) -> Result<T, MagellanError> {
    let mut retries = 0u32;
    let out = run_with_retry(policy, clock, |attempt| {
        retries = retries.max(attempt);
        f()
    });
    tel.store_retries += retries;
    out
}

/// Retry a whole pipeline phase on transient failure, wrapping whatever
/// error escapes into a phase-tagged [`MagellanError`] context.
fn retry_phase<T>(
    policy: &RetryPolicy,
    clock: &mut SimClock,
    tel: &mut RecoveryTelemetry,
    phase: Phase,
    mut f: impl FnMut() -> Result<T, MagellanError>,
) -> Result<T, MagellanError> {
    let mut retries = 0u32;
    let out = run_with_retry(policy, clock, |attempt| {
        retries = retries.max(attempt);
        f()
    });
    tel.phase_retries += retries;
    out.map_err(|e| match e {
        // Keep structured errors intact; only annotate the phase for
        // anonymous failures.
        e @ (MagellanError::Checkpoint { .. }
        | MagellanError::Killed { .. }
        | MagellanError::Timeout { .. }
        | MagellanError::Phase { .. }) => e,
        other => MagellanError::Phase {
            phase: phase.name(),
            message: other.to_string(),
            transient: other.transient(),
        },
    })
}

/// A general parallel map over row chunks, exposed for workloads that
/// don't fit the workflow shape (e.g. per-row cleaning in the guide's
/// pre-processing step). `out[i] == f(i)` for every worker count.
pub fn parallel_map<T: Send, F: Fn(usize) -> T + Sync>(
    n: usize,
    n_workers: usize,
    f: F,
) -> Vec<T> {
    magellan_par::map_indexed(n, &ParConfig::workers(n_workers), f).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleLayer;
    use magellan_block::OverlapBlocker;
    use magellan_datagen::domains::persons;
    use magellan_datagen::{DirtModel, ScenarioConfig};
    use magellan_features::{Feature, FeatureKind, TokSpecF};
    use magellan_ml::model::ConstantClassifier;

    fn workflow() -> EmWorkflow {
        EmWorkflow {
            blocker: Box::new(OverlapBlocker::words("name", 1)),
            features: vec![
                Feature::new("name", "name", FeatureKind::Jaccard(TokSpecF::Word)),
                Feature::new("name", "name", FeatureKind::JaroWinkler),
            ],
            matcher: Box::new(ConstantClassifier { proba: 1.0 }),
            rule_layer: RuleLayer::new(vec![crate::rules::MatchRule::reject(
                "weak",
                vec![(
                    "jaccard(word(A.name), word(B.name))".into(),
                    crate::rules::Cmp::Lt,
                    0.5,
                )],
            )]),
            threshold: 0.5,
        }
    }

    /// Every ratio accessor on an all-zero (never-ran) counter block
    /// reports 0.0 — never NaN or ∞.
    #[test]
    fn zero_denominator_counters_are_finite() {
        let c = PhaseCounters::default();
        assert_eq!(c.pairs_per_sec(), 0.0);
        assert_eq!(c.cache_hit_rate(), 0.0);
        assert_eq!(c.join_position_kill_rate(), 0.0);
        assert_eq!(c.chunks_stolen(), 0);
        for v in [
            c.pairs_per_sec(),
            c.cache_hit_rate(),
            c.join_position_kill_rate(),
            c.blocking.throughput(),
            c.blocking.utilization(),
            c.matching.throughput(),
            c.matching.utilization(),
        ] {
            assert!(v.is_finite(), "ratio accessor produced {v}");
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let s = persons(&ScenarioConfig {
            size_a: 300,
            size_b: 300,
            n_matches: 100,
            dirt: DirtModel::light(),
            seed: 21,
        });
        let wf = workflow();
        let serial = ProductionExecutor::new(1).run(&wf, &s.table_a, &s.table_b).unwrap();
        let parallel = ProductionExecutor::new(4).run(&wf, &s.table_a, &s.table_b).unwrap();
        assert_eq!(serial.matches, parallel.matches);
        assert_eq!(serial.n_candidates, parallel.n_candidates);
        assert_eq!(parallel.n_workers, 4);
        assert!(serial.timings.total() > Duration::ZERO);
    }

    #[test]
    fn report_surfaces_phase_counters() {
        let s = persons(&ScenarioConfig {
            size_a: 200,
            size_b: 200,
            n_matches: 60,
            dirt: DirtModel::light(),
            seed: 5,
        });
        let wf = workflow();
        let report = ProductionExecutor::new(3).run(&wf, &s.table_a, &s.table_b).unwrap();
        // Blocking counters reflect the probe loop over table A's rows.
        assert_eq!(report.counters.blocking.n_workers, 3);
        assert_eq!(report.counters.blocking.items, 200);
        assert!(report.counters.blocking.chunks_total >= 1);
        // Matching counters fold extraction + prediction: both regions walk
        // every candidate pair once.
        assert_eq!(report.counters.matching.items, 2 * report.n_candidates);
        assert_eq!(report.counters.matching.worker_busy.len(), 3);
        assert!(report.counters.pairs_per_sec() >= 0.0);
        assert!(report.counters.chunks_stolen() <= report.counters.blocking.chunks_total
            + report.counters.matching.chunks_total);
        assert_eq!(report.counters.worker_busy().len(), 3);
        // Prepared-cache counters of the matching-phase extraction: the
        // workflow has one token feature (word jaccard on name), so
        // records were prepared, tokenize calls were spent (once per
        // referenced record), and — with pairs ≫ records — far more calls
        // were saved versus the per-pair scalar path.
        let cache = report.counters.feature_cache();
        assert!(cache.records_prepared > 0, "{cache:?}");
        assert!(cache.tokenize_calls > 0, "{cache:?}");
        assert!(cache.interner_tokens > 0, "{cache:?}");
        assert!(
            report.counters.tokenize_calls_saved() > cache.tokenize_calls,
            "{cache:?}"
        );
        assert!(
            (0.0..=1.0).contains(&report.counters.cache_hit_rate()),
            "{cache:?}"
        );
        // Join-cascade counters of the blocking-phase sim-join: probes
        // ran, candidates were generated, every candidate was either
        // killed by the positional filter or verified, and verification
        // accounts for suffix kills plus emitted pairs.
        let join = report.counters.join_stats();
        assert!(join.probes > 0, "{join:?}");
        assert!(join.candidates > 0, "{join:?}");
        assert_eq!(
            join.candidates,
            join.killed_by_position + join.verified,
            "{join:?}"
        );
        assert_eq!(join.verified, join.killed_by_suffix + join.pairs, "{join:?}");
        assert!(
            (0.0..=1.0).contains(&report.counters.join_position_kill_rate()),
            "{join:?}"
        );
    }

    #[test]
    fn recovery_run_without_faults_matches_plain_run() {
        let s = persons(&ScenarioConfig {
            size_a: 200,
            size_b: 200,
            n_matches: 60,
            dirt: DirtModel::light(),
            seed: 11,
        });
        let wf = workflow();
        let plain = ProductionExecutor::new(2).run(&wf, &s.table_a, &s.table_b).unwrap();
        let mut store = crate::checkpoint::MemStore::new();
        let rec = ProductionExecutor::new(2)
            .run_with_recovery(&wf, &s.table_a, &s.table_b, &mut store, &RecoveryOptions::default())
            .unwrap();
        assert_eq!(plain.matches, rec.matches);
        assert_eq!(plain.n_candidates, rec.n_candidates);
        assert_eq!(rec.recovery.panics_contained, 0);
        assert_eq!(rec.recovery.checkpoints_written, 2);
        assert_eq!(rec.recovery.resumed_from, None);
        // The Done checkpoint is durable and parseable (binary v2).
        let ck = Checkpoint::from_bytes(store.raw_bytes().unwrap()).unwrap();
        assert_eq!(ck.phase(), Phase::Matching);
    }

    #[test]
    fn kill_after_blocking_resumes_to_identical_report() {
        let s = persons(&ScenarioConfig {
            size_a: 250,
            size_b: 250,
            n_matches: 80,
            dirt: DirtModel::light(),
            seed: 13,
        });
        let wf = workflow();
        let exec = ProductionExecutor::new(3);
        let golden = exec.run(&wf, &s.table_a, &s.table_b).unwrap();

        let mut store = crate::checkpoint::MemStore::new();
        let opts = RecoveryOptions {
            kill_after: Some(Phase::Blocking),
            ..RecoveryOptions::default()
        };
        let err = exec
            .run_with_recovery(&wf, &s.table_a, &s.table_b, &mut store, &opts)
            .unwrap_err();
        assert!(matches!(err, MagellanError::Killed { after_phase: "blocking" }));
        assert!(err.fatal());

        // Rerun with the same store: resumes past blocking, finishes.
        let resumed = exec
            .run_with_recovery(
                &wf,
                &s.table_a,
                &s.table_b,
                &mut store,
                &RecoveryOptions::default(),
            )
            .unwrap();
        assert_eq!(resumed.recovery.resumed_from, Some(Phase::Blocking));
        assert_eq!(resumed.matches, golden.matches);
        assert_eq!(resumed.n_candidates, golden.n_candidates);
        // Blocking was skipped, so its counters are empty.
        assert_eq!(resumed.counters.blocking.items, 0);

        // A third run resumes from Done and still reports identically.
        let done = exec
            .run_with_recovery(
                &wf,
                &s.table_a,
                &s.table_b,
                &mut store,
                &RecoveryOptions::default(),
            )
            .unwrap();
        assert_eq!(done.recovery.resumed_from, Some(Phase::Matching));
        assert_eq!(done.matches, golden.matches);
        assert_eq!(done.n_candidates, golden.n_candidates);
    }

    #[test]
    fn faulted_run_heals_to_bit_identical_matches() {
        magellan_par::silence_contained_panics();
        let s = persons(&ScenarioConfig {
            size_a: 250,
            size_b: 250,
            n_matches: 80,
            dirt: DirtModel::light(),
            seed: 17,
        });
        let wf = workflow();
        let exec = ProductionExecutor::new(4);
        let golden = exec.run(&wf, &s.table_a, &s.table_b).unwrap();

        let plan = FaultPlan::seeded(99);
        let mut store = crate::checkpoint::FlakyStore::new(
            crate::checkpoint::MemStore::new(),
            plan,
        );
        let opts = RecoveryOptions {
            faults: plan,
            ..RecoveryOptions::default()
        };
        let rec = exec
            .run_with_recovery(&wf, &s.table_a, &s.table_b, &mut store, &opts)
            .unwrap();
        assert_eq!(rec.matches, golden.matches, "recovery must be bit-identical");
        assert_eq!(rec.n_candidates, golden.n_candidates);
        assert!(
            rec.recovery.panics_contained > 0,
            "seeded plan should have injected at least one chunk panic"
        );
        assert!(rec.recovery.chunks_recovered >= 1, "contained panics imply recovered chunks");
        assert!(rec.recovery.chunks_recovered <= rec.recovery.panics_contained);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, 4, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        let out = parallel_map(3, 8, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
        let empty: Vec<usize> = parallel_map(0, 4, |i| i);
        assert!(empty.is_empty());
    }
}
