//! `benchdiff` — the bench-regression observatory CLI.
//!
//! ```text
//! benchdiff check <baseline.json> <current.json>   # regression gate
//! benchdiff check-baselines [repo-root]            # ROADMAP floors on checked-in BENCH files
//! benchdiff record <bench.json> [history-dir]      # append to results/history/<exp>.jsonl
//! benchdiff selftest [repo-root]                   # gate must fail a doctored file, pass real ones
//! ```
//!
//! Exit code 0 = gate passed, 1 = violations, 2 = usage/parse error.

use magellan_bench::benchdiff::{
    baseline_file, check_bounds, compare, record_history, registry, report,
};
use magellan_obs::{parse_json, Json};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn load(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn check(baseline: &Path, current: &Path) -> Result<bool, String> {
    let base = load(baseline)?;
    let cur = load(current)?;
    let violations = compare(&base, &cur);
    print!(
        "{}",
        report(
            &format!("{} vs {}", current.display(), baseline.display()),
            &violations
        )
    );
    Ok(violations.is_empty())
}

/// Enforce hard bounds (the ROADMAP floors) on every checked-in BENCH
/// file that exists under `root`. Missing files are skipped with a note
/// — not every machine regenerates every experiment — but a present file
/// must pass.
fn check_baselines(root: &Path) -> Result<bool, String> {
    let files: BTreeSet<&'static str> = registry()
        .iter()
        .filter_map(|s| baseline_file(s.experiment))
        .collect();
    let mut ok = true;
    let mut seen = 0;
    for file in files {
        let path = root.join(file);
        if !path.exists() {
            println!("benchdiff: {file}: absent, skipped");
            continue;
        }
        seen += 1;
        let json = load(&path)?;
        let violations = check_bounds(&json);
        print!("{}", report(file, &violations));
        ok &= violations.is_empty();
    }
    if seen == 0 {
        return Err(format!("no BENCH_*.json baselines found under {}", root.display()));
    }
    Ok(ok)
}

fn record(bench: &Path, history_dir: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(bench)
        .map_err(|e| format!("{}: {e}", bench.display()))?;
    let path = record_history(history_dir, &text)?;
    println!("benchdiff: recorded {} -> {path}", bench.display());
    Ok(())
}

/// Prove the gate has teeth: doctor a real baseline below its floor and
/// assert `check_bounds` rejects it, then assert the real files pass.
fn selftest(root: &Path) -> Result<bool, String> {
    // A regressed incremental run: 4x is far under the 10x floor.
    let doctored = parse_json(
        r#"{"experiment":"incremental","delta_vs_rebuild_speedup":4.0,"updates_per_sec":77245.0}"#,
    )?;
    if check_bounds(&doctored).is_empty() {
        println!("benchdiff: selftest FAILED: doctored regression passed the gate");
        return Ok(false);
    }
    println!("benchdiff: selftest: doctored regression correctly rejected");
    // A doctored comparison: overhead doubling past the ceiling must fail.
    let base = parse_json(r#"{"experiment":"obs_overhead","overhead_pct":10.0}"#)?;
    let worse = parse_json(r#"{"experiment":"obs_overhead","overhead_pct":55.0}"#)?;
    if compare(&base, &worse).is_empty() {
        println!("benchdiff: selftest FAILED: overhead blowout passed the gate");
        return Ok(false);
    }
    println!("benchdiff: selftest: overhead blowout correctly rejected");
    // And the checked-in baselines must be clean.
    let ok = check_baselines(root)?;
    if ok {
        println!("benchdiff: selftest: OK");
    }
    Ok(ok)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: benchdiff check <baseline.json> <current.json>\n       \
         benchdiff check-baselines [repo-root]\n       \
         benchdiff record <bench.json> [history-dir]\n       \
         benchdiff selftest [repo-root]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("check") if args.len() == 3 => {
            check(Path::new(&args[1]), Path::new(&args[2]))
        }
        Some("check-baselines") if args.len() <= 2 => {
            let root = args.get(1).map_or_else(|| PathBuf::from("."), PathBuf::from);
            check_baselines(&root)
        }
        Some("record") if (2..=3).contains(&args.len()) => {
            let history = args
                .get(2)
                .map_or_else(|| PathBuf::from("results/history"), PathBuf::from);
            match record(Path::new(&args[1]), &history) {
                Ok(()) => Ok(true),
                Err(e) => Err(e),
            }
        }
        Some("selftest") if args.len() <= 2 => {
            let root = args.get(1).map_or_else(|| PathBuf::from("."), PathBuf::from);
            selftest(&root)
        }
        _ => return usage(),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("benchdiff: error: {e}");
            ExitCode::from(2)
        }
    }
}
