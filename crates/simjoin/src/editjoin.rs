//! Edit-distance join: all cross pairs within Levenshtein distance `d`.
//!
//! Filter-verify plan:
//!
//! * **length filter**: `||x| − |y|| ≤ d`;
//! * **q-gram count filter**: strings within distance `d` share at least
//!   `max(|Gx|, |Gy|) − q·d` unpadded q-grams (each edit destroys at most
//!   `q` grams). When that bound is non-positive (short strings), the
//!   length-bucketed candidates are verified directly;
//! * **q-gram signature prefilter** (PR 6): a 128-bit Bloom-style
//!   signature per string (one bit per hashed gram). The same q-gram
//!   lemma bounds the multiset differences: `dist(x, y) ≤ d` implies
//!   `|Gx \ Gy| ≤ q·d` and `|Gy \ Gx| ≤ q·d`, and every bit set in
//!   `sig(x) & !sig(y)` witnesses at least one *distinct* gram of
//!   `Gx \ Gy` (bits only appear via grams, and a gram of `x` also in
//!   `y` would have set the bit in both). So
//!   `popcount(sig(x) & !sig(y)) > q·d` (either direction) soundly
//!   proves `dist > d` — two word-ANDs + popcounts kill the candidate
//!   before any banded-DP cell is computed. Hash collisions only *merge*
//!   bits, which weakens the filter, never unsoundly strengthens it.
//!   (This also covers gram-less strings: if `|Gx| = 0` and
//!   `dist ≤ d`, the lemma forces `|Gy| ≤ q·d`, so y's popcount can't
//!   exceed the budget.)
//! * **verify**: banded (Ukkonen) Levenshtein with early exit.
//!
//! Prefilter effectiveness is reported through
//! [`magellan_par::JoinStats::killed_by_qgram_sig`] /
//! [`magellan_par::JoinStats::qgram_sig_checked`].

use magellan_par::JoinStats;
use std::collections::HashMap;

/// Banded Levenshtein with Ukkonen's cut-off: `Some(dist)` if
/// `dist ≤ max_d`, else `None`. O((max_d+1)·min(|a|,|b|)) worst case,
/// and typically much less: besides the static diagonal band, the band
/// **shrinks adaptively** to the live cells (values ≤ `max_d`) of the
/// previous row, and the row loop early-exits the moment the running row
/// minimum exceeds the threshold.
///
/// Why shrinking is lossless: the Levenshtein DP is diagonally monotone
/// (`D[i][j] ≥ D[i-1][j-1]`), so any cell more than one column right of
/// the previous row's last live cell is itself dead — the upper band
/// edge can be pulled in to `live_hi + 1`. Symmetrically, once the
/// boundary column is dead (`i > max_d`), a cell left of the previous
/// row's first live cell has all three of its inputs dead, so the lower
/// edge can be pushed out to `live_lo`.
pub fn levenshtein_within(a: &str, b: &str, max_d: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (a, b) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let (n, m) = (a.len(), b.len());
    if m - n > max_d {
        return None;
    }
    if n == 0 {
        return Some(m);
    }
    const INF: usize = usize::MAX / 2;
    // Row over the shorter string; band of width ≤ 2*max_d+1 around the
    // diagonal, clipped to the previous row's live range.
    let mut prev = vec![INF; n + 1];
    let mut cur = vec![INF; n + 1];
    for (j, p) in prev.iter_mut().enumerate().take(max_d.min(n) + 1) {
        *p = j;
    }
    // Live range of row 0: the whole initialized stretch.
    let mut live_lo = 0usize;
    let mut live_hi = max_d.min(n);
    let mut hi = live_hi;
    let mut lo = 1usize;
    for i in 1..=m {
        // Static diagonal band ∩ adaptive live window. The lower edge only
        // uses the live clip once the boundary column is dead (i > max_d);
        // before that, column 0 holds a live `i` that can seed the row.
        // Both edges are kept monotone (`lo` never left of the previous
        // row's band start) so every `prev` read hits a cell the previous
        // row actually wrote or sealed.
        lo = if i > max_d {
            (i - max_d).max(live_lo).max(lo).max(1)
        } else {
            1
        };
        hi = (i + max_d).min(n).min(live_hi + 1);
        if lo > hi {
            return None;
        }
        cur[lo - 1] = if lo == 1 { i } else { INF };
        live_lo = usize::MAX;
        live_hi = 0;
        if lo == 1 && i <= max_d {
            live_lo = 0;
            live_hi = 0;
        }
        for j in lo..=hi {
            let sub = prev[j - 1] + usize::from(b[i - 1] != a[j - 1]);
            let del = prev[j].saturating_add(1);
            let ins = cur[j - 1].saturating_add(1);
            let v = sub.min(del).min(ins);
            cur[j] = v;
            if v <= max_d {
                live_lo = live_lo.min(j);
                live_hi = j;
            }
        }
        if hi < n {
            cur[hi + 1] = INF; // seal band edge for next row's reads
        }
        if live_lo == usize::MAX && live_hi == 0 && (lo > 1 || i > max_d) {
            return None; // no live cell: the running row minimum > max_d
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    // If the band contracted away from the final column, the true
    // distance exceeds max_d by diagonal monotonicity.
    if hi < n {
        return None;
    }
    (prev[n] <= max_d).then_some(prev[n])
}

/// A qualifying pair from an edit-distance join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EditJoinPair {
    /// Index into the left collection.
    pub l: usize,
    /// Index into the right collection.
    pub r: usize,
    /// The exact edit distance (≤ the join threshold).
    pub dist: usize,
}

fn qgrams(s: &str, q: usize) -> Vec<String> {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < q {
        return Vec::new();
    }
    chars.windows(q).map(|w| w.iter().collect()).collect()
}

/// 128-bit q-gram signature: bit `fnv1a(gram) mod 128` per gram.
/// Strings with no grams (shorter than `q`) signature to zero.
fn qgram_signature(grams: &[String]) -> [u64; 2] {
    let mut sig = [0u64; 2];
    for g in grams {
        let mut h = 0xcbf29ce484222325u64;
        for byte in g.as_bytes() {
            h ^= *byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let bit = (h % 128) as usize;
        sig[bit / 64] |= 1u64 << (bit % 64);
    }
    sig
}

/// Sound signature test: `false` proves `dist(x, y) > d` (see the
/// module docs for the q-gram-lemma argument); `true` decides nothing.
#[inline]
fn sig_may_match(sx: [u64; 2], sy: [u64; 2], gram_budget: u32) -> bool {
    let x_only = (sx[0] & !sy[0]).count_ones() + (sx[1] & !sy[1]).count_ones();
    if x_only > gram_budget {
        return false;
    }
    let y_only = (sy[0] & !sx[0]).count_ones() + (sy[1] & !sx[1]).count_ones();
    y_only <= gram_budget
}

/// Join: every `(l, r)` with `levenshtein(left[l], right[r]) ≤ d`.
/// `None` entries never match. Uses q-gram size `q = 2`.
pub fn edit_distance_join<S: AsRef<str>>(
    left: &[Option<S>],
    right: &[Option<S>],
    d: usize,
) -> Vec<EditJoinPair> {
    edit_distance_join_q(left, right, d, 2)
}

/// [`edit_distance_join`] with an explicit q-gram size.
pub fn edit_distance_join_q<S: AsRef<str>>(
    left: &[Option<S>],
    right: &[Option<S>],
    d: usize,
    q: usize,
) -> Vec<EditJoinPair> {
    edit_distance_join_q_stats(left, right, d, q).0
}

/// [`edit_distance_join_q`] also returning filter telemetry (the q-gram
/// signature prefilter's checked/killed counters ride in the shared
/// [`JoinStats`]). Counters are pure functions of the inputs.
pub fn edit_distance_join_q_stats<S: AsRef<str>>(
    left: &[Option<S>],
    right: &[Option<S>],
    d: usize,
    q: usize,
) -> (Vec<EditJoinPair>, JoinStats) {
    assert!(q >= 1, "q must be at least 1");
    // Bits the signature prefilter may see differ by `q·d` at most when
    // the pair qualifies; clamp for the (absurd) huge-threshold case.
    let gram_budget = (q.saturating_mul(d)).min(u32::MAX as usize) as u32;
    // Token-id map over all grams of the right side.
    let mut gram_ids: HashMap<String, u32> = HashMap::new();
    let mut postings: Vec<Vec<u32>> = Vec::new(); // gram id -> right record ids
    let mut right_lens: Vec<usize> = Vec::with_capacity(right.len());
    let mut by_len: HashMap<usize, Vec<u32>> = HashMap::new();
    let mut right_gram_count: Vec<usize> = Vec::with_capacity(right.len());
    let mut right_sigs: Vec<[u64; 2]> = Vec::with_capacity(right.len());
    for (rid, s) in right.iter().enumerate() {
        let Some(s) = s else {
            right_lens.push(usize::MAX); // unmatched sentinel
            right_gram_count.push(0);
            right_sigs.push([0; 2]);
            continue;
        };
        let s = s.as_ref();
        let len = s.chars().count();
        right_lens.push(len);
        by_len.entry(len).or_default().push(rid as u32);
        let grams = qgrams(s, q);
        right_gram_count.push(grams.len());
        right_sigs.push(qgram_signature(&grams));
        for g in grams {
            let next_id = gram_ids.len() as u32;
            let id = *gram_ids.entry(g).or_insert(next_id);
            if id as usize == postings.len() {
                postings.push(Vec::new());
            }
            postings[id as usize].push(rid as u32);
        }
    }

    let mut out = Vec::new();
    let mut stats = JoinStats::default();
    let mut counts: Vec<u32> = vec![0; right.len()];
    let mut touched: Vec<u32> = Vec::new();
    for (l, s) in left.iter().enumerate() {
        let Some(s) = s else { continue };
        let s = s.as_ref();
        stats.probes += 1;
        let n = s.chars().count();
        let lo = n.saturating_sub(d);
        let hi = n + d;

        // Count-filterable candidates: partner length m where the required
        // shared-gram count is >= 1, i.e. max(|Gx|,|Gy|) - q*d >= 1.
        // We conservatively require only `req(m)` grams for each candidate.
        let probe_grams = qgrams(s, q);
        let sig_x = qgram_signature(&probe_grams);
        for g in &probe_grams {
            if let Some(&id) = gram_ids.get(g) {
                for &rid in &postings[id as usize] {
                    if counts[rid as usize] == 0 {
                        touched.push(rid);
                    }
                    counts[rid as usize] += 1;
                }
            }
        }
        let x_grams = probe_grams.len();
        for &rid in &touched {
            let m = right_lens[rid as usize];
            if m < lo || m > hi {
                counts[rid as usize] = 0;
                continue;
            }
            let req = x_grams
                .max(right_gram_count[rid as usize])
                .saturating_sub(q * d);
            if req >= 1 && (counts[rid as usize] as usize) < req {
                counts[rid as usize] = 0;
                continue;
            }
            counts[rid as usize] = 0;
            if req >= 1 {
                stats.candidates += 1;
                stats.qgram_sig_checked += 1;
                if !sig_may_match(sig_x, right_sigs[rid as usize], gram_budget) {
                    stats.killed_by_qgram_sig += 1;
                    continue;
                }
                if let Some(b) = right[rid as usize].as_ref() {
                    stats.verified += 1;
                    if let Some(dist) = levenshtein_within(s, b.as_ref(), d) {
                        stats.pairs += 1;
                        out.push(EditJoinPair {
                            l,
                            r: rid as usize,
                            dist,
                        });
                    }
                }
            }
            // req == 0 candidates are handled by the bucket scan below to
            // avoid duplicates.
        }
        touched.clear();

        // Bucket scan for partner lengths where the count filter is
        // powerless (req(m) <= 0): these must all be verified.
        for m in lo..=hi {
            let req = x_grams
                .max(m.saturating_sub(q - 1))
                .saturating_sub(q * d);
            if req >= 1 {
                continue; // covered by the count-filter path
            }
            if let Some(bucket) = by_len.get(&m) {
                for &rid in bucket {
                    stats.candidates += 1;
                    stats.qgram_sig_checked += 1;
                    if !sig_may_match(sig_x, right_sigs[rid as usize], gram_budget) {
                        stats.killed_by_qgram_sig += 1;
                        continue;
                    }
                    if let Some(b) = right[rid as usize].as_ref() {
                        stats.verified += 1;
                        if let Some(dist) = levenshtein_within(s, b.as_ref(), d) {
                            stats.pairs += 1;
                            out.push(EditJoinPair {
                                l,
                                r: rid as usize,
                                dist,
                            });
                        }
                    }
                }
            }
        }
    }
    out.sort_unstable_by_key(|a| (a.l, a.r));
    out.dedup();
    stats.publish();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_textsim::seqsim::levenshtein;

    fn some(items: &[&str]) -> Vec<Option<String>> {
        items.iter().map(|s| Some((*s).to_owned())).collect()
    }

    #[test]
    fn banded_levenshtein_agrees_with_full() {
        let words = ["", "a", "ab", "kitten", "sitting", "mississippi", "misisipi"];
        for a in words {
            for b in words {
                let full = levenshtein(a, b);
                for d in 0..6 {
                    let banded = levenshtein_within(a, b, d);
                    if full <= d {
                        assert_eq!(banded, Some(full), "{a} {b} d={d}");
                    } else {
                        assert_eq!(banded, None, "{a} {b} d={d}");
                    }
                }
            }
        }
    }

    /// The adaptive band + early exits must be invisible: for every pair
    /// and threshold, `levenshtein_within` equals the unbounded DP when
    /// the distance is within the band and `None` otherwise. Random
    /// strings over a tiny alphabet maximize collisions and near-misses.
    #[test]
    fn bounded_dp_equals_unbounded_on_random_strings() {
        let mut state = 0xC0FFEEu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for trial in 0..400 {
            let la = next() % 14;
            let lb = next() % 14;
            let a: String = (0..la).map(|_| (b'a' + (next() % 3) as u8) as char).collect();
            let b: String = (0..lb).map(|_| (b'a' + (next() % 3) as u8) as char).collect();
            let full = levenshtein(&a, &b);
            for d in 0..=10 {
                let banded = levenshtein_within(&a, &b, d);
                if full <= d {
                    assert_eq!(banded, Some(full), "trial={trial} a={a:?} b={b:?} d={d}");
                } else {
                    assert_eq!(banded, None, "trial={trial} a={a:?} b={b:?} d={d}");
                }
            }
        }
    }

    fn naive(left: &[Option<String>], right: &[Option<String>], d: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (l, a) in left.iter().enumerate() {
            for (r, b) in right.iter().enumerate() {
                if let (Some(a), Some(b)) = (a, b) {
                    if levenshtein(a, b) <= d {
                        out.push((l, r));
                    }
                }
            }
        }
        out
    }

    #[test]
    fn join_matches_naive_small() {
        let left = some(&["dave", "daniel", "joe", "x", ""]);
        let right = some(&["dav", "david", "daniela", "joseph", "y", ""]);
        for d in 0..4 {
            let fast: Vec<(usize, usize)> = edit_distance_join(&left, &right, d)
                .into_iter()
                .map(|p| (p.l, p.r))
                .collect();
            let slow = naive(&left, &right, d);
            assert_eq!(fast, slow, "d={d}");
        }
    }

    #[test]
    fn join_matches_naive_random() {
        let mut state = 5u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mk = |next: &mut dyn FnMut() -> usize| -> Vec<Option<String>> {
            (0..80)
                .map(|_| {
                    let n = next() % 8;
                    Some((0..n).map(|_| (b'a' + (next() % 4) as u8) as char).collect())
                })
                .collect()
        };
        let left = mk(&mut next);
        let right = mk(&mut next);
        for d in [0, 1, 2] {
            let fast: Vec<(usize, usize)> = edit_distance_join(&left, &right, d)
                .into_iter()
                .map(|p| (p.l, p.r))
                .collect();
            let slow = naive(&left, &right, d);
            assert_eq!(fast, slow, "d={d}");
        }
    }

    #[test]
    fn distances_reported_exactly() {
        let left = some(&["kitten"]);
        let right = some(&["sitting", "kitten"]);
        let out = edit_distance_join(&left, &right, 3);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].dist, 3);
        assert_eq!(out[1].dist, 0);
    }

    #[test]
    fn nulls_never_match() {
        let left: Vec<Option<String>> = vec![None];
        let right = some(&["x"]);
        assert!(edit_distance_join(&left, &right, 5).is_empty());
    }

    /// Prefilter soundness against the unbounded-Levenshtein oracle: no
    /// candidate the banded DP would have accepted may be pre-filtered
    /// out. Verified by brute force — for every cross pair within the
    /// threshold, the signature test must say "may match".
    #[test]
    fn qgram_sig_prefilter_never_kills_a_true_match() {
        let mut state = 0xED17u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mk = |next: &mut dyn FnMut() -> usize, n: usize, alpha: usize| -> Vec<String> {
            (0..n)
                .map(|_| {
                    let len = next() % 10;
                    (0..len)
                        .map(|_| (b'a' + (next() % alpha) as u8) as char)
                        .collect()
                })
                .collect()
        };
        for alpha in [2usize, 4, 8] {
            let xs = mk(&mut next, 60, alpha);
            let ys = mk(&mut next, 60, alpha);
            for q in [2usize, 3] {
                for d in [0usize, 1, 2] {
                    let budget = (q * d) as u32;
                    for x in &xs {
                        let sx = qgram_signature(&qgrams(x, q));
                        for y in &ys {
                            if levenshtein(x, y) <= d {
                                let sy = qgram_signature(&qgrams(y, q));
                                assert!(
                                    sig_may_match(sx, sy, budget),
                                    "sound filter killed true match: {x:?} {y:?} q={q} d={d}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// End-to-end: the stats-returning join agrees with the naive oracle
    /// (so the prefilter changed nothing), its counters are coherent, and
    /// on clusterable data the signature prefilter actually kills a
    /// meaningful share of candidates.
    #[test]
    fn join_stats_report_qgram_sig_kills() {
        let mut state = 99u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        // Repeated-motif strings with random tails: the motif's gram
        // *multiplicity* inflates the shared-gram count filter (it counts
        // occurrence products, not distinct grams), so pairs sharing a
        // motif survive it — while their tails contribute > q·d distinct
        // one-sided grams, which is exactly what the signature sees.
        let motifs = ["abc", "cba", "bac", "acb"];
        let mk = |next: &mut dyn FnMut() -> usize| -> Vec<Option<String>> {
            (0..100)
                .map(|_| {
                    let m = motifs[next() % motifs.len()];
                    let tail: String = (0..6)
                        .map(|_| (b'g' + (next() % 12) as u8) as char)
                        .collect();
                    Some(format!("{m}{m}{m}{tail}"))
                })
                .collect()
        };
        let left = mk(&mut next);
        let right = mk(&mut next);
        for d in [1usize, 2] {
            let (pairs, stats) = edit_distance_join_q_stats(&left, &right, d, 2);
            let fast: Vec<(usize, usize)> = pairs.iter().map(|p| (p.l, p.r)).collect();
            assert_eq!(fast, naive(&left, &right, d), "d={d}");
            // Counter coherence: every checked candidate is either killed
            // or goes on to verification; emitted pairs ⊆ verified.
            assert_eq!(stats.qgram_sig_checked, stats.candidates);
            assert_eq!(
                stats.verified + stats.killed_by_qgram_sig,
                stats.qgram_sig_checked,
                "d={d}"
            );
            assert!(stats.pairs <= stats.verified);
            assert_eq!(stats.pairs, pairs.len());
            assert!(stats.probes > 0 && stats.candidates > 0);
            // The prefilter must actually be doing work on this shape.
            assert!(
                stats.qgram_sig_kill_rate() > 0.10,
                "kill rate {} too low (d={d})",
                stats.qgram_sig_kill_rate()
            );
        }
    }

    #[test]
    fn unicode_lengths_counted_in_chars() {
        let left = some(&["héllo"]);
        let right = some(&["hello"]);
        let out = edit_distance_join(&left, &right, 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dist, 1);
    }
}
