//! Labeling: the human (or crowd) in the loop.
//!
//! Everything downstream — sampled training sets, active learning, the
//! question counts of Table 2 — flows through the [`Labeler`] trait. The
//! provided implementations simulate the humans of the paper's
//! deployments: a perfect domain expert ([`OracleLabeler`]), an imperfect
//! one ([`NoisyLabeler`] — the AmFam "Vehicles" expert who mislabeled a
//! batch with no undo), and a wrapper that records the full question log
//! ([`RecordingLabeler`]).

use std::collections::HashSet;

use magellan_table::Table;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A match/no-match judgment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Label {
    /// The pair refers to the same real-world entity.
    Match,
    /// It does not.
    NoMatch,
}

impl Label {
    /// As a boolean (`Match` = true).
    pub fn as_bool(self) -> bool {
        self == Label::Match
    }
}

/// Something that can answer "do these two tuples match?".
pub trait Labeler {
    /// Label one pair of rows.
    fn label(&mut self, a: &Table, ra: usize, b: &Table, rb: usize) -> Label;

    /// Number of questions asked so far (the "Questions" column of
    /// Table 2).
    fn questions_asked(&self) -> usize;
}

/// Labels from a gold standard of `(a_id, b_id)` pairs — simulates a
/// perfectly reliable domain expert.
#[derive(Debug, Clone)]
pub struct OracleLabeler {
    gold: HashSet<(String, String)>,
    a_key: String,
    b_key: String,
    questions: usize,
}

impl OracleLabeler {
    /// Build from a gold set and the key attribute names of both tables.
    pub fn new(gold: HashSet<(String, String)>, a_key: &str, b_key: &str) -> Self {
        OracleLabeler {
            gold,
            a_key: a_key.to_owned(),
            b_key: b_key.to_owned(),
            questions: 0,
        }
    }

    fn ids(&self, a: &Table, ra: usize, b: &Table, rb: usize) -> (String, String) {
        let ia = a
            .value_by_name(ra, &self.a_key)
            .expect("a key attribute present")
            .display_string();
        let ib = b
            .value_by_name(rb, &self.b_key)
            .expect("b key attribute present")
            .display_string();
        (ia, ib)
    }
}

impl Labeler for OracleLabeler {
    fn label(&mut self, a: &Table, ra: usize, b: &Table, rb: usize) -> Label {
        self.questions += 1;
        if self.gold.contains(&self.ids(a, ra, b, rb)) {
            Label::Match
        } else {
            Label::NoMatch
        }
    }

    fn questions_asked(&self) -> usize {
        self.questions
    }
}

/// An oracle that errs with a fixed probability — the imperfect single
/// expert (or a crowd worker) of the paper's deployments.
#[derive(Debug, Clone)]
pub struct NoisyLabeler {
    inner: OracleLabeler,
    error_rate: f64,
    rng: StdRng,
}

impl NoisyLabeler {
    /// Wrap an oracle with a per-question flip probability.
    pub fn new(inner: OracleLabeler, error_rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&error_rate));
        NoisyLabeler {
            inner,
            error_rate,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Labeler for NoisyLabeler {
    fn label(&mut self, a: &Table, ra: usize, b: &Table, rb: usize) -> Label {
        let truth = self.inner.label(a, ra, b, rb);
        if self.rng.gen_bool(self.error_rate) {
            match truth {
                Label::Match => Label::NoMatch,
                Label::NoMatch => Label::Match,
            }
        } else {
            truth
        }
    }

    fn questions_asked(&self) -> usize {
        self.inner.questions_asked()
    }
}

/// Wraps any labeler and records the `(a_row, b_row, label)` log — the
/// paper's "Vehicles" incident motivates keeping the log: without it there
/// is no way to undo a bad labeling session.
pub struct RecordingLabeler<L: Labeler> {
    inner: L,
    log: Vec<(usize, usize, Label)>,
}

impl<L: Labeler> RecordingLabeler<L> {
    /// Wrap a labeler.
    pub fn new(inner: L) -> Self {
        RecordingLabeler {
            inner,
            log: Vec::new(),
        }
    }

    /// The question log in ask order.
    pub fn log(&self) -> &[(usize, usize, Label)] {
        &self.log
    }

    /// Undo the last `n` answers (returns how many were removed). The
    /// caller re-asks them; this is the "undo" CloudMatcher lacked.
    pub fn undo_last(&mut self, n: usize) -> usize {
        let k = n.min(self.log.len());
        self.log.truncate(self.log.len() - k);
        k
    }

    /// The wrapped labeler.
    pub fn into_inner(self) -> L {
        self.inner
    }
}

impl<L: Labeler> Labeler for RecordingLabeler<L> {
    fn label(&mut self, a: &Table, ra: usize, b: &Table, rb: usize) -> Label {
        let l = self.inner.label(a, ra, b, rb);
        self.log.push((ra, rb, l));
        l
    }

    fn questions_asked(&self) -> usize {
        self.inner.questions_asked()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_table::Dtype;

    fn tables() -> (Table, Table) {
        let a = Table::from_rows(
            "A",
            &[("id", Dtype::Str)],
            vec![vec!["a0".into()], vec!["a1".into()]],
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            &[("id", Dtype::Str)],
            vec![vec!["b0".into()], vec!["b1".into()]],
        )
        .unwrap();
        (a, b)
    }

    fn gold() -> HashSet<(String, String)> {
        [("a0".to_owned(), "b0".to_owned())].into_iter().collect()
    }

    #[test]
    fn oracle_labels_from_gold_and_counts() {
        let (a, b) = tables();
        let mut o = OracleLabeler::new(gold(), "id", "id");
        assert_eq!(o.label(&a, 0, &b, 0), Label::Match);
        assert_eq!(o.label(&a, 0, &b, 1), Label::NoMatch);
        assert_eq!(o.label(&a, 1, &b, 0), Label::NoMatch);
        assert_eq!(o.questions_asked(), 3);
        assert!(Label::Match.as_bool());
    }

    #[test]
    fn noisy_labeler_flips_at_roughly_the_error_rate() {
        let (a, b) = tables();
        let mut noisy = NoisyLabeler::new(OracleLabeler::new(gold(), "id", "id"), 0.3, 42);
        let mut flips = 0;
        let n = 1000;
        for _ in 0..n {
            if noisy.label(&a, 0, &b, 0) == Label::NoMatch {
                flips += 1;
            }
        }
        assert!((200..400).contains(&flips), "{flips} flips out of {n}");
        assert_eq!(noisy.questions_asked(), n);
    }

    #[test]
    fn zero_noise_equals_oracle() {
        let (a, b) = tables();
        let mut noisy = NoisyLabeler::new(OracleLabeler::new(gold(), "id", "id"), 0.0, 1);
        for _ in 0..50 {
            assert_eq!(noisy.label(&a, 0, &b, 0), Label::Match);
        }
    }

    #[test]
    fn recording_labeler_logs_and_undoes() {
        let (a, b) = tables();
        let mut rec = RecordingLabeler::new(OracleLabeler::new(gold(), "id", "id"));
        rec.label(&a, 0, &b, 0);
        rec.label(&a, 1, &b, 1);
        assert_eq!(rec.log().len(), 2);
        assert_eq!(rec.log()[0], (0, 0, Label::Match));
        assert_eq!(rec.undo_last(1), 1);
        assert_eq!(rec.log().len(), 1);
        assert_eq!(rec.undo_last(5), 1); // clamps
        assert!(rec.log().is_empty());
        assert_eq!(rec.questions_asked(), 2); // questions still counted
    }
}
