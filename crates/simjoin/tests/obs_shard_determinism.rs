//! Pinned-clock observability contract for the sharded join: exports
//! (Prometheus, Chrome trace, collapsed profile) are byte-identical at
//! any worker count, the shard lifecycle spans (`shard_build` →
//! `shard_probe` → `shard_drop`) are present, and per-shard index bytes
//! are attributed to the `shard_build` spans.

use magellan_obs::{Obs, ObsSnapshot};
use magellan_par::ParConfig;
use magellan_simjoin::{join_tokenized_sharded, ProbeSide, SetSimMeasure, TokenizedCollection};
use magellan_textsim::tokenize::WhitespaceTokenizer;

const N_SHARDS: usize = 4;

/// Seeded synthetic records over a small vocabulary — dense enough that
/// every shard gets both build and probe work.
fn records(n: usize, salt: u64) -> Vec<Option<String>> {
    const VOCAB: [&str; 14] = [
        "sony", "wireless", "mouse", "apple", "pencil", "case", "usb", "cable", "hub",
        "charger", "stand", "dock", "mini", "pro",
    ];
    (0..n)
        .map(|i| {
            let mut x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
            let len = 3 + (x % 4) as usize;
            let words: Vec<&str> = (0..len)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    VOCAB[(x >> 33) as usize % VOCAB.len()]
                })
                .collect();
            Some(words.join(" "))
        })
        .collect()
}

fn run_pinned(workers: usize) -> (Vec<magellan_simjoin::JoinPair>, ObsSnapshot) {
    let tok = WhitespaceTokenizer::new();
    let obs = Obs::pinned();
    let _g = obs.install();
    let coll = TokenizedCollection::build(&records(240, 3), &records(200, 17), &tok);
    let mut cfg = ParConfig::workers(workers);
    cfg.chunk_size = Some(16); // pinned: chunk spans must not track workers
    let (pairs, _pstats, _sstats) = join_tokenized_sharded(
        &coll,
        SetSimMeasure::Jaccard(0.5),
        ProbeSide::Left,
        N_SHARDS,
        &cfg,
    );
    (pairs, obs.snapshot())
}

#[test]
fn sharded_join_pinned_exports_are_byte_identical_across_worker_counts() {
    let (pairs1, snap1) = run_pinned(1);
    assert!(!pairs1.is_empty(), "fixture produced no join pairs");
    let prom1 = snap1.to_prometheus();
    let trace1 = snap1.to_chrome_trace();
    let prof1 = snap1.profile().to_collapsed();

    // One full shard lifecycle per shard, keyed by shard number.
    for name in ["shard_build", "shard_probe", "shard_drop"] {
        assert_eq!(
            snap1.spans_named(name).len(),
            N_SHARDS,
            "expected one {name:?} span per shard"
        );
    }
    // The kernel-verify level shows up under the probe's chunk spans.
    assert!(!snap1.spans_named("verify").is_empty(), "verify spans missing");

    let (pairs8, snap8) = run_pinned(8);
    assert_eq!(pairs8, pairs1, "8 workers changed the join result");
    assert_eq!(snap8.to_prometheus(), prom1, "Prometheus diverged at 8 workers");
    assert_eq!(snap8.to_chrome_trace(), trace1, "Chrome trace diverged at 8 workers");
    assert_eq!(snap8.profile().to_collapsed(), prof1, "profile diverged at 8 workers");
}

#[test]
fn shard_build_spans_carry_index_byte_attribution() {
    let (_, snap) = run_pinned(2);
    let profile = snap.profile();
    let node = profile
        .node(&["shard_build"])
        .expect("shard_build aggregates into a profile node");
    assert_eq!(node.calls, N_SHARDS as u64);
    let bytes = node
        .res
        .get("shard_index_bytes")
        .copied()
        .expect("shard_build spans attribute index bytes");
    assert!(bytes > 0, "index byte attribution is zero");
    // The peak-bytes gauge is the max over shards, so it can never exceed
    // the per-shard sum attributed to the build spans.
    let peak = snap.gauge("magellan_simjoin_shard_peak_index_bytes");
    assert!(peak > 0.0);
    assert!(peak as u64 <= bytes, "peak {peak} exceeds summed shard bytes {bytes}");
}
