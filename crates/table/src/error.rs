//! Error type shared by the tabular substrate.

use std::fmt;

use crate::value::Dtype;

/// Errors raised by table, catalog, and CSV operations.
#[derive(Debug)]
pub enum TableError {
    /// A column name was not found in the schema.
    UnknownColumn(String),
    /// A column name occurs twice in a schema.
    DuplicateColumn(String),
    /// A value of the wrong dtype was pushed into a column.
    TypeMismatch {
        /// Column that rejected the value.
        column: String,
        /// Dtype the column holds.
        expected: Dtype,
        /// Dtype of the offending value.
        found: Dtype,
    },
    /// A row had the wrong number of cells.
    RowArity {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of cells supplied.
        found: usize,
    },
    /// Row index out of bounds.
    RowOutOfBounds {
        /// Offending index.
        index: usize,
        /// Row count of the table.
        len: usize,
    },
    /// The catalog has no metadata for the given table.
    NoMetadata(String),
    /// Key-constraint validation failed (the self-containment checks of §4.1).
    KeyViolation {
        /// Table whose key failed validation.
        table: String,
        /// Key attribute.
        attr: String,
        /// Human-readable reason (duplicate value, null, missing column...).
        reason: String,
    },
    /// Foreign-key validation failed for a candidate set.
    ForeignKeyViolation {
        /// Candidate-set table name.
        table: String,
        /// FK attribute in the candidate set.
        attr: String,
        /// Reason the FK no longer holds.
        reason: String,
    },
    /// CSV input could not be parsed.
    Csv {
        /// 1-based line where parsing failed.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An on-disk `emtbl` file is malformed, truncated, or failed a
    /// checksum.
    Format(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            TableError::DuplicateColumn(name) => write!(f, "duplicate column `{name}`"),
            TableError::TypeMismatch {
                column,
                expected,
                found,
            } => write!(
                f,
                "type mismatch in column `{column}`: expected {expected}, found {found}"
            ),
            TableError::RowArity { expected, found } => {
                write!(f, "row has {found} cells but schema has {expected} columns")
            }
            TableError::RowOutOfBounds { index, len } => {
                write!(f, "row index {index} out of bounds for table of {len} rows")
            }
            TableError::NoMetadata(table) => {
                write!(f, "catalog holds no metadata for table `{table}`")
            }
            TableError::KeyViolation { table, attr, reason } => {
                write!(f, "key `{attr}` of table `{table}` is invalid: {reason}")
            }
            TableError::ForeignKeyViolation { table, attr, reason } => write!(
                f,
                "foreign key `{attr}` of candidate set `{table}` is invalid: {reason}"
            ),
            TableError::Csv { line, message } => write!(f, "CSV parse error at line {line}: {message}"),
            TableError::Format(message) => write!(f, "emtbl format error: {message}"),
            TableError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for TableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TableError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TableError {
    fn from(e: std::io::Error) -> Self {
        TableError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TableError::TypeMismatch {
            column: "age".into(),
            expected: Dtype::Int,
            found: Dtype::Str,
        };
        let msg = e.to_string();
        assert!(msg.contains("age") && msg.contains("int") && msg.contains("str"));

        let e = TableError::KeyViolation {
            table: "A".into(),
            attr: "id".into(),
            reason: "duplicate value `a1`".into(),
        };
        assert!(e.to_string().contains("duplicate value"));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error;
        let e = TableError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
