//! Stratified k-fold cross-validation and train/test splitting — the
//! matcher-selection machinery of the Fig. 2 guide ("perform cross
//! validation for U and V ... select V as the matcher").

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::metrics::Metrics;
use crate::model::Learner;

/// Aggregate cross-validation result for one learner.
#[derive(Debug, Clone)]
pub struct CvReport {
    /// Learner display name.
    pub learner: String,
    /// Per-fold metrics.
    pub folds: Vec<Metrics>,
}

impl CvReport {
    /// Mean F1 across folds.
    pub fn mean_f1(&self) -> f64 {
        mean(self.folds.iter().map(Metrics::f1))
    }

    /// Mean precision across folds.
    pub fn mean_precision(&self) -> f64 {
        mean(self.folds.iter().map(Metrics::precision))
    }

    /// Mean recall across folds.
    pub fn mean_recall(&self) -> f64 {
        mean(self.folds.iter().map(Metrics::recall))
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for v in it {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Stratified fold assignment: positives and negatives are each dealt
/// round-robin across folds after a seeded shuffle, so every fold sees
/// (nearly) the class balance of the whole set — essential for EM where
/// matches are rare.
pub fn stratified_folds(labels: &[bool], k: usize, seed: u64) -> Vec<usize> {
    assert!(k >= 2, "need at least 2 folds");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pos: Vec<usize> = (0..labels.len()).filter(|&i| labels[i]).collect();
    let mut neg: Vec<usize> = (0..labels.len()).filter(|&i| !labels[i]).collect();
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);
    let mut fold = vec![0usize; labels.len()];
    for (j, &i) in pos.iter().enumerate() {
        fold[i] = j % k;
    }
    for (j, &i) in neg.iter().enumerate() {
        fold[i] = j % k;
    }
    fold
}

/// k-fold cross-validate a learner; returns per-fold metrics.
pub fn cross_validate(learner: &dyn Learner, data: &Dataset, k: usize, seed: u64) -> CvReport {
    let folds = stratified_folds(data.labels(), k, seed);
    let mut fold_metrics = Vec::with_capacity(k);
    for f in 0..k {
        let train_idx: Vec<usize> = (0..data.len()).filter(|&i| folds[i] != f).collect();
        let test_idx: Vec<usize> = (0..data.len()).filter(|&i| folds[i] == f).collect();
        if train_idx.is_empty() || test_idx.is_empty() {
            continue;
        }
        let train = data.subset(&train_idx);
        let model = learner.fit(&train);
        let predicted: Vec<bool> = test_idx.iter().map(|&i| model.predict(data.row(i))).collect();
        let gold: Vec<bool> = test_idx.iter().map(|&i| data.label(i)).collect();
        fold_metrics.push(Metrics::from_predictions(&predicted, &gold));
    }
    CvReport {
        learner: learner.name().to_owned(),
        folds: fold_metrics,
    }
}

/// Cross-validate several learners and return the reports sorted by mean
/// F1, best first — the guide's "select the best matcher" step.
///
/// Ties on mean F1 (common on small labeled samples, where every learner
/// nails the same folds) break toward the larger
/// [`Learner::ensemble_size`]: committees yield graded probabilities the
/// production threshold calibration can actually tune, while a single
/// tree's 0/1 scores leave it no operating point but 0.5.
pub fn select_matcher(
    learners: &[&dyn Learner],
    data: &Dataset,
    k: usize,
    seed: u64,
) -> Vec<CvReport> {
    let mut reports: Vec<CvReport> = learners
        .iter()
        .map(|l| cross_validate(*l, data, k, seed))
        .collect();
    let ensemble_size = |r: &CvReport| -> usize {
        learners
            .iter()
            .find(|l| l.name() == r.learner)
            .map_or(1, |l| l.ensemble_size())
    };
    reports.sort_by(|a, b| {
        b.mean_f1()
            .partial_cmp(&a.mean_f1())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| ensemble_size(b).cmp(&ensemble_size(a)))
            .then_with(|| a.learner.cmp(&b.learner))
    });
    reports
}

/// Stratified train/test split; returns `(train, test)` index vectors.
pub fn train_test_split(
    labels: &[bool],
    test_fraction: f64,
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    assert!((0.0..1.0).contains(&test_fraction) && test_fraction > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for positive in [true, false] {
        let mut idx: Vec<usize> = (0..labels.len())
            .filter(|&i| labels[i] == positive)
            .collect();
        idx.shuffle(&mut rng);
        let n_test = (idx.len() as f64 * test_fraction).round() as usize;
        test.extend_from_slice(&idx[..n_test]);
        train.extend_from_slice(&idx[n_test..]);
    }
    train.sort_unstable();
    test.sort_unstable();
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::RandomForestLearner;
    use crate::tree::DecisionTreeLearner;
    use rand::Rng;

    fn blob_data(seed: u64, n: usize, pos_rate: f64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::with_dims(2);
        for _ in 0..n {
            let pos: bool = rng.gen_bool(pos_rate);
            let (cx, cy) = if pos { (1.0, 1.0) } else { (-1.0, -1.0) };
            d.push(
                &[cx + rng.gen_range(-0.7..0.7), cy + rng.gen_range(-0.7..0.7)],
                pos,
            );
        }
        d
    }

    /// A fold-less report (degenerate CV) averages to 0.0, never NaN.
    #[test]
    fn empty_report_means_are_zero() {
        let rep = CvReport {
            learner: "none".into(),
            folds: Vec::new(),
        };
        assert_eq!(rep.mean_f1(), 0.0);
        assert_eq!(rep.mean_precision(), 0.0);
        assert_eq!(rep.mean_recall(), 0.0);
    }

    #[test]
    fn stratified_folds_preserve_class_balance() {
        let labels: Vec<bool> = (0..100).map(|i| i % 10 == 0).collect(); // 10% positive
        let folds = stratified_folds(&labels, 5, 42);
        for f in 0..5 {
            let members: Vec<usize> = (0..100).filter(|&i| folds[i] == f).collect();
            let pos = members.iter().filter(|&&i| labels[i]).count();
            assert_eq!(members.len(), 20);
            assert_eq!(pos, 2, "fold {f} lost stratification");
        }
    }

    #[test]
    fn cross_validation_scores_a_learnable_problem_high() {
        let data = blob_data(1, 200, 0.5);
        let report = cross_validate(&DecisionTreeLearner::default(), &data, 5, 7);
        assert_eq!(report.folds.len(), 5);
        assert!(report.mean_f1() > 0.9, "F1 {}", report.mean_f1());
    }

    #[test]
    fn select_matcher_orders_by_f1() {
        let data = blob_data(2, 200, 0.3);
        let tree = DecisionTreeLearner::default();
        let forest = RandomForestLearner {
            n_trees: 10,
            ..Default::default()
        };
        let reports = select_matcher(&[&tree, &forest], &data, 5, 7);
        assert_eq!(reports.len(), 2);
        assert!(reports[0].mean_f1() >= reports[1].mean_f1());
    }

    #[test]
    fn train_test_split_is_stratified_and_disjoint() {
        let labels: Vec<bool> = (0..100).map(|i| i < 20).collect();
        let (train, test) = train_test_split(&labels, 0.25, 3);
        assert_eq!(train.len() + test.len(), 100);
        let overlap = train.iter().filter(|i| test.contains(i)).count();
        assert_eq!(overlap, 0);
        let test_pos = test.iter().filter(|&&i| labels[i]).count();
        assert_eq!(test_pos, 5); // 25% of 20 positives
    }

    #[test]
    fn cv_deterministic_under_seed() {
        let data = blob_data(4, 120, 0.4);
        let r1 = cross_validate(&DecisionTreeLearner::default(), &data, 4, 11);
        let r2 = cross_validate(&DecisionTreeLearner::default(), &data, 4, 11);
        assert_eq!(format!("{:?}", r1.folds), format!("{:?}", r2.folds));
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn one_fold_panics() {
        stratified_folds(&[true, false], 1, 0);
    }
}
