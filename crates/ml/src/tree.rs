//! CART decision trees.
//!
//! The tree structure is deliberately public ([`Node`], arena-indexed):
//! Falcon (Fig. 4 of the paper) extracts candidate *blocking rules* from
//! root→"No"-leaf paths of forest trees, so downstream crates need to walk
//! trees, not just call `predict`.
//!
//! Missing values: a `NaN` feature value routes to the **left** (low)
//! branch, both during training (NaN sorts as −∞) and prediction. In EM
//! feature vectors a missing similarity behaves like a low similarity.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::model::{Classifier, Learner};

/// Impurity criterion for split selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitCriterion {
    /// Gini impurity `2p(1−p)` (scaled; constants don't affect argmax).
    #[default]
    Gini,
    /// Shannon entropy.
    Entropy,
}

impl SplitCriterion {
    fn impurity(&self, n_pos: usize, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let p = n_pos as f64 / n as f64;
        match self {
            SplitCriterion::Gini => 2.0 * p * (1.0 - p),
            SplitCriterion::Entropy => {
                let mut h = 0.0;
                for q in [p, 1.0 - p] {
                    if q > 0.0 {
                        h -= q * q.log2();
                    }
                }
                h
            }
        }
    }
}

/// One node of a trained tree, arena-indexed (root at index 0).
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Terminal node holding its training-label counts.
    Leaf {
        /// Training examples that reached the leaf.
        n: usize,
        /// Positive examples among them.
        n_pos: usize,
    },
    /// Internal test `x[feature] <= threshold` (NaN goes left).
    Split {
        /// Feature index tested.
        feature: usize,
        /// Split threshold (midpoint of the training gap).
        threshold: f64,
        /// Arena index of the low/left child.
        left: usize,
        /// Arena index of the high/right child.
        right: usize,
    },
}

/// CART hyper-parameters; [`Learner`] implementation.
#[derive(Debug, Clone)]
pub struct DecisionTreeLearner {
    /// Impurity criterion.
    pub criterion: SplitCriterion,
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum examples a node needs to be split.
    pub min_samples_split: usize,
    /// Minimum examples each child must keep.
    pub min_samples_leaf: usize,
    /// Features considered per split (`None` = all). Used by forests.
    pub max_features: Option<usize>,
    /// RNG seed for feature sub-sampling.
    pub seed: u64,
}

impl Default for DecisionTreeLearner {
    fn default() -> Self {
        DecisionTreeLearner {
            criterion: SplitCriterion::Gini,
            max_depth: 16,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            seed: 7,
        }
    }
}

/// A trained CART tree.
#[derive(Debug, Clone)]
pub struct DecisionTreeClassifier {
    nodes: Vec<Node>,
    feature_names: Vec<String>,
}

impl DecisionTreeClassifier {
    /// Reconstruct a tree from its parts (the persistence path). The
    /// caller must guarantee child indices are in bounds and strictly
    /// greater than their parent's index; this re-checks both.
    pub fn from_parts(
        nodes: Vec<Node>,
        feature_names: Vec<String>,
    ) -> Result<DecisionTreeClassifier, String> {
        if nodes.is_empty() {
            return Err("a tree needs at least one node".to_owned());
        }
        for (i, node) in nodes.iter().enumerate() {
            if let Node::Split { left, right, feature, .. } = node {
                if *left <= i || *right <= i || *left >= nodes.len() || *right >= nodes.len() {
                    return Err(format!("node {i}: child index invalid"));
                }
                if *feature >= feature_names.len() {
                    return Err(format!("node {i}: feature index out of range"));
                }
            }
        }
        Ok(DecisionTreeClassifier {
            nodes,
            feature_names,
        })
    }

    /// The node arena (root at index 0).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Names of the features the tree was trained on.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Maximum depth of any leaf.
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        depth_of(&self.nodes, 0)
    }

    /// Walk an example to its leaf; returns the leaf's arena index.
    pub fn leaf_for(&self, row: &[f64]) -> usize {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { .. } => return i,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let x = row[*feature];
                    i = if x.is_nan() || x <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Render the tree as an indented rule list (Fig. 4 style).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.pretty_rec(0, 0, &mut out);
        out
    }

    fn pretty_rec(&self, i: usize, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        match &self.nodes[i] {
            Node::Leaf { n, n_pos } => {
                let verdict = if *n_pos * 2 >= *n { "Yes" } else { "No" };
                out.push_str(&format!("{pad}-> {verdict} ({n_pos}/{n})\n"));
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                let name = self
                    .feature_names
                    .get(*feature)
                    .map_or_else(|| format!("f{feature}"), Clone::clone);
                out.push_str(&format!("{pad}if {name} <= {threshold:.4}:\n"));
                self.pretty_rec(*left, indent + 1, out);
                out.push_str(&format!("{pad}else:\n"));
                self.pretty_rec(*right, indent + 1, out);
            }
        }
    }
}

impl Classifier for DecisionTreeClassifier {
    /// Laplace-smoothed leaf probability `(n_pos + 1) / (n + 2)`.
    ///
    /// Raw leaf fractions make single trees useless for threshold
    /// calibration: most leaves are pure, so every score is 0 or 1 and no
    /// operating point above 0.5 filters anything. Laplace smoothing (the
    /// standard probability-estimation-tree correction) grades scores by
    /// leaf support — a pure 2-example leaf scores 0.75, a pure 50-example
    /// leaf 0.98 — while leaving the hard prediction untouched:
    /// `(n_pos + 1) / (n + 2) ≥ 0.5  ⟺  2·n_pos ≥ n`.
    fn predict_proba(&self, row: &[f64]) -> f64 {
        match &self.nodes[self.leaf_for(row)] {
            Node::Leaf { n, n_pos } => (*n_pos as f64 + 1.0) / (*n as f64 + 2.0),
            Node::Split { .. } => unreachable!("leaf_for returns a leaf"),
        }
    }
}

impl Learner for DecisionTreeLearner {
    fn name(&self) -> &str {
        "decision_tree"
    }

    fn fit(&self, data: &Dataset) -> Box<dyn Classifier> {
        Box::new(self.fit_tree(data))
    }
}

struct BuildCtx<'a> {
    data: &'a Dataset,
    params: &'a DecisionTreeLearner,
    rng: StdRng,
    nodes: Vec<Node>,
}

impl DecisionTreeLearner {
    /// Train and return the concrete tree type (callers that need the
    /// structure — forests, Falcon — use this instead of `fit`).
    pub fn fit_tree(&self, data: &Dataset) -> DecisionTreeClassifier {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let mut ctx = BuildCtx {
            data,
            params: self,
            rng: StdRng::seed_from_u64(self.seed),
            nodes: Vec::new(),
        };
        let indices: Vec<usize> = (0..data.len()).collect();
        build_node(&mut ctx, indices, 0);
        DecisionTreeClassifier {
            nodes: ctx.nodes,
            feature_names: data.feature_names().to_vec(),
        }
    }
}

/// Recursively build the subtree over `indices`; returns its arena index.
fn build_node(ctx: &mut BuildCtx<'_>, indices: Vec<usize>, depth: usize) -> usize {
    let n = indices.len();
    let n_pos = indices.iter().filter(|&&i| ctx.data.label(i)).count();
    let make_leaf = |ctx: &mut BuildCtx<'_>| {
        ctx.nodes.push(Node::Leaf { n, n_pos });
        ctx.nodes.len() - 1
    };
    if n_pos == 0
        || n_pos == n
        || depth >= ctx.params.max_depth
        || n < ctx.params.min_samples_split
    {
        return make_leaf(ctx);
    }

    let Some((feature, threshold)) = best_split(ctx, &indices, n_pos) else {
        return make_leaf(ctx);
    };

    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices.into_iter().partition(|&i| {
        let x = ctx.data.row(i)[feature];
        x.is_nan() || x <= threshold
    });
    debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());

    // Reserve our slot before children so the root stays at index 0.
    ctx.nodes.push(Node::Leaf { n, n_pos }); // placeholder
    let me = ctx.nodes.len() - 1;
    let left = build_node(ctx, left_idx, depth + 1);
    let right = build_node(ctx, right_idx, depth + 1);
    ctx.nodes[me] = Node::Split {
        feature,
        threshold,
        left,
        right,
    };
    me
}

/// Largest float strictly below `v` (v must be finite and not MIN).
fn next_down(v: f64) -> f64 {
    debug_assert!(v.is_finite());
    f64::next_down(v)
}

/// Exhaustive best split over (a sample of) features. Returns
/// `(feature, threshold)` of the largest impurity decrease, or `None` when
/// no split satisfies `min_samples_leaf`.
fn best_split(ctx: &mut BuildCtx<'_>, indices: &[usize], n_pos: usize) -> Option<(usize, f64)> {
    let n = indices.len();
    let n_features = ctx.data.n_features();
    let parent_imp = ctx.params.criterion.impurity(n_pos, n);

    let mut features: Vec<usize> = (0..n_features).collect();
    if let Some(k) = ctx.params.max_features {
        let k = k.clamp(1, n_features);
        features.shuffle(&mut ctx.rng);
        features.truncate(k);
        features.sort_unstable(); // deterministic evaluation order
    }

    let mut best: Option<(f64, usize, f64)> = None; // (decrease, feature, threshold)
    let mut vals: Vec<(f64, bool)> = Vec::with_capacity(n);
    for &f in &features {
        vals.clear();
        for &i in indices {
            let x = ctx.data.row(i)[f];
            // NaN sorts as -inf: missing joins the low side.
            let key = if x.is_nan() { f64::NEG_INFINITY } else { x };
            vals.push((key, ctx.data.label(i)));
        }
        vals.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut pos_left = 0usize;
        for split_at in 1..n {
            if vals[split_at - 1].1 {
                pos_left += 1;
            }
            // Can't split between equal values.
            if vals[split_at - 1].0 == vals[split_at].0 {
                continue;
            }
            let nl = split_at;
            let nr = n - split_at;
            if nl < ctx.params.min_samples_leaf || nr < ctx.params.min_samples_leaf {
                continue;
            }
            let imp_l = ctx.params.criterion.impurity(pos_left, nl);
            let imp_r = ctx.params.criterion.impurity(n_pos - pos_left, nr);
            let weighted = (nl as f64 * imp_l + nr as f64 * imp_r) / n as f64;
            let decrease = parent_imp - weighted;
            if decrease <= 1e-12 {
                continue;
            }
            let lo = vals[split_at - 1].0;
            let hi = vals[split_at].0;
            // The partition predicate is `x <= threshold` goes left, so any
            // threshold in [lo, hi) separates the two blocks. The midpoint
            // can round up to `hi` when lo and hi are one ULP apart, and
            // `hi - eps` can round back to `hi` — fall back to values that
            // are provably below `hi`.
            let threshold = if lo == f64::NEG_INFINITY {
                // All-NaN block below: split just under the first real value.
                next_down(hi)
            } else {
                let mid = lo + (hi - lo) / 2.0;
                if mid < hi {
                    mid.max(lo)
                } else {
                    lo
                }
            };
            debug_assert!(threshold < hi);
            let better = match best {
                None => true,
                Some((d, bf, bt)) => {
                    decrease > d + 1e-12
                        || ((decrease - d).abs() <= 1e-12 && (f, threshold) < (bf, bt))
                }
            };
            if better {
                best = Some((decrease, f, threshold));
            }
        }
    }
    best.map(|(_, f, t)| (f, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 4 book-matching scenario: match iff ISBN matches and
    /// #pages match.
    fn book_data() -> Dataset {
        let mut d = Dataset::new(vec!["isbn_match".into(), "pages_match".into()]);
        // (isbn, pages) -> label
        let rows = [
            ([1.0, 1.0], true),
            ([1.0, 1.0], true),
            ([1.0, 0.0], false),
            ([0.0, 1.0], false),
            ([0.0, 0.0], false),
            ([1.0, 1.0], true),
            ([0.0, 1.0], false),
            ([1.0, 0.0], false),
        ];
        for (x, y) in rows {
            d.push(&x, y);
        }
        d
    }

    #[test]
    fn learns_the_conjunction() {
        let tree = DecisionTreeLearner::default().fit_tree(&book_data());
        assert!(tree.predict(&[1.0, 1.0]));
        assert!(!tree.predict(&[1.0, 0.0]));
        assert!(!tree.predict(&[0.0, 1.0]));
        assert!(!tree.predict(&[0.0, 0.0]));
        // Structure: two splits, three leaves (pure conjunction).
        assert_eq!(tree.n_leaves(), 3);
        assert_eq!(tree.depth(), 2);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let d = Dataset::from_rows(&[vec![0.0], vec![1.0]], &[true, true]);
        let tree = DecisionTreeLearner::default().fit_tree(&d);
        assert_eq!(tree.nodes().len(), 1);
        // Laplace-smoothed pure leaf of 2: (2 + 1) / (2 + 2).
        assert_eq!(tree.predict_proba(&[0.5]), 0.75);
        assert!(tree.predict(&[0.5]));
    }

    #[test]
    fn max_depth_zero_yields_majority_stump() {
        let d = book_data();
        let tree = DecisionTreeLearner {
            max_depth: 0,
            ..Default::default()
        }
        .fit_tree(&d);
        assert_eq!(tree.nodes().len(), 1);
        // 3 of 8 positive -> predicts negative everywhere.
        assert!(!tree.predict(&[1.0, 1.0]));
    }

    #[test]
    fn min_samples_leaf_respected() {
        let d = book_data();
        let tree = DecisionTreeLearner {
            min_samples_leaf: 4,
            ..Default::default()
        }
        .fit_tree(&d);
        fn check(nodes: &[Node], i: usize, min: usize) {
            match &nodes[i] {
                Node::Leaf { n, .. } => assert!(*n >= min, "leaf with {n} < {min}"),
                Node::Split { left, right, .. } => {
                    check(nodes, *left, min);
                    check(nodes, *right, min);
                }
            }
        }
        check(tree.nodes(), 0, 4);
    }

    #[test]
    fn nan_routes_left_consistently() {
        // Feature perfectly separates; NaN at predict time goes low/left.
        let d = Dataset::from_rows(
            &[vec![0.1], vec![0.2], vec![0.8], vec![0.9]],
            &[false, false, true, true],
        );
        let tree = DecisionTreeLearner::default().fit_tree(&d);
        assert!(!tree.predict(&[f64::NAN]));
        assert!(tree.predict(&[0.85]));
    }

    #[test]
    fn nan_in_training_data_is_tolerated() {
        let d = Dataset::from_rows(
            &[vec![f64::NAN], vec![f64::NAN], vec![0.9], vec![0.8]],
            &[false, false, true, true],
        );
        let tree = DecisionTreeLearner::default().fit_tree(&d);
        assert!(!tree.predict(&[f64::NAN]));
        assert!(tree.predict(&[0.85]));
    }

    #[test]
    fn entropy_criterion_also_learns() {
        let tree = DecisionTreeLearner {
            criterion: SplitCriterion::Entropy,
            ..Default::default()
        }
        .fit_tree(&book_data());
        assert!(tree.predict(&[1.0, 1.0]));
        assert!(!tree.predict(&[0.0, 0.0]));
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let d = book_data();
        let t1 = DecisionTreeLearner {
            max_features: Some(1),
            seed: 42,
            ..Default::default()
        }
        .fit_tree(&d);
        let t2 = DecisionTreeLearner {
            max_features: Some(1),
            seed: 42,
            ..Default::default()
        }
        .fit_tree(&d);
        assert_eq!(t1.nodes(), t2.nodes());
    }

    #[test]
    fn pretty_printer_uses_feature_names() {
        let tree = DecisionTreeLearner::default().fit_tree(&book_data());
        let s = tree.pretty();
        assert!(s.contains("isbn_match") || s.contains("pages_match"), "{s}");
        assert!(s.contains("-> No"));
        assert!(s.contains("-> Yes"));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        DecisionTreeLearner::default().fit_tree(&Dataset::with_dims(1));
    }

    #[test]
    fn predict_proba_is_smoothed_leaf_fraction() {
        // Constant features -> single leaf with 1/4 positives; Laplace
        // smoothing maps it to (1 + 1) / (4 + 2).
        let d = Dataset::from_rows(
            &[vec![1.0], vec![1.0], vec![1.0], vec![1.0]],
            &[true, false, false, false],
        );
        let tree = DecisionTreeLearner::default().fit_tree(&d);
        assert_eq!(tree.predict_proba(&[1.0]), 2.0 / 6.0);
        assert!(!tree.predict(&[1.0]));
    }
}
