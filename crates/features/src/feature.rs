//! The feature abstraction: one similarity computation over an attribute
//! pair, named the way the paper prints features.

use magellan_table::ValueRef;
use magellan_textsim::tokenize::{AlphanumericTokenizer, QgramTokenizer, Tokenizer};
use magellan_textsim::{numeric, seqsim, setsim};

/// Tokenization spec used inside token-based feature kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokSpecF {
    /// Lowercased alphanumeric word tokens.
    Word,
    /// Padded character q-grams.
    Qgram(usize),
}

impl TokSpecF {
    /// Boxed trait-object tokenizer — for callers that need dynamic
    /// dispatch (e.g. handing a tokenizer to the sim-join builder). The
    /// per-pair scalar path uses [`TokSpecF::tokenize_set`] instead so no
    /// heap allocation happens inside pair loops.
    pub fn tokenizer(&self) -> Box<dyn Tokenizer> {
        match self {
            TokSpecF::Word => Box::new(AlphanumericTokenizer::as_set()),
            TokSpecF::Qgram(q) => Box::new(QgramTokenizer::as_set(*q)),
        }
    }

    /// Set-semantics tokenization without constructing a boxed tokenizer:
    /// the concrete tokenizers are zero/trivially-sized stack values, so
    /// this is allocation-free apart from the token vector itself.
    pub fn tokenize_set(&self, s: &str) -> Vec<String> {
        match self {
            TokSpecF::Word => AlphanumericTokenizer::as_set().tokenize(s),
            TokSpecF::Qgram(q) => QgramTokenizer::as_set(*q).tokenize(s),
        }
    }

    /// Label used in generated feature names (`word`, `3gram`).
    pub fn label(&self) -> String {
        match self {
            TokSpecF::Word => "word".to_owned(),
            TokSpecF::Qgram(q) => format!("{q}gram"),
        }
    }
}

/// The similarity computation a feature performs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureKind {
    /// Case-insensitive exact match of display strings.
    ExactMatch,
    /// Normalized Levenshtein similarity.
    LevSim,
    /// Jaro similarity.
    Jaro,
    /// Jaro–Winkler similarity.
    JaroWinkler,
    /// Monge–Elkan with Jaro–Winkler secondary over word tokens.
    MongeElkanJw,
    /// Jaccard over a tokenization.
    Jaccard(TokSpecF),
    /// Cosine over a tokenization.
    Cosine(TokSpecF),
    /// Dice over a tokenization.
    Dice(TokSpecF),
    /// Overlap coefficient over a tokenization.
    OverlapCoeff(TokSpecF),
    /// Numeric exact equality.
    ExactNum,
    /// `1 / (1 + |a − b|)`.
    AbsDiff,
    /// `1 − |a−b| / max(|a|,|b|)`.
    RelDiff,
}

impl FeatureKind {
    /// Label used in generated names (`jaccard(3gram(·))` renders as
    /// `jaccard_3gram` inside [`Feature::standard_name`]).
    pub fn label(&self) -> String {
        match self {
            FeatureKind::ExactMatch => "exact_match".to_owned(),
            FeatureKind::LevSim => "lev_sim".to_owned(),
            FeatureKind::Jaro => "jaro".to_owned(),
            FeatureKind::JaroWinkler => "jaro_winkler".to_owned(),
            FeatureKind::MongeElkanJw => "monge_elkan".to_owned(),
            FeatureKind::Jaccard(t) => format!("jaccard({})", t.label()),
            FeatureKind::Cosine(t) => format!("cosine({})", t.label()),
            FeatureKind::Dice(t) => format!("dice({})", t.label()),
            FeatureKind::OverlapCoeff(t) => format!("overlap_coeff({})", t.label()),
            FeatureKind::ExactNum => "exact_num".to_owned(),
            FeatureKind::AbsDiff => "abs_diff".to_owned(),
            FeatureKind::RelDiff => "rel_diff".to_owned(),
        }
    }
}

/// One feature: a named similarity over an attribute pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Feature {
    /// Display name, e.g. `jaccard(3gram(A.name), 3gram(B.name))`.
    pub name: String,
    /// Attribute of the left table.
    pub l_attr: String,
    /// Attribute of the right table.
    pub r_attr: String,
    /// The computation.
    pub kind: FeatureKind,
}

impl Feature {
    /// Build with the standard paper-style name.
    pub fn new(l_attr: &str, r_attr: &str, kind: FeatureKind) -> Self {
        let name = match kind {
            FeatureKind::Jaccard(t)
            | FeatureKind::Cosine(t)
            | FeatureKind::Dice(t)
            | FeatureKind::OverlapCoeff(t) => {
                let outer = match kind {
                    FeatureKind::Jaccard(_) => "jaccard",
                    FeatureKind::Cosine(_) => "cosine",
                    FeatureKind::Dice(_) => "dice",
                    FeatureKind::OverlapCoeff(_) => "overlap_coeff",
                    _ => unreachable!(),
                };
                format!(
                    "{outer}({}(A.{l_attr}), {}(B.{r_attr}))",
                    t.label(),
                    t.label()
                )
            }
            _ => format!("{}(A.{l_attr}, B.{r_attr})", kind.label()),
        };
        Feature {
            name,
            l_attr: l_attr.to_owned(),
            r_attr: r_attr.to_owned(),
            kind,
        }
    }

    /// Evaluate the feature on one value pair. Returns `NaN` when either
    /// side is missing (the learners treat NaN as "missing").
    pub fn compute(&self, a: ValueRef<'_>, b: ValueRef<'_>) -> f64 {
        if a.is_null() || b.is_null() {
            return f64::NAN;
        }
        match self.kind {
            FeatureKind::ExactNum | FeatureKind::AbsDiff | FeatureKind::RelDiff => {
                let (Some(x), Some(y)) = (a.as_float(), b.as_float()) else {
                    return f64::NAN;
                };
                match self.kind {
                    FeatureKind::ExactNum => numeric::exact_match_num(x, y),
                    FeatureKind::AbsDiff => numeric::abs_diff_sim(x, y),
                    FeatureKind::RelDiff => numeric::rel_diff_sim(x, y),
                    _ => unreachable!(),
                }
            }
            _ => {
                let sa = a.display_string().trim().to_lowercase();
                let sb = b.display_string().trim().to_lowercase();
                match self.kind {
                    FeatureKind::ExactMatch => f64::from(sa == sb),
                    FeatureKind::LevSim => seqsim::levenshtein_sim(&sa, &sb),
                    FeatureKind::Jaro => seqsim::jaro(&sa, &sb),
                    FeatureKind::JaroWinkler => seqsim::jaro_winkler(&sa, &sb),
                    FeatureKind::MongeElkanJw => {
                        // Stack-constructed (zero-sized) tokenizer: no
                        // per-pair heap allocation.
                        let tok = AlphanumericTokenizer::new();
                        setsim::monge_elkan_jw(&tok.tokenize(&sa), &tok.tokenize(&sb))
                    }
                    FeatureKind::Jaccard(t)
                    | FeatureKind::Cosine(t)
                    | FeatureKind::Dice(t)
                    | FeatureKind::OverlapCoeff(t) => {
                        // `tokenize_set` dispatches to a concrete stack
                        // tokenizer — the old per-pair `Box<dyn Tokenizer>`
                        // construction is hoisted away entirely.
                        let ta = t.tokenize_set(&sa);
                        let tb = t.tokenize_set(&sb);
                        if ta.is_empty() || tb.is_empty() {
                            return f64::NAN;
                        }
                        match self.kind {
                            FeatureKind::Jaccard(_) => setsim::jaccard(&ta, &tb),
                            FeatureKind::Cosine(_) => setsim::cosine(&ta, &tb),
                            FeatureKind::Dice(_) => setsim::dice(&ta, &tb),
                            FeatureKind::OverlapCoeff(_) => setsim::overlap_coefficient(&ta, &tb),
                            _ => unreachable!(),
                        }
                    }
                    _ => unreachable!(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_names_match_paper_style() {
        let f = Feature::new("name", "name", FeatureKind::Jaccard(TokSpecF::Qgram(3)));
        assert_eq!(f.name, "jaccard(3gram(A.name), 3gram(B.name))");
        let f = Feature::new("age", "age", FeatureKind::AbsDiff);
        assert_eq!(f.name, "abs_diff(A.age, B.age)");
    }

    #[test]
    fn string_features_compute() {
        let f = Feature::new("n", "n", FeatureKind::LevSim);
        let v = f.compute(ValueRef::Str("dave"), ValueRef::Str("dav"));
        assert!((v - 0.75).abs() < 1e-12);
        let f = Feature::new("n", "n", FeatureKind::ExactMatch);
        assert_eq!(f.compute(ValueRef::Str("X "), ValueRef::Str("x")), 1.0);
    }

    #[test]
    fn jaccard_word_feature() {
        let f = Feature::new("t", "t", FeatureKind::Jaccard(TokSpecF::Word));
        let v = f.compute(
            ValueRef::Str("sony wireless mouse"),
            ValueRef::Str("sony mouse"),
        );
        assert!((v - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn numeric_features_accept_ints_and_floats() {
        let f = Feature::new("p", "p", FeatureKind::RelDiff);
        let v = f.compute(ValueRef::Int(100), ValueRef::Float(110.0));
        assert!((v - (1.0 - 10.0 / 110.0)).abs() < 1e-9);
        let f = Feature::new("p", "p", FeatureKind::ExactNum);
        assert_eq!(f.compute(ValueRef::Int(5), ValueRef::Float(5.0)), 1.0);
    }

    #[test]
    fn nulls_produce_nan() {
        let f = Feature::new("n", "n", FeatureKind::Jaro);
        assert!(f.compute(ValueRef::Null, ValueRef::Str("x")).is_nan());
        assert!(f.compute(ValueRef::Str("x"), ValueRef::Null).is_nan());
    }

    #[test]
    fn numeric_feature_on_strings_is_nan() {
        let f = Feature::new("n", "n", FeatureKind::AbsDiff);
        assert!(f.compute(ValueRef::Str("abc"), ValueRef::Str("abd")).is_nan());
    }

    #[test]
    fn empty_tokenization_is_nan() {
        let f = Feature::new("n", "n", FeatureKind::Jaccard(TokSpecF::Word));
        assert!(f.compute(ValueRef::Str("!!!"), ValueRef::Str("abc")).is_nan());
    }
}
