//! The in-memory table: the generic data structure every Magellan-rs tool
//! exchanges (the pandas-DataFrame role in the paper's design).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::column::Column;
use crate::emtbl::{ColumnSlice, MappedTable};
use crate::error::TableError;
use crate::schema::{Field, Schema};
use crate::value::{Dtype, Value, ValueRef};
use crate::Result;

static NEXT_TABLE_ID: AtomicU64 = AtomicU64::new(1);

/// A process-unique identity for a table instance. The catalog keys its
/// metadata by `TableId`, so metadata never outlives or silently transfers
/// to a different table the way a name-keyed registry would allow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(u64);

impl TableId {
    fn fresh() -> Self {
        TableId(NEXT_TABLE_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// The raw id value.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

/// Which backing a [`Table`] reads its cells from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Storage {
    /// Columns live in RAM as [`Column`] vectors (the default).
    InRam,
    /// Columns are zero-copy views over an open `emtbl` file
    /// ([`MappedTable`]); nothing is materialized until an API that
    /// needs `&Column` or mutation asks for it.
    Mapped,
}

/// The `Storage::Mapped` backing: the open file plus a lazily
/// materialized per-column cache for the `&Column`-returning
/// compatibility APIs. Cloned tables share both (`Arc`).
#[derive(Debug, Clone)]
struct MappedBacking {
    map: Arc<MappedTable>,
    lazy: Arc<Vec<OnceLock<Column>>>,
}

/// A borrowed view of one column that works over either backing:
/// in-RAM tables hand out the [`Column`], mapped tables a zero-copy
/// [`ColumnSlice`] into the file. The hot seam for scans that must not
/// materialize mapped columns.
#[derive(Debug, Clone, Copy)]
pub enum ColView<'a> {
    /// View over an in-RAM column.
    Ram(&'a Column),
    /// Zero-copy view over a mapped column segment.
    Mapped(ColumnSlice<'a>),
}

impl<'a> ColView<'a> {
    /// Borrow the cell at `row`.
    pub fn get(&self, row: usize) -> ValueRef<'a> {
        match self {
            ColView::Ram(c) => c.get(row),
            ColView::Mapped(s) => s.get(row),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColView::Ram(c) => c.len(),
            ColView::Mapped(s) => s.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A typed, column-oriented, nullable table; backed by RAM or by a
/// mapped `emtbl` file (see [`Storage`]).
#[derive(Debug, Clone)]
pub struct Table {
    id: TableId,
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    mapped: Option<MappedBacking>,
    nrows: usize,
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.dtype, 0))
            .collect();
        Table {
            id: TableId::fresh(),
            name: name.into(),
            schema,
            columns,
            mapped: None,
            nrows: 0,
        }
    }

    /// Create an empty table, reserving space for `cap` rows.
    pub fn with_capacity(name: impl Into<String>, schema: Schema, cap: usize) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.dtype, cap))
            .collect();
        Table {
            id: TableId::fresh(),
            name: name.into(),
            schema,
            columns,
            mapped: None,
            nrows: 0,
        }
    }

    /// Build a table from `(name, dtype)` pairs and rows of values.
    pub fn from_rows(
        name: impl Into<String>,
        pairs: &[(&str, Dtype)],
        rows: Vec<Vec<Value>>,
    ) -> Result<Self> {
        let schema = Schema::from_pairs(pairs)?;
        let mut t = Table::with_capacity(name, schema, rows.len());
        for row in rows {
            t.push_row(row)?;
        }
        Ok(t)
    }

    /// The process-unique identity of this table instance.
    pub fn id(&self) -> TableId {
        self.id
    }

    /// Table name (for display and catalog diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the table.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.schema.len()
    }

    /// True if the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.nrows == 0
    }

    /// Wrap an open `emtbl` file as a mapped-backing table.
    pub fn from_mapped(name: impl Into<String>, map: Arc<MappedTable>) -> Self {
        let lazy = Arc::new((0..map.ncols()).map(|_| OnceLock::new()).collect());
        Table {
            id: TableId::fresh(),
            name: name.into(),
            schema: map.schema().clone(),
            columns: Vec::new(),
            nrows: map.nrows(),
            mapped: Some(MappedBacking { map, lazy }),
        }
    }

    /// Which backing this table currently reads from.
    pub fn storage(&self) -> Storage {
        if self.mapped.is_some() {
            Storage::Mapped
        } else {
            Storage::InRam
        }
    }

    /// The open `emtbl` file behind a `Storage::Mapped` table.
    pub fn mapped_table(&self) -> Option<&MappedTable> {
        self.mapped.as_ref().map(|m| &*m.map)
    }

    /// A backing-agnostic view of one column by position: zero-copy for
    /// mapped tables, a plain borrow for in-RAM ones. Scans that must not
    /// materialize mapped columns go through this instead of
    /// [`Table::column_at`].
    pub fn col_view(&self, idx: usize) -> ColView<'_> {
        match &self.mapped {
            Some(m) => ColView::Mapped(m.map.column_slice(idx)),
            None => ColView::Ram(&self.columns[idx]),
        }
    }

    /// Copy every mapped column into RAM and drop the file backing.
    /// Mutating APIs call this first; a no-op for in-RAM tables.
    pub fn ensure_in_ram(&mut self) {
        if let Some(m) = self.mapped.take() {
            self.columns = (0..m.map.ncols())
                .map(|c| match m.lazy[c].get() {
                    Some(col) => col.clone(),
                    None => m.map.materialize_column(c),
                })
                .collect();
        }
    }

    /// Append a row. All-or-nothing: on arity or type error the table is
    /// left unchanged.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        self.ensure_in_ram();
        if row.len() != self.schema.len() {
            return Err(TableError::RowArity {
                expected: self.schema.len(),
                found: row.len(),
            });
        }
        // Validate before mutating so a failed push cannot leave ragged
        // columns behind.
        for (value, field) in row.iter().zip(self.schema.fields()) {
            if let Some(d) = value.dtype() {
                let ok = d == field.dtype || (d == Dtype::Int && field.dtype == Dtype::Float);
                if !ok {
                    return Err(TableError::TypeMismatch {
                        column: field.name.clone(),
                        expected: field.dtype,
                        found: d,
                    });
                }
            }
        }
        for ((value, col), field) in row
            .into_iter()
            .zip(self.columns.iter_mut())
            .zip(self.schema.fields())
        {
            col.push(value, &field.name)
                .expect("validated before mutation");
        }
        self.nrows += 1;
        Ok(())
    }

    /// Borrow the cell at (`row`, `col`) by column index. Zero-copy for
    /// both backings.
    pub fn value(&self, row: usize, col: usize) -> ValueRef<'_> {
        match &self.mapped {
            Some(m) => m.map.value(row, col),
            None => self.columns[col].get(row),
        }
    }

    /// Borrow the cell at (`row`, column named `name`).
    pub fn value_by_name(&self, row: usize, name: &str) -> Result<ValueRef<'_>> {
        if row >= self.nrows {
            return Err(TableError::RowOutOfBounds {
                index: row,
                len: self.nrows,
            });
        }
        let idx = self.schema.try_index_of(name)?;
        Ok(self.value(row, idx))
    }

    /// Overwrite the cell at (`row`, column named `name`).
    pub fn set_value(&mut self, row: usize, name: &str, value: Value) -> Result<()> {
        if row >= self.nrows {
            return Err(TableError::RowOutOfBounds {
                index: row,
                len: self.nrows,
            });
        }
        let idx = self.schema.try_index_of(name)?;
        self.ensure_in_ram();
        self.columns[idx].set(row, value, name)
    }

    /// Borrow a whole column by name. For mapped tables this materializes
    /// (and caches) the column; zero-copy scans use [`Table::col_view`].
    pub fn column(&self, name: &str) -> Result<&Column> {
        let idx = self.schema.try_index_of(name)?;
        Ok(self.column_at(idx))
    }

    /// Borrow a whole column by position. For mapped tables this
    /// materializes (and caches) the column; zero-copy scans use
    /// [`Table::col_view`].
    pub fn column_at(&self, idx: usize) -> &Column {
        match &self.mapped {
            Some(m) => m.lazy[idx].get_or_init(|| m.map.materialize_column(idx)),
            None => &self.columns[idx],
        }
    }

    /// Materialize one row as owned values.
    pub fn row(&self, row: usize) -> Vec<Value> {
        (0..self.ncols())
            .map(|c| self.value(row, c).to_owned())
            .collect()
    }

    /// Append columns of equal length to every existing column (the batch
    /// flush path of [`crate::emtbl::ColumnarBuilder`]). The batch must
    /// match the schema's arity and dtypes.
    pub fn append_batch(&mut self, batch: Vec<Column>) -> Result<()> {
        if batch.len() != self.schema.len() {
            return Err(TableError::RowArity {
                expected: self.schema.len(),
                found: batch.len(),
            });
        }
        let n = batch.first().map_or(0, Column::len);
        for (col, field) in batch.iter().zip(self.schema.fields()) {
            if col.dtype() != field.dtype {
                return Err(TableError::TypeMismatch {
                    column: field.name.clone(),
                    expected: field.dtype,
                    found: col.dtype(),
                });
            }
            if col.len() != n {
                return Err(TableError::RowArity {
                    expected: n,
                    found: col.len(),
                });
            }
        }
        self.ensure_in_ram();
        for (dst, src) in self.columns.iter_mut().zip(batch) {
            dst.append(src);
        }
        self.nrows += n;
        Ok(())
    }

    /// Append a fully built column. Must match the row count.
    pub fn add_column(&mut self, field: Field, column: Column) -> Result<()> {
        self.ensure_in_ram();
        if column.len() != self.nrows {
            return Err(TableError::RowArity {
                expected: self.nrows,
                found: column.len(),
            });
        }
        if column.dtype() != field.dtype {
            return Err(TableError::TypeMismatch {
                column: field.name.clone(),
                expected: field.dtype,
                found: column.dtype(),
            });
        }
        self.schema.push(field)?;
        self.columns.push(column);
        Ok(())
    }

    /// A new table with only the named columns, in the requested order.
    /// The projection is a *new* table (fresh [`TableId`]): catalog metadata
    /// does not silently follow derived data.
    pub fn project(&self, names: &[&str]) -> Result<Table> {
        let schema = self.schema.project(names)?;
        let columns = names
            .iter()
            .map(|n| {
                let idx = self.schema.try_index_of(n).expect("validated by project");
                self.column_at(idx).clone()
            })
            .collect();
        Ok(Table {
            id: TableId::fresh(),
            name: self.name.clone(),
            schema,
            columns,
            mapped: None,
            nrows: self.nrows,
        })
    }

    /// A new table containing the rows at `rows` (indices may repeat).
    pub fn take(&self, rows: &[usize]) -> Table {
        let columns = (0..self.ncols()).map(|c| self.column_at(c).take(rows)).collect();
        Table {
            id: TableId::fresh(),
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns,
            mapped: None,
            nrows: rows.len(),
        }
    }

    /// A new table with the rows for which `pred` returns true.
    pub fn filter(&self, mut pred: impl FnMut(usize) -> bool) -> Table {
        let rows: Vec<usize> = (0..self.nrows).filter(|&r| pred(r)).collect();
        self.take(&rows)
    }

    /// The first `n` rows (or all rows if fewer).
    pub fn head(&self, n: usize) -> Table {
        let rows: Vec<usize> = (0..self.nrows.min(n)).collect();
        self.take(&rows)
    }

    /// Vertically concatenate another table with an identical schema.
    pub fn concat(&mut self, other: &Table) -> Result<()> {
        if self.schema != *other.schema() {
            return Err(TableError::RowArity {
                expected: self.schema.len(),
                found: other.schema().len(),
            });
        }
        for r in 0..other.nrows() {
            self.push_row(other.row(r))?;
        }
        Ok(())
    }

    /// Build an index from the display form of `attr` values to row indices.
    /// Used by key validation and id-pair joins. Nulls are skipped.
    pub fn key_index(&self, attr: &str) -> Result<HashMap<String, usize>> {
        let idx = self.schema.try_index_of(attr)?;
        let view = self.col_view(idx);
        let mut map = HashMap::with_capacity(self.nrows);
        for r in 0..self.nrows {
            let v = view.get(r);
            if !v.is_null() {
                map.insert(v.display_string(), r);
            }
        }
        Ok(map)
    }

    /// Iterate row indices.
    pub fn rows(&self) -> impl Iterator<Item = usize> {
        0..self.nrows
    }
}

impl fmt::Display for Table {
    /// Pretty-print the table (intended for small tables in examples).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = self.schema.names();
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(self.nrows);
        for r in 0..self.nrows {
            let row: Vec<String> = (0..self.ncols())
                .map(|c| self.value(r, c).display_string())
                .collect();
            for (w, cell) in widths.iter_mut().zip(&row) {
                *w = (*w).max(cell.len());
            }
            cells.push(row);
        }
        writeln!(f, "# {} ({} rows)", self.name, self.nrows)?;
        for (n, w) in names.iter().zip(&widths) {
            write!(f, "| {n:w$} ")?;
        }
        writeln!(f, "|")?;
        for w in &widths {
            write!(f, "|{:-<width$}", "", width = w + 2)?;
        }
        writeln!(f, "|")?;
        for row in &cells {
            for (cell, w) in row.iter().zip(&widths) {
                write!(f, "| {cell:w$} ")?;
            }
            writeln!(f, "|")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        Table::from_rows(
            "A",
            &[("id", Dtype::Str), ("name", Dtype::Str), ("age", Dtype::Int)],
            vec![
                vec!["a1".into(), "Dave Smith".into(), Value::Int(40)],
                vec!["a2".into(), "Joe Wilson".into(), Value::Null],
                vec!["a3".into(), "Dan Smith".into(), Value::Int(31)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let t = people();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 3);
        assert_eq!(t.value_by_name(0, "name").unwrap().as_str(), Some("Dave Smith"));
        assert!(t.value_by_name(1, "age").unwrap().is_null());
        assert!(t.value_by_name(9, "age").is_err());
        assert!(t.value_by_name(0, "zzz").is_err());
    }

    #[test]
    fn push_row_is_atomic_on_error() {
        let mut t = people();
        // Wrong arity leaves table untouched.
        assert!(t.push_row(vec!["a4".into()]).is_err());
        assert_eq!(t.nrows(), 3);
        // Type error in the *last* column must not partially append.
        assert!(t
            .push_row(vec!["a4".into(), "X".into(), "not-an-int".into()])
            .is_err());
        assert_eq!(t.nrows(), 3);
        for c in 0..t.ncols() {
            assert_eq!(t.column_at(c).len(), 3);
        }
    }

    #[test]
    fn fresh_ids_for_derived_tables() {
        let t = people();
        let p = t.project(&["id", "name"]).unwrap();
        let h = t.head(2);
        assert_ne!(t.id(), p.id());
        assert_ne!(t.id(), h.id());
        assert_eq!(p.ncols(), 2);
        assert_eq!(h.nrows(), 2);
    }

    #[test]
    fn filter_and_take() {
        let t = people();
        let smiths = t.filter(|r| {
            t.value_by_name(r, "name")
                .unwrap()
                .as_str()
                .is_some_and(|s| s.ends_with("Smith"))
        });
        assert_eq!(smiths.nrows(), 2);
        let rev = t.take(&[2, 1, 0]);
        assert_eq!(rev.value_by_name(0, "id").unwrap().as_str(), Some("a3"));
    }

    #[test]
    fn key_index_skips_nulls() {
        let mut t = people();
        t.push_row(vec![Value::Null, "Ghost".into(), Value::Null]).unwrap();
        let idx = t.key_index("id").unwrap();
        assert_eq!(idx.len(), 3);
        assert_eq!(idx["a2"], 1);
    }

    #[test]
    fn concat_same_schema() {
        let mut t = people();
        let u = people();
        t.concat(&u).unwrap();
        assert_eq!(t.nrows(), 6);
        let other = Table::from_rows("B", &[("x", Dtype::Int)], vec![]).unwrap();
        assert!(t.concat(&other).is_err());
    }

    #[test]
    fn add_column_validates_shape_and_type() {
        let mut t = people();
        let col = Column::Int(vec![Some(1), Some(2), Some(3)]);
        t.add_column(Field::new("rank", Dtype::Int), col).unwrap();
        assert_eq!(t.value_by_name(2, "rank").unwrap().as_int(), Some(3));

        let short = Column::Int(vec![Some(1)]);
        assert!(t.add_column(Field::new("bad", Dtype::Int), short).is_err());
        let wrong = Column::Str(vec![None, None, None]);
        assert!(t.add_column(Field::new("bad2", Dtype::Int), wrong).is_err());
    }

    #[test]
    fn display_renders_all_rows() {
        let t = people();
        let s = t.to_string();
        assert!(s.contains("Dave Smith") && s.contains("a3"));
    }
}
