//! Out-of-core storage tier experiment: the three layers of PR 9
//! measured end to end on a datagen corpus.
//!
//! 1. **`emtbl` vs CSV reload** — write the corpus both ways, then time
//!    "get the table queryable + one full scan of every cell" from cold:
//!    CSV must be re-parsed row by row, `emtbl` is opened (mmapped) and
//!    sliced zero-copy. Acceptance: `emtbl` scan throughput ≥ 2× CSV.
//! 2. **`emckpt v2` vs v1 size** — serialize the blocking phase's
//!    candidate set in both checkpoint formats. Acceptance: binary v2
//!    ≤ 0.5× the v1 text bytes.
//! 3. **Hash-sharded blocking under a memory budget** — join with the
//!    1M-row side *forced to be the indexed side* (`ProbeSide::Right`),
//!    under a budget the monolithic index exceeds. Acceptance: the
//!    sharded run's peak index bytes fit the budget; bit-identity vs
//!    the monolithic join is the `shard_oracle` proptest's job, while
//!    this binary records the memory story on a corpus-scale input.
//!
//! Writes `results/exp_outofcore.txt` and `BENCH_outofcore.json` at the
//! repo root (non-smoke only).

use std::fmt::Write as _;
use std::time::Instant;

use magellan_core::checkpoint::Checkpoint;
use magellan_datagen::{domains, DirtModel, ScenarioConfig};
use magellan_par::ParConfig;
use magellan_simjoin::{
    join_tokenized_sharded, shards_for_budget, ProbeSide, SetSimMeasure, TokenizedCollection,
};
use magellan_table::{csv, emtbl, MappedTable, Schema, Table, ValueRef};
use magellan_textsim::tokenize::WhitespaceTokenizer;

/// Touch every cell of a table-like source and fold a checksum, so the
/// scan cannot be optimized away and both paths do identical work.
fn scan_checksum(nrows: usize, ncols: usize, mut value: impl FnMut(usize, usize) -> u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for r in 0..nrows {
        for c in 0..ncols {
            h = h.wrapping_mul(0x100_0000_01b3) ^ value(r, c);
        }
    }
    h
}

fn value_token(v: ValueRef<'_>) -> u64 {
    match v {
        ValueRef::Null => 0,
        ValueRef::Bool(b) => 1 + u64::from(b),
        ValueRef::Int(i) => i as u64,
        ValueRef::Float(f) => f.to_bits(),
        ValueRef::Str(s) => s.len() as u64 ^ u64::from(s.as_bytes().first().copied().unwrap_or(0)),
    }
}

fn str_column(t: &Table, name: &str) -> Vec<Option<String>> {
    let c = t.schema().index_of(name).expect("column exists");
    (0..t.nrows())
        .map(|r| match t.value(r, c) {
            ValueRef::Str(s) => Some(s.to_owned()),
            _ => None,
        })
        .collect()
}

fn main() {
    magellan_obs::init_bin_logging(magellan_obs::Level::Info);
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    // The indexed side must dwarf the probe side for the memory story
    // to be the real one: 1M indexed rows non-smoke.
    let (rows_indexed, rows_probe) = if smoke { (20_000, 1_000) } else { (1_000_000, 50_000) };
    let dir = std::env::temp_dir().join(format!("magellan_outofcore_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let mut txt = String::new();
    writeln!(txt, "Out-of-core storage tier — emtbl scan, emckpt v2, sharded blocking").unwrap();
    writeln!(txt, "corpus: products {rows_indexed} x {rows_probe}, smoke = {smoke}").unwrap();

    // -- corpus ------------------------------------------------------------
    let t_gen = Instant::now();
    let scenario = domains::products(&ScenarioConfig {
        size_a: rows_indexed,
        size_b: rows_probe,
        n_matches: rows_probe / 2,
        dirt: DirtModel::light(),
        seed: 0xEC09,
    });
    writeln!(
        txt,
        "datagen: {} + {} rows in {:.1}s",
        scenario.table_a.nrows(),
        scenario.table_b.nrows(),
        t_gen.elapsed().as_secs_f64()
    )
    .unwrap();
    let big = &scenario.table_a;

    // -- 1. emtbl mmapped scan vs CSV reload -------------------------------
    let csv_path = dir.join("corpus.csv");
    let tbl_path = dir.join("corpus.emtbl");
    {
        let mut buf = Vec::new();
        csv::write_csv(big, &mut buf).expect("csv write");
        std::fs::write(&csv_path, &buf).expect("csv file");
    }
    emtbl::write_path(big, &tbl_path).expect("emtbl write");
    let csv_bytes = std::fs::metadata(&csv_path).unwrap().len();
    let tbl_bytes = std::fs::metadata(&tbl_path).unwrap().len();

    let (ncols, nrows) = (big.ncols(), big.nrows());
    let t0 = Instant::now();
    let csv_sum = {
        let bytes = std::fs::read(&csv_path).expect("csv read");
        let schema = Schema::new(big.schema().fields().to_vec()).unwrap();
        let t = csv::read_csv(bytes.as_slice(), "corpus", schema).expect("csv parse");
        scan_checksum(nrows, ncols, |r, c| value_token(t.value(r, c)))
    };
    let t_csv = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let (map_sum, map_mode) = {
        let m = MappedTable::open(&tbl_path).expect("emtbl open");
        let sum = scan_checksum(nrows, ncols, |r, c| value_token(m.value(r, c)));
        (sum, m.mode())
    };
    let t_map = t0.elapsed().as_secs_f64();
    assert_eq!(csv_sum, map_sum, "the two scans saw different cells");

    let cells_per_sec_csv = (nrows * ncols) as f64 / t_csv;
    let cells_per_sec_map = (nrows * ncols) as f64 / t_map;
    let scan_speedup = t_csv / t_map;
    writeln!(
        txt,
        "reload+scan: csv {t_csv:.2}s ({cells_per_sec_csv:.0} cells/s, {csv_bytes}B) vs emtbl[{map_mode}] {t_map:.2}s ({cells_per_sec_map:.0} cells/s, {tbl_bytes}B) -> {scan_speedup:.1}x"
    )
    .unwrap();

    // -- 3. sharded blocking under a budget (run before 2: its candidate
    //       set is what the checkpoint experiment serializes) -------------
    let left = str_column(big, "title");
    let right = str_column(&scenario.table_b, "title");
    let tok = WhitespaceTokenizer::new();
    let coll = TokenizedCollection::build(&left, &right, &tok);
    let measure = SetSimMeasure::Jaccard(0.7);
    // Right = probe with the right (small) collection, index the left
    // (1M-row) one: the configuration whose index cannot be assumed to
    // fit, which is the configuration the shard tier exists for.
    let side = ProbeSide::Right;
    let cfg = ParConfig::workers(4);

    let probe = Instant::now();
    let (_, _, probe_stats) = join_tokenized_sharded(&coll, measure, side, 1, &cfg);
    let t_mono = probe.elapsed().as_secs_f64();
    let monolithic_bytes = probe_stats.monolithic_index_bytes;
    let budget = monolithic_bytes / 4;
    let k = shards_for_budget(&coll, measure, side, budget);
    let t0 = Instant::now();
    let (pairs, _, sstats) = join_tokenized_sharded(&coll, measure, side, k, &cfg);
    let t_shard = t0.elapsed().as_secs_f64();
    writeln!(
        txt,
        "sharded blocking: budget {budget}B (monolithic {monolithic_bytes}B) -> K={k}, peak {}B, total {}B, |pairs|={}, {t_shard:.2}s (monolithic {t_mono:.2}s)",
        sstats.peak_index_bytes,
        sstats.total_index_bytes,
        pairs.len(),
    )
    .unwrap();

    // -- 2. emckpt v2 vs v1 on the blocking candidate set ------------------
    let candidates: Vec<(u32, u32)> = pairs.iter().map(|p| (p.l as u32, p.r as u32)).collect();
    let ckpt = Checkpoint::Blocked { candidates };
    let v1_bytes = ckpt.to_text().len();
    let v2 = ckpt.to_bytes();
    let v2_bytes = v2.len();
    let back = Checkpoint::from_bytes(&v2).expect("v2 parses");
    assert_eq!(back, ckpt, "v2 round-trip diverged");
    let ckpt_ratio = v2_bytes as f64 / v1_bytes as f64;
    writeln!(
        txt,
        "emckpt: v1 text {v1_bytes}B vs v2 binary {v2_bytes}B -> {ckpt_ratio:.3}x"
    )
    .unwrap();

    // -- acceptance --------------------------------------------------------
    writeln!(
        txt,
        "acceptance: scan {scan_speedup:.1}x (floor 2x), ckpt {ckpt_ratio:.3}x (ceiling 0.5x), peak {} <= budget {} < monolithic {}",
        sstats.peak_index_bytes, budget, monolithic_bytes
    )
    .unwrap();
    if !smoke {
        assert!(
            scan_speedup >= 2.0,
            "emtbl reload+scan did not clear 2x CSV: {scan_speedup:.2}x"
        );
        assert!(
            ckpt_ratio <= 0.5,
            "emckpt v2 is not <= 0.5x of v1: {ckpt_ratio:.3}x"
        );
        assert!(
            monolithic_bytes > budget,
            "budget experiment vacuous: monolithic index fits the budget"
        );
        assert!(
            sstats.peak_index_bytes <= budget,
            "sharded peak {}B exceeds budget {budget}B",
            sstats.peak_index_bytes
        );
    }
    magellan_obs::log!(info, "{txt}");

    let json = format!(
        "{{\n  \"experiment\": \"outofcore\",\n  \"workload\": {{\"rows_indexed\": {rows_indexed}, \"rows_probe\": {rows_probe}, \"scenario\": \"products\", \"smoke\": {smoke}}},\n  \"scan\": {{\"csv_secs\": {t_csv:.3}, \"emtbl_secs\": {t_map:.3}, \"emtbl_mode\": \"{map_mode}\", \"speedup\": {scan_speedup:.2}, \"csv_bytes\": {csv_bytes}, \"emtbl_bytes\": {tbl_bytes}}},\n  \"checkpoint\": {{\"pairs\": {}, \"v1_bytes\": {v1_bytes}, \"v2_bytes\": {v2_bytes}, \"ratio\": {ckpt_ratio:.3}}},\n  \"shards\": {{\"budget_bytes\": {budget}, \"monolithic_index_bytes\": {monolithic_bytes}, \"k\": {k}, \"peak_index_bytes\": {}, \"total_index_bytes\": {}, \"sharded_secs\": {t_shard:.2}, \"monolithic_secs\": {t_mono:.2}}}\n}}\n",
        pairs.len(),
        sstats.peak_index_bytes,
        sstats.total_index_bytes,
    );
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/exp_outofcore.txt", &txt);
    if !smoke {
        let _ = std::fs::write("BENCH_outofcore.json", &json);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
