//! Table 3 — developing tools for the steps of the guide.
//!
//! Regenerated from the live command registry: for every guide step, the
//! commands that serve it, split by origin (existing substrate / own code
//! / pain-point tool), plus the per-step command count (the paper's
//! column E).

use magellan_core::registry::{commands, commands_per_step, CommandOrigin, GuideStep};

fn main() {
    println!("Table 3 analog — tools per guide step");
    println!(
        "{:26} {:>9} {:>9} {:>11} {:>9}",
        "guide step", "substrate", "own code", "pain points", "commands"
    );
    let all = commands();
    for (step, count) in commands_per_step() {
        let by = |origin: CommandOrigin| {
            all.iter()
                .filter(|c| c.step == step && c.origin == origin)
                .count()
        };
        println!(
            "{:26} {:>9} {:>9} {:>11} {:>9}",
            step.to_string(),
            by(CommandOrigin::ExistingPackage),
            by(CommandOrigin::OwnCode),
            by(CommandOrigin::PainPointTool),
            count
        );
    }
    println!("\ntotal commands: {}", all.len());
    println!("\npain-point tools (the paper's column D):");
    for c in all.iter().filter(|c| c.origin == CommandOrigin::PainPointTool) {
        println!("  [{:26}] {}", c.step.to_string(), c.name);
    }
    println!("\nmain packages (the paper lists 6 making up PyMatcher):");
    for p in [
        "magellan-table",
        "magellan-textsim (py_stringmatching)",
        "magellan-simjoin (py_stringsimjoin)",
        "magellan-ml",
        "magellan-block",
        "magellan-features",
        "magellan-core (py_entitymatching)",
    ] {
        println!("  {p}");
    }
    let _ = GuideStep::all();
}
