//! Matching debuggers (Table 3, pain-point column: "Matching debuggers").
//!
//! After the quality check, the guide's loop goes "back and debug and
//! modify the previous steps". This module ranks the false positives and
//! false negatives of a labeled evaluation and explains each by the
//! features that most disagree with the verdict, so the user can see
//! *which similarity signals* misled the matcher.

use magellan_features::FeatureMatrix;

/// The kind of mistake a debugged pair represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MistakeKind {
    /// Predicted match, labeled no-match.
    FalsePositive,
    /// Predicted no-match, labeled match.
    FalseNegative,
}

/// One mistaken pair with its explanation.
#[derive(Debug, Clone)]
pub struct Mistake {
    /// Position within the evaluated matrix.
    pub row: usize,
    /// The `(a_row, b_row)` pair.
    pub pair: (u32, u32),
    /// FP or FN.
    pub kind: MistakeKind,
    /// Matcher confidence (probability of match).
    pub proba: f64,
    /// The features most responsible, as `(name, value)`:
    /// for FPs the *highest* similarities (what fooled the matcher),
    /// for FNs the *lowest* (what hid the match). NaNs are skipped.
    pub evidence: Vec<(String, f64)>,
}

/// Analyze mistakes over a labeled matrix.
///
/// `probas` are matcher probabilities aligned with `matrix.rows`; `labels`
/// are the gold labels; `threshold` is the operating point; `top_k`
/// features are reported as evidence per mistake.
pub fn debug_matches(
    matrix: &FeatureMatrix,
    probas: &[f64],
    labels: &[bool],
    threshold: f64,
    top_k: usize,
) -> Vec<Mistake> {
    assert_eq!(matrix.len(), probas.len(), "probas length mismatch");
    assert_eq!(matrix.len(), labels.len(), "labels length mismatch");
    let mut mistakes = Vec::new();
    for (i, (&p, &gold)) in probas.iter().zip(labels).enumerate() {
        let predicted = p >= threshold;
        if predicted == gold {
            continue;
        }
        let kind = if predicted {
            MistakeKind::FalsePositive
        } else {
            MistakeKind::FalseNegative
        };
        let mut feats: Vec<(String, f64)> = matrix
            .names
            .iter()
            .zip(&matrix.rows[i])
            .filter(|(_, v)| !v.is_nan())
            .map(|(n, &v)| (n.clone(), v))
            .collect();
        match kind {
            // FP: sort by value descending — the high sims that fooled us.
            MistakeKind::FalsePositive => {
                feats.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal))
            }
            // FN: ascending — the low sims that hid the match.
            MistakeKind::FalseNegative => {
                feats.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            }
        }
        feats.truncate(top_k);
        mistakes.push(Mistake {
            row: i,
            pair: matrix.pairs[i],
            kind,
            proba: p,
            evidence: feats,
        });
    }
    // Most confident mistakes first: FPs by proba desc, FNs by proba asc,
    // interleaved by |proba - threshold| descending.
    mistakes.sort_by(|a, b| {
        let da = (a.proba - threshold).abs();
        let db = (b.proba - threshold).abs();
        db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal).then(a.row.cmp(&b.row))
    });
    mistakes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> FeatureMatrix {
        FeatureMatrix {
            names: vec!["name_sim".into(), "price_sim".into()],
            rows: vec![
                vec![0.9, 0.95],  // true match, predicted match: correct
                vec![0.85, 0.1],  // predicted match, actually not: FP
                vec![0.2, f64::NAN], // predicted no, actually match: FN
                vec![0.1, 0.1],   // correct reject
            ],
            pairs: vec![(0, 0), (1, 1), (2, 2), (3, 3)],
        }
    }

    #[test]
    fn finds_and_classifies_mistakes() {
        let m = matrix();
        let probas = [0.95, 0.8, 0.3, 0.05];
        let labels = [true, false, true, false];
        let mistakes = debug_matches(&m, &probas, &labels, 0.5, 2);
        assert_eq!(mistakes.len(), 2);
        let fp = mistakes.iter().find(|x| x.kind == MistakeKind::FalsePositive).unwrap();
        assert_eq!(fp.pair, (1, 1));
        // FP evidence leads with the high name similarity that fooled us.
        assert_eq!(fp.evidence[0].0, "name_sim");
        let fn_ = mistakes.iter().find(|x| x.kind == MistakeKind::FalseNegative).unwrap();
        assert_eq!(fn_.pair, (2, 2));
        // NaN feature must be excluded from evidence.
        assert_eq!(fn_.evidence.len(), 1);
        assert_eq!(fn_.evidence[0].0, "name_sim");
    }

    #[test]
    fn most_confident_mistakes_first() {
        let m = matrix();
        let probas = [0.95, 0.99, 0.01, 0.05]; // FP at 0.99 is the worst
        let labels = [true, false, true, false];
        let mistakes = debug_matches(&m, &probas, &labels, 0.5, 1);
        assert_eq!(mistakes[0].pair, (1, 1));
        assert_eq!(mistakes[1].pair, (2, 2));
    }

    #[test]
    fn no_mistakes_no_output() {
        let m = matrix();
        let probas = [0.9, 0.1, 0.9, 0.1];
        let labels = [true, false, true, false];
        assert!(debug_matches(&m, &probas, &labels, 0.5, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "labels length")]
    fn mismatched_labels_panic() {
        debug_matches(&matrix(), &[0.1, 0.2, 0.3, 0.4], &[true], 0.5, 1);
    }
}
