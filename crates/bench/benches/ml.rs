//! Learner training/prediction throughput (matcher-selection inner loops).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use magellan_ml::cv::cross_validate;
use magellan_ml::{
    Dataset, DecisionTreeLearner, Learner, LogisticRegressionLearner, RandomForestLearner,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn em_like_dataset(n: usize, k: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::with_dims(k);
    let mut row = vec![0.0f64; k];
    for _ in 0..n {
        let pos = rng.gen_bool(0.2);
        for v in row.iter_mut() {
            let base: f64 = if pos { 0.8 } else { 0.3 };
            *v = (base + rng.gen_range(-0.3..0.3)).clamp(0.0, 1.0);
            if rng.gen_bool(0.05) {
                *v = f64::NAN; // missing similarity
            }
        }
        d.push(&row, pos);
    }
    d
}

fn bench_training(c: &mut Criterion) {
    let mut g = c.benchmark_group("train");
    g.sample_size(10);
    let data = em_like_dataset(2000, 12, 1);
    g.bench_function("decision_tree_2k", |b| {
        b.iter(|| black_box(DecisionTreeLearner::default().fit_tree(black_box(&data))))
    });
    g.bench_function("random_forest10_2k", |b| {
        b.iter(|| {
            black_box(
                RandomForestLearner {
                    n_trees: 10,
                    ..Default::default()
                }
                .fit_forest(black_box(&data)),
            )
        })
    });
    g.bench_function("logistic_2k", |b| {
        b.iter(|| black_box(LogisticRegressionLearner::default().fit(black_box(&data))))
    });
    g.finish();
}

fn bench_prediction_and_cv(c: &mut Criterion) {
    let mut g = c.benchmark_group("predict");
    g.sample_size(10);
    let data = em_like_dataset(2000, 12, 2);
    let forest = RandomForestLearner {
        n_trees: 10,
        ..Default::default()
    }
    .fit_forest(&data);
    let probe = em_like_dataset(10_000, 12, 3);
    g.bench_function("forest_predict_10k", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for i in 0..probe.len() {
                if magellan_ml::Classifier::predict(&forest, probe.row(i)) {
                    n += 1;
                }
            }
            black_box(n)
        })
    });
    g.bench_function("cv5_tree_2k", |b| {
        b.iter(|| {
            black_box(cross_validate(
                &DecisionTreeLearner::default(),
                black_box(&data),
                5,
                7,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_training, bench_prediction_and_cv);
criterion_main!(benches);
