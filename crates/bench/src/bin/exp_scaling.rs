//! §4.1 production stage — multi-core scaling of a captured workflow (the
//! Dask-substitute executor) and the candidate-schema space ablation.
//!
//! Shapes to reproduce: near-linear matching-phase speedup with worker
//! count, and (the §4.1 efficiency principle) an `(l_id, r_id)`-only
//! candidate table being an order of magnitude smaller than one that
//! materializes both tuples' attributes.

use std::time::Instant;

use magellan_bench::score;
use magellan_block::{Blocker, OverlapBlocker};
use magellan_core::exec::ProductionExecutor;
use magellan_core::labeling::OracleLabeler;
use magellan_core::pipeline::{run_development_stage, DevConfig};
use magellan_datagen::domains::persons;
use magellan_datagen::{DirtModel, ScenarioConfig};
use magellan_features::generate_features;
use magellan_ml::{Learner, RandomForestLearner};

fn main() {
    // Experiment narration is leveled logging: MAGELLAN_LOG=off silences it.
    magellan_obs::init_bin_logging(magellan_obs::Level::Info);
    let s = persons(&ScenarioConfig {
        size_a: 8_000,
        size_b: 8_000,
        n_matches: 2_500,
        dirt: DirtModel::light(),
        seed: 77,
    });
    let (a, b) = (&s.table_a, &s.table_b);

    // Develop a workflow once (on a down-sample), then scale it out.
    let features = generate_features(a, b, &["id"]).expect("features");
    let mut labeler = OracleLabeler::new(s.gold.clone(), "id", "id");
    let forest = RandomForestLearner {
        n_trees: 12,
        ..Default::default()
    };
    let learners: Vec<&dyn Learner> = vec![&forest];
    let (workflow, _) = run_development_stage(
        a,
        b,
        vec![Box::new(OverlapBlocker::words("name", 1))],
        features,
        &learners,
        &mut labeler,
        &DevConfig {
            down_sample_to: Some(2000),
            sample_size: 700,
            ..Default::default()
        },
    )
    .expect("development stage");

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    magellan_obs::log!(info, "Production-stage scaling — {} x {} tuples", a.nrows(), b.nrows());
    magellan_obs::log!(info, 
        "host exposes {cores} core(s); near-linear speedup requires a multi-core host —\n\
         on a single core the table below measures pure threading overhead instead"
    );
    magellan_obs::log!(info, 
        "{:>8} {:>12} {:>12} {:>10} {:>8}",
        "workers", "blocking", "matching", "total", "speedup"
    );
    let mut base = None;
    for workers in [1usize, 2, 4] {
        let exec = ProductionExecutor::new(workers);
        let rep = exec.run(&workflow, a, b).expect("production run");
        let total = rep.timings.total().as_secs_f64();
        let matching = rep.timings.matching.as_secs_f64();
        let speedup = base.get_or_insert(matching).max(1e-9) / matching.max(1e-9);
        magellan_obs::log!(info, 
            "{:>8} {:>11.2}s {:>11.2}s {:>9.2}s {:>7.2}x",
            workers,
            rep.timings.blocking.as_secs_f64(),
            matching,
            total,
            speedup
        );
        if workers == 4 {
            let m = score(&rep.matches, a, b, &s.gold);
            magellan_obs::log!(info, "\naccuracy at 4 workers (identical at any count): {m}");
        }
    }

    // --- candidate-schema ablation (the (A.id, B.id)-only principle) ---
    magellan_obs::log!(info, "\nCandidate-schema ablation (§4.1 space-efficiency principle):");
    let cands = OverlapBlocker::words("name", 1).block(a, b).expect("blocker");
    let t0 = Instant::now();
    let id_only_bytes: usize = cands
        .pairs()
        .iter()
        .map(|_| 2 * std::mem::size_of::<u32>() + 8) // two short ids
        .sum();
    let id_only_t = t0.elapsed();
    let t1 = Instant::now();
    let materialized_bytes: usize = cands
        .pairs()
        .iter()
        .map(|&(ra, rb)| {
            let mut n = 0usize;
            for c in 0..a.ncols() {
                n += a.value(ra as usize, c).display_string().len();
            }
            for c in 0..b.ncols() {
                n += b.value(rb as usize, c).display_string().len();
            }
            n
        })
        .sum();
    let materialized_t = t1.elapsed();
    magellan_obs::log!(info, 
        "  |C| = {} pairs;  (l_id, r_id) schema ≈ {:.1} MB ({id_only_t:?});",
        cands.len(),
        id_only_bytes as f64 / 1e6
    );
    magellan_obs::log!(info, 
        "  fully materialized schema ≈ {:.1} MB ({materialized_t:?});  ratio {:.0}x",
        materialized_bytes as f64 / 1e6,
        materialized_bytes as f64 / id_only_bytes.max(1) as f64
    );
}
