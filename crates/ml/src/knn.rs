//! k-nearest-neighbours classifier (brute force, Euclidean over
//! standardized features).

use crate::dataset::Dataset;
use crate::model::{Classifier, Learner};

/// kNN learner.
#[derive(Debug, Clone, Copy)]
pub struct KnnLearner {
    /// Neighbourhood size.
    pub k: usize,
}

impl Default for KnnLearner {
    fn default() -> Self {
        KnnLearner { k: 5 }
    }
}

/// Trained (memorized) kNN model.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    k: usize,
    data: Dataset,
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Learner for KnnLearner {
    fn name(&self) -> &str {
        "knn"
    }

    fn fit(&self, data: &Dataset) -> Box<dyn Classifier> {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        assert!(self.k >= 1, "k must be at least 1");
        let kf = data.n_features();
        let mut means = vec![0.0; kf];
        let mut counts = vec![0usize; kf];
        for i in 0..data.len() {
            for (j, &x) in data.row(i).iter().enumerate() {
                if !x.is_nan() {
                    means[j] += x;
                    counts[j] += 1;
                }
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            if c > 0 {
                *m /= c as f64;
            }
        }
        let mut stds = vec![0.0; kf];
        for i in 0..data.len() {
            for (j, &x) in data.row(i).iter().enumerate() {
                if !x.is_nan() {
                    stds[j] += (x - means[j]).powi(2);
                }
            }
        }
        for (s, &c) in stds.iter_mut().zip(&counts) {
            *s = if c == 0 { 1.0 } else { (*s / c as f64).sqrt().max(1e-12) };
        }
        Box::new(KnnClassifier {
            k: self.k,
            data: data.clone(),
            means,
            stds,
        })
    }
}

impl KnnClassifier {
    fn dist2(&self, a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .enumerate()
            .map(|(j, (&x, &y))| {
                let xs = if x.is_nan() { 0.0 } else { (x - self.means[j]) / self.stds[j] };
                let ys = if y.is_nan() { 0.0 } else { (y - self.means[j]) / self.stds[j] };
                (xs - ys).powi(2)
            })
            .sum()
    }
}

impl Classifier for KnnClassifier {
    fn predict_proba(&self, row: &[f64]) -> f64 {
        let k = self.k.min(self.data.len());
        // Partial selection of the k smallest distances.
        let mut dists: Vec<(f64, bool)> = (0..self.data.len())
            .map(|i| (self.dist2(row, self.data.row(i)), self.data.label(i)))
            .collect();
        dists.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let pos = dists[..k].iter().filter(|(_, l)| *l).count();
        pos as f64 / k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> Dataset {
        // XOR with 3 copies per corner: non-linear, kNN handles it.
        let mut d = Dataset::with_dims(2);
        for _ in 0..3 {
            d.push(&[0.0, 0.0], false);
            d.push(&[1.0, 1.0], false);
            d.push(&[0.0, 1.0], true);
            d.push(&[1.0, 0.0], true);
        }
        d
    }

    #[test]
    fn knn_solves_xor() {
        let c = KnnLearner { k: 3 }.fit(&xor_data());
        assert!(!c.predict(&[0.05, 0.05]));
        assert!(!c.predict(&[0.95, 0.95]));
        assert!(c.predict(&[0.05, 0.95]));
        assert!(c.predict(&[0.95, 0.05]));
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let d = Dataset::from_rows(&[vec![0.0], vec![1.0]], &[false, true]);
        let c = KnnLearner { k: 10 }.fit(&d);
        assert_eq!(c.predict_proba(&[0.0]), 0.5);
    }

    #[test]
    fn proba_is_neighbour_fraction() {
        let d = Dataset::from_rows(
            &[vec![0.0], vec![0.1], vec![0.2], vec![10.0]],
            &[true, true, false, false],
        );
        let c = KnnLearner { k: 3 }.fit(&d);
        let p = c.predict_proba(&[0.05]);
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn nan_query_is_tolerated() {
        let c = KnnLearner::default().fit(&xor_data());
        let p = c.predict_proba(&[f64::NAN, f64::NAN]);
        assert!(p.is_finite());
    }
}
