//! The captured EM workflow — the artifact the development stage produces
//! and the production stage executes (the paper's "Python script W").

use magellan_block::{Blocker, CandidateSet};
use magellan_features::{extract_feature_matrix, Feature, FeatureMatrix};
use magellan_ml::Classifier;
use magellan_table::Table;

use crate::rules::RuleLayer;

/// A complete, trained EM workflow: blocker → features → matcher → rules.
pub struct EmWorkflow {
    /// The blocking step.
    pub blocker: Box<dyn Blocker>,
    /// Features computed per candidate pair.
    pub features: Vec<Feature>,
    /// The trained matcher.
    pub matcher: Box<dyn Classifier>,
    /// Post-prediction rule layer (may be empty).
    pub rule_layer: RuleLayer,
    /// Matcher probability threshold for "match" (default 0.5).
    pub threshold: f64,
}

/// The output of running a workflow.
pub struct WorkflowOutput {
    /// Candidate pairs that survived blocking.
    pub candidates: CandidateSet,
    /// Feature matrix over the candidates.
    pub matrix: FeatureMatrix,
    /// Final per-candidate decisions (post rules), aligned with
    /// `matrix.pairs`.
    pub decisions: Vec<bool>,
}

impl WorkflowOutput {
    /// The predicted matches as a candidate set.
    pub fn matches(&self) -> CandidateSet {
        self.matrix
            .pairs
            .iter()
            .zip(&self.decisions)
            .filter_map(|(&p, &d)| d.then_some(p))
            .collect()
    }

    /// Number of predicted matches.
    pub fn n_matches(&self) -> usize {
        self.decisions.iter().filter(|&&d| d).count()
    }
}

impl EmWorkflow {
    /// Run end to end on two tables (single-threaded; the production
    /// executor in [`crate::exec`] parallelizes the predict loop).
    pub fn execute(&self, a: &Table, b: &Table) -> magellan_table::Result<WorkflowOutput> {
        let candidates = self.blocker.block(a, b)?;
        let matrix = extract_feature_matrix(candidates.pairs(), a, b, &self.features)?;
        let predicted: Vec<bool> = matrix
            .rows
            .iter()
            .map(|row| self.matcher.predict_proba(row) >= self.threshold)
            .collect();
        let decisions = self.rule_layer.apply(&matrix, &predicted);
        Ok(WorkflowOutput {
            candidates,
            matrix,
            decisions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_block::OverlapBlocker;
    use magellan_features::{FeatureKind, TokSpecF};
    use magellan_ml::model::ConstantClassifier;
    use magellan_table::Dtype;

    fn tables() -> (Table, Table) {
        let a = Table::from_rows(
            "A",
            &[("id", Dtype::Str), ("name", Dtype::Str)],
            vec![
                vec!["a0".into(), "dave smith".into()],
                vec!["a1".into(), "joe wilson".into()],
            ],
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            &[("id", Dtype::Str), ("name", Dtype::Str)],
            vec![
                vec!["b0".into(), "dave smith".into()],
                vec!["b1".into(), "maria garcia".into()],
            ],
        )
        .unwrap();
        (a, b)
    }

    #[test]
    fn executes_block_feature_predict_rule() {
        let (a, b) = tables();
        let wf = EmWorkflow {
            blocker: Box::new(OverlapBlocker::words("name", 1)),
            features: vec![Feature::new(
                "name",
                "name",
                FeatureKind::Jaccard(TokSpecF::Word),
            )],
            matcher: Box::new(ConstantClassifier { proba: 1.0 }),
            rule_layer: RuleLayer::new(vec![crate::rules::MatchRule::reject(
                "weak name",
                vec![(
                    "jaccard(word(A.name), word(B.name))".into(),
                    crate::rules::Cmp::Lt,
                    0.9,
                )],
            )]),
            threshold: 0.5,
        };
        let out = wf.execute(&a, &b).unwrap();
        // Blocking keeps only (a0,b0) (shared tokens).
        assert_eq!(out.candidates.pairs(), &[(0, 0)]);
        // Constant matcher says yes; rule layer keeps it (jaccard = 1.0).
        assert_eq!(out.n_matches(), 1);
        assert!(out.matches().contains((0, 0)));
    }

    #[test]
    fn threshold_gates_matches() {
        let (a, b) = tables();
        let wf = EmWorkflow {
            blocker: Box::new(OverlapBlocker::words("name", 1)),
            features: vec![],
            matcher: Box::new(ConstantClassifier { proba: 0.6 }),
            rule_layer: RuleLayer::empty(),
            threshold: 0.7,
        };
        let out = wf.execute(&a, &b).unwrap();
        assert_eq!(out.n_matches(), 0);
    }
}
