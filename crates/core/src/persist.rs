//! Workflow persistence: save a captured [`EmWorkflow`] as a text artifact
//! and rebuild it in another process.
//!
//! §4.1: the development stage's output "is captured as a Python script"
//! that the production stage executes. The Rust equivalent is a
//! [`WorkflowSpec`] — pure data describing the blocker, the feature set,
//! the trained forest, the rule layer, and the threshold — with a
//! line-oriented, dependency-free text encoding. Only forest matchers are
//! persistable (they are what Falcon and the pipeline's best-performing
//! configurations produce); other matcher types must be re-trained from
//! the labeled data.
//!
//! Field separators are tabs; attribute and rule names may contain any
//! character except tab and newline (checked at save time).

use magellan_block::{
    AttrEquivalenceBlocker, Blocker, BlockingRule, HashBlocker, OverlapBlocker, Predicate,
    RuleBasedBlocker, SimFeature, SimJoinBlocker, SortedNeighborhoodBlocker, TokSpec,
};
use magellan_features::{Feature, FeatureKind, TokSpecF};
use magellan_ml::persist::{load_forest, save_forest, PersistError};
use magellan_ml::RandomForestClassifier;
use magellan_simjoin::SetSimMeasure;

use crate::rules::{Cmp, MatchRule, RuleAction, RuleLayer};
use crate::workflow::EmWorkflow;

/// A persistable blocker description.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockerSpec {
    /// [`AttrEquivalenceBlocker`].
    AttrEquivalence {
        /// Left attribute.
        l_attr: String,
        /// Right attribute.
        r_attr: String,
    },
    /// [`HashBlocker`].
    Hash {
        /// Left attribute.
        l_attr: String,
        /// Right attribute.
        r_attr: String,
        /// Bucket count.
        n_buckets: usize,
    },
    /// [`OverlapBlocker`].
    Overlap {
        /// Left attribute.
        l_attr: String,
        /// Right attribute.
        r_attr: String,
        /// Minimum shared tokens.
        overlap_size: usize,
        /// Q-gram size (`None` = word tokens).
        qgram: Option<usize>,
    },
    /// [`SimJoinBlocker`].
    SimJoin {
        /// Left attribute.
        l_attr: String,
        /// Right attribute.
        r_attr: String,
        /// Join measure.
        measure: SetSimMeasure,
        /// Q-gram size (`None` = word tokens).
        qgram: Option<usize>,
    },
    /// [`SortedNeighborhoodBlocker`].
    SortedNeighborhood {
        /// Left attribute.
        l_attr: String,
        /// Right attribute.
        r_attr: String,
        /// Window size.
        window: usize,
    },
    /// [`RuleBasedBlocker`].
    Rules(Vec<BlockingRule>),
}

impl BlockerSpec {
    /// Instantiate the blocker.
    pub fn build(&self) -> Box<dyn Blocker> {
        match self {
            BlockerSpec::AttrEquivalence { l_attr, r_attr } => {
                Box::new(AttrEquivalenceBlocker {
                    l_attr: l_attr.clone(),
                    r_attr: r_attr.clone(),
                })
            }
            BlockerSpec::Hash {
                l_attr,
                r_attr,
                n_buckets,
            } => Box::new(HashBlocker {
                l_attr: l_attr.clone(),
                r_attr: r_attr.clone(),
                n_buckets: *n_buckets,
            }),
            BlockerSpec::Overlap {
                l_attr,
                r_attr,
                overlap_size,
                qgram,
            } => Box::new(OverlapBlocker {
                l_attr: l_attr.clone(),
                r_attr: r_attr.clone(),
                overlap_size: *overlap_size,
                qgram: *qgram,
                shards: 1,
            }),
            BlockerSpec::SimJoin {
                l_attr,
                r_attr,
                measure,
                qgram,
            } => Box::new(SimJoinBlocker {
                l_attr: l_attr.clone(),
                r_attr: r_attr.clone(),
                measure: *measure,
                qgram: *qgram,
                shards: 1,
            }),
            BlockerSpec::SortedNeighborhood {
                l_attr,
                r_attr,
                window,
            } => Box::new(SortedNeighborhoodBlocker {
                l_attr: l_attr.clone(),
                r_attr: r_attr.clone(),
                window: *window,
            }),
            BlockerSpec::Rules(rules) => Box::new(RuleBasedBlocker::new(rules.clone())),
        }
    }
}

/// A fully persistable workflow description.
#[derive(Debug, Clone)]
pub struct WorkflowSpec {
    /// The blocking step.
    pub blocker: BlockerSpec,
    /// The feature set.
    pub features: Vec<Feature>,
    /// The trained forest matcher.
    pub forest: RandomForestClassifier,
    /// The post-prediction rule layer.
    pub rule_layer: RuleLayer,
    /// Match threshold.
    pub threshold: f64,
}

impl WorkflowSpec {
    /// Instantiate a runnable workflow.
    pub fn build(self) -> EmWorkflow {
        EmWorkflow {
            blocker: self.blocker.build(),
            features: self.features,
            matcher: Box::new(self.forest),
            rule_layer: self.rule_layer,
            threshold: self.threshold,
        }
    }
}

fn check_name(s: &str) -> &str {
    debug_assert!(
        !s.contains('\t') && !s.contains('\n'),
        "names may not contain tabs or newlines: {s:?}"
    );
    s
}

fn tok_label(t: TokSpec) -> String {
    match t {
        TokSpec::Word => "word".to_owned(),
        TokSpec::Qgram(q) => format!("q{q}"),
    }
}

fn parse_tok(s: &str, line: usize) -> Result<TokSpec, PersistError> {
    if s == "word" {
        Ok(TokSpec::Word)
    } else if let Some(q) = s.strip_prefix('q').and_then(|v| v.parse().ok()) {
        Ok(TokSpec::Qgram(q))
    } else {
        Err(PersistError {
            line,
            message: format!("bad tokenizer spec `{s}`"),
        })
    }
}

fn tokf_label(t: TokSpecF) -> String {
    match t {
        TokSpecF::Word => "word".to_owned(),
        TokSpecF::Qgram(q) => format!("q{q}"),
    }
}

fn parse_tokf(s: &str, line: usize) -> Result<TokSpecF, PersistError> {
    if s == "word" {
        Ok(TokSpecF::Word)
    } else if let Some(q) = s.strip_prefix('q').and_then(|v| v.parse().ok()) {
        Ok(TokSpecF::Qgram(q))
    } else {
        Err(PersistError {
            line,
            message: format!("bad tokenizer spec `{s}`"),
        })
    }
}

fn kind_label(kind: FeatureKind) -> String {
    match kind {
        FeatureKind::ExactMatch => "exact_match".into(),
        FeatureKind::LevSim => "lev_sim".into(),
        FeatureKind::Jaro => "jaro".into(),
        FeatureKind::JaroWinkler => "jaro_winkler".into(),
        FeatureKind::MongeElkanJw => "monge_elkan".into(),
        FeatureKind::Jaccard(t) => format!("jaccard:{}", tokf_label(t)),
        FeatureKind::Cosine(t) => format!("cosine:{}", tokf_label(t)),
        FeatureKind::Dice(t) => format!("dice:{}", tokf_label(t)),
        FeatureKind::OverlapCoeff(t) => format!("overlap_coeff:{}", tokf_label(t)),
        FeatureKind::ExactNum => "exact_num".into(),
        FeatureKind::AbsDiff => "abs_diff".into(),
        FeatureKind::RelDiff => "rel_diff".into(),
    }
}

fn parse_kind(s: &str, line: usize) -> Result<FeatureKind, PersistError> {
    let bad = || PersistError {
        line,
        message: format!("bad feature kind `{s}`"),
    };
    Ok(match s {
        "exact_match" => FeatureKind::ExactMatch,
        "lev_sim" => FeatureKind::LevSim,
        "jaro" => FeatureKind::Jaro,
        "jaro_winkler" => FeatureKind::JaroWinkler,
        "monge_elkan" => FeatureKind::MongeElkanJw,
        "exact_num" => FeatureKind::ExactNum,
        "abs_diff" => FeatureKind::AbsDiff,
        "rel_diff" => FeatureKind::RelDiff,
        _ => {
            let (outer, tok) = s.split_once(':').ok_or_else(bad)?;
            let t = parse_tokf(tok, line)?;
            match outer {
                "jaccard" => FeatureKind::Jaccard(t),
                "cosine" => FeatureKind::Cosine(t),
                "dice" => FeatureKind::Dice(t),
                "overlap_coeff" => FeatureKind::OverlapCoeff(t),
                _ => return Err(bad()),
            }
        }
    })
}

fn sim_feature_label(f: SimFeature) -> String {
    match f {
        SimFeature::ExactMatch => "exact_match".into(),
        SimFeature::Jaccard(t) => format!("jaccard:{}", tok_label(t)),
        SimFeature::Cosine(t) => format!("cosine:{}", tok_label(t)),
        SimFeature::Dice(t) => format!("dice:{}", tok_label(t)),
    }
}

fn parse_sim_feature(s: &str, line: usize) -> Result<SimFeature, PersistError> {
    let bad = || PersistError {
        line,
        message: format!("bad blocking feature `{s}`"),
    };
    Ok(match s {
        "exact_match" => SimFeature::ExactMatch,
        _ => {
            let (outer, tok) = s.split_once(':').ok_or_else(bad)?;
            let t = parse_tok(tok, line)?;
            match outer {
                "jaccard" => SimFeature::Jaccard(t),
                "cosine" => SimFeature::Cosine(t),
                "dice" => SimFeature::Dice(t),
                _ => return Err(bad()),
            }
        }
    })
}

/// Serialize a workflow spec.
pub fn save_workflow(spec: &WorkflowSpec) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(out, "workflow v1").unwrap();
    writeln!(out, "threshold {}", spec.threshold).unwrap();
    match &spec.blocker {
        BlockerSpec::AttrEquivalence { l_attr, r_attr } => {
            writeln!(out, "blocker attr_equiv\t{}\t{}", check_name(l_attr), check_name(r_attr)).unwrap()
        }
        BlockerSpec::Hash {
            l_attr,
            r_attr,
            n_buckets,
        } => writeln!(out, "blocker hash\t{}\t{}\t{n_buckets}", check_name(l_attr), check_name(r_attr)).unwrap(),
        BlockerSpec::Overlap {
            l_attr,
            r_attr,
            overlap_size,
            qgram,
        } => writeln!(
            out,
            "blocker overlap\t{}\t{}\t{overlap_size}\t{}",
            check_name(l_attr),
            check_name(r_attr),
            qgram.map_or(-1i64, |q| q as i64)
        )
        .unwrap(),
        BlockerSpec::SimJoin {
            l_attr,
            r_attr,
            measure,
            qgram,
        } => {
            let m = match measure {
                SetSimMeasure::Jaccard(t) => format!("jaccard {t}"),
                SetSimMeasure::Cosine(t) => format!("cosine {t}"),
                SetSimMeasure::Dice(t) => format!("dice {t}"),
                SetSimMeasure::OverlapSize(c) => format!("overlap_size {c}"),
            };
            writeln!(
                out,
                "blocker simjoin\t{}\t{}\t{m}\t{}",
                check_name(l_attr),
                check_name(r_attr),
                qgram.map_or(-1i64, |q| q as i64)
            )
            .unwrap()
        }
        BlockerSpec::SortedNeighborhood {
            l_attr,
            r_attr,
            window,
        } => writeln!(
            out,
            "blocker sorted_neighborhood\t{}\t{}\t{window}",
            check_name(l_attr),
            check_name(r_attr)
        )
        .unwrap(),
        BlockerSpec::Rules(rules) => {
            writeln!(out, "blocker rules {}", rules.len()).unwrap();
            for rule in rules {
                writeln!(out, "brule {}", rule.predicates.len()).unwrap();
                for p in &rule.predicates {
                    writeln!(
                        out,
                        "bpred {} {}\t{}\t{}",
                        sim_feature_label(p.feature),
                        p.threshold,
                        check_name(&p.l_attr),
                        check_name(&p.r_attr)
                    )
                    .unwrap();
                }
            }
        }
    }
    writeln!(out, "features {}", spec.features.len()).unwrap();
    for f in &spec.features {
        writeln!(
            out,
            "feature {}\t{}\t{}\t{}",
            kind_label(f.kind),
            check_name(&f.l_attr),
            check_name(&f.r_attr),
            check_name(&f.name)
        )
        .unwrap();
    }
    writeln!(out, "rules {}", spec.rule_layer.rules.len()).unwrap();
    for rule in &spec.rule_layer.rules {
        let action = match rule.action {
            RuleAction::Accept => "accept",
            RuleAction::Reject => "reject",
        };
        writeln!(
            out,
            "rule {action} {}\t{}",
            rule.conditions.len(),
            check_name(&rule.name)
        )
        .unwrap();
        for (fname, op, t) in &rule.conditions {
            let op = match op {
                Cmp::Le => "le",
                Cmp::Lt => "lt",
                Cmp::Ge => "ge",
                Cmp::Gt => "gt",
                Cmp::Eq => "eq",
            };
            writeln!(out, "cond {op} {t}\t{}", check_name(fname)).unwrap();
        }
    }
    writeln!(out, "matcher forest").unwrap();
    out.push_str(&save_forest(&spec.forest));
    out
}

struct LineReader<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> LineReader<'a> {
    fn next(&mut self, what: &str) -> Result<(usize, &'a str), PersistError> {
        self.lines
            .next()
            .map(|(i, l)| (i + 1, l))
            .ok_or_else(|| PersistError {
                line: 0,
                message: format!("unexpected end of input (expected {what})"),
            })
    }
}

fn expect_prefix<'a>(line: &'a str, prefix: &str, ln: usize) -> Result<&'a str, PersistError> {
    line.strip_prefix(prefix).ok_or_else(|| PersistError {
        line: ln,
        message: format!("expected `{prefix}...`, got `{line}`"),
    })
}

/// Parse a workflow saved by [`save_workflow`].
pub fn load_workflow(text: &str) -> Result<WorkflowSpec, PersistError> {
    let mut r = LineReader {
        lines: text.lines().enumerate(),
    };
    let (ln, header) = r.next("header")?;
    if header != "workflow v1" {
        return Err(PersistError {
            line: ln,
            message: format!("expected `workflow v1`, got `{header}`"),
        });
    }
    let (ln, tline) = r.next("threshold")?;
    let threshold: f64 = expect_prefix(tline, "threshold ", ln)?
        .parse()
        .map_err(|_| PersistError {
            line: ln,
            message: "bad threshold".into(),
        })?;

    let (ln, bline) = r.next("blocker")?;
    let body = expect_prefix(bline, "blocker ", ln)?;
    let blocker = parse_blocker(body, ln, &mut r)?;

    let (ln, fline) = r.next("features")?;
    let n_features: usize = expect_prefix(fline, "features ", ln)?
        .parse()
        .map_err(|_| PersistError {
            line: ln,
            message: "bad feature count".into(),
        })?;
    let mut features = Vec::with_capacity(n_features);
    for _ in 0..n_features {
        let (ln, line) = r.next("feature")?;
        let body = expect_prefix(line, "feature ", ln)?;
        let parts: Vec<&str> = body.splitn(4, '\t').collect();
        let [kind, l_attr, r_attr, name] = parts.as_slice() else {
            return Err(PersistError {
                line: ln,
                message: "feature needs kind, l_attr, r_attr, name".into(),
            });
        };
        features.push(Feature {
            name: (*name).to_owned(),
            l_attr: (*l_attr).to_owned(),
            r_attr: (*r_attr).to_owned(),
            kind: parse_kind(kind, ln)?,
        });
    }

    let (ln, rline) = r.next("rules")?;
    let n_rules: usize = expect_prefix(rline, "rules ", ln)?
        .parse()
        .map_err(|_| PersistError {
            line: ln,
            message: "bad rule count".into(),
        })?;
    let mut rules = Vec::with_capacity(n_rules);
    for _ in 0..n_rules {
        let (ln, line) = r.next("rule")?;
        let body = expect_prefix(line, "rule ", ln)?;
        let (head, name) = body.split_once('\t').ok_or(PersistError {
            line: ln,
            message: "rule needs a name".into(),
        })?;
        let mut head_parts = head.split(' ');
        let action = match head_parts.next() {
            Some("accept") => RuleAction::Accept,
            Some("reject") => RuleAction::Reject,
            _ => {
                return Err(PersistError {
                    line: ln,
                    message: "rule action must be accept/reject".into(),
                })
            }
        };
        let n_conds: usize = head_parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or(PersistError {
                line: ln,
                message: "bad condition count".into(),
            })?;
        let mut conditions = Vec::with_capacity(n_conds);
        for _ in 0..n_conds {
            let (ln, line) = r.next("cond")?;
            let body = expect_prefix(line, "cond ", ln)?;
            let (head, fname) = body.split_once('\t').ok_or(PersistError {
                line: ln,
                message: "cond needs a feature name".into(),
            })?;
            let (op, thr) = head.split_once(' ').ok_or(PersistError {
                line: ln,
                message: "cond needs op and threshold".into(),
            })?;
            let op = match op {
                "le" => Cmp::Le,
                "lt" => Cmp::Lt,
                "ge" => Cmp::Ge,
                "gt" => Cmp::Gt,
                "eq" => Cmp::Eq,
                _ => {
                    return Err(PersistError {
                        line: ln,
                        message: format!("bad comparison `{op}`"),
                    })
                }
            };
            let thr: f64 = thr.parse().map_err(|_| PersistError {
                line: ln,
                message: "bad condition threshold".into(),
            })?;
            conditions.push((fname.to_owned(), op, thr));
        }
        rules.push(MatchRule {
            name: name.to_owned(),
            conditions,
            action,
        });
    }

    let (ln, mline) = r.next("matcher")?;
    if mline != "matcher forest" {
        return Err(PersistError {
            line: ln,
            message: format!("expected `matcher forest`, got `{mline}`"),
        });
    }
    // The rest of the text is the forest.
    let forest_start = text
        .find("matcher forest\n")
        .expect("just parsed the marker")
        + "matcher forest\n".len();
    let forest = load_forest(&text[forest_start..])?;

    Ok(WorkflowSpec {
        blocker,
        features,
        forest,
        rule_layer: RuleLayer::new(rules),
        threshold,
    })
}

fn parse_blocker(
    body: &str,
    ln: usize,
    r: &mut LineReader<'_>,
) -> Result<BlockerSpec, PersistError> {
    let bad = |msg: &str| PersistError {
        line: ln,
        message: msg.to_owned(),
    };
    let parse_qgram = |s: &str| -> Option<Option<usize>> {
        let v: i64 = s.parse().ok()?;
        Some(if v < 0 { None } else { Some(v as usize) })
    };
    if let Some(rest) = body.strip_prefix("attr_equiv\t") {
        let (l, rr) = rest.split_once('\t').ok_or_else(|| bad("attr_equiv needs two attrs"))?;
        Ok(BlockerSpec::AttrEquivalence {
            l_attr: l.to_owned(),
            r_attr: rr.to_owned(),
        })
    } else if let Some(rest) = body.strip_prefix("hash\t") {
        let parts: Vec<&str> = rest.split('\t').collect();
        let [l, rr, n] = parts.as_slice() else {
            return Err(bad("hash needs two attrs and a bucket count"));
        };
        Ok(BlockerSpec::Hash {
            l_attr: (*l).to_owned(),
            r_attr: (*rr).to_owned(),
            n_buckets: n.parse().map_err(|_| bad("bad bucket count"))?,
        })
    } else if let Some(rest) = body.strip_prefix("overlap\t") {
        let parts: Vec<&str> = rest.split('\t').collect();
        let [l, rr, size, qgram] = parts.as_slice() else {
            return Err(bad("overlap needs attrs, size, qgram"));
        };
        Ok(BlockerSpec::Overlap {
            l_attr: (*l).to_owned(),
            r_attr: (*rr).to_owned(),
            overlap_size: size.parse().map_err(|_| bad("bad overlap size"))?,
            qgram: parse_qgram(qgram).ok_or_else(|| bad("bad qgram"))?,
        })
    } else if let Some(rest) = body.strip_prefix("simjoin\t") {
        let parts: Vec<&str> = rest.split('\t').collect();
        let [l, rr, m, qgram] = parts.as_slice() else {
            return Err(bad("simjoin needs attrs, measure, qgram"));
        };
        let (mname, mval) = m.split_once(' ').ok_or_else(|| bad("bad measure"))?;
        let measure = match mname {
            "jaccard" => SetSimMeasure::Jaccard(mval.parse().map_err(|_| bad("bad threshold"))?),
            "cosine" => SetSimMeasure::Cosine(mval.parse().map_err(|_| bad("bad threshold"))?),
            "dice" => SetSimMeasure::Dice(mval.parse().map_err(|_| bad("bad threshold"))?),
            "overlap_size" => {
                SetSimMeasure::OverlapSize(mval.parse().map_err(|_| bad("bad size"))?)
            }
            _ => return Err(bad("unknown measure")),
        };
        Ok(BlockerSpec::SimJoin {
            l_attr: (*l).to_owned(),
            r_attr: (*rr).to_owned(),
            measure,
            qgram: parse_qgram(qgram).ok_or_else(|| bad("bad qgram"))?,
        })
    } else if let Some(rest) = body.strip_prefix("sorted_neighborhood\t") {
        let parts: Vec<&str> = rest.split('\t').collect();
        let [l, rr, w] = parts.as_slice() else {
            return Err(bad("sorted_neighborhood needs attrs and a window"));
        };
        Ok(BlockerSpec::SortedNeighborhood {
            l_attr: (*l).to_owned(),
            r_attr: (*rr).to_owned(),
            window: w.parse().map_err(|_| bad("bad window"))?,
        })
    } else if let Some(rest) = body.strip_prefix("rules ") {
        let n_rules: usize = rest.parse().map_err(|_| bad("bad rule count"))?;
        if n_rules == 0 {
            return Err(bad("rule blocker needs at least one rule"));
        }
        let mut rules = Vec::with_capacity(n_rules);
        for _ in 0..n_rules {
            let (ln, line) = r.next("brule")?;
            let n_preds: usize = expect_prefix(line, "brule ", ln)?
                .parse()
                .map_err(|_| PersistError {
                    line: ln,
                    message: "bad predicate count".into(),
                })?;
            let mut predicates = Vec::with_capacity(n_preds);
            for _ in 0..n_preds {
                let (ln, line) = r.next("bpred")?;
                let body = expect_prefix(line, "bpred ", ln)?;
                let parts: Vec<&str> = body.splitn(3, '\t').collect();
                let [head, l_attr, r_attr] = parts.as_slice() else {
                    return Err(PersistError {
                        line: ln,
                        message: "bpred needs feature+threshold, l_attr, r_attr".into(),
                    });
                };
                let (feat, thr) = head.split_once(' ').ok_or(PersistError {
                    line: ln,
                    message: "bpred needs feature and threshold".into(),
                })?;
                predicates.push(Predicate {
                    l_attr: (*l_attr).to_owned(),
                    r_attr: (*r_attr).to_owned(),
                    feature: parse_sim_feature(feat, ln)?,
                    threshold: thr.parse().map_err(|_| PersistError {
                        line: ln,
                        message: "bad predicate threshold".into(),
                    })?,
                });
            }
            rules.push(BlockingRule { predicates });
        }
        Ok(BlockerSpec::Rules(rules))
    } else {
        Err(bad(&format!("unknown blocker spec `{body}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_ml::{Dataset, RandomForestLearner};

    fn forest() -> RandomForestClassifier {
        let d = Dataset::from_rows(
            &[vec![0.9, 0.1], vec![0.8, 0.2], vec![0.1, 0.9], vec![0.2, 0.8]],
            &[true, true, false, false],
        );
        RandomForestLearner {
            n_trees: 3,
            ..Default::default()
        }
        .fit_forest(&d)
    }

    fn spec_with(blocker: BlockerSpec) -> WorkflowSpec {
        WorkflowSpec {
            blocker,
            features: vec![
                Feature::new("name", "name", FeatureKind::Jaccard(TokSpecF::Qgram(3))),
                Feature::new("age", "age", FeatureKind::AbsDiff),
            ],
            forest: forest(),
            rule_layer: RuleLayer::new(vec![
                MatchRule::reject(
                    "weak name guard",
                    vec![("jaccard(3gram(A.name), 3gram(B.name))".into(), Cmp::Lt, 0.3)],
                ),
                MatchRule::accept("strong age", vec![("abs_diff(A.age, B.age)".into(), Cmp::Ge, 0.95)]),
            ]),
            threshold: 0.5,
        }
    }

    fn roundtrip(spec: &WorkflowSpec) -> WorkflowSpec {
        load_workflow(&save_workflow(spec)).expect("roundtrip")
    }

    #[test]
    fn every_blocker_spec_roundtrips() {
        let blockers = vec![
            BlockerSpec::AttrEquivalence {
                l_attr: "name".into(),
                r_attr: "full name".into(),
            },
            BlockerSpec::Hash {
                l_attr: "zip".into(),
                r_attr: "zip".into(),
                n_buckets: 512,
            },
            BlockerSpec::Overlap {
                l_attr: "title".into(),
                r_attr: "title".into(),
                overlap_size: 2,
                qgram: None,
            },
            BlockerSpec::Overlap {
                l_attr: "title".into(),
                r_attr: "title".into(),
                overlap_size: 4,
                qgram: Some(3),
            },
            BlockerSpec::SimJoin {
                l_attr: "title".into(),
                r_attr: "title".into(),
                measure: SetSimMeasure::Jaccard(0.42),
                qgram: Some(3),
            },
            BlockerSpec::SortedNeighborhood {
                l_attr: "name".into(),
                r_attr: "name".into(),
                window: 7,
            },
            BlockerSpec::Rules(vec![BlockingRule {
                predicates: vec![Predicate {
                    l_attr: "name".into(),
                    r_attr: "name".into(),
                    feature: SimFeature::Jaccard(TokSpec::Word),
                    threshold: 0.31,
                }],
            }]),
        ];
        for b in blockers {
            let spec = spec_with(b.clone());
            let back = roundtrip(&spec);
            assert_eq!(back.blocker, b);
            assert_eq!(back.features, spec.features);
            assert_eq!(back.threshold, spec.threshold);
            assert_eq!(back.rule_layer.rules.len(), 2);
        }
    }

    #[test]
    fn rebuilt_workflow_behaves_identically() {
        use magellan_table::{Dtype, Table};
        let a = Table::from_rows(
            "A",
            &[("id", Dtype::Str), ("name", Dtype::Str), ("age", Dtype::Int)],
            vec![
                vec!["a0".into(), "dave smith".into(), magellan_table::Value::Int(40)],
                vec!["a1".into(), "joe wilson".into(), magellan_table::Value::Int(30)],
            ],
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            &[("id", Dtype::Str), ("name", Dtype::Str), ("age", Dtype::Int)],
            vec![vec!["b0".into(), "dave smith".into(), magellan_table::Value::Int(41)]],
        )
        .unwrap();
        let spec = spec_with(BlockerSpec::Overlap {
            l_attr: "name".into(),
            r_attr: "name".into(),
            overlap_size: 1,
            qgram: None,
        });
        let original = spec.clone().build().execute(&a, &b).unwrap();
        let rebuilt = roundtrip(&spec).build().execute(&a, &b).unwrap();
        assert_eq!(original.candidates, rebuilt.candidates);
        assert_eq!(original.decisions, rebuilt.decisions);
    }

    #[test]
    fn rule_names_with_spaces_and_tabs_in_format_survive() {
        let spec = spec_with(BlockerSpec::AttrEquivalence {
            l_attr: "name".into(),
            r_attr: "name".into(),
        });
        let back = roundtrip(&spec);
        assert_eq!(back.rule_layer.rules[0].name, "weak name guard");
        assert_eq!(
            back.rule_layer.rules[0].conditions[0].0,
            "jaccard(3gram(A.name), 3gram(B.name))"
        );
    }

    #[test]
    fn corrupt_workflows_are_rejected() {
        assert!(load_workflow("").is_err());
        assert!(load_workflow("workflow v2\n").is_err());
        let spec = spec_with(BlockerSpec::AttrEquivalence {
            l_attr: "x".into(),
            r_attr: "x".into(),
        });
        let text = save_workflow(&spec);
        let truncated = &text[..text.len() / 2];
        assert!(load_workflow(truncated).is_err());
        let tampered = text.replacen("blocker attr_equiv", "blocker nonsense", 1);
        assert!(load_workflow(&tampered).is_err());
    }
}
