//! The metric value types behind the registry: counters, gauges, and
//! log₂-bucketed histograms with a deterministic, associative merge.

/// Number of histogram buckets: bucket `0` holds zeros, bucket `k ≥ 1`
/// holds values in `[2^(k-1), 2^k)` — 64 power-of-two buckets plus the
/// zero bucket cover the whole `u64` range exactly.
pub const N_BUCKETS: usize = 65;

/// A log₂-bucketed histogram over `u64` samples.
///
/// `merge` is elementwise and therefore **associative and commutative**:
/// per-worker histograms can be merged in any grouping or order and
/// produce bit-identical totals — the property `crates/obs` proptests
/// pin down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Total number of recorded samples.
    pub count: u64,
    /// Saturating sum of recorded samples.
    pub sum: u64,
    /// Bucket counts; see [`N_BUCKETS`] for the layout.
    pub buckets: [u64; N_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            buckets: [0; N_BUCKETS],
        }
    }
}

impl Histogram {
    /// Bucket index for a sample: `0` for `v == 0`, else
    /// `floor(log2(v)) + 1`.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        }
    }

    /// Inclusive upper bound of bucket `k` (the Prometheus `le` label):
    /// `0`, `1`, `3`, `7`, …, `u64::MAX`.
    pub fn bucket_le(k: usize) -> u64 {
        if k == 0 {
            0
        } else if k >= 64 {
            u64::MAX
        } else {
            (1u64 << k) - 1
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        let b = &mut self.buckets[Self::bucket_index(v)];
        *b = b.saturating_add(1);
    }

    /// Elementwise merge of another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
    }

    /// Mean of recorded samples; `0.0` when empty (never `NaN`).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// One named metric in the registry.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone saturating counter.
    Counter(u64),
    /// Last-write-wins gauge.
    Gauge(f64),
    /// Log₂-bucketed histogram.
    Histogram(Histogram),
}

impl MetricValue {
    /// Deterministic merge used when combining registries: counters add,
    /// gauges keep the maximum (order-independent), histograms merge
    /// elementwise. Mismatched kinds keep `self`.
    pub fn merge(&mut self, other: &MetricValue) {
        match (self, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => *a = a.saturating_add(*b),
            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = a.max(*b),
            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
            _ => debug_assert!(false, "merging mismatched metric kinds"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_covers_u64_exactly() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_le(0), 0);
        assert_eq!(Histogram::bucket_le(1), 1);
        assert_eq!(Histogram::bucket_le(2), 3);
        assert_eq!(Histogram::bucket_le(64), u64::MAX);
        // le(k) is the largest value mapping to bucket k.
        for k in 0..N_BUCKETS {
            assert_eq!(Histogram::bucket_index(Histogram::bucket_le(k)), k);
        }
    }

    #[test]
    fn mean_is_zero_on_empty() {
        assert_eq!(Histogram::default().mean(), 0.0);
        let mut h = Histogram::default();
        h.record(4);
        h.record(8);
        assert_eq!(h.mean(), 6.0);
    }
}
