//! Sequence-based string similarity measures.
//!
//! All `*_sim` functions return values in `[0, 1]` with 1 meaning identical;
//! raw scores (edit distances, alignment scores) are exposed separately
//! where the raw value is meaningful to feature generators.

/// Levenshtein (edit) distance with unit costs, O(|a|·|b|) time and
/// O(min) space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(lc != sc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Normalized Levenshtein similarity: `1 - dist / max_len`; 1.0 for two
/// empty strings.
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == *ca {
                b_used[j] = true;
                matches_a.push(*ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> = b
        .iter()
        .zip(&b_used)
        .filter_map(|(c, used)| used.then_some(*c))
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(&matches_b)
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro–Winkler similarity with the standard prefix scale `p = 0.1` and a
/// maximum common-prefix credit of 4 characters.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    jaro_winkler_with(a, b, 0.1)
}

/// Jaro–Winkler with an explicit prefix scale (must be ≤ 0.25 to keep the
/// result in `[0, 1]`).
pub fn jaro_winkler_with(a: &str, b: &str, prefix_scale: f64) -> f64 {
    debug_assert!((0.0..=0.25).contains(&prefix_scale));
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * prefix_scale * (1.0 - j)
}

/// Hamming distance; `None` when the strings differ in length.
pub fn hamming(a: &str, b: &str) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    (a.len() == b.len()).then(|| a.iter().zip(&b).filter(|(x, y)| x != y).count())
}

/// Normalized Hamming similarity; `None` when lengths differ, 1.0 for two
/// empty strings.
pub fn hamming_sim(a: &str, b: &str) -> Option<f64> {
    let n = a.chars().count();
    let d = hamming(a, b)?;
    Some(if n == 0 { 1.0 } else { 1.0 - d as f64 / n as f64 })
}

/// Needleman–Wunsch global alignment score with match = +1,
/// mismatch = −1, gap = −1 (the `py_stringmatching` defaults are
/// match 1 / mismatch 0 / gap −1; we expose the knobs).
pub fn needleman_wunsch(a: &str, b: &str) -> f64 {
    needleman_wunsch_with(a, b, 1.0, 0.0, -1.0)
}

/// Needleman–Wunsch with explicit scores.
pub fn needleman_wunsch_with(
    a: &str,
    b: &str,
    match_score: f64,
    mismatch_score: f64,
    gap_cost: f64,
) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<f64> = (0..=b.len()).map(|j| j as f64 * gap_cost).collect();
    let mut cur = vec![0.0f64; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = (i + 1) as f64 * gap_cost;
        for (j, cb) in b.iter().enumerate() {
            let diag = prev[j] + if ca == cb { match_score } else { mismatch_score };
            cur[j + 1] = diag.max(prev[j + 1] + gap_cost).max(cur[j] + gap_cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Smith–Waterman local alignment score (match +1, mismatch −1, gap −1 by
/// default; never negative).
pub fn smith_waterman(a: &str, b: &str) -> f64 {
    smith_waterman_with(a, b, 1.0, -1.0, -1.0)
}

/// Smith–Waterman with explicit scores.
pub fn smith_waterman_with(
    a: &str,
    b: &str,
    match_score: f64,
    mismatch_score: f64,
    gap_cost: f64,
) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev = vec![0.0f64; b.len() + 1];
    let mut cur = vec![0.0f64; b.len() + 1];
    let mut best = 0.0f64;
    for ca in &a {
        for (j, cb) in b.iter().enumerate() {
            let diag = prev[j] + if ca == cb { match_score } else { mismatch_score };
            let v = diag.max(prev[j + 1] + gap_cost).max(cur[j] + gap_cost).max(0.0);
            cur[j + 1] = v;
            best = best.max(v);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    best
}

/// Affine-gap global alignment score (Gotoh): gap open / gap extend are
/// charged separately so one long gap is cheaper than many short gaps.
/// Defaults: match +1, mismatch −1, open −1, extend −0.5.
pub fn affine_gap(a: &str, b: &str) -> f64 {
    affine_gap_with(a, b, 1.0, -1.0, -1.0, -0.5)
}

/// Affine-gap alignment with explicit scores.
pub fn affine_gap_with(
    a: &str,
    b: &str,
    match_score: f64,
    mismatch_score: f64,
    gap_open: f64,
    gap_extend: f64,
) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let neg = f64::NEG_INFINITY;
    let n = b.len();
    // M = align, X = gap in b (consume a), Y = gap in a (consume b).
    let mut m_prev = vec![neg; n + 1];
    let mut x_prev = vec![neg; n + 1];
    let mut y_prev = vec![neg; n + 1];
    m_prev[0] = 0.0;
    for (j, y) in y_prev.iter_mut().enumerate().skip(1) {
        *y = gap_open + (j - 1) as f64 * gap_extend;
    }
    let mut m_cur = vec![neg; n + 1];
    let mut x_cur = vec![neg; n + 1];
    let mut y_cur = vec![neg; n + 1];
    for (i, ca) in a.iter().enumerate() {
        m_cur[0] = neg;
        y_cur[0] = neg;
        x_cur[0] = gap_open + i as f64 * gap_extend;
        for (j, cb) in b.iter().enumerate() {
            let s = if ca == cb { match_score } else { mismatch_score };
            m_cur[j + 1] = s + m_prev[j].max(x_prev[j]).max(y_prev[j]);
            x_cur[j + 1] = (m_prev[j + 1] + gap_open).max(x_prev[j + 1] + gap_extend);
            y_cur[j + 1] = (m_cur[j] + gap_open).max(y_cur[j] + gap_extend);
        }
        std::mem::swap(&mut m_prev, &mut m_cur);
        std::mem::swap(&mut x_prev, &mut x_cur);
        std::mem::swap(&mut y_prev, &mut y_cur);
    }
    let best = m_prev[n].max(x_prev[n]).max(y_prev[n]);
    if best == neg {
        0.0 // both strings empty
    } else {
        best
    }
}

/// Length of the longest common prefix.
pub fn common_prefix_len(a: &str, b: &str) -> usize {
    a.chars().zip(b.chars()).take_while(|(x, y)| x == y).count()
}

/// Exact-match similarity: 1.0 iff equal.
pub fn exact_match(a: &str, b: &str) -> f64 {
    f64::from(a == b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn levenshtein_sim_bounds() {
        assert_eq!(levenshtein_sim("", ""), 1.0);
        assert_eq!(levenshtein_sim("abc", "abc"), 1.0);
        assert_eq!(levenshtein_sim("abc", "xyz"), 0.0);
        let s = levenshtein_sim("kitten", "sitting");
        assert!((s - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn jaro_known_values() {
        // Classic textbook pairs.
        assert!((jaro("MARTHA", "MARHTA") - 0.944_444_444).abs() < 1e-6);
        assert!((jaro("DIXON", "DICKSONX") - 0.766_666_666).abs() < 1e-6);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_known_values() {
        assert!((jaro_winkler("MARTHA", "MARHTA") - 0.961_111_111).abs() < 1e-6);
        assert!((jaro_winkler("DWAYNE", "DUANE") - 0.84).abs() < 1e-6);
        // Prefix credit never pushes above 1.
        assert_eq!(jaro_winkler("same", "same"), 1.0);
    }

    #[test]
    fn hamming_requires_equal_length() {
        assert_eq!(hamming("karolin", "kathrin"), Some(3));
        assert_eq!(hamming("abc", "ab"), None);
        assert_eq!(hamming_sim("", ""), Some(1.0));
        assert_eq!(hamming_sim("ab", "ab"), Some(1.0));
    }

    #[test]
    fn needleman_wunsch_known_values() {
        // Identical strings score match * len with default scores.
        assert_eq!(needleman_wunsch("dva", "dva"), 3.0);
        // One deletion costs one gap.
        assert_eq!(needleman_wunsch_with("abc", "ac", 1.0, 0.0, -1.0), 1.0);
        assert_eq!(needleman_wunsch("", ""), 0.0);
        assert_eq!(needleman_wunsch("ab", ""), -2.0);
    }

    #[test]
    fn smith_waterman_is_local_and_nonnegative() {
        // Shared substring "ell" scores 3 despite different contexts.
        assert_eq!(smith_waterman("hello", "yellow"), 4.0); // "ello"
        assert_eq!(smith_waterman("abc", "xyz"), 0.0);
        assert_eq!(smith_waterman("", "abc"), 0.0);
    }

    #[test]
    fn affine_gap_prefers_one_long_gap() {
        // "abcdefg" vs "abcg": one 3-gap = open + 2*extend = -2.0; 4 matches = +4.
        let s = affine_gap("abcdefg", "abcg");
        assert!((s - 2.0).abs() < 1e-12);
        // Same edits as separate gaps would be cheaper under linear cost only.
        assert_eq!(affine_gap("", ""), 0.0);
        let only_gaps = affine_gap("abc", "");
        assert!((only_gaps - (-1.0 - 2.0 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn prefix_and_exact() {
        assert_eq!(common_prefix_len("data", "database"), 4);
        assert_eq!(common_prefix_len("x", "y"), 0);
        assert_eq!(exact_match("a", "a"), 1.0);
        assert_eq!(exact_match("a", "b"), 0.0);
    }
}
