//! Blocking-rule extraction from random forests (Fig. 4 of the paper).
//!
//! Every root→"No"-leaf path of a committee tree is a candidate blocking
//! rule: the conjunction of conditions along the path implies "no-match".
//! Falcon then (a) keeps only *precise* rules — here evaluated against the
//! labeled pairs instead of fresh user questions when labels are already
//! in hand — and (b) executes the kept rules at scale. Rules whose
//! conditions are all of the drop direction (`sim ≤ t`) over joinable
//! similarity features translate directly into a
//! [`magellan_block::RuleBasedBlocker`].

use magellan_block::{BlockingRule, Predicate, SimFeature, TokSpec};
use magellan_features::{Feature, FeatureKind, FeatureMatrix, TokSpecF};
use magellan_ml::{Node, RandomForestClassifier};

/// One path condition: `feature ≤ threshold` (`is_le`) or `feature >
/// threshold`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathCond {
    /// Feature (column) index.
    pub feature: usize,
    /// True for the `≤` branch.
    pub is_le: bool,
    /// Threshold.
    pub threshold: f64,
}

/// A candidate rule with its evaluation stats.
#[derive(Debug, Clone)]
pub struct ExtractedRule {
    /// The path conditions (conjunction).
    pub conditions: Vec<PathCond>,
    /// Whether it translates into a scalable drop-rule (all `≤` over
    /// joinable features).
    pub executable: bool,
    /// Fraction of firing labeled pairs that are true negatives.
    pub precision: f64,
    /// Fraction of labeled negatives the rule drops.
    pub coverage: f64,
}

impl ExtractedRule {
    /// Does the rule fire on (i.e. drop) a feature row? NaN routes to the
    /// `≤` side, matching tree-prediction semantics.
    pub fn fires(&self, row: &[f64]) -> bool {
        self.conditions.iter().all(|c| {
            let x = row[c.feature];
            let goes_le = x.is_nan() || x <= c.threshold;
            goes_le == c.is_le
        })
    }

    /// Render with feature names, Fig. 4 style.
    pub fn pretty(&self, names: &[String]) -> String {
        let parts: Vec<String> = self
            .conditions
            .iter()
            .map(|c| {
                let op = if c.is_le { "<=" } else { ">" };
                format!("{} {op} {:.3}", names[c.feature], c.threshold)
            })
            .collect();
        format!("{} -> No", parts.join(" AND "))
    }
}

/// Collect all root→"No"-leaf paths across the forest's trees.
pub fn candidate_paths(forest: &RandomForestClassifier) -> Vec<Vec<PathCond>> {
    let mut out = Vec::new();
    for tree in forest.trees() {
        let nodes = tree.nodes();
        let mut stack: Vec<(usize, Vec<PathCond>)> = vec![(0, Vec::new())];
        while let Some((i, path)) = stack.pop() {
            match &nodes[i] {
                Node::Leaf { n, n_pos } => {
                    // "No" leaf: strict negative majority.
                    if *n_pos * 2 < *n && !path.is_empty() {
                        out.push(path);
                    }
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let mut lp = path.clone();
                    lp.push(PathCond {
                        feature: *feature,
                        is_le: true,
                        threshold: *threshold,
                    });
                    stack.push((*left, lp));
                    let mut rp = path;
                    rp.push(PathCond {
                        feature: *feature,
                        is_le: false,
                        threshold: *threshold,
                    });
                    stack.push((*right, rp));
                }
            }
        }
    }
    // Dedupe identical paths across trees.
    out.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    out.dedup();
    out
}

/// Map a feature to a join-executable [`SimFeature`], when possible.
fn joinable(kind: FeatureKind) -> Option<SimFeature> {
    let tok = |t: TokSpecF| match t {
        TokSpecF::Word => TokSpec::Word,
        TokSpecF::Qgram(q) => TokSpec::Qgram(q),
    };
    match kind {
        FeatureKind::Jaccard(t) => Some(SimFeature::Jaccard(tok(t))),
        FeatureKind::Cosine(t) => Some(SimFeature::Cosine(tok(t))),
        FeatureKind::Dice(t) => Some(SimFeature::Dice(tok(t))),
        FeatureKind::ExactMatch => Some(SimFeature::ExactMatch),
        _ => None,
    }
}

/// Extract, evaluate, and select blocking rules.
///
/// * `forest` — the committee from the blocking-stage active learning;
/// * `matrix`/`labels` — the labeled pairs (rule precision is estimated on
///   them, standing in for Falcon's extra user verification round);
/// * `features` — the feature definitions aligned with matrix columns;
/// * `min_precision` — keep rules at least this precise (paper: "retains
///   only the precise rules");
/// * `max_rules` — keep at most this many, best coverage first.
///
/// Returns the kept rules and the executable [`BlockingRule`] conversions
/// (for the `RuleBasedBlocker`).
pub fn extract_blocking_rules(
    forest: &RandomForestClassifier,
    matrix: &FeatureMatrix,
    labels: &[(usize, bool)],
    features: &[Feature],
    min_precision: f64,
    max_rules: usize,
) -> (Vec<ExtractedRule>, Vec<BlockingRule>) {
    let paths = candidate_paths(forest);
    let n_neg = labels.iter().filter(|(_, y)| !*y).count();
    let mut rules: Vec<ExtractedRule> = Vec::new();
    for conditions in paths {
        let executable = conditions.iter().all(|c| {
            c.is_le && joinable(features[c.feature].kind).is_some()
        });
        let rule = ExtractedRule {
            conditions,
            executable,
            precision: 0.0,
            coverage: 0.0,
        };
        let mut fired = 0usize;
        let mut fired_neg = 0usize;
        for &(i, y) in labels {
            if rule.fires(&matrix.rows[i]) {
                fired += 1;
                if !y {
                    fired_neg += 1;
                }
            }
        }
        if fired == 0 {
            continue;
        }
        let precision = fired_neg as f64 / fired as f64;
        let coverage = if n_neg == 0 {
            0.0
        } else {
            fired_neg as f64 / n_neg as f64
        };
        if precision >= min_precision && coverage > 0.0 {
            rules.push(ExtractedRule {
                precision,
                coverage,
                ..rule
            });
        }
    }
    rules.sort_by(|a, b| {
        b.coverage
            .partial_cmp(&a.coverage)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.conditions.len().cmp(&b.conditions.len()))
    });
    // Prefer executable rules: the blocker can only run those at scale.
    let mut kept: Vec<ExtractedRule> = rules
        .iter()
        .filter(|r| r.executable)
        .take(max_rules)
        .cloned()
        .collect();
    if kept.is_empty() {
        // Fall back to the best non-executable rules (refine-only mode).
        kept = rules.into_iter().take(max_rules).collect();
    }

    let blocking_rules: Vec<BlockingRule> = kept
        .iter()
        .filter_map(|r| to_blocking_rule(r, features))
        .collect();
    (kept, blocking_rules)
}

/// Convert an executable extracted rule into a `RuleBasedBlocker` rule.
/// Returns `None` for non-executable rules.
pub fn to_blocking_rule(rule: &ExtractedRule, features: &[Feature]) -> Option<BlockingRule> {
    if !rule.executable {
        return None;
    }
    Some(BlockingRule {
        predicates: rule
            .conditions
            .iter()
            .map(|c| {
                let f = &features[c.feature];
                Predicate {
                    l_attr: f.l_attr.clone(),
                    r_attr: f.r_attr.clone(),
                    feature: joinable(f.kind).expect("checked executable"),
                    threshold: c.threshold,
                }
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_ml::{Dataset, RandomForestLearner};

    /// The Fig. 4 books setting: match iff isbn AND pages agree.
    fn book_setting() -> (RandomForestClassifier, FeatureMatrix, Vec<(usize, bool)>, Vec<Feature>) {
        let features = vec![
            Feature::new("isbn", "isbn", FeatureKind::ExactMatch),
            Feature::new("pages", "pages", FeatureKind::Jaccard(TokSpecF::Word)),
        ];
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        // Dense grid of labeled pairs.
        for i in 0..60 {
            let isbn = f64::from(i % 2 == 0);
            let pages = f64::from(i % 3 == 0);
            rows.push(vec![isbn, pages]);
            labels.push(isbn == 1.0 && pages == 1.0);
        }
        let matrix = FeatureMatrix {
            names: features.iter().map(|f| f.name.clone()).collect(),
            rows: rows.clone(),
            pairs: (0..60).map(|i| (i as u32, i as u32)).collect(),
        };
        let mut data = Dataset::new(matrix.names.clone());
        for (r, &y) in rows.iter().zip(&labels) {
            data.push(r, y);
        }
        let forest = RandomForestLearner {
            n_trees: 8,
            max_features: Some(2),
            ..Default::default()
        }
        .fit_forest(&data);
        let labeled: Vec<(usize, bool)> = labels.iter().copied().enumerate().collect();
        (forest, matrix, labeled, features)
    }

    #[test]
    fn extracts_no_paths_from_trees() {
        let (forest, _, _, _) = book_setting();
        let paths = candidate_paths(&forest);
        assert!(!paths.is_empty());
        // Every path must end implying "No": verified structurally by the
        // extractor; here check each path has >= 1 condition.
        assert!(paths.iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn kept_rules_are_precise_and_cover_negatives() {
        let (forest, matrix, labeled, features) = book_setting();
        let (rules, blocking) =
            extract_blocking_rules(&forest, &matrix, &labeled, &features, 0.95, 5);
        assert!(!rules.is_empty(), "no rules extracted");
        for r in &rules {
            assert!(r.precision >= 0.95, "{r:?}");
            assert!(r.coverage > 0.0);
        }
        // The canonical Fig. 4 rule shape exists: isbn low -> No.
        assert!(
            rules.iter().any(|r| r
                .conditions
                .iter()
                .all(|c| c.is_le)),
            "no all-<= executable-style rule found"
        );
        assert!(!blocking.is_empty(), "no executable blocking rules");
    }

    #[test]
    fn rules_never_drop_labeled_positives_at_full_precision() {
        let (forest, matrix, labeled, features) = book_setting();
        let (rules, _) = extract_blocking_rules(&forest, &matrix, &labeled, &features, 1.0, 10);
        for r in &rules {
            for &(i, y) in &labeled {
                if y {
                    assert!(!r.fires(&matrix.rows[i]), "rule drops a positive: {r:?}");
                }
            }
        }
    }

    #[test]
    fn fires_respects_nan_as_low() {
        let rule = ExtractedRule {
            conditions: vec![PathCond {
                feature: 0,
                is_le: true,
                threshold: 0.5,
            }],
            executable: true,
            precision: 1.0,
            coverage: 1.0,
        };
        assert!(rule.fires(&[f64::NAN]));
        assert!(rule.fires(&[0.3]));
        assert!(!rule.fires(&[0.9]));
    }

    #[test]
    fn pretty_prints_with_names(){
        let rule = ExtractedRule {
            conditions: vec![
                PathCond { feature: 0, is_le: true, threshold: 0.55 },
                PathCond { feature: 1, is_le: false, threshold: 0.2 },
            ],
            executable: false,
            precision: 1.0,
            coverage: 0.5,
        };
        let names = vec!["isbn_sim".to_owned(), "pages_sim".to_owned()];
        let s = rule.pretty(&names);
        assert_eq!(s, "isbn_sim <= 0.550 AND pages_sim > 0.200 -> No");
    }
}
