//! Model persistence: a line-oriented text format for trees and forests.
//!
//! The production stage (§4.1) captures the development stage's artifact
//! and ships it to another process; CloudMatcher's `train classifier` /
//! `apply classifier` services likewise store models between service
//! calls. The format is deliberately dependency-free (no serializer
//! crates): one node per line, `f64` values written in Rust's shortest
//! round-trip form, loaded back with full validation (indices in bounds,
//! children strictly after parents — i.e. acyclic).

use std::fmt::Write as _;

use crate::forest::RandomForestClassifier;
use crate::tree::{DecisionTreeClassifier, Node};

/// Errors from [`load_forest`]/[`load_tree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError {
    /// 1-based line the problem was found on (0 for structural errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PersistError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, PersistError> {
    Err(PersistError {
        line,
        message: message.into(),
    })
}

/// Serialize a tree. Feature names are escaped per-line (names never
/// contain newlines; tabs are rejected at save time).
pub fn save_tree(tree: &DecisionTreeClassifier) -> String {
    let mut out = String::new();
    writeln!(out, "tree v1").expect("string write");
    writeln!(out, "features {}", tree.feature_names().len()).expect("string write");
    for name in tree.feature_names() {
        debug_assert!(!name.contains('\n') && !name.contains('\t'));
        writeln!(out, "\t{name}").expect("string write");
    }
    writeln!(out, "nodes {}", tree.nodes().len()).expect("string write");
    for node in tree.nodes() {
        match node {
            Node::Leaf { n, n_pos } => writeln!(out, "leaf {n} {n_pos}").expect("string write"),
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => writeln!(out, "split {feature} {threshold} {left} {right}")
                .expect("string write"),
        }
    }
    out
}

/// Parse a tree saved by [`save_tree`].
pub fn load_tree(text: &str) -> Result<DecisionTreeClassifier, PersistError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    let (ln, header) = lines.next().ok_or(PersistError {
        line: 0,
        message: "empty input".into(),
    })?;
    if header != "tree v1" {
        return err(ln, format!("expected `tree v1`, got `{header}`"));
    }
    let (ln, fline) = lines
        .next()
        .ok_or(PersistError { line: 0, message: "missing feature count".into() })?;
    let n_features: usize = fline
        .strip_prefix("features ")
        .and_then(|v| v.parse().ok())
        .ok_or(PersistError { line: ln, message: "bad `features` line".into() })?;
    let mut names = Vec::with_capacity(n_features);
    for _ in 0..n_features {
        let (ln, nline) = lines
            .next()
            .ok_or(PersistError { line: 0, message: "missing feature name".into() })?;
        let name = nline
            .strip_prefix('\t')
            .ok_or(PersistError { line: ln, message: "feature name must be tab-prefixed".into() })?;
        names.push(name.to_owned());
    }
    let (ln, cline) = lines
        .next()
        .ok_or(PersistError { line: 0, message: "missing node count".into() })?;
    let n_nodes: usize = cline
        .strip_prefix("nodes ")
        .and_then(|v| v.parse().ok())
        .ok_or(PersistError { line: ln, message: "bad `nodes` line".into() })?;
    if n_nodes == 0 {
        return err(ln, "a tree needs at least one node");
    }
    let mut nodes = Vec::with_capacity(n_nodes);
    for i in 0..n_nodes {
        let (ln, nline) = lines
            .next()
            .ok_or(PersistError { line: 0, message: format!("missing node {i}") })?;
        let parts: Vec<&str> = nline.split(' ').collect();
        let node = match parts.as_slice() {
            ["leaf", n, n_pos] => {
                let n: usize = n.parse().map_err(|_| PersistError {
                    line: ln,
                    message: "bad leaf count".into(),
                })?;
                let n_pos: usize = n_pos.parse().map_err(|_| PersistError {
                    line: ln,
                    message: "bad leaf positive count".into(),
                })?;
                if n_pos > n {
                    return err(ln, "leaf has more positives than examples");
                }
                Node::Leaf { n, n_pos }
            }
            ["split", feature, threshold, left, right] => {
                let feature: usize = feature.parse().map_err(|_| PersistError {
                    line: ln,
                    message: "bad split feature".into(),
                })?;
                let threshold: f64 = threshold.parse().map_err(|_| PersistError {
                    line: ln,
                    message: "bad split threshold".into(),
                })?;
                let left: usize = left.parse().map_err(|_| PersistError {
                    line: ln,
                    message: "bad left child".into(),
                })?;
                let right: usize = right.parse().map_err(|_| PersistError {
                    line: ln,
                    message: "bad right child".into(),
                })?;
                if feature >= n_features {
                    return err(ln, "split feature out of range");
                }
                if threshold.is_nan() {
                    return err(ln, "split threshold is NaN");
                }
                // Children strictly after the parent: guarantees the arena
                // is acyclic and every walk terminates.
                if left <= i || right <= i || left >= n_nodes || right >= n_nodes {
                    return err(ln, "child index out of order or out of range");
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                }
            }
            _ => return err(ln, format!("unrecognized node line `{nline}`")),
        };
        nodes.push(node);
    }
    DecisionTreeClassifier::from_parts(nodes, names).map_err(|message| PersistError {
        line: 0,
        message,
    })
}

/// Serialize a forest as concatenated trees.
pub fn save_forest(forest: &RandomForestClassifier) -> String {
    let mut out = String::new();
    writeln!(out, "forest v1 {}", forest.trees().len()).expect("string write");
    for tree in forest.trees() {
        out.push_str(&save_tree(tree));
    }
    out
}

/// Parse a forest saved by [`save_forest`].
pub fn load_forest(text: &str) -> Result<RandomForestClassifier, PersistError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(PersistError {
        line: 0,
        message: "empty input".into(),
    })?;
    let n_trees: usize = header
        .strip_prefix("forest v1 ")
        .and_then(|v| v.parse().ok())
        .ok_or(PersistError { line: 1, message: "bad forest header".into() })?;
    if n_trees == 0 {
        return err(1, "a forest needs at least one tree");
    }
    // Re-split the remainder into per-tree chunks on "tree v1" markers.
    let body: Vec<&str> = text.lines().skip(1).collect();
    let mut tree_starts: Vec<usize> = body
        .iter()
        .enumerate()
        .filter_map(|(i, l)| (*l == "tree v1").then_some(i))
        .collect();
    if tree_starts.len() != n_trees {
        return err(1, format!("expected {n_trees} trees, found {}", tree_starts.len()));
    }
    tree_starts.push(body.len());
    let mut trees = Vec::with_capacity(n_trees);
    for w in tree_starts.windows(2) {
        let chunk = body[w[0]..w[1]].join("\n");
        trees.push(load_tree(&chunk)?);
    }
    RandomForestClassifier::from_trees(trees).map_err(|message| PersistError {
        line: 0,
        message,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::forest::RandomForestLearner;
    use crate::model::Classifier;
    use crate::tree::DecisionTreeLearner;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn data(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(vec!["sim_a".into(), "sim_b".into()]);
        for _ in 0..150 {
            let pos = rng.gen_bool(0.3);
            let base: f64 = if pos { 0.8 } else { 0.2 };
            d.push(
                &[base + rng.gen_range(-0.15..0.15), rng.gen_range(0.0..1.0)],
                pos,
            );
        }
        d
    }

    #[test]
    fn tree_roundtrips_exactly() {
        let tree = DecisionTreeLearner::default().fit_tree(&data(1));
        let text = save_tree(&tree);
        let back = load_tree(&text).unwrap();
        assert_eq!(tree.nodes(), back.nodes());
        assert_eq!(tree.feature_names(), back.feature_names());
        // Thresholds round-trip bit-exactly -> identical predictions.
        let probe = data(2);
        for i in 0..probe.len() {
            assert_eq!(tree.predict_proba(probe.row(i)), back.predict_proba(probe.row(i)));
        }
    }

    #[test]
    fn forest_roundtrips_exactly() {
        let forest = RandomForestLearner {
            n_trees: 7,
            ..Default::default()
        }
        .fit_forest(&data(3));
        let text = save_forest(&forest);
        let back = load_forest(&text).unwrap();
        assert_eq!(forest.trees().len(), back.trees().len());
        let probe = data(4);
        for i in 0..probe.len() {
            assert_eq!(
                forest.vote_fraction(probe.row(i)),
                back.vote_fraction(probe.row(i))
            );
        }
    }

    #[test]
    fn corrupt_inputs_are_rejected_with_line_numbers() {
        assert!(load_tree("").is_err());
        assert!(load_tree("not a tree").is_err());
        // Tamper with a child index to point backwards (cycle attempt).
        let tree = DecisionTreeLearner::default().fit_tree(&data(5));
        let text = save_tree(&tree);
        if text.contains("split") {
            let tampered = text.replacen("split", "split-bogus", 1);
            assert!(load_tree(&tampered).is_err());
        }
        // Leaf with impossible counts.
        let bad = "tree v1\nfeatures 0\nnodes 1\nleaf 2 5\n";
        let e = load_tree(bad).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.to_string().contains("more positives"));
    }

    #[test]
    fn cyclic_arena_is_rejected() {
        // A split pointing at itself / backwards must not load.
        let bad = "tree v1\nfeatures 1\n\tf0\nnodes 3\nsplit 0 0.5 0 2\nleaf 1 0\nleaf 1 1\n";
        let e = load_tree(bad).unwrap_err();
        assert!(e.to_string().contains("out of order"), "{e}");
    }

    #[test]
    fn forest_header_mismatch_rejected() {
        let forest = RandomForestLearner {
            n_trees: 3,
            ..Default::default()
        }
        .fit_forest(&data(6));
        let text = save_forest(&forest);
        let lying = text.replacen("forest v1 3", "forest v1 5", 1);
        assert!(load_forest(&lying).is_err());
    }
}
