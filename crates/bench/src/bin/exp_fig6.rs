//! Figure 6 — the new envisioned Magellan ecosystem: on-premise packages
//! plus cloud-native interoperable services, rendered from the live
//! package and service registries.

use magellan_core::registry::commands_per_step;
use magellan_falcon::services::ecosystem_summary;

fn main() {
    // Experiment narration is leveled logging: MAGELLAN_LOG=off silences it.
    magellan_obs::init_bin_logging(magellan_obs::Level::Info);
    magellan_obs::log!(info, "Fig. 6 analog — the envisioned Magellan ecosystem\n");
    magellan_obs::log!(info, "{}", ecosystem_summary());
    magellan_obs::log!(info, "== on-premise command surface (per guide step) ==");
    for (step, n) in commands_per_step() {
        magellan_obs::log!(info, "  {:26} {n:3} commands", step.to_string());
    }
}
