//! # magellan-core — PyMatcher
//!
//! The paper's primary contribution for power users: an ecosystem of
//! interoperable EM tools organized around the *development-stage* how-to
//! guide (Fig. 2) and a *production-stage* executor.
//!
//! The development-stage guide, as implemented by [`pipeline`]:
//!
//! 1. **down-sample** the two input tables ([`downsample`] — the paper's
//!    "intelligently down sampling two tables ... is tricky" pain-point
//!    tool);
//! 2. **select a blocker** by experimenting with several and comparing
//!    label-free recall estimates (`magellan-block`'s debugger);
//! 3. **block** to get the candidate set `C`;
//! 4. **sample** `S ⊂ C` and **label** it ([`sample`], [`labeling`]);
//! 5. **cross-validate** several learners and select the best matcher
//!    (`magellan-ml`);
//! 6. **predict** over `C`, optionally post-processed by a hand-crafted
//!    [`rules::RuleLayer`] (the paper: "the most accurate EM workflows are
//!    likely to involve a combination of ML and rules");
//! 7. **quality-check** on held-out labels and iterate.
//!
//! The resulting artifact is an [`workflow::EmWorkflow`] — the Rust
//! equivalent of the captured Python script `W` — which the
//! production-stage executor ([`exec`]) runs over the full tables on
//! multiple cores (the role Dask plays in the paper).
//!
//! ## Parallel execution ([`par`])
//!
//! Every hot loop in the stack — blocking, sim-joins, feature extraction,
//! forest training, batch prediction, active-learning scoring — runs on
//! one shared work-stealing chunk executor, re-exported here as
//! [`par`] (`magellan-par`). Its determinism contract: parallel output is
//! **bit-identical to serial for any worker count**, enforced end to end
//! by `crates/core/tests/par_determinism.rs`. [`exec::ProductionExecutor`]
//! surfaces each phase's [`par::ParStats`] (pairs/sec, chunks stolen,
//! per-worker busy time) in its [`exec::ProductionReport`].
//!
//! [`registry`] catalogs every user-facing command by guide step and
//! origin, regenerating the paper's Table 3.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod clean;
pub mod debug;
pub mod downsample;
pub mod error;
pub mod evaluate;
pub mod exec;
pub mod interactive;
pub mod labeling;
pub mod persist;
pub mod pipeline;
pub mod registry;
pub mod rules;
pub mod sample;
pub mod stream;
pub mod workflow;

pub use magellan_par as par;

pub use checkpoint::{
    append_checksum, fnv1a, verify_checksum, Checkpoint, CheckpointStore, FileStore, FlakyStore,
    MemStore, Phase,
};
pub use error::MagellanError;

pub use labeling::{Label, Labeler, NoisyLabeler, OracleLabeler, RecordingLabeler};
pub use pipeline::{DevConfig, DevReport};
pub use rules::{Cmp, MatchRule, RuleAction, RuleLayer};
pub use stream::{StreamBatchReport, StreamSession, TextGen};
pub use workflow::EmWorkflow;
