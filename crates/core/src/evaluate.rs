//! End-to-end evaluation of predicted matches against a gold standard —
//! the "Computing Accuracy" step of the guide (Table 3).

use std::collections::HashSet;

use magellan_block::CandidateSet;
use magellan_ml::Metrics;
use magellan_table::Table;

/// Convert a row-pair candidate set to `(a_id, b_id)` pairs.
pub fn pairs_to_ids(
    matches: &CandidateSet,
    a: &Table,
    b: &Table,
    a_key: &str,
    b_key: &str,
) -> magellan_table::Result<HashSet<(String, String)>> {
    let ai = a.schema().try_index_of(a_key)?;
    let bi = b.schema().try_index_of(b_key)?;
    Ok(matches
        .pairs()
        .iter()
        .map(|&(ra, rb)| {
            (
                a.value(ra as usize, ai).display_string(),
                b.value(rb as usize, bi).display_string(),
            )
        })
        .collect())
}

/// Score predicted matches against gold `(a_id, b_id)` pairs.
pub fn evaluate_matches(
    matches: &CandidateSet,
    a: &Table,
    b: &Table,
    a_key: &str,
    b_key: &str,
    gold: &HashSet<(String, String)>,
) -> magellan_table::Result<Metrics> {
    let predicted = pairs_to_ids(matches, a, b, a_key, b_key)?;
    Ok(Metrics::from_pair_sets(&predicted, gold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_table::Dtype;

    #[test]
    fn scores_predictions() {
        let a = Table::from_rows(
            "A",
            &[("id", Dtype::Str)],
            vec![vec!["a0".into()], vec!["a1".into()]],
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            &[("id", Dtype::Str)],
            vec![vec!["b0".into()], vec!["b1".into()]],
        )
        .unwrap();
        let gold: HashSet<(String, String)> = [
            ("a0".to_owned(), "b0".to_owned()),
            ("a1".to_owned(), "b1".to_owned()),
        ]
        .into_iter()
        .collect();
        let predicted = CandidateSet::new(vec![(0, 0), (0, 1)]);
        let m = evaluate_matches(&predicted, &a, &b, "id", "id", &gold).unwrap();
        assert_eq!(m.tp, 1);
        assert_eq!(m.fp, 1);
        assert_eq!(m.fn_, 1);
        assert!((m.precision() - 0.5).abs() < 1e-12);
        assert!((m.recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bad_key_is_an_error() {
        let a = Table::from_rows("A", &[("id", Dtype::Str)], vec![]).unwrap();
        let b = Table::from_rows("B", &[("id", Dtype::Str)], vec![]).unwrap();
        assert!(
            evaluate_matches(&CandidateSet::default(), &a, &b, "zzz", "id", &HashSet::new())
                .is_err()
        );
    }
}
