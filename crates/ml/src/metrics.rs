//! Binary-classification metrics: the precision / recall / F1 numbers
//! every accuracy column in the paper's Tables 1 and 2 reports.

/// Confusion-matrix-derived metrics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Metrics {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Metrics {
    /// Compute from parallel prediction/gold slices.
    pub fn from_predictions(predicted: &[bool], gold: &[bool]) -> Metrics {
        assert_eq!(predicted.len(), gold.len(), "length mismatch");
        let mut m = Metrics::default();
        for (&p, &g) in predicted.iter().zip(gold) {
            match (p, g) {
                (true, true) => m.tp += 1,
                (true, false) => m.fp += 1,
                (false, false) => m.tn += 1,
                (false, true) => m.fn_ += 1,
            }
        }
        m
    }

    /// Build from pair sets: `predicted` and `gold` are sets of id pairs.
    /// (The EM evaluation path: TN is everything in the universe outside
    /// both sets, and is not needed for P/R/F1.)
    ///
    /// ```
    /// use magellan_ml::Metrics;
    /// use std::collections::HashSet;
    ///
    /// let predicted: HashSet<(&str, &str)> = [("a1", "b1"), ("a2", "b9")].into();
    /// let gold: HashSet<(&str, &str)> = [("a1", "b1"), ("a3", "b2")].into();
    /// let m = Metrics::from_pair_sets(&predicted, &gold);
    /// assert_eq!(m.precision(), 0.5);
    /// assert_eq!(m.recall(), 0.5);
    /// ```
    pub fn from_pair_sets<T: Eq + std::hash::Hash>(
        predicted: &std::collections::HashSet<T>,
        gold: &std::collections::HashSet<T>,
    ) -> Metrics {
        let tp = predicted.intersection(gold).count();
        Metrics {
            tp,
            fp: predicted.len() - tp,
            tn: 0,
            fn_: gold.len() - tp,
        }
    }

    /// Total examples counted.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Precision `tp / (tp + fp)`; 1.0 when nothing was predicted positive
    /// (the vacuous-precision convention used in EM evaluation).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 1.0 when there are no gold positives.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 = harmonic mean of precision and recall (0 when both are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy over all four cells.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            1.0
        } else {
            (self.tp + self.tn) as f64 / self.total() as f64
        }
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P={:.1}% R={:.1}% F1={:.1}% (tp={} fp={} fn={} tn={})",
            100.0 * self.precision(),
            100.0 * self.recall(),
            100.0 * self.f1(),
            self.tp,
            self.fp,
            self.fn_,
            self.tn
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn perfect_predictions() {
        let m = Metrics::from_predictions(&[true, false, true], &[true, false, true]);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
        assert_eq!(m.accuracy(), 1.0);
    }

    #[test]
    fn known_confusion_matrix() {
        // tp=2 fp=1 fn=1 tn=1
        let m = Metrics::from_predictions(
            &[true, true, true, false, false],
            &[true, true, false, true, false],
        );
        assert_eq!(m.tp, 2);
        assert_eq!(m.fp, 1);
        assert_eq!(m.fn_, 1);
        assert_eq!(m.tn, 1);
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn vacuous_conventions() {
        let m = Metrics::from_predictions(&[false, false], &[false, false]);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        let m = Metrics::from_predictions(&[false], &[true]);
        assert_eq!(m.precision(), 1.0); // nothing predicted
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }

    /// Every ratio accessor is finite (never NaN/∞) on an all-zero
    /// confusion matrix.
    #[test]
    fn zero_denominator_ratios_are_finite() {
        let m = Metrics::default();
        assert_eq!(m.total(), 0);
        assert_eq!(m.precision(), 1.0); // vacuous-precision convention
        assert_eq!(m.recall(), 1.0); // vacuous-recall convention
        assert_eq!(m.accuracy(), 1.0); // vacuous-accuracy convention
        for v in [m.precision(), m.recall(), m.f1(), m.accuracy()] {
            assert!(v.is_finite(), "ratio accessor produced {v}");
        }
    }

    #[test]
    fn pair_set_metrics() {
        let predicted: HashSet<(u32, u32)> = [(1, 1), (2, 2), (3, 9)].into_iter().collect();
        let gold: HashSet<(u32, u32)> = [(1, 1), (2, 2), (4, 4)].into_iter().collect();
        let m = Metrics::from_pair_sets(&predicted, &gold);
        assert_eq!(m.tp, 2);
        assert_eq!(m.fp, 1);
        assert_eq!(m.fn_, 1);
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        Metrics::from_predictions(&[true], &[true, false]);
    }

    #[test]
    fn display_is_percentages() {
        let m = Metrics::from_predictions(&[true, false], &[true, true]);
        let s = m.to_string();
        assert!(s.contains("P=100.0%") && s.contains("R=50.0%"), "{s}");
    }
}
