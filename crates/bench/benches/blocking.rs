//! Blocker throughput on generated tables, plus the blocking debugger.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use magellan_block::debugger::debug_blocker;
use magellan_block::{
    AttrEquivalenceBlocker, Blocker, BlockingRule, OverlapBlocker, Predicate, RuleBasedBlocker,
    SimFeature, SortedNeighborhoodBlocker, TokSpec,
};
use magellan_datagen::domains::persons;
use magellan_datagen::{DirtModel, ScenarioConfig};

fn scenario(n: usize) -> magellan_datagen::EmScenario {
    persons(&ScenarioConfig {
        size_a: n,
        size_b: n,
        n_matches: n / 3,
        dirt: DirtModel::light(),
        seed: 9,
    })
}

fn bench_blockers(c: &mut Criterion) {
    let mut g = c.benchmark_group("blockers");
    g.sample_size(10);
    for n in [1000usize, 3000] {
        let s = scenario(n);
        let blockers: Vec<(&str, Box<dyn Blocker>)> = vec![
            ("attr_equiv_state", Box::new(AttrEquivalenceBlocker::on("state"))),
            ("overlap_name", Box::new(OverlapBlocker::words("name", 1))),
            (
                "sorted_neighborhood",
                Box::new(SortedNeighborhoodBlocker {
                    l_attr: "name".into(),
                    r_attr: "name".into(),
                    window: 5,
                }),
            ),
            (
                "rule_based",
                Box::new(RuleBasedBlocker::new(vec![BlockingRule {
                    predicates: vec![Predicate {
                        l_attr: "name".into(),
                        r_attr: "name".into(),
                        feature: SimFeature::Jaccard(TokSpec::Word),
                        threshold: 0.3,
                    }],
                }])),
            ),
        ];
        for (name, blocker) in &blockers {
            g.bench_with_input(BenchmarkId::new(*name, n), &n, |b, _| {
                b.iter(|| black_box(blocker.block(&s.table_a, &s.table_b).unwrap()))
            });
        }
    }
    g.finish();
}

fn bench_debugger(c: &mut Criterion) {
    let mut g = c.benchmark_group("blocking_debugger");
    g.sample_size(10);
    let s = scenario(2000);
    let cands = AttrEquivalenceBlocker::on("name")
        .block(&s.table_a, &s.table_b)
        .unwrap();
    g.bench_function("debug_blocker_top20", |b| {
        b.iter(|| {
            black_box(
                debug_blocker(&cands, &s.table_a, &s.table_b, &["name", "city"], 20, 0.3)
                    .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_blockers, bench_debugger);
criterion_main!(benches);
