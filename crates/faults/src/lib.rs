//! # magellan-faults — deterministic chaos for the EM execution stack
//!
//! CloudMatcher routes DAG fragments to three *unreliable* engines: crowd
//! workers that are slow, wrong, or absent (Table 2's 22–36 h crowd
//! latencies), preemptible batch compute, and users who walk away. The
//! execution layer therefore needs a real failure model, not a happy path.
//! This crate provides the three primitives the rest of the workspace
//! builds recovery on:
//!
//! * [`FaultPlan`] — a *seeded, pure* description of which faults fire
//!   where. Every decision is a hash of `(seed, fault kind, site ids,
//!   attempt)`, so a plan is reproducible across runs, processes, and
//!   worker counts, and two sites never share a decision. Injected faults
//!   are **bounded per site** (at most [`FaultPlan::max_failures_per_site`]
//!   consecutive failures), which is what lets retrying executors prove
//!   convergence.
//! * [`RetryPolicy`] — exponential backoff with *deterministic* jitter and
//!   a max-attempt cap. Backoff time is simulated ([`SimClock`]) so chaos
//!   tests replay hours of crowd latency in microseconds.
//! * [`Budget`] — a simulated-time deadline/spend tracker that drives
//!   degradation decisions (e.g. crowd → single-user when the crowd's
//!   latency budget is exhausted).
//!
//! Nothing here touches wall-clock, global state, or threads: a
//! `FaultPlan` is plain `Copy` data that can ride inside any config
//! struct, which is how `magellan-par` threads chunk-level fault injection
//! through its work-stealing pool without breaking its determinism
//! contract.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// SplitMix64 — the statelesss mixing function behind every fault
/// decision. Public only for tests that want to pin decision streams.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Mix a seed with a list of site identifiers into one decision word.
fn mix(seed: u64, ids: &[u64]) -> u64 {
    let mut h = splitmix64(seed);
    for &id in ids {
        h = splitmix64(h ^ id);
    }
    h
}

/// Uniform `[0, 1)` derived from a decision word.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The kinds of faults a [`FaultPlan`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A parallel chunk panics mid-execution (worker crash).
    ChunkPanic,
    /// A DAG fragment fails before producing output (engine failure /
    /// batch preemption).
    FragmentFailure,
    /// A solicited crowd vote never arrives.
    CrowdNoShow,
    /// A fragment runs far longer than nominal (straggler).
    StragglerDelay,
    /// A transient I/O error (checkpoint write, table read).
    TransientIo,
    /// A whole tenant's workflow activation fails transiently (their
    /// session drops, their upload stalls) before any fragment runs.
    TenantFailure,
}

impl FaultKind {
    fn tag(self) -> u64 {
        match self {
            FaultKind::ChunkPanic => 0x01,
            FaultKind::FragmentFailure => 0x02,
            FaultKind::CrowdNoShow => 0x03,
            FaultKind::StragglerDelay => 0x04,
            FaultKind::TransientIo => 0x05,
            FaultKind::TenantFailure => 0x06,
        }
    }
}

/// A seeded, deterministic fault-injection plan.
///
/// Probabilities are per-mille (`137` ⇒ 13.7%). A probability of zero
/// disables that fault kind entirely; [`FaultPlan::none`] disables all of
/// them and is the implicit production configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Master seed. Two plans with different seeds produce independent
    /// fault streams.
    pub seed: u64,
    /// Per-mille probability that a given site fails at all.
    pub chunk_panic_per_mille: u32,
    /// Per-mille probability a DAG fragment attempt fails.
    pub fragment_failure_per_mille: u32,
    /// Per-mille probability a solicited crowd vote never arrives.
    pub crowd_no_show_per_mille: u32,
    /// Per-mille probability a fragment straggles.
    pub straggler_per_mille: u32,
    /// Duration multiplier applied to straggling fragments (≥ 1).
    pub straggler_factor_x100: u32,
    /// Per-mille probability an I/O operation fails transiently.
    pub io_error_per_mille: u32,
    /// Per-mille probability a tenant's workflow activation fails
    /// transiently (retried by the service layer like any other
    /// transient fault).
    pub tenant_failure_per_mille: u32,
    /// Upper bound on *consecutive* injected failures at one site. A site
    /// that draws "faulty" fails attempts `0..k` for a per-site
    /// `k ≤ max_failures_per_site`, then succeeds forever — so any
    /// retrying executor with more than this many attempts converges.
    pub max_failures_per_site: u32,
}

impl FaultPlan {
    /// The no-fault plan (production default; every probability zero).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            chunk_panic_per_mille: 0,
            fragment_failure_per_mille: 0,
            crowd_no_show_per_mille: 0,
            straggler_per_mille: 0,
            straggler_factor_x100: 100,
            io_error_per_mille: 0,
            tenant_failure_per_mille: 0,
            max_failures_per_site: 0,
        }
    }

    /// The standard chaos mix used by the chaos suite: every fault kind
    /// enabled at a rate aggressive enough to fire many times per
    /// pipeline run, bounded at 2 consecutive failures per site.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            chunk_panic_per_mille: 150,
            fragment_failure_per_mille: 250,
            crowd_no_show_per_mille: 200,
            straggler_per_mille: 200,
            straggler_factor_x100: 800,
            io_error_per_mille: 150,
            tenant_failure_per_mille: 150,
            max_failures_per_site: 2,
        }
    }

    /// True when no fault kind can ever fire.
    pub fn is_none(&self) -> bool {
        self.chunk_panic_per_mille == 0
            && self.fragment_failure_per_mille == 0
            && self.crowd_no_show_per_mille == 0
            && self.straggler_per_mille == 0
            && self.io_error_per_mille == 0
            && self.tenant_failure_per_mille == 0
    }

    /// How many consecutive attempts fail at the site identified by `ids`
    /// for a fault kind with the given per-mille rate: `0` for healthy
    /// sites, otherwise `1..=max_failures_per_site`.
    fn site_failures(&self, kind: FaultKind, per_mille: u32, ids: &[u64]) -> u32 {
        if per_mille == 0 || self.max_failures_per_site == 0 {
            return 0;
        }
        let h = mix(self.seed ^ kind.tag().wrapping_mul(0xA24BAED4963EE407), ids);
        if unit(h) >= per_mille as f64 / 1000.0 {
            return 0;
        }
        // Faulty site: draw how many consecutive attempts fail.
        1 + (splitmix64(h) % self.max_failures_per_site as u64) as u32
    }

    /// Does attempt `attempt` (0-based) of chunk `chunk` in region
    /// `region` panic?
    pub fn chunk_panics(&self, region: u64, chunk: u64, attempt: u32) -> bool {
        attempt
            < self.site_failures(
                FaultKind::ChunkPanic,
                self.chunk_panic_per_mille,
                &[region, chunk],
            )
    }

    /// Does attempt `attempt` of fragment `frag` of task `task` fail?
    pub fn fragment_fails(&self, task: u64, frag: u64, attempt: u32) -> bool {
        attempt
            < self.site_failures(
                FaultKind::FragmentFailure,
                self.fragment_failure_per_mille,
                &[task, frag],
            )
    }

    /// Does the `vote`-th crowd vote for question `question` never show
    /// up? (No-shows are per-vote, not per-attempt: a replacement vote is
    /// a new `vote` id.)
    pub fn crowd_no_show(&self, question: u64, vote: u64) -> bool {
        self.crowd_no_show_per_mille > 0
            && unit(mix(
                self.seed ^ FaultKind::CrowdNoShow.tag().wrapping_mul(0xA24BAED4963EE407),
                &[question, vote],
            )) < self.crowd_no_show_per_mille as f64 / 1000.0
    }

    /// The *effective* duration of a fragment whose nominal duration is
    /// `nominal_s`: either `nominal_s` or `nominal_s × straggler_factor`
    /// when the straggler fault fires for this site. Attempt 0 only —
    /// re-executions (speculative or retried) run at nominal speed, which
    /// models rescheduling off the slow machine.
    pub fn straggler_duration_s(&self, task: u64, frag: u64, nominal_s: f64) -> f64 {
        if self.straggler_per_mille == 0 {
            return nominal_s;
        }
        let h = mix(
            self.seed ^ FaultKind::StragglerDelay.tag().wrapping_mul(0xA24BAED4963EE407),
            &[task, frag],
        );
        if unit(h) < self.straggler_per_mille as f64 / 1000.0 {
            nominal_s * (self.straggler_factor_x100.max(100) as f64 / 100.0)
        } else {
            nominal_s
        }
    }

    /// Does attempt `attempt` of I/O operation `op` fail transiently?
    pub fn io_fails(&self, op: u64, attempt: u32) -> bool {
        attempt < self.site_failures(FaultKind::TransientIo, self.io_error_per_mille, &[op])
    }

    /// Does attempt `attempt` of activating tenant `tenant`'s workflow
    /// fail transiently? Bounded per tenant like every other site, so a
    /// retrying service always converges.
    pub fn tenant_fails(&self, tenant: u64, attempt: u32) -> bool {
        attempt
            < self.site_failures(
                FaultKind::TenantFailure,
                self.tenant_failure_per_mille,
                &[tenant],
            )
    }

    /// The chunk-level slice of this plan for `region`, as the plain-data
    /// injector `magellan-par` carries inside its `ParConfig`.
    pub fn chunk_faults(&self, region: u64) -> ChunkFaults {
        ChunkFaults {
            seed: self.seed,
            region,
            per_mille: self.chunk_panic_per_mille,
            max_failures: self.max_failures_per_site,
        }
    }
}

/// The chunk-panic slice of a [`FaultPlan`]: pure `Copy` data a parallel
/// executor can carry in its config and consult per `(chunk, attempt)`.
/// Decisions depend only on `(seed, region, chunk, attempt)` — never on
/// which worker claims the chunk — so injection preserves any
/// scheduling-independence contract the executor offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkFaults {
    /// Plan seed.
    pub seed: u64,
    /// Identifier of the parallel region (so two regions in one pipeline
    /// draw independent faults).
    pub region: u64,
    /// Per-mille probability a chunk site is faulty.
    pub per_mille: u32,
    /// Max consecutive injected failures per chunk.
    pub max_failures: u32,
}

impl ChunkFaults {
    /// An injector that never fires.
    pub fn none() -> Self {
        ChunkFaults {
            seed: 0,
            region: 0,
            per_mille: 0,
            max_failures: 0,
        }
    }

    /// Should attempt `attempt` (0-based) of `chunk` panic?
    pub fn injects(&self, chunk: u64, attempt: u32) -> bool {
        FaultPlan {
            seed: self.seed,
            chunk_panic_per_mille: self.per_mille,
            max_failures_per_site: self.max_failures,
            ..FaultPlan::none()
        }
        .chunk_panics(self.region, chunk, attempt)
    }
}

/// A seeded, deterministic tenant arrival plan on the simulated clock.
///
/// CloudMatcher is a *multi-tenant* self-service system: Table 2 of the
/// paper reports 13 concurrent EM tasks in flight. The service layer
/// replays that traffic on a [`SimClock`] timeline, and this plan is the
/// pure description of it: tenant `i` arrives at `arrival_s(i)` (the
/// cumulative sum of seeded exponential-ish interarrival gaps), with a
/// seeded priority class and fair-share weight. Every draw is a hash of
/// `(seed, tag, tenant)`, so the plan is identical across runs,
/// processes, and worker counts — which is what makes the service's
/// admission/rejection set a pure function of `(seed, plan, quotas)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalPlan {
    /// Master seed for all draws.
    pub seed: u64,
    /// Number of tenants the plan describes.
    pub n_tenants: u32,
    /// Mean interarrival gap, simulated seconds.
    pub mean_interarrival_s: f64,
}

impl ArrivalPlan {
    /// Domain-separation tag for arrival-gap draws.
    const GAP_TAG: u64 = 0xA221_7A1C_0FFE_E001;
    /// Domain-separation tag for priority-class draws.
    const PRIO_TAG: u64 = 0xA221_7A1C_0FFE_E002;
    /// Domain-separation tag for fair-share-weight draws.
    const WEIGHT_TAG: u64 = 0xA221_7A1C_0FFE_E003;

    /// A plan with `n_tenants` arrivals whose gaps average
    /// `mean_interarrival_s` simulated seconds.
    pub fn poisson(seed: u64, n_tenants: u32, mean_interarrival_s: f64) -> Self {
        ArrivalPlan {
            seed,
            n_tenants,
            mean_interarrival_s: mean_interarrival_s.max(0.0),
        }
    }

    /// The seeded interarrival gap *before* tenant `tenant`, simulated
    /// seconds: an inverse-CDF exponential draw, so gaps are memoryless
    /// like real self-service traffic but perfectly replayable.
    pub fn gap_s(&self, tenant: u32) -> f64 {
        let u = unit(mix(self.seed ^ Self::GAP_TAG, &[u64::from(tenant)]));
        // u ∈ [0, 1) ⇒ 1 - u ∈ (0, 1] ⇒ the log is finite and ≤ 0.
        -self.mean_interarrival_s * (1.0 - u).ln()
    }

    /// Arrival time of tenant `tenant` (0-based), simulated seconds:
    /// cumulative sum of the gaps up to and including theirs.
    pub fn arrival_s(&self, tenant: u32) -> f64 {
        (0..=tenant.min(self.n_tenants.saturating_sub(1)))
            .map(|i| self.gap_s(i))
            .sum()
    }

    /// All arrival times in tenant order (non-decreasing by construction).
    pub fn arrivals(&self) -> Vec<f64> {
        let mut t = 0.0;
        (0..self.n_tenants)
            .map(|i| {
                t += self.gap_s(i);
                t
            })
            .collect()
    }

    /// Seeded priority class for tenant `tenant` in `0..classes` (higher
    /// is more urgent). `classes == 0` always yields `0`.
    pub fn priority_class(&self, tenant: u32, classes: u32) -> u32 {
        if classes == 0 {
            return 0;
        }
        (mix(self.seed ^ Self::PRIO_TAG, &[u64::from(tenant)]) % u64::from(classes)) as u32
    }

    /// Seeded fair-share weight for tenant `tenant` in `1..=max_weight`
    /// (never zero — a zero weight would starve the tenant forever).
    pub fn weight(&self, tenant: u32, max_weight: u32) -> u32 {
        let m = max_weight.max(1);
        1 + (mix(self.seed ^ Self::WEIGHT_TAG, &[u64::from(tenant)]) % u64::from(m)) as u32
    }
}

/// Exponential backoff with deterministic jitter and a max-attempt cap.
///
/// `delay_s(attempt)` is a pure function of `(policy, attempt)`: the
/// jitter term is hashed from the seed, so a schedule can be pinned in a
/// test and replayed identically forever.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts allowed (first try + retries). `1` disables retry.
    pub max_attempts: u32,
    /// Backoff before the first retry, simulated seconds.
    pub base_delay_s: f64,
    /// Multiplier applied per subsequent retry (≥ 1).
    pub multiplier: f64,
    /// Upper clamp on any single backoff delay, simulated seconds.
    pub max_delay_s: f64,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a
    /// deterministic factor in `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay_s: 0.5,
            multiplier: 2.0,
            max_delay_s: 60.0,
            jitter: 0.25,
            seed: 7,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        }
    }

    /// May attempt number `attempt` (0-based) run at all?
    pub fn allows(&self, attempt: u32) -> bool {
        attempt < self.max_attempts.max(1)
    }

    /// Backoff delay *before* retry number `attempt` (1-based: the delay
    /// slept after attempt `attempt - 1` failed), in simulated seconds.
    pub fn delay_s(&self, attempt: u32) -> f64 {
        let attempt = attempt.max(1);
        let exp = (attempt - 1).min(62);
        let raw = self.base_delay_s * self.multiplier.max(1.0).powi(exp as i32);
        let clamped = raw.min(self.max_delay_s);
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter == 0.0 {
            return clamped;
        }
        // Deterministic factor in [1 - jitter, 1 + jitter].
        let u = unit(mix(self.seed ^ 0xBAC0FF, &[attempt as u64]));
        clamped * (1.0 - jitter + 2.0 * jitter * u)
    }

    /// The full backoff schedule: delays before retries `1..max_attempts`.
    pub fn schedule(&self) -> Vec<f64> {
        (1..self.max_attempts.max(1)).map(|a| self.delay_s(a)).collect()
    }

    /// Worst-case total simulated time spent backing off.
    pub fn total_backoff_s(&self) -> f64 {
        self.schedule().iter().sum()
    }
}

/// A simulated-time clock: chaos tests replay crowd-scale latencies
/// without wall-clock cost. Time only moves when someone advances it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimClock {
    now_s: f64,
}

impl SimClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current simulated time, seconds.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Advance by `dt` seconds (negative advances are ignored).
    pub fn advance_s(&mut self, dt: f64) {
        if dt > 0.0 && dt.is_finite() {
            self.now_s += dt;
        }
    }
}

/// A simulated-time budget/deadline: tracks spend against a cap and
/// drives degradation decisions ("the crowd blew its latency budget —
/// fall back to the single user").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budget {
    /// Total simulated seconds allowed (`f64::INFINITY` = unlimited).
    pub total_s: f64,
    /// Simulated seconds spent so far.
    pub spent_s: f64,
}

impl Budget {
    /// A budget capped at `total_s` simulated seconds.
    pub fn seconds(total_s: f64) -> Self {
        Budget {
            total_s: total_s.max(0.0),
            spent_s: 0.0,
        }
    }

    /// An unlimited budget.
    pub fn unlimited() -> Self {
        Budget {
            total_s: f64::INFINITY,
            spent_s: 0.0,
        }
    }

    /// Seconds remaining (never negative).
    pub fn remaining_s(&self) -> f64 {
        (self.total_s - self.spent_s).max(0.0)
    }

    /// Has the budget been used up?
    pub fn exhausted(&self) -> bool {
        self.spent_s >= self.total_s
    }

    /// Charge `dt` seconds against the budget; returns `true` while the
    /// budget still holds *after* the charge.
    pub fn charge_s(&mut self, dt: f64) -> bool {
        if dt > 0.0 && dt.is_finite() {
            self.spent_s += dt;
        }
        !self.exhausted()
    }
}

/// Errors that can say whether retrying might help.
pub trait Transience {
    /// True when the failure is plausibly temporary (worth retrying).
    fn transient(&self) -> bool;
    /// True when retrying cannot help.
    fn fatal(&self) -> bool {
        !self.transient()
    }
}

/// Run `f` under `policy`, advancing `clock` by the backoff delay between
/// attempts. Retries only transient errors; the first fatal error — or
/// the last transient one once attempts are exhausted — is returned.
/// `f` receives the 0-based attempt number.
pub fn run_with_retry<T, E: Transience>(
    policy: &RetryPolicy,
    clock: &mut SimClock,
    mut f: impl FnMut(u32) -> Result<T, E>,
) -> Result<T, E> {
    let mut attempt = 0u32;
    loop {
        match f(attempt) {
            Ok(v) => return Ok(v),
            Err(e) => {
                if e.fatal() || !policy.allows(attempt + 1) {
                    magellan_obs::event(
                        "retries_exhausted",
                        &[
                            ("attempt", magellan_obs::EvVal::U(u64::from(attempt))),
                            ("fatal", magellan_obs::EvVal::U(u64::from(e.fatal()))),
                        ],
                    );
                    magellan_obs::flight_on_failure(
                        "retries_exhausted",
                        &[("attempt", magellan_obs::EvVal::U(u64::from(attempt)))],
                    );
                    return Err(e);
                }
                let delay = policy.delay_s(attempt + 1);
                clock.advance_s(delay);
                magellan_obs::event(
                    "retry_scheduled",
                    &[("attempt", magellan_obs::EvVal::U(u64::from(attempt + 1)))],
                );
                // Mirror the simulated sleep onto a pinned obs clock and
                // log the `backoff_slept` event on the shared timeline.
                magellan_obs::on_backoff(delay);
                attempt += 1;
            }
        }
    }
}

/// One step of a seeded record stream: what the `step`-th mutation does,
/// abstractly. The plan decides *kind*, *side*, and *selector words*; the
/// streaming layer maps selectors onto its current alive population and
/// text generator, so the plan stays a pure leaf with no EM dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOp {
    /// Append a fresh record.
    Insert {
        /// Target the left collection (else right).
        left: bool,
    },
    /// Tombstone an existing record; `victim` is a raw selector word the
    /// caller reduces modulo its alive count.
    Delete {
        /// Target the left collection (else right).
        left: bool,
        /// Raw victim-selector word.
        victim: u64,
    },
    /// Rewrite an existing record's text in place.
    Update {
        /// Target the left collection (else right).
        left: bool,
        /// Raw victim-selector word.
        victim: u64,
    },
}

/// A seeded, pure description of an unbounded record-mutation stream —
/// the streaming analog of [`FaultPlan`]. Step `t`'s op is a hash of
/// `(seed, t)` alone, so a daemon killed at step `k` and resumed from a
/// checkpoint replays steps `k..` **identically**: determinism of the
/// incremental tier's live view reduces to determinism of this plan plus
/// the engine's own worker-invariance contract.
///
/// Kind probabilities are per-mille; whatever `insert + delete` leaves of
/// 1000 is the update rate. Mixes use distinct tag constants from every
/// [`FaultKind`] stream, so fault and stream plans sharing a seed stay
/// independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamPlan {
    /// Master seed; different seeds give independent streams.
    pub seed: u64,
    /// Per-mille probability a step inserts a fresh record.
    pub insert_per_mille: u32,
    /// Per-mille probability a step deletes an existing record.
    pub delete_per_mille: u32,
    /// Per-mille probability a step targets the left collection.
    pub left_per_mille: u32,
}

/// Tag constants keeping the stream's three decision sub-streams (kind,
/// side, victim/text words) disjoint from each other and from fault
/// decisions.
const STREAM_KIND_TAG: u64 = 0x11;
const STREAM_SIDE_TAG: u64 = 0x12;
const STREAM_VICTIM_TAG: u64 = 0x13;
const STREAM_TEXT_TAG: u64 = 0x14;

impl StreamPlan {
    /// The standard churn mix used by the incremental suites: 30%
    /// inserts, 20% deletes, 50% in-place updates, sides balanced.
    pub fn churn(seed: u64) -> Self {
        StreamPlan {
            seed,
            insert_per_mille: 300,
            delete_per_mille: 200,
            left_per_mille: 500,
        }
    }

    /// An insert-only plan (pure growth — no tombstones, no compaction
    /// pressure); useful as the streaming baseline.
    pub fn insert_only(seed: u64) -> Self {
        StreamPlan {
            seed,
            insert_per_mille: 1000,
            delete_per_mille: 0,
            left_per_mille: 500,
        }
    }

    /// The `step`-th mutation of the stream (0-based), decided purely
    /// from `(seed, step)`.
    pub fn op(&self, step: u64) -> StreamOp {
        let left = unit(mix(self.seed ^ STREAM_SIDE_TAG.wrapping_mul(0xA24BAED4963EE407), &[step]))
            < self.left_per_mille as f64 / 1000.0;
        let kind =
            unit(mix(self.seed ^ STREAM_KIND_TAG.wrapping_mul(0xA24BAED4963EE407), &[step]));
        let insert_p = self.insert_per_mille as f64 / 1000.0;
        let delete_p = self.delete_per_mille as f64 / 1000.0;
        if kind < insert_p {
            StreamOp::Insert { left }
        } else if kind < insert_p + delete_p {
            StreamOp::Delete {
                left,
                victim: self.victim_word(step),
            }
        } else {
            StreamOp::Update {
                left,
                victim: self.victim_word(step),
            }
        }
    }

    /// The raw victim-selector word for `step` (callers reduce modulo the
    /// alive population at apply time).
    pub fn victim_word(&self, step: u64) -> u64 {
        mix(self.seed ^ STREAM_VICTIM_TAG.wrapping_mul(0xA24BAED4963EE407), &[step])
    }

    /// A per-step seed for generating the inserted/updated record text.
    pub fn text_seed(&self, step: u64) -> u64 {
        mix(self.seed ^ STREAM_TEXT_TAG.wrapping_mul(0xA24BAED4963EE407), &[step])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_plan_is_deterministic_and_mixes_kinds() {
        let p = StreamPlan::churn(42);
        let q = StreamPlan::churn(42);
        let mut inserts = 0;
        let mut deletes = 0;
        let mut updates = 0;
        let mut lefts = 0;
        for t in 0..1000 {
            assert_eq!(p.op(t), q.op(t), "same seed must replay identically");
            match p.op(t) {
                StreamOp::Insert { left } => {
                    inserts += 1;
                    lefts += usize::from(left);
                }
                StreamOp::Delete { left, victim } => {
                    deletes += 1;
                    lefts += usize::from(left);
                    assert_eq!(victim, p.victim_word(t));
                }
                StreamOp::Update { left, .. } => {
                    updates += 1;
                    lefts += usize::from(left);
                }
            }
        }
        // ~300/200/500 per mille with generous slack.
        assert!((200..400).contains(&inserts), "inserts={inserts}");
        assert!((100..300).contains(&deletes), "deletes={deletes}");
        assert!((400..600).contains(&updates), "updates={updates}");
        assert!((400..600).contains(&lefts), "lefts={lefts}");

        let r = StreamPlan::churn(43);
        let diverges = (0..100).any(|t| p.op(t) != r.op(t));
        assert!(diverges, "different seeds must give different streams");
    }

    #[test]
    fn insert_only_never_deletes_and_text_seeds_differ() {
        let p = StreamPlan::insert_only(7);
        for t in 0..200 {
            assert!(matches!(p.op(t), StreamOp::Insert { .. }));
        }
        assert_ne!(p.text_seed(0), p.text_seed(1));
        assert_ne!(p.text_seed(0), p.victim_word(0));
    }

    #[test]
    fn plans_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(1);
        let b = FaultPlan::seeded(1);
        let c = FaultPlan::seeded(2);
        let sig = |p: &FaultPlan| -> Vec<bool> {
            (0..200)
                .map(|i| p.chunk_panics(3, i, 0))
                .chain((0..200).map(|i| p.fragment_fails(i, 1, 0)))
                .chain((0..200).map(|i| p.crowd_no_show(i, 0)))
                .collect()
        };
        assert_eq!(sig(&a), sig(&b));
        assert_ne!(sig(&a), sig(&c));
        // And the rates are in a plausible band for 15–25% per-mille.
        let fired = sig(&a).iter().filter(|&&x| x).count();
        assert!(fired > 40 && fired < 250, "{fired} faults out of 600 draws");
    }

    #[test]
    fn injected_failures_are_bounded_per_site() {
        let p = FaultPlan::seeded(9);
        for chunk in 0..500u64 {
            // After max_failures_per_site attempts every site succeeds.
            assert!(!p.chunk_panics(0, chunk, p.max_failures_per_site));
            assert!(!p.fragment_fails(chunk, 0, p.max_failures_per_site));
            assert!(!p.io_fails(chunk, p.max_failures_per_site));
            // And failures are consecutive from attempt 0.
            let k = (0..=p.max_failures_per_site)
                .take_while(|&a| p.chunk_panics(0, chunk, a))
                .count() as u32;
            for a in 0..p.max_failures_per_site {
                assert_eq!(p.chunk_panics(0, chunk, a), a < k);
            }
        }
    }

    #[test]
    fn none_plan_never_fires() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        for i in 0..100 {
            assert!(!p.chunk_panics(0, i, 0));
            assert!(!p.fragment_fails(i, 0, 0));
            assert!(!p.crowd_no_show(i, 0));
            assert!(!p.io_fails(i, 0));
            assert_eq!(p.straggler_duration_s(i, 0, 10.0), 10.0);
        }
        assert!(!FaultPlan::seeded(3).is_none());
    }

    #[test]
    fn chunk_faults_slice_matches_plan() {
        let p = FaultPlan::seeded(11);
        let cf = p.chunk_faults(5);
        for chunk in 0..300u64 {
            for attempt in 0..4 {
                assert_eq!(cf.injects(chunk, attempt), p.chunk_panics(5, chunk, attempt));
            }
        }
        assert!(!ChunkFaults::none().injects(0, 0));
    }

    #[test]
    fn stragglers_inflate_durations_deterministically() {
        let p = FaultPlan::seeded(4);
        let mut slow = 0;
        for frag in 0..1000u64 {
            let d = p.straggler_duration_s(1, frag, 10.0);
            assert_eq!(d, p.straggler_duration_s(1, frag, 10.0));
            assert!(d == 10.0 || (d - 80.0).abs() < 1e-9, "{d}");
            if d > 10.0 {
                slow += 1;
            }
        }
        // ~20% per-mille straggler rate.
        assert!(slow > 100 && slow < 350, "{slow} stragglers");
    }

    #[test]
    fn tenant_failures_are_bounded_and_seed_stable() {
        let p = FaultPlan::seeded(21);
        let q = FaultPlan::seeded(21);
        let mut faulty = 0;
        for t in 0..500u64 {
            assert_eq!(p.tenant_fails(t, 0), q.tenant_fails(t, 0));
            // Converges after max_failures_per_site attempts.
            assert!(!p.tenant_fails(t, p.max_failures_per_site));
            if p.tenant_fails(t, 0) {
                faulty += 1;
            }
        }
        // ~15% per-mille rate.
        assert!(faulty > 30 && faulty < 150, "{faulty} faulty tenants");
        assert!(!FaultPlan::none().tenant_fails(0, 0));
        // Enabling tenant failures alone makes the plan non-none.
        let only_tenants = FaultPlan {
            tenant_failure_per_mille: 100,
            max_failures_per_site: 1,
            ..FaultPlan::none()
        };
        assert!(!only_tenants.is_none());
    }

    #[test]
    fn arrival_plans_are_deterministic_monotone_and_seed_sensitive() {
        let a = ArrivalPlan::poisson(5, 16, 30.0);
        let b = ArrivalPlan::poisson(5, 16, 30.0);
        let c = ArrivalPlan::poisson(6, 16, 30.0);
        assert_eq!(a.arrivals(), b.arrivals());
        assert_ne!(a.arrivals(), c.arrivals());
        let ts = a.arrivals();
        assert_eq!(ts.len(), 16);
        for w in ts.windows(2) {
            assert!(w[1] >= w[0], "arrivals must be non-decreasing");
        }
        assert!(ts.iter().all(|t| t.is_finite() && *t >= 0.0));
        // Per-tenant accessor agrees with the bulk listing.
        for (i, t) in ts.iter().enumerate() {
            assert_eq!(a.arrival_s(i as u32), *t);
        }
        // Mean gap lands in a plausible band around the configured mean.
        let mean = ts.last().unwrap() / 16.0;
        assert!(mean > 5.0 && mean < 120.0, "mean gap {mean}");
        // Priority and weight draws are in range and deterministic.
        for t in 0..16 {
            assert!(a.priority_class(t, 3) < 3);
            assert_eq!(a.priority_class(t, 3), b.priority_class(t, 3));
            let w = a.weight(t, 4);
            assert!((1..=4).contains(&w));
            assert_eq!(w, b.weight(t, 4));
        }
        assert_eq!(a.priority_class(0, 0), 0);
        assert!(a.weight(0, 0) >= 1);
    }

    #[test]
    fn backoff_schedule_is_pinned_per_seed() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_delay_s: 1.0,
            multiplier: 2.0,
            max_delay_s: 100.0,
            jitter: 0.25,
            seed: 42,
        };
        let s1 = p.schedule();
        let s2 = p.schedule();
        assert_eq!(s1, s2, "jitter must be deterministic");
        assert_eq!(s1.len(), 4);
        // Each delay is within ±25% of the nominal exponential step.
        for (i, d) in s1.iter().enumerate() {
            let nominal = 2f64.powi(i as i32);
            assert!(*d >= nominal * 0.75 - 1e-12 && *d <= nominal * 1.25 + 1e-12, "delay {i} = {d}");
        }
        // A different seed produces a different jitter stream.
        let other = RetryPolicy { seed: 43, ..p }.schedule();
        assert_ne!(s1, other);
        // Zero jitter gives the exact exponential schedule, clamped.
        let exact = RetryPolicy { jitter: 0.0, max_delay_s: 3.0, ..p }.schedule();
        assert_eq!(exact, vec![1.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn retry_policy_caps_attempts() {
        let p = RetryPolicy { max_attempts: 3, ..Default::default() };
        assert!(p.allows(0) && p.allows(2) && !p.allows(3));
        assert!(RetryPolicy::no_retry().allows(0));
        assert!(!RetryPolicy::no_retry().allows(1));
        assert!(p.total_backoff_s() > 0.0);
    }

    #[derive(Debug)]
    struct TestErr(bool);
    impl Transience for TestErr {
        fn transient(&self) -> bool {
            self.0
        }
    }

    #[test]
    fn run_with_retry_recovers_from_transient_failures() {
        let policy = RetryPolicy {
            max_attempts: 4,
            jitter: 0.0,
            base_delay_s: 1.0,
            multiplier: 2.0,
            max_delay_s: 100.0,
            seed: 0,
        };
        let mut clock = SimClock::new();
        let r = run_with_retry(&policy, &mut clock, |attempt| {
            if attempt < 2 {
                Err(TestErr(true))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(r.unwrap(), 2);
        // Two backoffs: 1s + 2s of *simulated* time.
        assert!((clock.now_s() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn run_with_retry_stops_on_fatal_and_exhaustion() {
        let policy = RetryPolicy { max_attempts: 3, ..Default::default() };
        let mut clock = SimClock::new();
        let mut calls = 0;
        let r: Result<(), TestErr> = run_with_retry(&policy, &mut clock, |_| {
            calls += 1;
            Err(TestErr(false))
        });
        assert!(r.is_err());
        assert_eq!(calls, 1, "fatal errors must not be retried");
        assert_eq!(clock.now_s(), 0.0);

        let mut calls = 0;
        let r: Result<(), TestErr> = run_with_retry(&policy, &mut clock, |_| {
            calls += 1;
            Err(TestErr(true))
        });
        assert!(r.is_err());
        assert_eq!(calls, 3, "transient errors retry to the cap");
    }

    #[test]
    fn budget_tracks_spend_and_drives_degradation() {
        let mut b = Budget::seconds(10.0);
        assert!(!b.exhausted());
        assert!(b.charge_s(4.0));
        assert_eq!(b.remaining_s(), 6.0);
        assert!(!b.charge_s(7.0));
        assert!(b.exhausted());
        assert_eq!(b.remaining_s(), 0.0);
        let mut u = Budget::unlimited();
        assert!(u.charge_s(1e12));
        assert!(!u.exhausted());
    }

    #[test]
    fn sim_clock_only_moves_forward() {
        let mut c = SimClock::new();
        c.advance_s(2.5);
        c.advance_s(-10.0);
        c.advance_s(f64::NAN);
        assert_eq!(c.now_s(), 2.5);
    }
}
