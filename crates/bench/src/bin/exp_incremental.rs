//! Incremental EM engine experiment: O(delta) update cost vs from-scratch
//! rebuild at 1% churn.
//!
//! Seeds a 4k-row-per-side corpus into the delta-maintained join engine,
//! then applies churn batches (1% of the corpus per batch: a seeded mix of
//! inserts, deletes, and in-place updates from a
//! [`magellan_faults::StreamPlan`]). Per batch it measures the delta
//! apply, measures the from-scratch batch rebuild over the same records,
//! and asserts the live view is **bit-identical** to the rebuild at worker
//! counts 1/2/4/8. A second section drives the full streaming pipeline
//! ([`magellan_core::StreamSession`]: join → candidates → dirty-pair
//! features → dirty-pair rescore) and checks its matched view against the
//! from-scratch oracle.
//!
//! Writes `results/exp_incremental.txt` and `BENCH_incremental.json`
//! (updates/sec, delta-vs-rebuild speedup — acceptance floor 10x — and
//! compaction pause p99).

use std::fmt::Write as _;
use std::time::Instant;

use magellan_core::{StreamSession, TextGen};
use magellan_faults::{SimClock, StreamOp, StreamPlan};
use magellan_features::{Feature, FeatureKind, TokSpecF};
use magellan_ml::{Dataset, FlatForest, RandomForestLearner};
use magellan_par::ParConfig;
use magellan_simjoin::{IncrementalJoin, RecordMutation, SetSimMeasure, Side};
use magellan_textsim::tokenize::WhitespaceTokenizer;

const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Deterministic 3–8-token record text.
fn synth_text(seed: u64, vocab: u64) -> String {
    let n = 3 + mix64(seed) % 6;
    (0..n)
        .map(|i| format!("tok{}", mix64(seed ^ (i + 1)) % vocab))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Materialize the next `n` plan steps against the engine's current alive
/// population (mirrors `StreamSession::synth_batch`, engine edition).
fn synth_batch(
    engine: &IncrementalJoin,
    plan: &StreamPlan,
    vocab: u64,
    start: u64,
    n: usize,
) -> Vec<RecordMutation> {
    let alive = |side: Side| -> Vec<usize> {
        engine
            .texts(side)
            .iter()
            .enumerate()
            .filter_map(|(rid, t)| t.as_ref().map(|_| rid))
            .collect()
    };
    let (alive_l, alive_r) = (alive(Side::Left), alive(Side::Right));
    (start..start + n as u64)
        .map(|step| {
            let side_of = |l: bool| if l { Side::Left } else { Side::Right };
            let pick = |l: bool, v: u64| -> Option<usize> {
                let pool = if l { &alive_l } else { &alive_r };
                (!pool.is_empty()).then(|| pool[(v % pool.len() as u64) as usize])
            };
            match plan.op(step) {
                StreamOp::Insert { left } => RecordMutation::Insert {
                    side: side_of(left),
                    text: Some(synth_text(plan.text_seed(step), vocab)),
                },
                StreamOp::Delete { left, victim } => match pick(left, victim) {
                    Some(rid) => RecordMutation::Delete { side: side_of(left), rid },
                    None => RecordMutation::Insert {
                        side: side_of(left),
                        text: Some(synth_text(plan.text_seed(step), vocab)),
                    },
                },
                StreamOp::Update { left, victim } => match pick(left, victim) {
                    Some(rid) => RecordMutation::Update {
                        side: side_of(left),
                        rid,
                        text: Some(synth_text(plan.text_seed(step), vocab)),
                    },
                    None => RecordMutation::Insert {
                        side: side_of(left),
                        text: Some(synth_text(plan.text_seed(step), vocab)),
                    },
                },
            }
        })
        .collect()
}

fn assert_view_equals(view: &[magellan_simjoin::JoinPair], rebuilt: &[magellan_simjoin::JoinPair], what: &str) {
    assert_eq!(view.len(), rebuilt.len(), "{what}: cardinality diverged");
    for (a, b) in view.iter().zip(rebuilt) {
        assert_eq!((a.l, a.r), (b.l, b.r), "{what}: pair set diverged");
        assert_eq!(a.sim.to_bits(), b.sim.to_bits(), "{what}: sim bits diverged");
    }
}

fn percentile_ms(sorted_s: &[f64], p: f64) -> f64 {
    if sorted_s.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_s.len() as f64 * p).ceil() as usize).min(sorted_s.len()) - 1;
    sorted_s[idx] * 1e3
}

fn median(mut v: Vec<f64>) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn fixture_forest() -> FlatForest {
    let mut d = Dataset::with_dims(2);
    for i in 0..60 {
        let hi = i % 2 == 0;
        let base = if hi { 0.8 } else { 0.15 };
        d.push(&[base + 0.01 * (i % 7) as f64, base + 0.01 * ((i + 3) % 5) as f64], hi);
    }
    FlatForest::from_forest(
        &RandomForestLearner {
            n_trees: 5,
            ..Default::default()
        }
        .fit_forest(&d),
    )
}

fn main() {
    magellan_obs::init_bin_logging(magellan_obs::Level::Info);
    let smoke = std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let n = if smoke { 400 } else { 4000 };
    let batches = if smoke { 6 } else { 50 };
    let churn = (n / 100).max(4); // 1% of the corpus per batch
    let vocab = (n / 5).max(40) as u64;
    let measure = SetSimMeasure::Jaccard(0.5);
    let tok = WhitespaceTokenizer::new();
    let plan = StreamPlan::churn(17);

    let mut txt = String::new();
    writeln!(txt, "Incremental EM engine — delta apply vs from-scratch rebuild").unwrap();
    writeln!(
        txt,
        "{n} rows/side seed corpus, {batches} batches x {churn} mutations (1% churn), jaccard 0.5, smoke = {smoke}"
    )
    .unwrap();

    // Seed corpus: one big insert batch per side, identical for every
    // worker count.
    let seed_batch: Vec<RecordMutation> = (0..2 * n)
        .map(|i| RecordMutation::Insert {
            side: if i % 2 == 0 { Side::Left } else { Side::Right },
            text: Some(synth_text(0xC0FFEE ^ i as u64, vocab)),
        })
        .collect();

    let mut engines: Vec<(usize, IncrementalJoin)> = WORKERS
        .iter()
        .map(|&w| {
            let mut e = IncrementalJoin::new(measure);
            e.apply_batch(&seed_batch, &tok, &ParConfig::workers(w));
            (w, e)
        })
        .collect();

    // Churn loop: time the delta apply (w=1 engine) and the rebuild, and
    // hold every worker count's live view to the rebuild oracle.
    let mut t_delta = Vec::with_capacity(batches);
    let mut t_rebuild = Vec::with_capacity(batches);
    let mut total_ops = 0usize;
    let mut pairs_added = 0u64;
    let mut pairs_removed = 0u64;
    let mut step = 0u64;
    for _ in 0..batches {
        let batch = synth_batch(&engines[0].1, &plan, vocab, step, churn);
        step += churn as u64;
        total_ops += batch.len();
        for (w, engine) in &mut engines {
            let cfg = ParConfig::workers(*w);
            if *w == 1 {
                let t = Instant::now();
                let (deltas, _) = engine.apply_batch(&batch, &tok, &cfg);
                t_delta.push(t.elapsed().as_secs_f64());
                for d in &deltas {
                    match d {
                        magellan_simjoin::PairDelta::Added(_) => pairs_added += 1,
                        magellan_simjoin::PairDelta::Removed { .. } => pairs_removed += 1,
                    }
                }
            } else {
                engine.apply_batch(&batch, &tok, &cfg);
            }
        }
        let t = Instant::now();
        let rebuilt = engines[0].1.rebuild_from_scratch(&tok);
        t_rebuild.push(t.elapsed().as_secs_f64());
        for (w, engine) in &engines {
            assert_view_equals(
                &engine.live_pairs(),
                &rebuilt,
                &format!("workers={w} after batch {}", t_delta.len()),
            );
        }
    }

    let delta_median = median(t_delta.clone());
    let rebuild_median = median(t_rebuild.clone());
    let speedup = rebuild_median / delta_median;
    let total_delta_s: f64 = t_delta.iter().sum();
    let updates_per_sec = total_ops as f64 / total_delta_s;
    let mut pauses: Vec<f64> = engines[0]
        .1
        .compaction_pauses()
        .iter()
        .map(|d| d.as_secs_f64())
        .collect();
    pauses.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pause_p99_ms = percentile_ms(&pauses, 0.99);

    writeln!(txt).unwrap();
    writeln!(
        txt,
        "delta apply:  median {:.3}ms/batch ({updates_per_sec:.0} updates/sec)",
        delta_median * 1e3
    )
    .unwrap();
    writeln!(txt, "rebuild:      median {:.3}ms/batch", rebuild_median * 1e3).unwrap();
    writeln!(
        txt,
        "delta-vs-rebuild speedup: {speedup:.1}x (acceptance floor: 10x at 1% churn)"
    )
    .unwrap();
    writeln!(
        txt,
        "deltas: +{pairs_added} -{pairs_removed} pairs over {total_ops} mutations; live={}",
        engines[0].1.n_live_pairs()
    )
    .unwrap();
    writeln!(
        txt,
        "compactions: {} (pause p99 {pause_p99_ms:.3}ms); index generations l={} r={}",
        pauses.len(),
        engines[0].1.index_generation(Side::Left),
        engines[0].1.index_generation(Side::Right),
    )
    .unwrap();
    writeln!(
        txt,
        "live view bit-identical to rebuild after every batch at workers {:?}",
        WORKERS
    )
    .unwrap();
    if !smoke {
        assert!(
            speedup >= 10.0,
            "delta apply must be >=10x faster than rebuild at 1% churn, got {speedup:.1}x"
        );
    }

    // ------------------------------------------------------------------
    // Full streaming pipeline: join -> candidates -> dirty features ->
    // dirty rescore, held to its own from-scratch oracle.
    // ------------------------------------------------------------------
    let stream_n = (n / 8).max(40);
    let stream_batches = if smoke { 4 } else { 12 };
    let features = vec![
        Feature::new("text", "text", FeatureKind::Jaccard(TokSpecF::Word)),
        Feature::new("text", "text", FeatureKind::Dice(TokSpecF::Word)),
    ];
    let mut session = StreamSession::new(
        measure,
        features,
        fixture_forest(),
        0.5,
        ParConfig::workers(2),
    );
    // A small fixed vocabulary keeps the matched view non-trivial: the
    // stream section demonstrates the end-to-end pipeline (engine ->
    // candidates -> dirty features -> rescoring), not corpus scale, and
    // a scale-proportional vocabulary starves Jaccard >= 0.5 of matches.
    let gen = TextGen {
        vocab: 14,
        min_tokens: 3,
        max_tokens: 6,
    };
    let mut clock = SimClock::new();
    let t = Instant::now();
    let mut stream_ops = 0usize;
    let mut last = Default::default();
    for _ in 0..stream_batches {
        last = session
            .run_plan_batch(&plan, &gen, stream_n / stream_batches + 1, &mut clock, 1.0)
            .expect("stream batch");
        stream_ops += last.mutations;
    }
    let stream_s = t.elapsed().as_secs_f64();
    let live = session.matched_pairs();
    let oracle = session.rebuild_oracle().expect("oracle");
    assert!(
        !live.is_empty(),
        "stream fixture produced no matches — the oracle check would be vacuous"
    );
    assert_eq!(live.len(), oracle.len(), "stream matched view diverged from oracle");
    for ((lk, lp), (ok, op)) in live.iter().zip(&oracle) {
        assert_eq!(lk, ok, "stream matched pair set diverged");
        assert_eq!(lp.to_bits(), op.to_bits(), "stream score bits diverged");
    }
    let stream_ups = stream_ops as f64 / stream_s;
    writeln!(txt).unwrap();
    writeln!(
        txt,
        "stream pipeline: {stream_ops} mutations in {stream_batches} batches -> {stream_ups:.0} updates/sec end-to-end"
    )
    .unwrap();
    writeln!(
        txt,
        "stream state: {} candidates, {} matches (matched view == from-scratch oracle, bit-exact)",
        last.live_candidates, last.live_matches
    )
    .unwrap();

    magellan_obs::log!(info, "{txt}");

    let json = format!(
        "{{\n  \"experiment\": \"incremental\",\n  \"workload\": {{\"rows_per_side\": {n}, \"churn_per_batch\": {churn}, \"batches\": {batches}, \"measure\": \"jaccard\", \"threshold\": 0.5, \"smoke\": {smoke}}},\n  \"updates_per_sec\": {updates_per_sec:.0},\n  \"delta_batch_median_ms\": {:.4},\n  \"rebuild_median_ms\": {:.4},\n  \"delta_vs_rebuild_speedup\": {speedup:.1},\n  \"pairs_added\": {pairs_added},\n  \"pairs_removed\": {pairs_removed},\n  \"live_pairs\": {},\n  \"compactions\": {{\"count\": {}, \"pause_p99_ms\": {pause_p99_ms:.4}}},\n  \"workers_bit_identical\": [1, 2, 4, 8],\n  \"stream\": {{\"updates_per_sec\": {stream_ups:.0}, \"matches\": {}, \"oracle_equal\": true}}\n}}\n",
        delta_median * 1e3,
        rebuild_median * 1e3,
        engines[0].1.n_live_pairs(),
        pauses.len(),
        live.len(),
    );

    // Best-effort writes (CI smoke may run from a read-only checkout).
    let _ = std::fs::create_dir_all("results");
    let _ = std::fs::write("results/exp_incremental.txt", &txt);
    if !smoke {
        let _ = std::fs::write("BENCH_incremental.json", &json);
    }
}
