//! Numeric and boolean similarity helpers used by the feature generator
//! for non-string attributes (e.g. `#pages`, `year`, `price`).

/// 1.0 iff the two numbers are exactly equal (bitwise for floats after
/// normalizing -0.0; NaN never matches).
pub fn exact_match_num(a: f64, b: f64) -> f64 {
    f64::from(a == b)
}

/// Absolute-difference similarity: `1 / (1 + |a - b|)`, in `(0, 1]`.
pub fn abs_diff_sim(a: f64, b: f64) -> f64 {
    1.0 / (1.0 + (a - b).abs())
}

/// Relative-difference similarity: `1 - |a-b| / max(|a|, |b|)`, clamped to
/// `[0, 1]`; 1.0 when both are zero.
pub fn rel_diff_sim(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        return 1.0;
    }
    (1.0 - (a - b).abs() / denom).clamp(0.0, 1.0)
}

/// Left-anchored containment of numbers-as-strings is common for IDs; this
/// is 1.0 iff the shorter decimal rendering prefixes the longer.
pub fn decimal_prefix_match(a: i64, b: i64) -> f64 {
    let (sa, sb) = (a.to_string(), b.to_string());
    let (short, long) = if sa.len() <= sb.len() { (&sa, &sb) } else { (&sb, &sa) };
    f64::from(long.starts_with(short.as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_handles_floats() {
        assert_eq!(exact_match_num(2.0, 2.0), 1.0);
        assert_eq!(exact_match_num(2.0, 2.1), 0.0);
        assert_eq!(exact_match_num(f64::NAN, f64::NAN), 0.0);
    }

    #[test]
    fn abs_diff_decays_with_distance() {
        assert_eq!(abs_diff_sim(5.0, 5.0), 1.0);
        assert_eq!(abs_diff_sim(5.0, 6.0), 0.5);
        assert!(abs_diff_sim(0.0, 100.0) < 0.01);
    }

    #[test]
    fn rel_diff_is_scale_invariant() {
        assert!((rel_diff_sim(100.0, 110.0) - rel_diff_sim(10.0, 11.0)).abs() < 1e-12);
        assert_eq!(rel_diff_sim(0.0, 0.0), 1.0);
        assert_eq!(rel_diff_sim(0.0, 5.0), 0.0);
        assert_eq!(rel_diff_sim(-3.0, 3.0), 0.0);
    }

    #[test]
    fn decimal_prefix() {
        assert_eq!(decimal_prefix_match(123, 12345), 1.0);
        assert_eq!(decimal_prefix_match(12345, 123), 1.0);
        assert_eq!(decimal_prefix_match(124, 12345), 0.0);
    }
}
