//! Feature-vector extraction over candidate pairs.

use magellan_par::{ParConfig, ParStats};
use magellan_table::Table;

use crate::feature::Feature;

/// A dense feature matrix over candidate pairs: what the matchers consume.
#[derive(Debug, Clone)]
pub struct FeatureMatrix {
    /// Feature names, column order.
    pub names: Vec<String>,
    /// One row per pair, `names.len()` entries each; `NaN` = missing.
    pub rows: Vec<Vec<f64>>,
    /// The `(row in A, row in B)` pair each row describes.
    pub pairs: Vec<(u32, u32)>,
}

impl FeatureMatrix {
    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no pairs were extracted.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// A sub-matrix of the given row positions (indices may repeat).
    pub fn subset(&self, positions: &[usize]) -> FeatureMatrix {
        FeatureMatrix {
            names: self.names.clone(),
            rows: positions.iter().map(|&i| self.rows[i].clone()).collect(),
            pairs: positions.iter().map(|&i| self.pairs[i]).collect(),
        }
    }
}

/// Evaluate `features` for every candidate pair.
///
/// Routed through the tokenize-once-per-record prepared cache
/// ([`crate::prepared::PreparedPair`]): each referenced record's attribute
/// is normalized and tokenized once per distinct `(attribute, tokenizer)`
/// combination, and set measures run as interned-`u32` merge
/// intersections. Bit-identical to the per-pair scalar path
/// ([`extract_feature_matrix_scalar`]) — pinned by test and by the golden
/// e2e suite.
pub fn extract_feature_matrix(
    pairs: &[(u32, u32)],
    a: &Table,
    b: &Table,
    features: &[Feature],
) -> magellan_table::Result<FeatureMatrix> {
    extract_feature_matrix_par(pairs, a, b, features, &ParConfig::serial()).map(|(m, _)| m)
}

/// Parallel [`extract_feature_matrix`]: records are prepared once
/// (serially — interner ids are assigned in deterministic first-seen
/// order), then pair chunks are claimed by the `magellan-par`
/// work-stealing pool and merged in chunk order, so the matrix is
/// **bit-identical** to the serial extraction for any worker count (each
/// row is a pure function of its pair over immutable prepared data). The
/// returned [`ParStats`] includes the cache counters
/// ([`magellan_par::CacheStats`]) for the call.
pub fn extract_feature_matrix_par(
    pairs: &[(u32, u32)],
    a: &Table,
    b: &Table,
    features: &[Feature],
    cfg: &ParConfig,
) -> magellan_table::Result<(FeatureMatrix, ParStats)> {
    let mut prepared = crate::prepared::PreparedPair::new(a, b);
    crate::prepared::extract_with_prepared(&mut prepared, pairs, features, cfg)
}

/// The reference per-pair scalar path: every pair re-normalizes and
/// re-tokenizes both attribute values through [`Feature::compute`].
///
/// Kept (a) as the pinned bit-identity reference for the prepared cache
/// and (b) as the baseline side of the `feature_extraction` benchmark.
pub fn extract_feature_matrix_scalar(
    pairs: &[(u32, u32)],
    a: &Table,
    b: &Table,
    features: &[Feature],
) -> magellan_table::Result<FeatureMatrix> {
    extract_feature_matrix_scalar_par(pairs, a, b, features, &ParConfig::serial()).map(|(m, _)| m)
}

/// Parallel [`extract_feature_matrix_scalar`] (the pre-cache
/// implementation of [`extract_feature_matrix_par`], unchanged).
pub fn extract_feature_matrix_scalar_par(
    pairs: &[(u32, u32)],
    a: &Table,
    b: &Table,
    features: &[Feature],
    cfg: &ParConfig,
) -> magellan_table::Result<(FeatureMatrix, ParStats)> {
    let l_idx: Vec<usize> = features
        .iter()
        .map(|f| a.schema().try_index_of(&f.l_attr))
        .collect::<magellan_table::Result<_>>()?;
    let r_idx: Vec<usize> = features
        .iter()
        .map(|f| b.schema().try_index_of(&f.r_attr))
        .collect::<magellan_table::Result<_>>()?;
    let (rows, stats) = magellan_par::map_indexed(pairs.len(), cfg, |p| {
        let (ra, rb) = pairs[p];
        let mut row = Vec::with_capacity(features.len());
        for ((f, &li), &ri) in features.iter().zip(&l_idx).zip(&r_idx) {
            let va = a.value(ra as usize, li);
            let vb = b.value(rb as usize, ri);
            row.push(f.compute(va, vb));
        }
        row
    });
    Ok((
        FeatureMatrix {
            names: features.iter().map(|f| f.name.clone()).collect(),
            rows,
            pairs: pairs.to_vec(),
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{FeatureKind, TokSpecF};
    use magellan_table::{Dtype, Value};

    fn setup() -> (Table, Table, Vec<Feature>) {
        let a = Table::from_rows(
            "A",
            &[("id", Dtype::Str), ("name", Dtype::Str), ("age", Dtype::Int)],
            vec![
                vec!["a0".into(), "dave smith".into(), Value::Int(40)],
                vec!["a1".into(), Value::Null, Value::Int(31)],
            ],
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            &[("id", Dtype::Str), ("name", Dtype::Str), ("age", Dtype::Int)],
            vec![vec!["b0".into(), "dave smith".into(), Value::Int(41)]],
        )
        .unwrap();
        let features = vec![
            Feature::new("name", "name", FeatureKind::Jaccard(TokSpecF::Word)),
            Feature::new("age", "age", FeatureKind::AbsDiff),
        ];
        (a, b, features)
    }

    #[test]
    fn extracts_expected_values() {
        let (a, b, features) = setup();
        let m = extract_feature_matrix(&[(0, 0), (1, 0)], &a, &b, &features).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.names.len(), 2);
        assert_eq!(m.rows[0][0], 1.0); // identical names
        assert!((m.rows[0][1] - 0.5).abs() < 1e-12); // |40-41| -> 1/2
        assert!(m.rows[1][0].is_nan()); // null name
        assert_eq!(m.pairs, vec![(0, 0), (1, 0)]);
    }

    #[test]
    fn subset_selects_rows() {
        let (a, b, features) = setup();
        let m = extract_feature_matrix(&[(0, 0), (1, 0)], &a, &b, &features).unwrap();
        let s = m.subset(&[1, 1]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.pairs, vec![(1, 0), (1, 0)]);
    }

    #[test]
    fn unknown_feature_attr_is_an_error() {
        let (a, b, _) = setup();
        let bad = vec![Feature::new("nope", "name", FeatureKind::ExactMatch)];
        assert!(extract_feature_matrix(&[(0, 0)], &a, &b, &bad).is_err());
    }

    #[test]
    fn empty_pairs_yield_empty_matrix() {
        let (a, b, features) = setup();
        let m = extract_feature_matrix(&[], &a, &b, &features).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.names.len(), 2);
    }
}
