//! Rule-based blocking.
//!
//! A blocking rule is a conjunction of *low-similarity* predicates that
//! **drops** a pair when every predicate fires — exactly the shape Falcon
//! extracts from random-forest root→"No"-leaf paths (Fig. 4 of the paper):
//!
//! ```text
//! jaccard(3gram(A.isbn), 3gram(B.isbn)) <= 0.55 -> No
//! ```
//!
//! A pair *survives* a rule by violating at least one predicate, and
//! survives blocking by surviving **every** rule. Because the complement
//! of each predicate (`sim > t`) is a similarity join, a rule's survivor
//! set is a union of sim-joins and the overall candidate set an
//! intersection across rules — so rule blocking scales without touching
//! the cross product.

use std::collections::HashMap;

use magellan_simjoin::{join_tokenized, SetSimMeasure, TokenizedCollection};
use magellan_table::Table;
use magellan_textsim::tokenize::{AlphanumericTokenizer, QgramTokenizer, Tokenizer};
use magellan_textsim::{intern, setsim, TokenInterner};

use crate::blockers::Blocker;
use crate::candidate::CandidateSet;

/// Tokenization spec for a rule feature (kept as plain data so rules are
/// cloneable and printable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokSpec {
    /// Lowercased alphanumeric word tokens.
    Word,
    /// Padded character q-grams (set semantics).
    Qgram(usize),
}

impl TokSpec {
    /// Materialize the tokenizer as a boxed trait object (for callers
    /// that need dynamic dispatch, e.g. the sim-join builder).
    pub fn tokenizer(&self) -> Box<dyn Tokenizer> {
        match self {
            TokSpec::Word => Box::new(AlphanumericTokenizer::as_set()),
            TokSpec::Qgram(q) => Box::new(QgramTokenizer::as_set(*q)),
        }
    }

    /// Set-semantics tokenization via a stack-constructed concrete
    /// tokenizer — no `Box<dyn Tokenizer>` allocation, so this is safe to
    /// call inside pair loops.
    pub fn tokenize_set(&self, s: &str) -> Vec<String> {
        match self {
            TokSpec::Word => AlphanumericTokenizer::as_set().tokenize(s),
            TokSpec::Qgram(q) => QgramTokenizer::as_set(*q).tokenize(s),
        }
    }

    /// Display name used in printed rules (`word`, `3gram`).
    pub fn label(&self) -> String {
        match self {
            TokSpec::Word => "word".to_owned(),
            TokSpec::Qgram(q) => format!("{q}gram"),
        }
    }
}

/// The similarity feature a predicate thresholds on. Every variant's
/// complement is executable as a join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimFeature {
    /// Jaccard over the tokenization.
    Jaccard(TokSpec),
    /// Cosine over the tokenization.
    Cosine(TokSpec),
    /// Dice over the tokenization.
    Dice(TokSpec),
    /// Exact string equality (sim ∈ {0, 1}).
    ExactMatch,
}

impl SimFeature {
    /// Compute the similarity for one pair of (possibly missing) values.
    /// Missing values score 0 (a missing attribute cannot demonstrate
    /// similarity, so drop-rules fire on it).
    pub fn similarity(&self, a: Option<&str>, b: Option<&str>) -> f64 {
        let (Some(a), Some(b)) = (a, b) else { return 0.0 };
        match self {
            SimFeature::ExactMatch => f64::from(a.trim().to_lowercase() == b.trim().to_lowercase()),
            SimFeature::Jaccard(t) | SimFeature::Cosine(t) | SimFeature::Dice(t) => {
                // Stack-dispatched tokenization: no per-pair boxing.
                let ta = t.tokenize_set(a);
                let tb = t.tokenize_set(b);
                if ta.is_empty() || tb.is_empty() {
                    return 0.0;
                }
                match self {
                    SimFeature::Jaccard(_) => setsim::jaccard(&ta, &tb),
                    SimFeature::Cosine(_) => setsim::cosine(&ta, &tb),
                    SimFeature::Dice(_) => setsim::dice(&ta, &tb),
                    SimFeature::ExactMatch => unreachable!(),
                }
            }
        }
    }

    /// Display label (`jaccard(3gram(·))`).
    pub fn label(&self) -> String {
        match self {
            SimFeature::Jaccard(t) => format!("jaccard({})", t.label()),
            SimFeature::Cosine(t) => format!("cosine({})", t.label()),
            SimFeature::Dice(t) => format!("dice({})", t.label()),
            SimFeature::ExactMatch => "exact_match".to_owned(),
        }
    }
}

/// One predicate: fires (votes to drop) when
/// `sim(l_attr, r_attr) <= threshold`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Attribute of the left table.
    pub l_attr: String,
    /// Attribute of the right table.
    pub r_attr: String,
    /// The similarity feature.
    pub feature: SimFeature,
    /// Fires when similarity ≤ this value.
    pub threshold: f64,
}

impl Predicate {
    /// Does the predicate fire (drop-vote) on this value pair?
    pub fn fires(&self, a: Option<&str>, b: Option<&str>) -> bool {
        self.feature.similarity(a, b) <= self.threshold + 1e-12
    }

    /// Render like the paper's Fig. 4 rules.
    pub fn pretty(&self) -> String {
        format!(
            "{}(A.{}, B.{}) <= {:.3}",
            self.feature.label(),
            self.l_attr,
            self.r_attr,
            self.threshold
        )
    }
}

/// A conjunction of predicates; fires (drops the pair) when **all**
/// predicates fire.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockingRule {
    /// The conjunction.
    pub predicates: Vec<Predicate>,
}

impl BlockingRule {
    /// Does the rule drop this pair?
    pub fn fires(&self, a: &Table, ra: usize, b: &Table, rb: usize) -> bool {
        self.predicates.iter().all(|p| {
            let va = a
                .value_by_name(ra, &p.l_attr)
                .ok()
                .and_then(|v| v.as_str().map(str::to_owned));
            let vb = b
                .value_by_name(rb, &p.r_attr)
                .ok()
                .and_then(|v| v.as_str().map(str::to_owned));
            p.fires(va.as_deref(), vb.as_deref())
        })
    }

    /// Render like Fig. 4: `p1 AND p2 -> No`.
    pub fn pretty(&self) -> String {
        let parts: Vec<String> = self.predicates.iter().map(Predicate::pretty).collect();
        format!("{} -> No", parts.join(" AND "))
    }
}

/// A set of blocking rules executed as sim-joins.
#[derive(Debug, Clone, Default)]
pub struct RuleBasedBlocker {
    /// The rules; a pair must survive all of them.
    pub rules: Vec<BlockingRule>,
}

impl RuleBasedBlocker {
    /// Blocker from a rule list. At least one rule is required — zero
    /// rules would mean "keep the entire cross product".
    pub fn new(rules: Vec<BlockingRule>) -> Self {
        assert!(!rules.is_empty(), "rule-based blocker needs at least one rule");
        RuleBasedBlocker { rules }
    }

    fn column_strings(t: &Table, attr: &str) -> magellan_table::Result<Vec<Option<String>>> {
        let idx = t.schema().try_index_of(attr)?;
        Ok(t.rows()
            .map(|r| {
                let v = t.value(r, idx);
                (!v.is_null()).then(|| v.display_string())
            })
            .collect())
    }

    /// Build each distinct `(l_attr, r_attr, tokenization)` combination's
    /// [`TokenizedCollection`] exactly once, shared by every predicate of
    /// every rule through one [`TokenInterner`]. Before this cache, a rule
    /// set with *k* predicates over the same column pair re-tokenized both
    /// tables *k* times.
    fn build_collections(
        &self,
        a: &Table,
        b: &Table,
    ) -> magellan_table::Result<HashMap<(String, String, TokSpec), TokenizedCollection>> {
        let mut interner = TokenInterner::new();
        let mut collections = HashMap::new();
        for rule in &self.rules {
            for pred in &rule.predicates {
                let (SimFeature::Jaccard(ts)
                | SimFeature::Cosine(ts)
                | SimFeature::Dice(ts)) = pred.feature
                else {
                    continue;
                };
                let key = (pred.l_attr.clone(), pred.r_attr.clone(), ts);
                if collections.contains_key(&key) {
                    continue;
                }
                let la = Self::column_strings(a, &pred.l_attr)?;
                let rb = Self::column_strings(b, &pred.r_attr)?;
                let tok = ts.tokenizer();
                collections.insert(
                    key,
                    TokenizedCollection::build_with_interner(
                        &la,
                        &rb,
                        tok.as_ref(),
                        &mut interner,
                    ),
                );
            }
        }
        Ok(collections)
    }

    /// Survivors of one predicate's *complement* (`sim > threshold`),
    /// computed as a similarity join over the shared prebuilt collections.
    fn violators(
        pred: &Predicate,
        a: &Table,
        b: &Table,
        collections: &HashMap<(String, String, TokSpec), TokenizedCollection>,
    ) -> magellan_table::Result<CandidateSet> {
        match pred.feature {
            SimFeature::ExactMatch => {
                // sim > t for t < 1 means equality; for t >= 1 nothing
                // violates (sim can't exceed 1).
                if pred.threshold >= 1.0 {
                    return Ok(CandidateSet::default());
                }
                let blocker = crate::blockers::AttrEquivalenceBlocker {
                    l_attr: pred.l_attr.clone(),
                    r_attr: pred.r_attr.clone(),
                };
                blocker.block(a, b)
            }
            SimFeature::Jaccard(ts) | SimFeature::Cosine(ts) | SimFeature::Dice(ts) => {
                if pred.threshold >= 1.0 {
                    return Ok(CandidateSet::default());
                }
                let measure = match pred.feature {
                    SimFeature::Jaccard(_) => SetSimMeasure::Jaccard(pred.threshold.max(1e-6)),
                    SimFeature::Cosine(_) => SetSimMeasure::Cosine(pred.threshold.max(1e-6)),
                    SimFeature::Dice(_) => SetSimMeasure::Dice(pred.threshold.max(1e-6)),
                    SimFeature::ExactMatch => unreachable!(),
                };
                let key = (pred.l_attr.clone(), pred.r_attr.clone(), ts);
                let coll = collections
                    .get(&key)
                    .expect("collection prebuilt for every set predicate");
                let joined = join_tokenized(coll, measure);
                // The join returns sim >= threshold; the complement needs
                // the strict sim > threshold.
                Ok(joined
                    .into_iter()
                    .filter(|p| p.sim > pred.threshold + 1e-12)
                    .map(|p| (p.l as u32, p.r as u32))
                    .collect())
            }
        }
    }

    /// Apply the rules to an existing candidate set (exact, pairwise
    /// semantics — identical to evaluating [`BlockingRule::fires`] per
    /// pair, but each referenced record's attribute is tokenized and
    /// interned **once** instead of once per pair it appears in).
    pub fn refine(&self, cands: &CandidateSet, a: &Table, b: &Table) -> CandidateSet {
        let prep = PreparedRuleEval::build(&self.rules, cands, a, b);
        cands
            .pairs()
            .iter()
            .copied()
            .filter(|&(ra, rb)| {
                !(0..self.rules.len())
                    .any(|i| prep.rule_fires(&self.rules[i], i, ra as usize, rb as usize))
            })
            .collect()
    }

    /// Render all rules.
    pub fn pretty(&self) -> String {
        self.rules
            .iter()
            .map(BlockingRule::pretty)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl Blocker for RuleBasedBlocker {
    fn name(&self) -> String {
        format!("rule_based({} rules)", self.rules.len())
    }

    fn block(&self, a: &Table, b: &Table) -> magellan_table::Result<CandidateSet> {
        assert!(!self.rules.is_empty(), "rule-based blocker needs at least one rule");
        // Tokenize each referenced column pair once, shared across all
        // predicates of all rules.
        let collections = self.build_collections(a, b)?;
        // Survivors = ∩_rules ∪_predicates violators(predicate).
        let mut result: Option<CandidateSet> = None;
        for rule in &self.rules {
            let mut rule_survivors = CandidateSet::default();
            for pred in &rule.predicates {
                rule_survivors =
                    rule_survivors.union(&Self::violators(pred, a, b, &collections)?);
            }
            result = Some(match result {
                None => rule_survivors,
                Some(acc) => acc.intersect(&rule_survivors),
            });
        }
        Ok(result.unwrap_or_default())
    }
}

/// The shape a predicate needs an attribute prepared into for pairwise
/// refinement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum RulePrep {
    /// Trimmed lowercased string (exact-match predicates).
    Lower,
    /// Sorted deduplicated interned id set of the **raw** string's tokens
    /// — [`SimFeature::similarity`] tokenizes the un-normalized value, so
    /// the prepared path must too.
    Set(TokSpec),
}

/// One prepared refinement cell. `None` at the record level means the
/// value was absent or not a string ([`magellan_table::ValueRef::as_str`]
/// returned `None`), which scores 0.0 exactly like the per-pair path.
#[derive(Debug, Clone)]
enum RuleCell {
    Lower(String),
    Ids(Vec<u32>),
}

/// Tokenize-once-per-record state for [`RuleBasedBlocker::refine`]: each
/// distinct `(side, attribute, shape)` combination referenced by any
/// predicate is prepared once per candidate record, and set predicates
/// then evaluate as interned merge intersections
/// ([`magellan_textsim::intern`]) — bit-identical to
/// [`SimFeature::similarity`] on the same values.
struct PreparedRuleEval {
    l_cols: Vec<Vec<Option<RuleCell>>>,
    r_cols: Vec<Vec<Option<RuleCell>>>,
    /// `slots[rule][pred] = (index into l_cols, index into r_cols)`.
    slots: Vec<Vec<(usize, usize)>>,
}

impl PreparedRuleEval {
    fn build(rules: &[BlockingRule], cands: &CandidateSet, a: &Table, b: &Table) -> Self {
        fn shape(f: SimFeature) -> RulePrep {
            match f {
                SimFeature::ExactMatch => RulePrep::Lower,
                SimFeature::Jaccard(t) | SimFeature::Cosine(t) | SimFeature::Dice(t) => {
                    RulePrep::Set(t)
                }
            }
        }
        // Resolve each predicate to a (left slot, right slot) pair,
        // deduplicating (attr, shape) combinations per side.
        let mut l_index: HashMap<(String, RulePrep), usize> = HashMap::new();
        let mut r_index: HashMap<(String, RulePrep), usize> = HashMap::new();
        let mut l_specs: Vec<(String, RulePrep)> = Vec::new();
        let mut r_specs: Vec<(String, RulePrep)> = Vec::new();
        let slots: Vec<Vec<(usize, usize)>> = rules
            .iter()
            .map(|rule| {
                rule.predicates
                    .iter()
                    .map(|p| {
                        let sh = shape(p.feature);
                        let li = *l_index
                            .entry((p.l_attr.clone(), sh))
                            .or_insert_with(|| {
                                l_specs.push((p.l_attr.clone(), sh));
                                l_specs.len() - 1
                            });
                        let ri = *r_index
                            .entry((p.r_attr.clone(), sh))
                            .or_insert_with(|| {
                                r_specs.push((p.r_attr.clone(), sh));
                                r_specs.len() - 1
                            });
                        (li, ri)
                    })
                    .collect()
            })
            .collect();

        // Which records do the candidates reference?
        let mut l_ref = vec![false; a.nrows()];
        let mut r_ref = vec![false; b.nrows()];
        for &(ra, rb) in cands.pairs() {
            l_ref[ra as usize] = true;
            r_ref[rb as usize] = true;
        }

        // One shared interner across both sides and all combinations.
        let mut interner = TokenInterner::new();
        let fill = |table: &Table,
                        referenced: &[bool],
                        specs: &[(String, RulePrep)],
                        interner: &mut TokenInterner|
         -> Vec<Vec<Option<RuleCell>>> {
            specs
                .iter()
                .map(|(attr, sh)| {
                    let mut cells: Vec<Option<RuleCell>> = vec![None; table.nrows()];
                    // Unknown attribute ⇒ every value is absent ⇒ sim 0.0,
                    // exactly like the `value_by_name(..).ok()` per-pair path.
                    let Ok(idx) = table.schema().try_index_of(attr) else {
                        return cells;
                    };
                    for (r, &wanted) in referenced.iter().enumerate() {
                        if !wanted {
                            continue;
                        }
                        let Some(s) = table.value(r, idx).as_str() else {
                            continue;
                        };
                        cells[r] = Some(match sh {
                            RulePrep::Lower => RuleCell::Lower(s.trim().to_lowercase()),
                            RulePrep::Set(ts) => {
                                RuleCell::Ids(interner.intern_set(&ts.tokenize_set(s)))
                            }
                        });
                    }
                    cells
                })
                .collect()
        };
        let l_cols = fill(a, &l_ref, &l_specs, &mut interner);
        let r_cols = fill(b, &r_ref, &r_specs, &mut interner);
        PreparedRuleEval {
            l_cols,
            r_cols,
            slots,
        }
    }

    /// Does this rule drop the pair? Mirrors [`BlockingRule::fires`] /
    /// [`Predicate::fires`] exactly (same thresholding epsilon, same
    /// missing-value and empty-tokenization conventions).
    fn rule_fires(&self, rule: &BlockingRule, rule_idx: usize, ra: usize, rb: usize) -> bool {
        rule.predicates.iter().enumerate().all(|(j, p)| {
            let (li, ri) = self.slots[rule_idx][j];
            let sim = match (&self.l_cols[li][ra], &self.r_cols[ri][rb]) {
                (Some(RuleCell::Lower(sa)), Some(RuleCell::Lower(sb))) => f64::from(sa == sb),
                (Some(RuleCell::Ids(ia)), Some(RuleCell::Ids(ib))) => {
                    if ia.is_empty() || ib.is_empty() {
                        0.0
                    } else {
                        match p.feature {
                            SimFeature::Jaccard(_) => intern::jaccard_ids(ia, ib),
                            SimFeature::Cosine(_) => intern::cosine_ids(ia, ib),
                            SimFeature::Dice(_) => intern::dice_ids(ia, ib),
                            SimFeature::ExactMatch => unreachable!(),
                        }
                    }
                }
                // Either side missing / non-string ⇒ 0.0 (drop-rules fire).
                _ => 0.0,
            };
            sim <= p.threshold + 1e-12
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_table::{Dtype, Value};

    fn tables() -> (Table, Table) {
        let a = Table::from_rows(
            "A",
            &[("id", Dtype::Str), ("isbn", Dtype::Str), ("title", Dtype::Str)],
            vec![
                vec!["a0".into(), "978-0262033848".into(), "introduction to algorithms".into()],
                vec!["a1".into(), "978-1491927083".into(), "programming rust".into()],
                vec!["a2".into(), Value::Null, "mystery book".into()],
            ],
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            &[("id", Dtype::Str), ("isbn", Dtype::Str), ("title", Dtype::Str)],
            vec![
                vec!["b0".into(), "978-0262033848".into(), "intro to algorithms".into()],
                vec!["b1".into(), "978-3161484100".into(), "unrelated tome".into()],
                vec!["b2".into(), "978-1491927083".into(), "programming rust 2nd".into()],
            ],
        )
        .unwrap();
        (a, b)
    }

    fn isbn_rule() -> BlockingRule {
        BlockingRule {
            predicates: vec![Predicate {
                l_attr: "isbn".into(),
                r_attr: "isbn".into(),
                feature: SimFeature::ExactMatch,
                threshold: 0.5,
            }],
        }
    }

    #[test]
    fn exact_match_rule_keeps_only_equal_isbns() {
        let (a, b) = tables();
        let blocker = RuleBasedBlocker::new(vec![isbn_rule()]);
        let c = blocker.block(&a, &b).unwrap();
        assert_eq!(c.pairs(), &[(0, 0), (1, 2)]);
    }

    #[test]
    fn join_execution_equals_pairwise_refinement() {
        let (a, b) = tables();
        let rule = BlockingRule {
            predicates: vec![Predicate {
                l_attr: "title".into(),
                r_attr: "title".into(),
                feature: SimFeature::Jaccard(TokSpec::Word),
                threshold: 0.3,
            }],
        };
        let blocker = RuleBasedBlocker::new(vec![rule]);
        let via_join = blocker.block(&a, &b).unwrap();
        // Reference: cross product refined pairwise.
        let all: CandidateSet = (0..a.nrows() as u32)
            .flat_map(|ra| (0..b.nrows() as u32).map(move |rb| (ra, rb)))
            .collect();
        let via_refine = blocker.refine(&all, &a, &b);
        assert_eq!(via_join, via_refine);
        assert!(via_join.contains((1, 2)), "programming rust pair survives");
    }

    #[test]
    fn conjunction_survives_by_violating_any_predicate() {
        let (a, b) = tables();
        // Drop only if BOTH isbn differs AND title jaccard low — i.e. keep
        // anything with equal isbn OR similar title.
        let rule = BlockingRule {
            predicates: vec![
                Predicate {
                    l_attr: "isbn".into(),
                    r_attr: "isbn".into(),
                    feature: SimFeature::ExactMatch,
                    threshold: 0.5,
                },
                Predicate {
                    l_attr: "title".into(),
                    r_attr: "title".into(),
                    feature: SimFeature::Jaccard(TokSpec::Word),
                    threshold: 0.3,
                },
            ],
        };
        let blocker = RuleBasedBlocker::new(vec![rule]);
        let c = blocker.block(&a, &b).unwrap();
        // (0,0): isbn equal -> survives. (1,2): isbn equal AND title similar.
        assert!(c.contains((0, 0)));
        assert!(c.contains((1, 2)));
        // (0,1): different isbn, dissimilar title -> dropped.
        assert!(!c.contains((0, 1)));
    }

    #[test]
    fn multiple_rules_intersect() {
        let (a, b) = tables();
        let title_rule = BlockingRule {
            predicates: vec![Predicate {
                l_attr: "title".into(),
                r_attr: "title".into(),
                feature: SimFeature::Jaccard(TokSpec::Word),
                threshold: 0.2,
            }],
        };
        let blocker = RuleBasedBlocker::new(vec![isbn_rule(), title_rule]);
        let c = blocker.block(&a, &b).unwrap();
        // Must pass both: equal isbn AND title jaccard > 0.2.
        for &(ra, rb) in c.pairs() {
            let ia = a.value_by_name(ra as usize, "isbn").unwrap().display_string();
            let ib = b.value_by_name(rb as usize, "isbn").unwrap().display_string();
            assert_eq!(ia, ib);
        }
        assert!(c.contains((1, 2)));
    }

    #[test]
    fn null_attributes_fire_drop_rules() {
        let (a, b) = tables();
        let blocker = RuleBasedBlocker::new(vec![isbn_rule()]);
        let c = blocker.block(&a, &b).unwrap();
        // a2 has a null isbn: it can never survive an isbn-based rule.
        assert!(c.pairs().iter().all(|&(ra, _)| ra != 2));
    }

    #[test]
    fn pretty_renders_fig4_style() {
        let rule = BlockingRule {
            predicates: vec![
                Predicate {
                    l_attr: "isbn".into(),
                    r_attr: "isbn".into(),
                    feature: SimFeature::ExactMatch,
                    threshold: 0.5,
                },
                Predicate {
                    l_attr: "title".into(),
                    r_attr: "title".into(),
                    feature: SimFeature::Jaccard(TokSpec::Qgram(3)),
                    threshold: 0.31,
                },
            ],
        };
        let s = rule.pretty();
        assert!(s.contains("exact_match(A.isbn, B.isbn) <= 0.500"), "{s}");
        assert!(s.contains("jaccard(3gram)(A.title, B.title) <= 0.310"), "{s}");
        assert!(s.ends_with("-> No"));
    }

    #[test]
    #[should_panic(expected = "at least one rule")]
    fn empty_rule_list_panics() {
        RuleBasedBlocker::new(vec![]);
    }

    /// The interned prepared refine path is exactly the per-pair
    /// [`BlockingRule::fires`] evaluation, including null / non-string
    /// values, unknown attributes, and empty tokenizations.
    #[test]
    fn prepared_refine_matches_per_pair_fires() {
        let (a, b) = tables();
        let rules = vec![
            BlockingRule {
                predicates: vec![
                    Predicate {
                        l_attr: "isbn".into(),
                        r_attr: "isbn".into(),
                        feature: SimFeature::ExactMatch,
                        threshold: 0.5,
                    },
                    Predicate {
                        l_attr: "title".into(),
                        r_attr: "title".into(),
                        feature: SimFeature::Jaccard(TokSpec::Word),
                        threshold: 0.3,
                    },
                ],
            },
            BlockingRule {
                predicates: vec![
                    Predicate {
                        l_attr: "title".into(),
                        r_attr: "title".into(),
                        feature: SimFeature::Cosine(TokSpec::Qgram(3)),
                        threshold: 0.25,
                    },
                    Predicate {
                        // Unknown attribute: always scores 0.0.
                        l_attr: "nope".into(),
                        r_attr: "title".into(),
                        feature: SimFeature::Dice(TokSpec::Word),
                        threshold: 0.9,
                    },
                ],
            },
        ];
        let blocker = RuleBasedBlocker::new(rules);
        let all: CandidateSet = (0..a.nrows() as u32)
            .flat_map(|ra| (0..b.nrows() as u32).map(move |rb| (ra, rb)))
            .collect();
        let prepared = blocker.refine(&all, &a, &b);
        // Reference: direct per-pair rule evaluation.
        let reference: CandidateSet = all
            .pairs()
            .iter()
            .copied()
            .filter(|&(ra, rb)| {
                !blocker
                    .rules
                    .iter()
                    .any(|rule| rule.fires(&a, ra as usize, &b, rb as usize))
            })
            .collect();
        assert_eq!(prepared, reference);
    }

    /// Several predicates over the same column pair share one tokenized
    /// collection in the join path — output unchanged.
    #[test]
    fn shared_collections_across_predicates_keep_output() {
        let (a, b) = tables();
        // Two rules both thresholding word-jaccard on title (one shared
        // collection) at different cutoffs, plus a qgram predicate.
        let rule = |thr: f64| BlockingRule {
            predicates: vec![Predicate {
                l_attr: "title".into(),
                r_attr: "title".into(),
                feature: SimFeature::Jaccard(TokSpec::Word),
                threshold: thr,
            }],
        };
        let blocker = RuleBasedBlocker::new(vec![rule(0.2), rule(0.4)]);
        let c = blocker.block(&a, &b).unwrap();
        // Reference: cross product refined pairwise.
        let all: CandidateSet = (0..a.nrows() as u32)
            .flat_map(|ra| (0..b.nrows() as u32).map(move |rb| (ra, rb)))
            .collect();
        assert_eq!(c, blocker.refine(&all, &a, &b));
    }

    #[test]
    fn threshold_at_one_drops_everything() {
        let (a, b) = tables();
        let rule = BlockingRule {
            predicates: vec![Predicate {
                l_attr: "isbn".into(),
                r_attr: "isbn".into(),
                feature: SimFeature::ExactMatch,
                threshold: 1.0,
            }],
        };
        let c = RuleBasedBlocker::new(vec![rule]).block(&a, &b).unwrap();
        assert!(c.is_empty());
    }
}
