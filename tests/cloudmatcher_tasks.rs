//! Table 2 shapes, as assertions: clean tasks reach high accuracy, the
//! dirty trio collapses, the vendors rerun without the Brazilian slice
//! recovers, and the cost/latency accounting behaves.

use magellan_datagen::domains;
use magellan_datagen::{DirtModel, ScenarioConfig};
use magellan_falcon::cloud::{LabelingMode, TaskSpec};
use magellan_falcon::{CloudMatcher, FalconConfig};

fn cfg(dirt: DirtModel, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        size_a: 400,
        size_b: 400,
        n_matches: 130,
        dirt,
        seed,
    }
}

fn run(
    scenario: &magellan_datagen::EmScenario,
    labeling: LabelingMode,
    on_cloud: bool,
) -> magellan_falcon::TaskOutcome {
    let cloud = CloudMatcher::default();
    let spec = TaskSpec {
        name: scenario.name.clone(),
        table_a: &scenario.table_a,
        table_b: &scenario.table_b,
        a_key: "id".to_owned(),
        b_key: "id".to_owned(),
        gold: &scenario.gold,
        labeling,
        on_cloud,
        falcon: FalconConfig::default(),
    };
    cloud.run_task(&spec).unwrap().0
}

#[test]
fn clean_task_reaches_high_accuracy_for_free() {
    let s = domains::by_name("persons", &cfg(DirtModel::light(), 11)).unwrap();
    let o = run(&s, LabelingMode::SingleUser { error_rate: 0.0 }, false);
    assert!(o.precision > 0.8, "{o:?}");
    assert!(o.recall > 0.7, "{o:?}");
    assert_eq!(o.crowd_cost, 0.0);
    assert_eq!(o.compute_cost, 0.0);
    assert!(o.questions >= 20 && o.questions <= 1200, "{}", o.questions);
}

#[test]
fn vendors_rerun_without_brazil_recovers() {
    let dirty = domains::by_name("vendors", &cfg(DirtModel::moderate(), 12)).unwrap();
    let clean = domains::by_name("vendors_no_brazil", &cfg(DirtModel::moderate(), 12)).unwrap();
    let o_dirty = run(&dirty, LabelingMode::SingleUser { error_rate: 0.0 }, false);
    let o_clean = run(&clean, LabelingMode::SingleUser { error_rate: 0.0 }, false);
    let f1 = |o: &magellan_falcon::TaskOutcome| {
        if o.precision + o.recall == 0.0 {
            0.0
        } else {
            2.0 * o.precision * o.recall / (o.precision + o.recall)
        }
    };
    assert!(
        f1(&o_clean) > f1(&o_dirty) + 0.05,
        "no-brazil {:.3} should beat dirty {:.3}",
        f1(&o_clean),
        f1(&o_dirty)
    );
}

#[test]
fn erring_expert_on_heavy_vehicles_degrades_accuracy() {
    let s = domains::by_name("vehicles", &cfg(DirtModel::heavy(), 13)).unwrap();
    let careless = run(&s, LabelingMode::SingleUser { error_rate: 0.2 }, false);
    let careful_s = domains::by_name("persons", &cfg(DirtModel::light(), 13)).unwrap();
    let careful = run(&careful_s, LabelingMode::SingleUser { error_rate: 0.0 }, false);
    // The AmFam story: heavy missingness + labeling mistakes -> visibly
    // worse than a clean task.
    let f1 = |o: &magellan_falcon::TaskOutcome| {
        if o.precision + o.recall == 0.0 {
            0.0
        } else {
            2.0 * o.precision * o.recall / (o.precision + o.recall)
        }
    };
    assert!(
        f1(&careless) < f1(&careful) - 0.1,
        "vehicles {:.3} vs clean {:.3}",
        f1(&careless),
        f1(&careful)
    );
}

#[test]
fn crowd_accounting_scales_with_questions() {
    let s = domains::by_name("restaurants", &cfg(DirtModel::light(), 14)).unwrap();
    let o = run(&s, LabelingMode::Crowd { worker_error_rate: 0.1 }, true);
    let model = CloudMatcher::default().cost_model;
    let expected = o.questions as f64 * model.crowd_votes as f64 * model.crowd_fee_per_vote;
    assert!((o.crowd_cost - expected).abs() < 1e-9);
    assert!(o.compute_cost > 0.0);
    assert!(o.label_time_s >= o.questions as f64 * model.crowd_latency_s * 0.99);
}

#[test]
fn single_user_is_much_faster_than_crowd_at_same_task() {
    let s = domains::by_name("citations", &cfg(DirtModel::light(), 15)).unwrap();
    let user = run(&s, LabelingMode::SingleUser { error_rate: 0.0 }, false);
    let crowd = run(&s, LabelingMode::Crowd { worker_error_rate: 0.05 }, false);
    // Per-question latency dominates: Table 2's 9m–2h vs 22h–36h split.
    assert!(crowd.label_time_s > 5.0 * user.label_time_s);
}
