//! §5.3 ablation — Smurf: label-free blocking-rule learning.
//!
//! Paper claim: "This drastically reduces the labeling effort by 43-76%,
//! yet achieving the same accuracy." Falcon and Smurf-lite run on the same
//! scenarios with the same oracle; we report questions and F1 for both,
//! plus the per-scenario labeling reduction.
//!
//! A second ablation contrasts active learning against random sampling at
//! the same label budget (why Falcon uses query-by-committee at all).

use magellan_bench::score;
use magellan_core::labeling::OracleLabeler;
use magellan_datagen::domains;
use magellan_datagen::{DirtModel, ScenarioConfig};
use magellan_falcon::smurf::run_smurf;
use magellan_falcon::{run_falcon, FalconConfig};

fn main() {
    // Experiment narration is leveled logging: MAGELLAN_LOG=off silences it.
    magellan_obs::init_bin_logging(magellan_obs::Level::Info);
    magellan_obs::log!(info, "Smurf ablation — labeling effort vs Falcon\n");
    magellan_obs::log!(info, 
        "{:14} {:>9} {:>9} {:>9} {:>9} {:>11} {:>9}",
        "scenario", "falcon Q", "smurf Q", "falcon F1", "smurf F1", "Q reduction", "dF1"
    );
    let mut reductions = Vec::new();
    for (i, name) in ["persons", "products", "restaurants", "citations"].iter().enumerate() {
        let s = domains::by_name(
            name,
            &ScenarioConfig {
                size_a: 1200,
                size_b: 1200,
                n_matches: 400,
                dirt: DirtModel::light(),
                seed: 700 + i as u64,
            },
        )
        .expect("known scenario");
        let cfg = FalconConfig::default();

        let mut l1 = OracleLabeler::new(s.gold.clone(), "id", "id");
        let falcon = run_falcon(&s.table_a, &s.table_b, "id", "id", &mut l1, &cfg)
            .expect("falcon");
        let mut l2 = OracleLabeler::new(s.gold.clone(), "id", "id");
        let smurf = run_smurf(&s.table_a, &s.table_b, "id", "id", &mut l2, &cfg)
            .expect("smurf");

        let mf = score(&falcon.matches, &s.table_a, &s.table_b, &s.gold);
        let ms = score(&smurf.matches, &s.table_a, &s.table_b, &s.gold);
        let reduction = 1.0
            - smurf.total_questions() as f64 / falcon.total_questions().max(1) as f64;
        reductions.push(reduction);
        magellan_obs::log!(info, 
            "{:14} {:>9} {:>9} {:>9.3} {:>9.3} {:>10.0}% {:>+9.3}",
            name,
            falcon.total_questions(),
            smurf.total_questions(),
            mf.f1(),
            ms.f1(),
            100.0 * reduction,
            ms.f1() - mf.f1()
        );
    }
    let lo = reductions.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = reductions.iter().cloned().fold(0.0, f64::max);
    magellan_obs::log!(info, 
        "\nlabeling reduction range: {:.0}%–{:.0}% (paper: 43%–76%)",
        100.0 * lo,
        100.0 * hi
    );

    // --- Active learning vs random sampling at equal budget ---
    magellan_obs::log!(info, "\nActive learning vs random labeling (equal budget):");
    let s = domains::by_name(
        "persons",
        &ScenarioConfig {
            size_a: 1200,
            size_b: 1200,
            n_matches: 400,
            dirt: DirtModel::light(),
            seed: 55,
        },
    )
    .unwrap();
    let cfg = FalconConfig::default();
    let mut l = OracleLabeler::new(s.gold.clone(), "id", "id");
    let falcon = run_falcon(&s.table_a, &s.table_b, "id", "id", &mut l, &cfg).unwrap();
    let m_active = score(&falcon.matches, &s.table_a, &s.table_b, &s.gold);

    // Random-labeling variant: batch selection replaced by random picks
    // (simulated by zeroing the committee rounds and labeling the same
    // number of random pairs via the dev-stage pipeline without CV).
    use magellan_block::{Blocker, OverlapBlocker};
    use magellan_features::{extract_feature_matrix, generate_features};
    use magellan_ml::{Dataset, Learner, RandomForestLearner};
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let cands = OverlapBlocker::words("name", 1)
        .block(&s.table_a, &s.table_b)
        .unwrap();
    let features = generate_features(&s.table_a, &s.table_b, &["id"]).unwrap();
    let matrix =
        extract_feature_matrix(cands.pairs(), &s.table_a, &s.table_b, &features).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let mut order: Vec<usize> = (0..matrix.len()).collect();
    order.shuffle(&mut rng);
    let budget = falcon.total_questions();
    let mut oracle = OracleLabeler::new(s.gold.clone(), "id", "id");
    let mut data = Dataset::new(matrix.names.clone());
    use magellan_core::labeling::Labeler;
    for &i in order.iter().take(budget) {
        let (ra, rb) = matrix.pairs[i];
        let y = oracle
            .label(&s.table_a, ra as usize, &s.table_b, rb as usize)
            .as_bool();
        data.push(&matrix.rows[i], y);
    }
    let forest = RandomForestLearner {
        n_trees: 10,
        ..Default::default()
    }
    .fit(&data);
    let predicted: magellan_block::CandidateSet = matrix
        .pairs
        .iter()
        .zip(&matrix.rows)
        .filter_map(|(&p, row)| forest.predict(row).then_some(p))
        .collect();
    let m_random = score(&predicted, &s.table_a, &s.table_b, &s.gold);
    magellan_obs::log!(info, 
        "  active learning: F1 {:.3} with {budget} labels",
        m_active.f1()
    );
    magellan_obs::log!(info, 
        "  random labeling: F1 {:.3} with {budget} labels",
        m_random.f1()
    );
}
