//! Table 2 — real-world deployment of CloudMatcher: 13 EM tasks with
//! accuracy, labeling-question, cost, and time accounting.
//!
//! Substitutions (DESIGN.md): synthetic scenario generators with
//! paper-matched dirt profiles stand in for the proprietary datasets;
//! a simulated majority-vote crowd stands in for Mechanical Turk; compute
//! dollars are metered machine-seconds. Table sizes are scaled down from
//! the paper's 300–4.9M range to keep the run minutes-long, preserving the
//! ordering (smallest 300, largest tens of thousands).
//!
//! Shapes to reproduce: ≥90% P/R on clean tasks; collapsed accuracy on
//! the three dirty tasks (vehicles = an erring expert on mostly-missing
//! data, addresses = heavy dirt, vendors = undecidable generic-address
//! records); the "Vendors (no Brazil)" rerun recovering; crowd tasks
//! costing dollars and wall-clock hours while single-user tasks are free.

use magellan_bench::{dollars, human_time};
use magellan_datagen::domains;
use magellan_datagen::{DirtModel, ScenarioConfig};
use magellan_falcon::cloud::{LabelingMode, TaskSpec};
use magellan_falcon::{CloudMatcher, FalconConfig};

struct Task {
    name: &'static str,
    scenario: &'static str,
    size_a: usize,
    size_b: usize,
    n_matches: usize,
    dirt: DirtModel,
    labeling: LabelingMode,
    on_cloud: bool,
}

fn main() {
    // Experiment narration is leveled logging: MAGELLAN_LOG=off silences it.
    magellan_obs::init_bin_logging(magellan_obs::Level::Info);
    // 13 rows mirroring the paper's task list.
    let tasks = [
        Task { name: "Products",            scenario: "products",          size_a: 2500, size_b: 2500, n_matches: 800,  dirt: DirtModel::light(),    labeling: LabelingMode::SingleUser { error_rate: 0.0 },  on_cloud: false },
        Task { name: "Electronics",         scenario: "products",          size_a: 1500, size_b: 1500, n_matches: 500,  dirt: DirtModel::moderate(), labeling: LabelingMode::Crowd { worker_error_rate: 0.1 }, on_cloud: true },
        Task { name: "Restaurants",         scenario: "restaurants",       size_a: 2000, size_b: 2000, n_matches: 600,  dirt: DirtModel::moderate(), labeling: LabelingMode::Crowd { worker_error_rate: 0.1 }, on_cloud: true },
        Task { name: "Customers",           scenario: "persons",           size_a: 3000, size_b: 3000, n_matches: 900,  dirt: DirtModel::light(),    labeling: LabelingMode::SingleUser { error_rate: 0.0 },  on_cloud: false },
        Task { name: "Bibliography",        scenario: "citations",         size_a: 2000, size_b: 2000, n_matches: 700,  dirt: DirtModel::light(),    labeling: LabelingMode::SingleUser { error_rate: 0.0 },  on_cloud: false },
        Task { name: "Ranches",             scenario: "ranches",           size_a: 2500, size_b: 2500, n_matches: 800,  dirt: DirtModel::moderate(), labeling: LabelingMode::SingleUser { error_rate: 0.0 },  on_cloud: false },
        Task { name: "Tiny vendors",        scenario: "vendors_no_brazil", size_a: 300,  size_b: 300,  n_matches: 100,  dirt: DirtModel::light(),    labeling: LabelingMode::SingleUser { error_rate: 0.0 },  on_cloud: false },
        Task { name: "Households (large)",  scenario: "persons",           size_a: 8000, size_b: 8000, n_matches: 2500, dirt: DirtModel::light(),    labeling: LabelingMode::Crowd { worker_error_rate: 0.08 }, on_cloud: true },
        Task { name: "Catalog (large)",     scenario: "products",          size_a: 6000, size_b: 6000, n_matches: 2000, dirt: DirtModel::moderate(), labeling: LabelingMode::SingleUser { error_rate: 0.0 },  on_cloud: true },
        // The three dirty-data rows.
        Task { name: "Vehicles",            scenario: "vehicles",          size_a: 1500, size_b: 1500, n_matches: 500,  dirt: DirtModel::heavy(),    labeling: LabelingMode::SingleUser { error_rate: 0.10 }, on_cloud: false },
        Task { name: "Addresses",           scenario: "addresses",         size_a: 1500, size_b: 1500, n_matches: 500,  dirt: DirtModel { typo_rate: 0.25, abbrev_rate: 0.35, token_swap_rate: 0.12, token_drop_rate: 0.12, missing_rate: 0.12, numeric_drift_rate: 0.10 }, labeling: LabelingMode::SingleUser { error_rate: 0.0 },  on_cloud: false },
        Task { name: "Vendors",             scenario: "vendors",           size_a: 1500, size_b: 1500, n_matches: 500,  dirt: DirtModel::moderate(), labeling: LabelingMode::SingleUser { error_rate: 0.0 },  on_cloud: false },
        // The cleaning rerun.
        Task { name: "Vendors (no Brazil)", scenario: "vendors_no_brazil", size_a: 1500, size_b: 1500, n_matches: 500,  dirt: DirtModel::moderate(), labeling: LabelingMode::SingleUser { error_rate: 0.0 },  on_cloud: false },
    ];

    let cloud = CloudMatcher::default();
    magellan_obs::log!(info, "Table 2 analog — CloudMatcher on 13 EM tasks");
    magellan_obs::log!(info, 
        "{:20} {:>7} {:>7} {:>6} {:>6} {:>6} {:>8} {:>9} {:>10} {:>9} {:>9}",
        "task", "|A|", "|B|", "P(%)", "R(%)", "quest", "crowd", "compute", "user/crowd", "machine", "total"
    );

    // Generate all scenarios first (they borrow into the specs).
    let scenarios: Vec<_> = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let cfg = ScenarioConfig {
                size_a: t.size_a,
                size_b: t.size_b,
                n_matches: t.n_matches,
                dirt: t.dirt,
                seed: 1000 + i as u64,
            };
            domains::by_name(t.scenario, &cfg).expect("known scenario")
        })
        .collect();
    let specs: Vec<TaskSpec<'_>> = tasks
        .iter()
        .zip(&scenarios)
        .map(|(t, s)| TaskSpec {
            name: t.name.to_owned(),
            table_a: &s.table_a,
            table_b: &s.table_b,
            a_key: "id".to_owned(),
            b_key: "id".to_owned(),
            gold: &s.gold,
            labeling: t.labeling,
            on_cloud: t.on_cloud,
            falcon: FalconConfig::default(),
        })
        .collect();

    let (outcomes, schedule) = cloud.run_tasks(&specs).expect("cloudmatcher run");
    for o in &outcomes {
        magellan_obs::log!(info, 
            "{:20} {:>7} {:>7} {:6.1} {:6.1} {:6} {:>8} {:>9} {:>10} {:>9} {:>9}",
            o.name,
            o.rows.0,
            o.rows.1,
            100.0 * o.precision,
            100.0 * o.recall,
            o.questions,
            dollars(o.crowd_cost),
            if o.compute_cost == 0.0 { "-".to_owned() } else { format!("${:.2}", o.compute_cost) },
            human_time(o.label_time_s),
            human_time(o.machine_time_s),
            human_time(o.total_time_s()),
        );
    }
    magellan_obs::log!(info, 
        "\nmetamanager schedule: serial {} vs interleaved {} ({:.1}x, {} batch slots)",
        human_time(schedule.serial_total_s),
        human_time(schedule.interleaved_makespan_s),
        schedule.speedup(),
        schedule.batch_slots
    );
    magellan_obs::log!(info, "\npaper shapes to check: clean tasks ≥ ~90% P/R; Vehicles/Addresses/Vendors");
    magellan_obs::log!(info, "degraded; Vendors (no Brazil) recovered; crowd rows cost $ and hours.");
}
