//! Feature-extraction throughput: the interned tokenize-once-per-record
//! prepared cache (`magellan_features::PreparedPair`) against the per-pair
//! scalar path it replaced, at 1/2/4/8 workers.
//!
//! Both paths produce **bit-identical** matrices (asserted once below
//! before measuring), so the axis is pure wall-clock. `pairs/sec` for the
//! EXPERIMENTS.md record is produced by the `exp_feature_cache` binary;
//! this bench is the Criterion view of the same comparison.
//!
//! Set `BENCH_SMOKE=1` to shrink the workload to a seconds-scale smoke
//! run (used by the CI bench-smoke job).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use magellan_block::{Blocker, OverlapBlocker};
use magellan_datagen::domains::persons;
use magellan_datagen::{DirtModel, ScenarioConfig};
use magellan_features::{
    extract_feature_matrix_par, extract_feature_matrix_scalar_par, extract_with_prepared,
    generate_features, PreparedPair,
};
use magellan_par::ParConfig;

const WORKERS: [usize; 4] = [1, 2, 4, 8];

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn workload() -> (magellan_datagen::EmScenario, Vec<(u32, u32)>) {
    let n = if smoke() { 250 } else { 1200 };
    let s = persons(&ScenarioConfig {
        size_a: n,
        size_b: n,
        n_matches: n / 4,
        dirt: DirtModel::light(),
        seed: 23,
    });
    let (pairs, _) = OverlapBlocker::words("name", 1)
        .block_par(&s.table_a, &s.table_b, &ParConfig::workers(4))
        .expect("blocking");
    let pairs = pairs.pairs().to_vec();
    (s, pairs)
}

fn bench_feature_extraction(c: &mut Criterion) {
    let (s, pairs) = workload();
    let features = generate_features(&s.table_a, &s.table_b, &["id"]).expect("features");

    // Sanity: cached and scalar paths agree bitwise before we time them.
    let (cached, _) = extract_feature_matrix_par(
        &pairs,
        &s.table_a,
        &s.table_b,
        &features,
        &ParConfig::serial(),
    )
    .unwrap();
    let (scalar, _) = extract_feature_matrix_scalar_par(
        &pairs,
        &s.table_a,
        &s.table_b,
        &features,
        &ParConfig::serial(),
    )
    .unwrap();
    for (cr, sr) in cached.rows.iter().zip(&scalar.rows) {
        for (cv, sv) in cr.iter().zip(sr) {
            assert_eq!(cv.to_bits(), sv.to_bits(), "paths diverged");
        }
    }

    let mut g = c.benchmark_group("feature_extraction");
    g.sample_size(if smoke() { 2 } else { 10 });
    let tag = format!("{}_pairs", pairs.len());
    for w in WORKERS {
        // Per-pair scalar baseline (the pre-cache implementation).
        g.bench_with_input(BenchmarkId::new(format!("scalar/{tag}"), w), &w, |b, &w| {
            let cfg = ParConfig::workers(w);
            b.iter(|| {
                black_box(
                    extract_feature_matrix_scalar_par(
                        black_box(&pairs),
                        &s.table_a,
                        &s.table_b,
                        &features,
                        &cfg,
                    )
                    .unwrap(),
                )
            });
        });
        // Prepared cache, cold: preparation cost included every iteration.
        g.bench_with_input(
            BenchmarkId::new(format!("cached_cold/{tag}"), w),
            &w,
            |b, &w| {
                let cfg = ParConfig::workers(w);
                b.iter(|| {
                    black_box(
                        extract_feature_matrix_par(
                            black_box(&pairs),
                            &s.table_a,
                            &s.table_b,
                            &features,
                            &cfg,
                        )
                        .unwrap(),
                    )
                });
            },
        );
        // Prepared cache, warm: records already prepared (the Falcon
        // cross-stage shape — second and later extractions over the same
        // PreparedPair).
        g.bench_with_input(
            BenchmarkId::new(format!("cached_warm/{tag}"), w),
            &w,
            |b, &w| {
                let cfg = ParConfig::workers(w);
                let mut prepared = PreparedPair::new(&s.table_a, &s.table_b);
                extract_with_prepared(&mut prepared, &pairs, &features, &cfg).unwrap();
                b.iter(|| {
                    black_box(
                        extract_with_prepared(
                            black_box(&mut prepared),
                            &pairs,
                            &features,
                            &cfg,
                        )
                        .unwrap(),
                    )
                });
            },
        );
    }
    g.finish();
}

criterion_group!(feature_extraction, bench_feature_extraction);
criterion_main!(feature_extraction);
