//! The development-stage pipeline: Fig. 2 of the paper, end to end.

use magellan_block::debugger::estimate_recall;
use magellan_block::{Blocker, CandidateSet};
use magellan_features::{extract_feature_matrix, Feature};
use magellan_ml::cv::select_matcher;
use magellan_ml::{CvReport, Dataset, Learner, Metrics};
use magellan_table::Table;

use crate::downsample::down_sample;
use crate::labeling::Labeler;
use crate::rules::RuleLayer;
use crate::sample::sample_positions;
use crate::workflow::EmWorkflow;

/// Knobs for the development stage.
#[derive(Debug, Clone)]
pub struct DevConfig {
    /// Down-sample B to this many rows first (`None` = use full tables).
    /// Fig. 2's "down sample" step: 1M-row tables are too big to iterate
    /// on, so the guide starts by shrinking them intelligently.
    pub down_sample_to: Option<usize>,
    /// Candidate pairs to sample and label (the labeled set `G`).
    pub sample_size: usize,
    /// Cross-validation folds for matcher selection.
    pub cv_folds: usize,
    /// Fraction of the labeled set held out for the final quality check.
    pub holdout_fraction: f64,
    /// Attributes used for the label-free blocker-recall estimate.
    pub debug_attrs: Vec<String>,
    /// Labels spent on the quality-check calibration of the decision
    /// threshold (0 disables calibration and keeps the 0.5 default).
    pub calibration_labels: usize,
    /// Precision target the calibrated threshold aims for.
    pub target_precision: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for DevConfig {
    fn default() -> Self {
        DevConfig {
            down_sample_to: None,
            sample_size: 400,
            cv_folds: 5,
            holdout_fraction: 0.25,
            debug_attrs: Vec::new(),
            calibration_labels: 60,
            target_precision: 0.9,
            seed: 7,
        }
    }
}

/// How one candidate blocker scored during selection.
#[derive(Debug, Clone)]
pub struct BlockerChoice {
    /// Blocker display name.
    pub name: String,
    /// Candidate pairs it produced on the (down-sampled) tables.
    pub n_candidates: usize,
    /// Label-free recall estimate (fraction of high-similarity pairs kept).
    pub est_recall: f64,
}

/// Everything the development stage learned, for the quality-check
/// conversation with the domain-expert team.
#[derive(Debug, Clone)]
pub struct DevReport {
    /// Per-blocker selection scores.
    pub blocker_choices: Vec<BlockerChoice>,
    /// The chosen blocker's name.
    pub chosen_blocker: String,
    /// Candidate pairs after blocking the (down-sampled) tables.
    pub n_candidates: usize,
    /// Cross-validation reports, best first (Fig. 2's F1 comparison).
    pub cv_reports: Vec<CvReport>,
    /// The selected matcher's name.
    pub chosen_matcher: String,
    /// Quality-check metrics on the held-out labels.
    pub holdout: Metrics,
    /// Labeling questions spent.
    pub questions: usize,
    /// Positive fraction of the labeled sample.
    pub label_positive_rate: f64,
    /// The calibrated decision threshold (0.5 when calibration is off).
    pub threshold: f64,
    /// Estimated precision at the calibrated threshold (from the
    /// quality-check labels), when calibration ran.
    pub est_precision: Option<f64>,
}

/// Run the development stage (Fig. 2): down-sample → select blocker →
/// block → sample → label → cross-validate → select matcher → train →
/// quality-check. Returns the captured workflow and the report.
///
/// `blockers` are the candidates the "user experiments with" (the guide's
/// blockers X and Y); the pipeline picks the one with the best label-free
/// recall estimate, breaking ties toward the smaller candidate set.
pub fn run_development_stage(
    a: &Table,
    b: &Table,
    mut blockers: Vec<Box<dyn Blocker>>,
    features: Vec<Feature>,
    learners: &[&dyn Learner],
    labeler: &mut dyn Labeler,
    cfg: &DevConfig,
) -> magellan_table::Result<(EmWorkflow, DevReport)> {
    assert!(!blockers.is_empty(), "need at least one blocker");
    assert!(!learners.is_empty(), "need at least one learner");

    // Step 1: down-sample (the guide's A' and B').
    let (a_small, b_small);
    let (wa, wb): (&Table, &Table) = match cfg.down_sample_to {
        Some(size) => {
            let (x, y) = down_sample(a, b, size, 4, &[], cfg.seed);
            a_small = x;
            b_small = y;
            (&a_small, &b_small)
        }
        None => (a, b),
    };

    // Step 2: blocker selection.
    let debug_attrs: Vec<&str> = if cfg.debug_attrs.is_empty() {
        wa.schema()
            .fields()
            .iter()
            .skip(1) // skip the key column by convention
            .map(|f| f.name.as_str())
            .collect()
    } else {
        cfg.debug_attrs.iter().map(String::as_str).collect()
    };
    let mut choices = Vec::with_capacity(blockers.len());
    let mut candidate_sets: Vec<CandidateSet> = Vec::with_capacity(blockers.len());
    for blocker in &blockers {
        let cands = blocker.block(wa, wb)?;
        let est = estimate_recall(&cands, wa, wb, &debug_attrs, 0.65)?;
        choices.push(BlockerChoice {
            name: blocker.name(),
            n_candidates: cands.len(),
            est_recall: est,
        });
        candidate_sets.push(cands);
    }
    let best_idx = (0..choices.len())
        .max_by(|&i, &j| {
            choices[i]
                .est_recall
                .partial_cmp(&choices[j].est_recall)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| choices[j].n_candidates.cmp(&choices[i].n_candidates))
        })
        .expect("at least one blocker");
    let chosen_blocker = blockers.remove(best_idx);
    let candidates = candidate_sets.swap_remove(best_idx);

    // Step 3–4: sample S from C and label it. A uniform sample of a large
    // candidate set at EM's match densities contains almost no matches and
    // trains a useless matcher, so the sample is plausibility-stratified:
    // a wide uniform pre-sample is scored by a cheap similarity proxy
    // (mean non-NaN feature), and S mixes the top-scoring third with a
    // uniform remainder. No gold labels are consulted.
    let pre_positions = sample_positions(
        &candidates,
        (cfg.sample_size * 30).max(cfg.sample_size),
        cfg.seed ^ 0xA5A5,
    );
    let pre_pairs: Vec<(u32, u32)> = pre_positions
        .iter()
        .map(|&i| candidates.pairs()[i])
        .collect();
    let pre_matrix = extract_feature_matrix(&pre_pairs, wa, wb, &features)?;
    let proxy = |row: &[f64]| -> f64 {
        let (mut s, mut k) = (0.0, 0usize);
        for &v in row {
            if !v.is_nan() {
                s += v;
                k += 1;
            }
        }
        if k == 0 {
            0.0
        } else {
            s / k as f64
        }
    };
    let mut by_proxy: Vec<usize> = (0..pre_matrix.len()).collect();
    by_proxy.sort_by(|&i, &j| {
        proxy(&pre_matrix.rows[j])
            .partial_cmp(&proxy(&pre_matrix.rows[i]))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let take = cfg.sample_size.min(pre_matrix.len());
    let top = take / 2;
    let mut chosen: Vec<usize> = by_proxy[..top.min(by_proxy.len())].to_vec();
    {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rest: Vec<usize> = by_proxy[top.min(by_proxy.len())..].to_vec();
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0x7777);
        rest.shuffle(&mut rng);
        chosen.extend(rest.into_iter().take(take - chosen.len()));
    }
    chosen.sort_unstable();
    let sample_pairs: Vec<(u32, u32)> = chosen.iter().map(|&i| pre_matrix.pairs[i]).collect();
    let matrix = pre_matrix.subset(&chosen);
    let labels: Vec<bool> = sample_pairs
        .iter()
        .map(|&(ra, rb)| labeler.label(wa, ra as usize, wb, rb as usize).as_bool())
        .collect();

    // Step 5: train/holdout split for the quality check.
    let (train_idx, hold_idx) =
        magellan_ml::cv::train_test_split(&labels, cfg.holdout_fraction, cfg.seed ^ 0x5A5A);
    let mut train = Dataset::new(matrix.names.clone());
    for &i in &train_idx {
        train.push(&matrix.rows[i], labels[i]);
    }

    // Step 6: cross-validate and pick the matcher.
    let n_pos = train.n_positive();
    let degenerate = n_pos < 2 || train.len() - n_pos < 2;
    let cv_reports = if degenerate {
        Vec::new() // single-class sample: CV is meaningless, pick first.
    } else {
        select_matcher(learners, &train, cfg.cv_folds.min(n_pos.max(2)), cfg.seed)
    };
    let chosen_name = cv_reports
        .first()
        .map(|r| r.learner.clone())
        .unwrap_or_else(|| learners[0].name().to_owned());
    let chosen_learner = learners
        .iter()
        .find(|l| l.name() == chosen_name)
        .expect("selected learner exists");

    // Step 7: fit the chosen matcher on the full training labels.
    let matcher = chosen_learner.fit(&train);

    // Step 8: quality check on the holdout.
    let hold_pred: Vec<bool> = hold_idx
        .iter()
        .map(|&i| matcher.predict(&matrix.rows[i]))
        .collect();
    let hold_gold: Vec<bool> = hold_idx.iter().map(|&i| labels[i]).collect();
    let holdout = Metrics::from_predictions(&hold_pred, &hold_gold);

    // Step 8 (second half): Fig. 2's quality check — "examining a sample
    // of the predictions and computing the resulting accuracy". The
    // matcher's 0.5 operating point is tuned on a labeled sample whose
    // match density is far above the candidate set's, so its full-scale
    // precision is systematically lower; sampling *predicted matches*,
    // labeling them, and raising the threshold until the estimated
    // precision clears the target corrects for the density shift.
    let mut threshold = 0.5;
    let mut est_precision = None;
    if cfg.calibration_labels > 0 {
        // Score a bounded random slice of the candidate set.
        let probe_positions = sample_positions(
            &candidates,
            50_000.min(candidates.len()),
            cfg.seed ^ 0xCA11,
        );
        let probe_pairs: Vec<(u32, u32)> = probe_positions
            .iter()
            .map(|&i| candidates.pairs()[i])
            .collect();
        let probe_matrix = extract_feature_matrix(&probe_pairs, wa, wb, &features)?;
        let mut scored: Vec<(f64, usize)> = probe_matrix
            .rows
            .iter()
            .enumerate()
            .filter_map(|(i, row)| {
                let p = matcher.predict_proba(row);
                (p >= 0.5).then_some((p, i))
            })
            .collect();
        if !scored.is_empty() {
            // Label a random sample of predicted matches, remembering each
            // one's probability — precision at every threshold >= 0.5 then
            // falls out of a single labeled sample.
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0x9999);
            scored.shuffle(&mut rng);
            scored.truncate(cfg.calibration_labels);
            let labeled_preds: Vec<(f64, bool)> = scored
                .iter()
                .map(|&(p, i)| {
                    let (ra, rb) = probe_matrix.pairs[i];
                    (p, labeler.label(wa, ra as usize, wb, rb as usize).as_bool())
                })
                .collect();
            let mut best = (0.5, precision_at(&labeled_preds, 0.5));
            for t in [0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9] {
                let (n, prec) = precision_at_counted(&labeled_preds, t);
                if n < 8 {
                    break; // too few survivors to estimate
                }
                if best.1 < cfg.target_precision && prec > best.1 {
                    best = (t, prec);
                }
            }
            threshold = best.0;
            est_precision = Some(best.1);
        }
    }

    let positive_rate =
        labels.iter().filter(|&&l| l).count() as f64 / labels.len().max(1) as f64;
    let report = DevReport {
        blocker_choices: choices,
        chosen_blocker: chosen_blocker.name(),
        n_candidates: candidates.len(),
        cv_reports,
        chosen_matcher: chosen_name,
        holdout,
        questions: labeler.questions_asked(),
        label_positive_rate: positive_rate,
        threshold,
        est_precision,
    };
    let workflow = EmWorkflow {
        blocker: chosen_blocker,
        features,
        matcher,
        rule_layer: RuleLayer::empty(),
        threshold,
    };
    Ok((workflow, report))
}

/// Precision of the labeled predicted-matches surviving threshold `t`.
fn precision_at(labeled: &[(f64, bool)], t: f64) -> f64 {
    precision_at_counted(labeled, t).1
}

/// `(survivors, precision)` at threshold `t`; vacuous precision 1.0 with
/// zero survivors.
fn precision_at_counted(labeled: &[(f64, bool)], t: f64) -> (usize, f64) {
    let survivors: Vec<bool> = labeled
        .iter()
        .filter(|(p, _)| *p >= t)
        .map(|(_, y)| *y)
        .collect();
    if survivors.is_empty() {
        return (0, 1.0);
    }
    let tp = survivors.iter().filter(|&&y| y).count();
    (survivors.len(), tp as f64 / survivors.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::OracleLabeler;
    use magellan_block::{AttrEquivalenceBlocker, OverlapBlocker};
    use magellan_datagen::domains::persons;
    use magellan_datagen::{DirtModel, ScenarioConfig};
    use magellan_features::generate_features;
    use magellan_ml::{DecisionTreeLearner, RandomForestLearner};

    fn scenario() -> magellan_datagen::EmScenario {
        persons(&ScenarioConfig {
            size_a: 400,
            size_b: 400,
            n_matches: 120,
            dirt: DirtModel::light(),
            seed: 31,
        })
    }

    #[test]
    fn full_development_stage_produces_accurate_workflow() {
        let s = scenario();
        let features = generate_features(&s.table_a, &s.table_b, &["id"]).unwrap();
        let mut labeler = OracleLabeler::new(s.gold.clone(), "id", "id");
        let tree = DecisionTreeLearner::default();
        let forest = RandomForestLearner {
            n_trees: 10,
            ..Default::default()
        };
        let blockers: Vec<Box<dyn Blocker>> = vec![
            Box::new(OverlapBlocker::words("name", 1)),
            Box::new(AttrEquivalenceBlocker::on("state")),
        ];
        let cfg = DevConfig {
            sample_size: 300,
            ..Default::default()
        };
        let (workflow, report) = run_development_stage(
            &s.table_a,
            &s.table_b,
            blockers,
            features,
            &[&tree, &forest],
            &mut labeler,
            &cfg,
        )
        .unwrap();

        assert_eq!(report.blocker_choices.len(), 2);
        assert!(report.questions <= 300 + 60); // sample + calibration labels
        assert!(!report.cv_reports.is_empty(), "CV should have run");
        assert!(report.holdout.f1() > 0.6, "holdout {:?}", report.holdout);

        // The captured workflow generalizes: run it on the full tables and
        // score against gold.
        let out = workflow.execute(&s.table_a, &s.table_b).unwrap();
        let m = crate::evaluate::evaluate_matches(
            &out.matches(),
            &s.table_a,
            &s.table_b,
            "id",
            "id",
            &s.gold,
        )
        .unwrap();
        assert!(m.f1() > 0.7, "end-to-end F1 too low: {m}");
    }

    #[test]
    fn blocker_selection_prefers_higher_recall() {
        let s = scenario();
        let features = generate_features(&s.table_a, &s.table_b, &["id"]).unwrap();
        let mut labeler = OracleLabeler::new(s.gold.clone(), "id", "id");
        let tree = DecisionTreeLearner::default();
        // Overlap-on-name should beat equality-on-full-name for recall.
        let blockers: Vec<Box<dyn Blocker>> = vec![
            Box::new(AttrEquivalenceBlocker::on("name")),
            Box::new(OverlapBlocker::words("name", 1)),
        ];
        let (_, report) = run_development_stage(
            &s.table_a,
            &s.table_b,
            blockers,
            features,
            &[&tree],
            &mut labeler,
            &DevConfig::default(),
        )
        .unwrap();
        assert!(report.chosen_blocker.starts_with("overlap"), "{}", report.chosen_blocker);
    }

    #[test]
    fn down_sampling_path_works() {
        let s = scenario();
        let features = generate_features(&s.table_a, &s.table_b, &["id"]).unwrap();
        let mut labeler = OracleLabeler::new(s.gold.clone(), "id", "id");
        let tree = DecisionTreeLearner::default();
        let cfg = DevConfig {
            down_sample_to: Some(150),
            sample_size: 150,
            ..Default::default()
        };
        let (_, report) = run_development_stage(
            &s.table_a,
            &s.table_b,
            vec![Box::new(OverlapBlocker::words("name", 1))],
            features,
            &[&tree],
            &mut labeler,
            &cfg,
        )
        .unwrap();
        assert!(report.n_candidates > 0);
        assert!(report.questions <= 150 + 60); // sample + calibration labels
    }

    #[test]
    fn degenerate_single_class_sample_is_survivable() {
        let s = scenario();
        let features = generate_features(&s.table_a, &s.table_b, &["id"]).unwrap();
        // Empty gold: every label is no-match.
        let mut labeler = OracleLabeler::new(Default::default(), "id", "id");
        let tree = DecisionTreeLearner::default();
        let (_, report) = run_development_stage(
            &s.table_a,
            &s.table_b,
            vec![Box::new(OverlapBlocker::words("name", 1))],
            features,
            &[&tree],
            &mut labeler,
            &DevConfig {
                sample_size: 50,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.cv_reports.is_empty());
        assert_eq!(report.chosen_matcher, "decision_tree");
        assert_eq!(report.label_positive_rate, 0.0);
    }
}
