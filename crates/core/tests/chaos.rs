//! The chaos suite: the determinism contract under fault injection.
//!
//! Each test drives the full EM production pipeline (blocking → feature
//! extraction → prediction → rule layer) under seeded
//! [`magellan_faults::FaultPlan`]s that inject chunk panics, transient
//! checkpoint I/O failures, fragment failures, and stragglers — and
//! asserts the **recovery contract**:
//!
//! 1. no panic escapes the executor;
//! 2. every run completes;
//! 3. the match set, candidate count, and P/R/F1 are **bit-identical**
//!    to the fault-free golden run;
//! 4. a run killed after any phase resumes from its checkpoint to an
//!    identical final report;
//! 5. worker count remains irrelevant under faults.
//!
//! The number of seeds defaults to 8 and can be raised with the
//! `CHAOS_SEEDS` environment variable (the CI chaos job sets it).

use std::collections::HashSet;

use magellan_block::OverlapBlocker;
use magellan_core::checkpoint::{Checkpoint, CheckpointStore, FlakyStore, MemStore, Phase};
use magellan_core::error::MagellanError;
use magellan_core::evaluate::evaluate_matches;
use magellan_core::exec::{ProductionExecutor, ProductionReport, RecoveryOptions};
use magellan_core::rules::{Cmp, MatchRule, RuleLayer};
use magellan_core::EmWorkflow;
use magellan_datagen::domains::persons;
use magellan_datagen::{DirtModel, EmScenario, ScenarioConfig};
use magellan_faults::{FaultPlan, RetryPolicy};
use magellan_features::{Feature, FeatureKind, TokSpecF};
use magellan_ml::model::ConstantClassifier;

/// Fault seeds exercised per test: `CHAOS_SEEDS` (count) or 8.
fn seeds() -> Vec<u64> {
    let n: u64 = std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    (0..n.max(1)).map(|i| 1000 + 37 * i).collect()
}

fn scenario(seed: u64) -> EmScenario {
    persons(&ScenarioConfig {
        size_a: 300,
        size_b: 300,
        n_matches: 100,
        dirt: DirtModel::light(),
        seed,
    })
}

fn workflow() -> EmWorkflow {
    EmWorkflow {
        blocker: Box::new(OverlapBlocker::words("name", 1)),
        features: vec![
            Feature::new("name", "name", FeatureKind::Jaccard(TokSpecF::Word)),
            Feature::new("name", "name", FeatureKind::JaroWinkler),
            Feature::new("city", "city", FeatureKind::ExactMatch),
        ],
        matcher: Box::new(ConstantClassifier { proba: 1.0 }),
        rule_layer: RuleLayer::new(vec![MatchRule::reject(
            "weak",
            vec![(
                "jaccard(word(A.name), word(B.name))".into(),
                Cmp::Lt,
                0.5,
            )],
        )]),
        threshold: 0.5,
    }
}

/// P/R/F1 of a report against the scenario's gold, for bit-identity
/// comparison between golden and chaos runs.
fn metrics(report: &ProductionReport, s: &EmScenario) -> (f64, f64, f64) {
    let gold: &HashSet<(String, String)> = &s.gold;
    let m = evaluate_matches(&report.matches, &s.table_a, &s.table_b, "id", "id", gold)
        .expect("evaluation");
    (m.precision(), m.recall(), m.f1())
}

#[test]
fn seeded_fault_plans_heal_to_bit_identical_results() {
    magellan_core::par::silence_contained_panics();
    let s = scenario(21);
    let wf = workflow();
    let exec = ProductionExecutor::new(4);
    let golden = exec.run(&wf, &s.table_a, &s.table_b).expect("golden run");
    let golden_prf = metrics(&golden, &s);
    assert!(golden_prf.2 > 0.0, "golden run should find matches");

    let mut any_panic_contained = false;
    let mut any_store_retry = false;
    for seed in seeds() {
        let plan = FaultPlan::seeded(seed);
        let mut store = FlakyStore::new(MemStore::new(), plan);
        let opts = RecoveryOptions {
            faults: plan,
            ..RecoveryOptions::default()
        };
        let rec = exec
            .run_with_recovery(&wf, &s.table_a, &s.table_b, &mut store, &opts)
            .unwrap_or_else(|e| panic!("chaos seed {seed} must complete, got: {e}"));
        assert_eq!(
            rec.matches, golden.matches,
            "seed {seed}: match set must be bit-identical"
        );
        assert_eq!(rec.n_candidates, golden.n_candidates, "seed {seed}");
        let prf = metrics(&rec, &s);
        assert_eq!(prf, golden_prf, "seed {seed}: P/R/F1 must be bit-identical");
        any_panic_contained |= rec.recovery.panics_contained > 0;
        any_store_retry |= rec.recovery.store_retries > 0;
        // The durable checkpoint reflects the finished run.
        let ck = loop {
            match store.load() {
                Ok(text) => break Checkpoint::from_text(&text.expect("checkpoint")).unwrap(),
                Err(e) => assert!(e.transient()),
            }
        };
        match ck {
            Checkpoint::Done {
                matches,
                n_candidates,
            } => {
                assert_eq!(n_candidates, golden.n_candidates);
                assert_eq!(matches, golden.matches.pairs().to_vec());
            }
            other => panic!("expected Done checkpoint, got {other:?}"),
        }
    }
    assert!(
        any_panic_contained,
        "across all seeds at least one chunk panic should have been injected"
    );
    assert!(
        any_store_retry,
        "across all seeds at least one checkpoint I/O blip should have been injected"
    );
}

#[test]
fn kill_and_resume_is_identical_under_faults() {
    magellan_core::par::silence_contained_panics();
    let s = scenario(22);
    let wf = workflow();
    let exec = ProductionExecutor::new(3);
    let golden = exec.run(&wf, &s.table_a, &s.table_b).expect("golden run");

    for seed in seeds().into_iter().take(4) {
        let plan = FaultPlan::seeded(seed);
        for kill_phase in [Phase::Blocking, Phase::Matching] {
            let mut store = FlakyStore::new(MemStore::new(), plan);
            let opts = RecoveryOptions {
                faults: plan,
                kill_after: Some(kill_phase),
                ..RecoveryOptions::default()
            };
            let err = exec
                .run_with_recovery(&wf, &s.table_a, &s.table_b, &mut store, &opts)
                .expect_err("kill hook must fire");
            let MagellanError::Killed { after_phase } = err else {
                panic!("seed {seed}: expected Killed, got {err}");
            };
            assert_eq!(after_phase, kill_phase.name());

            // The rerun resumes from the checkpoint the kill left behind
            // and finishes with a bit-identical report.
            let opts = RecoveryOptions {
                faults: plan,
                ..RecoveryOptions::default()
            };
            let resumed = exec
                .run_with_recovery(&wf, &s.table_a, &s.table_b, &mut store, &opts)
                .unwrap_or_else(|e| panic!("seed {seed}: resume must complete: {e}"));
            assert_eq!(resumed.recovery.resumed_from, Some(kill_phase));
            assert_eq!(
                resumed.matches, golden.matches,
                "seed {seed}: resumed matches must equal golden"
            );
            assert_eq!(resumed.n_candidates, golden.n_candidates);
        }
    }
}

#[test]
fn worker_count_is_irrelevant_under_faults() {
    magellan_core::par::silence_contained_panics();
    let s = scenario(23);
    let wf = workflow();
    let plan = FaultPlan::seeded(4242);

    let mut reference: Option<ProductionReport> = None;
    for n_workers in [1usize, 2, 4, 8] {
        let mut store = FlakyStore::new(MemStore::new(), plan);
        let opts = RecoveryOptions {
            faults: plan,
            ..RecoveryOptions::default()
        };
        let rec = ProductionExecutor::new(n_workers)
            .run_with_recovery(&wf, &s.table_a, &s.table_b, &mut store, &opts)
            .unwrap_or_else(|e| panic!("{n_workers} workers must complete: {e}"));
        match &reference {
            None => reference = Some(rec),
            Some(r) => {
                assert_eq!(
                    rec.matches, r.matches,
                    "{n_workers} workers: fault recovery must be worker-count invariant"
                );
                assert_eq!(rec.n_candidates, r.n_candidates);
            }
        }
    }
}

#[test]
fn heavy_panic_storms_are_contained() {
    // A panic-containment smoke: far denser injection than the standard
    // seeded plan, aggressive enough that every parallel region takes
    // multiple hits — and the pipeline still completes identically.
    magellan_core::par::silence_contained_panics();
    let s = scenario(24);
    let wf = workflow();
    let exec = ProductionExecutor::new(4);
    let golden = exec.run(&wf, &s.table_a, &s.table_b).expect("golden run");

    let plan = FaultPlan {
        chunk_panic_per_mille: 600,
        io_error_per_mille: 500,
        ..FaultPlan::seeded(7)
    };
    let mut store = FlakyStore::new(MemStore::new(), plan);
    let opts = RecoveryOptions {
        faults: plan,
        retry: RetryPolicy::default(),
        kill_after: None,
    };
    let rec = exec
        .run_with_recovery(&wf, &s.table_a, &s.table_b, &mut store, &opts)
        .expect("panic storm must be absorbed");
    assert_eq!(rec.matches, golden.matches);
    assert!(
        rec.recovery.panics_contained >= 5,
        "a 60% per-chunk panic rate should hit many chunks: {:?}",
        rec.recovery
    );
}
