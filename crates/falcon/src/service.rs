//! The multi-tenant CloudMatcher service core.
//!
//! §5.1 and Table 2 of the paper describe CloudMatcher as a *self-service
//! cloud system*: 13 concurrent EM tasks from different users, each
//! decomposed into DAG fragments routed across the user-interaction,
//! crowd, and batch engines by a metamanager. [`crate::cloud`] reproduces
//! the per-workflow mechanics; this module makes the system *long-lived
//! and multi-tenant*:
//!
//! * **Admission control** — every submission is estimated in the exact
//!   currencies of Table 2 (label $, compute $, machine time) and checked
//!   against the tenant's [`TenantQuota`] by a [`magellan_faults::Budget`]
//!   -backed controller. Under overload the service *queues* (bounded) or
//!   *rejects* (typed [`RejectReason`]) — deterministically: the decision
//!   is a pure function of `(seed, arrival plan, quotas, capacity)`.
//! * **Weighted fair-share + priority scheduling** — ready fragments
//!   compete for engine slots; ties at the same start time are broken by
//!   (priority desc, virtual time asc, arrival order). A tenant's virtual
//!   time advances by `service_seconds / weight`, so a weight-2 tenant
//!   receives twice the share of a saturated engine over time. Engine
//!   saturation is the backpressure signal: fragments wait, backlogs
//!   grow, and the degradation policy reads those backlogs.
//! * **Policy-driven graceful degradation** — the crowd→single-user
//!   fallback of PR 2 generalized into ordered, declarative
//!   [`DegradationRule`]s: shed crowd work first, then disable
//!   speculative re-execution, then downgrade priority. Every decision is
//!   recorded as an obs event and counted in [`ServiceTelemetry`].
//!
//! **Bit-identity contract.** An accepted tenant's [`TaskOutcome`] is
//! byte-identical to running that tenant alone, at any worker count,
//! under any seeded fault plan. This falls out of two rules: the
//! workload runs under the tenant's own `task_seed` (never service
//! state), and *machine time is simulated* from a deterministic
//! [`ServiceCostModel`] — the service never lets wall-clock feed an
//! outcome, an admission decision, or a pinned obs export.

use std::collections::BTreeMap;

use magellan_core::checkpoint::{append_checksum, verify_checksum, CheckpointStore};
use magellan_core::MagellanError;
use magellan_faults::{run_with_retry, Budget, FaultPlan, RetryPolicy, SimClock};
use magellan_obs::{EvVal, Histogram};

use crate::cloud::{
    engine_span_name, execute_labeling, name_key, resolve_fragment, score_matches, sim_ns,
    CostModel, Engine, Fragment, ScheduleRecoveryOptions, ScheduleTelemetry, TaskOutcome,
    TaskSpec,
};

/// Priority classes for fair-share scheduling, lowest to highest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Best-effort: scheduled only when nothing more urgent is ready.
    Low,
    /// The default class.
    Normal,
    /// Latency-sensitive: wins ties for engine slots.
    High,
}

impl Priority {
    /// Map a seeded class draw (e.g. [`magellan_faults::ArrivalPlan::priority_class`]
    /// with 3 classes) onto a priority.
    pub fn from_class(class: u32) -> Self {
        match class {
            0 => Priority::Low,
            1 => Priority::Normal,
            _ => Priority::High,
        }
    }

    fn rank(self) -> u8 {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }

    /// Stable lowercase name for events and reports.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// Per-tenant quotas in the currencies of Table 2. `f64::INFINITY`
/// disables a cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQuota {
    /// Cap on labeling dollars (crowd fees).
    pub label_dollars: f64,
    /// Cap on metered compute dollars.
    pub compute_dollars: f64,
    /// Cap on machine time, simulated seconds.
    pub machine_time_s: f64,
}

impl TenantQuota {
    /// No caps.
    pub fn unlimited() -> Self {
        TenantQuota {
            label_dollars: f64::INFINITY,
            compute_dollars: f64::INFINITY,
            machine_time_s: f64::INFINITY,
        }
    }
}

/// One tenant of the service.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name (also the `tenant` label on the SLO metrics, so keep
    /// it to plain identifier characters).
    pub name: String,
    /// Arrival time on the simulated clock, seconds.
    pub arrival_s: f64,
    /// Priority class.
    pub priority: Priority,
    /// Fair-share weight (≥ 1); a weight-2 tenant gets twice the share
    /// of a saturated engine.
    pub weight: u32,
    /// Budget caps.
    pub quota: TenantQuota,
    /// Seed for the tenant's own workload randomness. Two runs of the
    /// same tenant with the same seed produce byte-identical outcomes —
    /// alone or among any set of co-tenants.
    pub task_seed: u64,
}

/// A synthetic workload for scheduling-focused tests and benches: the
/// outcome is a cheap deterministic function of the task seed, so
/// thousands of tenants can be simulated without running Falcon.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticTask {
    /// |A|, |B| (drives the machine-time cost model).
    pub rows: (usize, usize),
    /// Questions the blocking stage asks.
    pub questions_blocking: usize,
    /// Questions the matching stage asks.
    pub questions_matching: usize,
    /// Candidate pairs examined (drives the machine-time cost model).
    pub n_candidates: usize,
    /// Crowd labeling (fees + crowd engine) vs. single-user.
    pub crowd: bool,
    /// Billed cloud compute vs. free local machine.
    pub on_cloud: bool,
}

/// What a tenant submitted.
pub enum Workload<'a> {
    /// A real EM task, run through the Falcon workflow.
    Em(TaskSpec<'a>),
    /// A synthetic task (scheduling tests and benches).
    Synthetic(SyntheticTask),
}

/// A tenant plus their workload.
pub struct TenantSubmission<'a> {
    /// Who.
    pub tenant: TenantSpec,
    /// What.
    pub workload: Workload<'a>,
}

/// Deterministic machine-time model: the service accounts compute in
/// *simulated* seconds derived from workload size, never wall-clock —
/// wall time would leak scheduling noise into outcomes, admission
/// decisions, and pinned obs exports, breaking the bit-identity
/// contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceCostModel {
    /// Simulated machine seconds per input row (|A| + |B|).
    pub machine_s_per_row: f64,
    /// Simulated machine seconds per candidate pair examined.
    pub machine_s_per_candidate: f64,
}

impl Default for ServiceCostModel {
    fn default() -> Self {
        ServiceCostModel {
            machine_s_per_row: 0.01,
            machine_s_per_candidate: 0.0005,
        }
    }
}

impl ServiceCostModel {
    /// Simulated machine seconds for a task of the given shape.
    pub fn machine_s(&self, rows: (usize, usize), n_candidates: usize) -> f64 {
        self.machine_s_per_row * (rows.0 + rows.1) as f64
            + self.machine_s_per_candidate * n_candidates as f64
    }
}

/// What a degradation rule does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeAction {
    /// Reroute the tenant's crowd fragments to their own user at
    /// single-user speed (the paper's crowd→single-user fallback).
    ShedCrowdToUser,
    /// Stop launching speculative backup copies for this tenant's
    /// straggling batch fragments (saves batch slots under pressure).
    DisableSpeculation,
    /// Drop the tenant to [`Priority::Low`] for the rest of their run.
    DowngradePriority,
}

impl DegradeAction {
    /// Stable lowercase name for events and the policy table.
    pub fn name(self) -> &'static str {
        match self {
            DegradeAction::ShedCrowdToUser => "shed_crowd_to_user",
            DegradeAction::DisableSpeculation => "disable_speculation",
            DegradeAction::DowngradePriority => "downgrade_priority",
        }
    }
}

/// When a degradation rule fires. Backlogs count *ready* fragments
/// (their tenant's previous fragment finished) that target the engine —
/// i.e. actual backpressure, not projected load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DegradeTrigger {
    /// At least this many ready fragments waiting on the crowd engine.
    CrowdBacklogAtLeast(usize),
    /// At least this many ready fragments waiting on the batch engine.
    BatchBacklogAtLeast(usize),
    /// The tenant's actual labeling spend exceeded their label-$ quota
    /// (the admission estimate was optimistic).
    LabelBudgetOverrun,
    /// The tenant's remaining machine-time budget fell below this
    /// fraction of their quota.
    MachineBudgetBelow(f64),
}

impl DegradeTrigger {
    /// Human-readable condition for the policy table.
    pub fn describe(&self) -> String {
        match self {
            DegradeTrigger::CrowdBacklogAtLeast(k) => format!("crowd backlog >= {k}"),
            DegradeTrigger::BatchBacklogAtLeast(k) => format!("batch backlog >= {k}"),
            DegradeTrigger::LabelBudgetOverrun => "label $ spend > quota".to_string(),
            DegradeTrigger::MachineBudgetBelow(f) => {
                format!("machine budget remaining < {:.0}%", f * 100.0)
            }
        }
    }
}

/// One declarative degradation rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationRule {
    /// Condition.
    pub trigger: DegradeTrigger,
    /// Response.
    pub action: DegradeAction,
}

/// An ordered list of degradation rules, evaluated front to back each
/// time a tenant's next fragment becomes ready. Order *is* the policy:
/// the default sheds cheap-to-shed crowd work first, then stops paying
/// for speculation, and only then touches a tenant's priority.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationPolicy {
    /// The rules, in evaluation order.
    pub rules: Vec<DegradationRule>,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy {
            rules: vec![
                DegradationRule {
                    trigger: DegradeTrigger::CrowdBacklogAtLeast(4),
                    action: DegradeAction::ShedCrowdToUser,
                },
                DegradationRule {
                    trigger: DegradeTrigger::LabelBudgetOverrun,
                    action: DegradeAction::ShedCrowdToUser,
                },
                DegradationRule {
                    trigger: DegradeTrigger::BatchBacklogAtLeast(8),
                    action: DegradeAction::DisableSpeculation,
                },
                DegradationRule {
                    trigger: DegradeTrigger::MachineBudgetBelow(0.25),
                    action: DegradeAction::DowngradePriority,
                },
            ],
        }
    }
}

impl DegradationPolicy {
    /// A policy that never degrades anything.
    pub fn none() -> Self {
        DegradationPolicy { rules: Vec::new() }
    }

    /// Render the policy as a Markdown table (used in docs and the
    /// `exp_service` report).
    pub fn table(&self) -> String {
        let mut out = String::from("| # | trigger | action |\n|---|---------|--------|\n");
        for (i, r) in self.rules.iter().enumerate() {
            out.push_str(&format!(
                "| {} | {} | {} |\n",
                i + 1,
                r.trigger.describe(),
                r.action.name()
            ));
        }
        out
    }
}

/// Why a submission was rejected at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The workload estimate exceeds the named quota currency.
    Quota {
        /// `"label_dollars"`, `"compute_dollars"`, or `"machine_time_s"`.
        currency: &'static str,
    },
    /// Active set and admission queue are both full (overload shed).
    QueueFull,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::Quota { currency } => write!(f, "quota_exceeded:{currency}"),
            RejectReason::QueueFull => write!(f, "queue_full"),
        }
    }
}

/// The admission controller's decision for one tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// Activated on arrival.
    Admitted,
    /// Held in the bounded queue, activated when a slot freed up.
    AdmittedAfterQueue,
    /// Never ran.
    Rejected(RejectReason),
}

impl Admission {
    /// Did this tenant's workload run?
    pub fn accepted(&self) -> bool {
        !matches!(self, Admission::Rejected(_))
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Batch-engine worker slots.
    pub batch_slots: usize,
    /// Crowd-engine slots (concurrent crowd campaigns the service will
    /// run). `0` means "no crowd": every crowd fragment is shed to the
    /// submitting user.
    pub crowd_slots: usize,
    /// Max tenants whose workflows are in flight at once.
    pub max_active_tenants: usize,
    /// Max tenants waiting in the admission queue; beyond this,
    /// submissions are rejected with [`RejectReason::QueueFull`].
    pub max_queue: usize,
    /// Fee/latency model shared with [`crate::cloud::CloudMatcher`].
    pub cost_model: CostModel,
    /// Deterministic machine-time model.
    pub svc_cost: ServiceCostModel,
    /// Degradation policy.
    pub policy: DegradationPolicy,
    /// Seeded fault plan (tenant failures, fragment failures,
    /// stragglers, crowd no-shows, flaky checkpoint I/O).
    pub faults: FaultPlan,
    /// Backoff policy for tenant activation retries, fragment retries,
    /// and checkpoint I/O retries.
    pub retry: RetryPolicy,
    /// Per-fragment simulated-seconds budget (see
    /// [`ScheduleRecoveryOptions::fragment_timeout_s`]).
    pub fragment_timeout_s: f64,
    /// Crowd→user duration multiplier on shed/degraded fragments.
    pub degrade_factor: f64,
    /// Speculative re-execution threshold (see
    /// [`ScheduleRecoveryOptions::speculate_threshold`]).
    pub speculate_threshold: f64,
    /// Per-tenant SLO: p99 fragment latency at or under this many
    /// simulated milliseconds sets the tenant's `slo_ok` gauge to 1.
    pub slo_p99_ms: u64,
    /// Chaos hook: kill the service process (return
    /// [`MagellanError::Killed`]) right after this many tenant workloads
    /// have run *in this process* and been checkpointed.
    pub kill_after_tenants: Option<u32>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            batch_slots: 4,
            crowd_slots: 2,
            max_active_tenants: 4,
            max_queue: 8,
            cost_model: CostModel::default(),
            svc_cost: ServiceCostModel::default(),
            policy: DegradationPolicy::default(),
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
            fragment_timeout_s: f64::INFINITY,
            degrade_factor: 1.0 / 15.0,
            speculate_threshold: 1.5,
            slo_p99_ms: 3_600_000, // one simulated hour
            kill_after_tenants: None,
        }
    }
}

/// Per-tenant service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServiceTelemetry {
    /// Submissions seen.
    pub arrived: u32,
    /// Activated on arrival.
    pub admitted: u32,
    /// Held in the queue before activation.
    pub queued: u32,
    /// Rejected at admission.
    pub rejected: u32,
    /// Completed workflows.
    pub completed: u32,
    /// Crowd fragments shed to the submitting user by policy.
    pub crowd_shed: u32,
    /// Tenants whose speculation was disabled by policy.
    pub speculation_disabled: u32,
    /// Tenants downgraded to low priority by policy.
    pub priority_downgrades: u32,
    /// Transient tenant-activation failures retried.
    pub tenant_retries: u32,
    /// Fragment-level recovery counters (shared vocabulary with the
    /// single-workflow metamanager).
    pub schedule: ScheduleTelemetry,
}

impl ServiceTelemetry {
    /// Publish the counters as `magellan_service_*` metrics.
    pub fn publish(&self) {
        magellan_obs::counter_add("magellan_service_tenants_arrived_total", u64::from(self.arrived));
        magellan_obs::counter_add("magellan_service_tenants_admitted_total", u64::from(self.admitted));
        magellan_obs::counter_add("magellan_service_tenants_queued_total", u64::from(self.queued));
        magellan_obs::counter_add("magellan_service_tenants_rejected_total", u64::from(self.rejected));
        magellan_obs::counter_add("magellan_service_tenants_completed_total", u64::from(self.completed));
        magellan_obs::counter_add("magellan_service_crowd_shed_total", u64::from(self.crowd_shed));
        magellan_obs::counter_add(
            "magellan_service_speculation_disabled_total",
            u64::from(self.speculation_disabled),
        );
        magellan_obs::counter_add(
            "magellan_service_priority_downgrades_total",
            u64::from(self.priority_downgrades),
        );
        magellan_obs::counter_add(
            "magellan_service_tenant_retries_total",
            u64::from(self.tenant_retries),
        );
        self.schedule.publish();
    }
}

/// What happened to one tenant.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Admission decision.
    pub admission: Admission,
    /// The Table 2 row, for accepted tenants.
    pub outcome: Option<TaskOutcome>,
    /// Arrival time, simulated seconds.
    pub arrival_s: f64,
    /// Workflow activation time (accepted tenants).
    pub start_s: f64,
    /// Workflow completion time (accepted tenants).
    pub finish_s: f64,
    /// `start_s - arrival_s`: admission queueing plus activation
    /// retries.
    pub queue_wait_s: f64,
    /// p50 fragment latency, simulated ms (bucket upper bound).
    pub frag_p50_ms: u64,
    /// p99 fragment latency, simulated ms (bucket upper bound).
    pub frag_p99_ms: u64,
    /// Crowd fragments shed to this tenant's user.
    pub shed_crowd_fragments: u32,
    /// Policy disabled speculation for this tenant.
    pub speculation_disabled: bool,
    /// Policy downgraded this tenant to low priority.
    pub priority_downgraded: bool,
    /// Machine-time budget spent, simulated seconds.
    pub machine_spent_s: f64,
}

impl TenantReport {
    /// Did the tenant meet the p99 fragment-latency SLO?
    pub fn slo_ok(&self, slo_p99_ms: u64) -> bool {
        self.frag_p99_ms <= slo_p99_ms
    }
}

/// The service run summary.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Per-tenant reports, in submission order.
    pub tenants: Vec<TenantReport>,
    /// Simulated makespan of the whole run.
    pub makespan_s: f64,
    /// Busy seconds per engine.
    pub busy: Vec<(Engine, f64)>,
    /// Crowd fragments that actually ran on the crowd engine.
    pub crowd_served: u32,
    /// Service counters.
    pub telemetry: ServiceTelemetry,
}

impl ServiceReport {
    /// `(submission index, reason)` for every rejected tenant — the set
    /// the determinism contract pins across worker counts and seeds.
    pub fn rejection_set(&self) -> Vec<(usize, String)> {
        self.tenants
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match &t.admission {
                Admission::Rejected(r) => Some((i, r.to_string())),
                _ => None,
            })
            .collect()
    }

    /// Reports of tenants whose workloads ran.
    pub fn accepted(&self) -> impl Iterator<Item = (usize, &TenantReport)> {
        self.tenants
            .iter()
            .enumerate()
            .filter(|(_, t)| t.admission.accepted())
    }

    /// Fraction of crowd-bound fragments shed to users (0 when no crowd
    /// work was submitted).
    pub fn shed_rate(&self) -> f64 {
        let shed = f64::from(self.telemetry.crowd_shed);
        let total = shed + f64::from(self.crowd_served);
        if total == 0.0 {
            0.0
        } else {
            shed / total
        }
    }
}

/// The Table 2 currencies a workload is estimated to consume; what the
/// admission controller charges against the tenant's quota.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadEstimate {
    /// Estimated labeling dollars.
    pub label_dollars: f64,
    /// Estimated compute dollars.
    pub compute_dollars: f64,
    /// Estimated machine time, simulated seconds.
    pub machine_time_s: f64,
}

/// Estimate a workload without running it — a pure function of the
/// submission and the cost models, so admission decisions never depend
/// on execution state.
pub fn estimate_workload(sub: &TenantSubmission<'_>, cfg: &ServiceConfig) -> WorkloadEstimate {
    let cm = &cfg.cost_model;
    let (questions, crowd, rows, n_candidates, on_cloud) = match &sub.workload {
        Workload::Em(spec) => (
            spec.falcon.sample_size as f64,
            matches!(spec.labeling, crate::cloud::LabelingMode::Crowd { .. }),
            (spec.table_a.nrows(), spec.table_b.nrows()),
            0usize, // candidates unknown before blocking; the machine
            // budget covers the gap at run time via degradation
            spec.on_cloud,
        ),
        Workload::Synthetic(s) => (
            (s.questions_blocking + s.questions_matching) as f64,
            s.crowd,
            s.rows,
            s.n_candidates,
            s.on_cloud,
        ),
    };
    let label_dollars = if crowd {
        questions * cm.crowd_votes as f64 * cm.crowd_fee_per_vote
    } else {
        0.0
    };
    let machine_time_s = cfg.svc_cost.machine_s(rows, n_candidates);
    let compute_dollars = if on_cloud {
        machine_time_s / 3600.0 * cm.compute_dollars_per_hour
    } else {
        0.0
    };
    WorkloadEstimate {
        label_dollars,
        compute_dollars,
        machine_time_s,
    }
}

/// Admission decision for one submission given current load — pure in
/// `(estimate, quota, active, queued, limits)`.
fn admit(
    est: &WorkloadEstimate,
    quota: &TenantQuota,
    active_now: usize,
    queued_now: usize,
    cfg: &ServiceConfig,
) -> Result<bool, RejectReason> {
    if est.label_dollars > quota.label_dollars {
        return Err(RejectReason::Quota { currency: "label_dollars" });
    }
    if est.compute_dollars > quota.compute_dollars {
        return Err(RejectReason::Quota { currency: "compute_dollars" });
    }
    if est.machine_time_s > quota.machine_time_s {
        return Err(RejectReason::Quota { currency: "machine_time_s" });
    }
    if active_now < cfg.max_active_tenants {
        Ok(true) // activate now
    } else if queued_now < cfg.max_queue {
        Ok(false) // queue
    } else {
        Err(RejectReason::QueueFull)
    }
}

/// A tenant workload's deterministic execution result: the Table 2 row
/// (machine time simulated) plus the question split that shapes the
/// fragment chain.
#[derive(Debug, Clone)]
struct WorkloadRun {
    outcome: TaskOutcome,
    questions_blocking: usize,
    questions_matching: usize,
    label_engine: Engine,
}

fn unit64(x: u64) -> f64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Run one tenant's workload. Pure in `(submission, cfg)` — notably
/// independent of co-tenants, scheduling, and wall-clock — which is the
/// whole bit-identity contract.
fn run_workload(
    sub: &TenantSubmission<'_>,
    cfg: &ServiceConfig,
) -> Result<WorkloadRun, MagellanError> {
    let cm = &cfg.cost_model;
    match &sub.workload {
        Workload::Em(spec) => {
            let run = execute_labeling(spec, sub.tenant.task_seed, cfg.faults, cm)
                .map_err(MagellanError::from)?;
            let metrics = score_matches(spec, &run.report).map_err(MagellanError::from)?;
            let rows = (spec.table_a.nrows(), spec.table_b.nrows());
            let machine_time_s = cfg.svc_cost.machine_s(rows, run.report.n_candidates);
            let compute_cost = if spec.on_cloud {
                machine_time_s / 3600.0 * cm.compute_dollars_per_hour
            } else {
                0.0
            };
            Ok(WorkloadRun {
                outcome: TaskOutcome {
                    name: spec.name.clone(),
                    rows,
                    precision: metrics.precision(),
                    recall: metrics.recall(),
                    questions: run.questions,
                    crowd_cost: run.crowd_cost,
                    compute_cost,
                    label_time_s: run.questions as f64 * run.per_q_latency_s,
                    machine_time_s,
                    n_candidates: run.report.n_candidates,
                    crowd_no_shows: run.no_shows,
                    crowd_degraded_questions: run.degraded,
                },
                questions_blocking: run.report.questions_blocking,
                questions_matching: run.report.questions_matching,
                label_engine: run.label_engine,
            })
        }
        Workload::Synthetic(s) => {
            let seed = sub.tenant.task_seed;
            let questions = s.questions_blocking + s.questions_matching;
            let per_q = if s.crowd { cm.crowd_latency_s } else { cm.user_latency_s };
            let crowd_cost = if s.crowd {
                questions as f64 * cm.crowd_votes as f64 * cm.crowd_fee_per_vote
            } else {
                0.0
            };
            let machine_time_s = cfg.svc_cost.machine_s(s.rows, s.n_candidates);
            let compute_cost = if s.on_cloud {
                machine_time_s / 3600.0 * cm.compute_dollars_per_hour
            } else {
                0.0
            };
            Ok(WorkloadRun {
                outcome: TaskOutcome {
                    name: sub.tenant.name.clone(),
                    rows: s.rows,
                    precision: 0.85 + 0.15 * unit64(seed ^ 0xA11CE),
                    recall: 0.75 + 0.25 * unit64(seed ^ 0xB0B5),
                    questions,
                    crowd_cost,
                    compute_cost,
                    label_time_s: questions as f64 * per_q,
                    machine_time_s,
                    n_candidates: s.n_candidates,
                    crowd_no_shows: 0,
                    crowd_degraded_questions: 0,
                },
                questions_blocking: s.questions_blocking,
                questions_matching: s.questions_matching,
                label_engine: if s.crowd { Engine::Crowd } else { Engine::UserInteraction },
            })
        }
    }
}

// ---------------------------------------------------------------------
// Service checkpoint (`emsvc v1`)
// ---------------------------------------------------------------------

/// Serialize completed workload runs as `emsvc v1` text (same checksum
/// trailer convention as `emckpt v1`). All floats are stored as IEEE-754
/// bit patterns so restoration is byte-identical.
fn runs_to_text(runs: &BTreeMap<usize, WorkloadRun>) -> String {
    let mut out = String::from("emsvc v1\n");
    out.push_str(&format!("runs {}\n", runs.len()));
    for (i, r) in runs {
        let o = &r.outcome;
        out.push_str(&format!(
            "run {i} {} {} {} {} {} {} {} {} {:016x} {:016x} {:016x} {:016x} {:016x} {:016x}\n",
            r.questions_blocking,
            r.questions_matching,
            o.questions,
            o.n_candidates,
            o.crowd_no_shows,
            o.crowd_degraded_questions,
            o.rows.0,
            o.rows.1,
            o.precision.to_bits(),
            o.recall.to_bits(),
            o.crowd_cost.to_bits(),
            o.compute_cost.to_bits(),
            o.label_time_s.to_bits(),
            o.machine_time_s.to_bits(),
        ));
    }
    out.push_str("end\n");
    append_checksum(&mut out);
    out
}

fn svc_corrupt(msg: impl std::fmt::Display) -> MagellanError {
    MagellanError::Checkpoint {
        message: format!("corrupt service checkpoint: {msg}"),
        transient: false,
    }
}

/// Parse `emsvc v1` text back into the completed-run map. Names and
/// label engines are reattached from the submissions at resume time, so
/// only the deterministic numbers are stored.
fn runs_from_text(
    text: &str,
    subs: &[TenantSubmission<'_>],
) -> Result<BTreeMap<usize, WorkloadRun>, MagellanError> {
    let magic = text.lines().next().ok_or_else(|| svc_corrupt("empty"))?;
    if magic.trim() != "emsvc v1" {
        return Err(svc_corrupt(format!("bad magic `{magic}`")));
    }
    let payload = verify_checksum(text)?;
    let mut lines = payload.lines();
    lines.next(); // magic
    let n: usize = lines
        .next()
        .and_then(|l| l.strip_prefix("runs "))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| svc_corrupt("missing `runs <n>` line"))?;
    let mut runs = BTreeMap::new();
    for _ in 0..n {
        let line = lines.next().ok_or_else(|| svc_corrupt("truncated run list"))?;
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.len() != 16 || f[0] != "run" {
            return Err(svc_corrupt(format!("bad run line `{line}`")));
        }
        let idx: usize = f[1].parse().map_err(|_| svc_corrupt("bad run index"))?;
        let sub = subs
            .get(idx)
            .ok_or_else(|| svc_corrupt(format!("run index {idx} out of range")))?;
        let ints: Vec<usize> = f[2..10]
            .iter()
            .map(|v| v.parse().map_err(|_| svc_corrupt(format!("bad integer in `{line}`"))))
            .collect::<Result<_, _>>()?;
        let bits: Vec<u64> = f[10..16]
            .iter()
            .map(|v| {
                u64::from_str_radix(v, 16)
                    .map_err(|_| svc_corrupt(format!("bad float bits in `{line}`")))
            })
            .collect::<Result<_, _>>()?;
        let crowd = match &sub.workload {
            Workload::Em(spec) => matches!(spec.labeling, crate::cloud::LabelingMode::Crowd { .. }),
            Workload::Synthetic(s) => s.crowd,
        };
        let name = match &sub.workload {
            Workload::Em(spec) => spec.name.clone(),
            Workload::Synthetic(_) => sub.tenant.name.clone(),
        };
        runs.insert(
            idx,
            WorkloadRun {
                outcome: TaskOutcome {
                    name,
                    rows: (ints[6], ints[7]),
                    precision: f64::from_bits(bits[0]),
                    recall: f64::from_bits(bits[1]),
                    questions: ints[2],
                    crowd_cost: f64::from_bits(bits[2]),
                    compute_cost: f64::from_bits(bits[3]),
                    label_time_s: f64::from_bits(bits[4]),
                    machine_time_s: f64::from_bits(bits[5]),
                    n_candidates: ints[3],
                    crowd_no_shows: ints[4],
                    crowd_degraded_questions: ints[5],
                },
                questions_blocking: ints[0],
                questions_matching: ints[1],
                label_engine: if crowd { Engine::Crowd } else { Engine::UserInteraction },
            },
        );
    }
    match lines.next() {
        Some(l) if l.trim() == "end" => Ok(runs),
        _ => Err(svc_corrupt("missing `end` terminator")),
    }
}

// ---------------------------------------------------------------------
// The simulator
// ---------------------------------------------------------------------

/// One active tenant's scheduling state.
struct Active {
    i: usize,
    chain: Vec<Fragment>,
    next: usize,
    ready_s: f64,
    vtime: f64,
    weight: f64,
    priority: Priority,
    machine: Budget,
    speculate: bool,
    label_overrun: bool,
    shed_all_crowd: bool,
    downgraded: bool,
    /// The next fragment, policy-applied and fault-resolved, plus extra
    /// batch busy-seconds from a speculative backup.
    pending: Option<(Fragment, f64)>,
    hist: Histogram,
    shed: u32,
}

/// The multi-tenant CloudMatcher service.
#[derive(Debug, Clone)]
pub struct MatchService {
    /// Configuration (validated by [`MatchService::new`]).
    pub config: ServiceConfig,
}

impl MatchService {
    /// Validate the configuration. `batch_slots == 0` or
    /// `max_active_tenants == 0` can never schedule anything and are
    /// typed [`MagellanError::Config`] errors, mirroring
    /// [`crate::cloud::try_schedule_fragments`].
    pub fn new(config: ServiceConfig) -> Result<Self, MagellanError> {
        if config.batch_slots == 0 {
            return Err(MagellanError::Config {
                message: "batch_slots must be >= 1 (the batch engine needs at least one worker)"
                    .into(),
            });
        }
        if config.max_active_tenants == 0 {
            return Err(MagellanError::Config {
                message: "max_active_tenants must be >= 1 (the service could never run anything)"
                    .into(),
            });
        }
        Ok(MatchService { config })
    }

    /// Run the service over a set of submissions without checkpointing.
    pub fn run(&self, subs: &[TenantSubmission<'_>]) -> Result<ServiceReport, MagellanError> {
        self.run_inner(subs, None)
    }

    /// Run with durable checkpointing: each completed tenant workload is
    /// appended to an `emsvc v1` checkpoint in `store` (saved under the
    /// retry policy), and a fresh run against a store holding a prior
    /// checkpoint skips re-running those workloads — the resumed report
    /// is bit-identical to an uninterrupted run.
    pub fn run_with_checkpoint(
        &self,
        subs: &[TenantSubmission<'_>],
        store: &mut dyn CheckpointStore,
    ) -> Result<ServiceReport, MagellanError> {
        self.run_inner(subs, Some(store))
    }

    fn run_inner(
        &self,
        subs: &[TenantSubmission<'_>],
        mut store: Option<&mut dyn CheckpointStore>,
    ) -> Result<ServiceReport, MagellanError> {
        let cfg = &self.config;
        for sub in subs {
            if sub.tenant.weight == 0 {
                return Err(MagellanError::Config {
                    message: format!(
                        "tenant `{}` has weight 0 (it would be starved forever)",
                        sub.tenant.name
                    ),
                });
            }
            if !sub.tenant.arrival_s.is_finite() || sub.tenant.arrival_s < 0.0 {
                return Err(MagellanError::Config {
                    message: format!(
                        "tenant `{}` has non-finite or negative arrival time",
                        sub.tenant.name
                    ),
                });
            }
        }
        let _svc_span = magellan_obs::span("service", 0);
        let mut io_clock = SimClock::new();

        // Resume: restore completed workload runs from the store.
        let mut runs: BTreeMap<usize, WorkloadRun> = match store.as_mut() {
            Some(s) => {
                let loaded = run_with_retry(&cfg.retry, &mut io_clock, |_| s.load())?;
                match loaded {
                    Some(text) => runs_from_text(&text, subs)?,
                    None => BTreeMap::new(),
                }
            }
            None => BTreeMap::new(),
        };
        let restored = runs.len();
        if restored > 0 {
            magellan_obs::event(
                "service_resumed",
                &[("restored_runs", EvVal::U(restored as u64))],
            );
        }

        // Arrivals in (time, submission index) order.
        let mut order: Vec<usize> = (0..subs.len()).collect();
        order.sort_by(|&a, &b| {
            subs[a]
                .tenant
                .arrival_s
                .partial_cmp(&subs[b].tenant.arrival_s)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut arr_idx = 0usize;

        let mut reports: Vec<TenantReport> = subs
            .iter()
            .map(|s| TenantReport {
                name: s.tenant.name.clone(),
                admission: Admission::Rejected(RejectReason::QueueFull), // placeholder
                outcome: None,
                arrival_s: s.tenant.arrival_s,
                start_s: 0.0,
                finish_s: 0.0,
                queue_wait_s: 0.0,
                frag_p50_ms: 0,
                frag_p99_ms: 0,
                shed_crowd_fragments: 0,
                speculation_disabled: false,
                priority_downgraded: false,
                machine_spent_s: 0.0,
            })
            .collect();

        let mut tel = ServiceTelemetry::default();
        let mut active: Vec<Active> = Vec::new();
        let mut queue: Vec<usize> = Vec::new();
        let mut crowd_free = vec![0.0f64; cfg.crowd_slots];
        let mut batch_free = vec![0.0f64; cfg.batch_slots];
        let mut busy: BTreeMap<&'static str, (Engine, f64)> = BTreeMap::new();
        let mut crowd_served: u32 = 0;
        let mut makespan = 0.0f64;
        let mut fresh_runs: u32 = 0;

        // Activate tenant `i` at time `t` (post-queue or on arrival).
        // Declared as a macro-free closure-in-parts because it both
        // mutates the simulator state and may kill the process (chaos).
        macro_rules! activate {
            ($i:expr, $t:expr) => {{
                let i: usize = $i;
                let t: f64 = $t;
                let _tenant_span =
                    magellan_obs::span("tenant", name_key(&subs[i].tenant.name));
                // Tenant-level transient failures delay activation under
                // the retry policy (bounded per tenant, so this always
                // converges).
                let mut delay = 0.0f64;
                let mut attempt = 0u32;
                while cfg.faults.tenant_fails(i as u64, attempt) && cfg.retry.allows(attempt + 1)
                {
                    let d = cfg.retry.delay_s(attempt + 1);
                    delay += d;
                    tel.tenant_retries += 1;
                    attempt += 1;
                    magellan_obs::event_at(
                        sim_ns(t + delay),
                        "tenant_activation_retry",
                        &[("tenant", EvVal::U(i as u64)), ("attempt", EvVal::U(u64::from(attempt)))],
                    );
                }
                let t_act = t + delay;
                let run = match runs.get(&i) {
                    Some(r) => r.clone(),
                    None => {
                        let r = run_workload(&subs[i], cfg)?;
                        runs.insert(i, r.clone());
                        fresh_runs += 1;
                        if let Some(s) = store.as_mut() {
                            let text = runs_to_text(&runs);
                            run_with_retry(&cfg.retry, &mut io_clock, |_| s.save(&text))?;
                        }
                        if cfg.kill_after_tenants == Some(fresh_runs) {
                            magellan_obs::event(
                                "service_killed",
                                &[("after_runs", EvVal::U(u64::from(fresh_runs)))],
                            );
                            return Err(MagellanError::Killed { after_phase: "service" });
                        }
                        r
                    }
                };
                let per_q = if run.label_engine == Engine::Crowd {
                    cfg.cost_model.crowd_latency_s
                } else {
                    cfg.cost_model.user_latency_s
                };
                let machine_s = run.outcome.machine_time_s;
                let chain = vec![
                    Fragment {
                        engine: run.label_engine,
                        duration_s: run.questions_blocking as f64 * per_q,
                    },
                    Fragment { engine: Engine::Batch, duration_s: machine_s * 0.5 },
                    Fragment {
                        engine: run.label_engine,
                        duration_s: run.questions_matching as f64 * per_q,
                    },
                    Fragment { engine: Engine::Batch, duration_s: machine_s * 0.5 },
                ];
                let quota = subs[i].tenant.quota;
                let label_overrun = run.outcome.crowd_cost > quota.label_dollars;
                reports[i].start_s = t_act;
                reports[i].queue_wait_s = t_act - subs[i].tenant.arrival_s;
                reports[i].outcome = Some(run.outcome.clone());
                active.push(Active {
                    i,
                    chain,
                    next: 0,
                    ready_s: t_act,
                    vtime: 0.0,
                    weight: f64::from(subs[i].tenant.weight),
                    priority: subs[i].tenant.priority,
                    machine: Budget::seconds(quota.machine_time_s),
                    speculate: true,
                    label_overrun,
                    shed_all_crowd: false,
                    downgraded: false,
                    pending: None,
                    hist: Histogram::default(),
                    shed: 0,
                });
                magellan_obs::event_at(
                    sim_ns(t_act),
                    "tenant_activated",
                    &[("tenant", EvVal::U(i as u64))],
                );
            }};
        }

        loop {
            // Resolve pending fragments (policy + faults) in submission
            // order for determinism.
            {
                // Backlogs: ready fragments targeting each engine.
                let crowd_backlog = active
                    .iter()
                    .filter(|a| {
                        a.next < a.chain.len() && a.chain[a.next].engine == Engine::Crowd
                            && !a.shed_all_crowd
                    })
                    .count();
                let batch_backlog = active
                    .iter()
                    .filter(|a| a.next < a.chain.len() && a.chain[a.next].engine == Engine::Batch)
                    .count();
                let mut idxs: Vec<usize> = (0..active.len()).collect();
                idxs.sort_by_key(|&p| active[p].i);
                for p in idxs {
                    let a = &mut active[p];
                    if a.pending.is_some() || a.next >= a.chain.len() {
                        continue;
                    }
                    let mut frag = a.chain[a.next];
                    // Policy pass, rules in declared order.
                    for rule in &cfg.policy.rules {
                        let fires = match rule.trigger {
                            DegradeTrigger::CrowdBacklogAtLeast(k) => crowd_backlog >= k,
                            DegradeTrigger::BatchBacklogAtLeast(k) => batch_backlog >= k,
                            DegradeTrigger::LabelBudgetOverrun => a.label_overrun,
                            DegradeTrigger::MachineBudgetBelow(f) => {
                                a.machine.total_s.is_finite()
                                    && a.machine.total_s > 0.0
                                    && a.machine.remaining_s() / a.machine.total_s < f
                            }
                        };
                        if !fires {
                            continue;
                        }
                        match rule.action {
                            DegradeAction::ShedCrowdToUser => a.shed_all_crowd = true,
                            DegradeAction::DisableSpeculation => {
                                if a.speculate {
                                    a.speculate = false;
                                    tel.speculation_disabled += 1;
                                    reports[a.i].speculation_disabled = true;
                                    magellan_obs::event_at(
                                        sim_ns(a.ready_s),
                                        "service_degrade",
                                        &[
                                            ("tenant", EvVal::U(a.i as u64)),
                                            ("action", EvVal::S("disable_speculation")),
                                        ],
                                    );
                                }
                            }
                            DegradeAction::DowngradePriority => {
                                if !a.downgraded {
                                    a.downgraded = true;
                                    a.priority = Priority::Low;
                                    tel.priority_downgrades += 1;
                                    reports[a.i].priority_downgraded = true;
                                    magellan_obs::event_at(
                                        sim_ns(a.ready_s),
                                        "service_degrade",
                                        &[
                                            ("tenant", EvVal::U(a.i as u64)),
                                            ("action", EvVal::S("downgrade_priority")),
                                        ],
                                    );
                                }
                            }
                        }
                    }
                    // Shed crowd fragments: policy, label overrun, or no
                    // crowd engine at all.
                    if frag.engine == Engine::Crowd && (a.shed_all_crowd || cfg.crowd_slots == 0)
                    {
                        frag.engine = Engine::UserInteraction;
                        frag.duration_s *= cfg.degrade_factor;
                        a.shed += 1;
                        tel.crowd_shed += 1;
                        reports[a.i].shed_crowd_fragments += 1;
                        magellan_obs::event_at(
                            sim_ns(a.ready_s),
                            "service_degrade",
                            &[
                                ("tenant", EvVal::U(a.i as u64)),
                                ("fragment", EvVal::U(a.next as u64)),
                                ("action", EvVal::S("shed_crowd_to_user")),
                            ],
                        );
                    }
                    // Fault resolution (failures, stragglers, timeouts,
                    // speculation) — pure in (tenant, fragment, plan).
                    let opts = ScheduleRecoveryOptions {
                        faults: cfg.faults,
                        retry: cfg.retry,
                        fragment_timeout_s: cfg.fragment_timeout_s,
                        degrade_factor: cfg.degrade_factor,
                        speculate_threshold: if a.speculate {
                            cfg.speculate_threshold
                        } else {
                            f64::INFINITY
                        },
                    };
                    let (resolved, extra) =
                        resolve_fragment(a.i as u64, a.next as u64, frag, &opts, &mut tel.schedule);
                    if frag.engine == Engine::Crowd && resolved.engine != Engine::Crowd {
                        // resolve_fragment's own no-show rerouting.
                        reports[a.i].shed_crowd_fragments += 1;
                    }
                    a.pending = Some((resolved, extra));
                }
            }

            // Next completion: an active tenant with an exhausted chain.
            let completion = active
                .iter()
                .enumerate()
                .filter(|(_, a)| a.next >= a.chain.len())
                .min_by(|(_, x), (_, y)| {
                    x.ready_s
                        .partial_cmp(&y.ready_s)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(x.i.cmp(&y.i))
                })
                .map(|(p, a)| (a.ready_s, p));

            // Next arrival.
            let arrival = order.get(arr_idx).map(|&i| (subs[i].tenant.arrival_s, i));

            // Best placement: earliest start; ties by priority desc,
            // vtime asc, submission index.
            let mut placement: Option<(f64, usize)> = None; // (start, active pos)
            for (p, a) in active.iter().enumerate() {
                let Some((frag, _)) = a.pending else { continue };
                let engine_free = match frag.engine {
                    Engine::UserInteraction => a.ready_s,
                    Engine::Crowd => crowd_free.iter().fold(f64::INFINITY, |m, &t| m.min(t)),
                    Engine::Batch => batch_free.iter().fold(f64::INFINITY, |m, &t| m.min(t)),
                };
                let start = a.ready_s.max(engine_free);
                let better = match placement {
                    None => true,
                    Some((bs, bp)) => {
                        let b = &active[bp];
                        match start.partial_cmp(&bs).unwrap_or(std::cmp::Ordering::Equal) {
                            std::cmp::Ordering::Less => true,
                            std::cmp::Ordering::Greater => false,
                            // Same start: higher priority wins, then
                            // lower virtual time (fair share), then
                            // submission order.
                            std::cmp::Ordering::Equal => {
                                (std::cmp::Reverse(a.priority.rank()), a.vtime, a.i)
                                    < (std::cmp::Reverse(b.priority.rank()), b.vtime, b.i)
                            }
                        }
                    }
                };
                if better {
                    placement = Some((start, p));
                }
            }

            // Pick the earliest event; completions free capacity before
            // arrivals are admitted, and both precede placements at the
            // same instant.
            enum Ev {
                Complete(usize),
                Arrive(usize),
                Place(usize),
            }
            let tc = completion.map(|(t, _)| t).unwrap_or(f64::INFINITY);
            let ta = arrival.map(|(t, _)| t).unwrap_or(f64::INFINITY);
            let tp = placement.map(|(t, _)| t).unwrap_or(f64::INFINITY);
            let ev = if completion.is_some() && tc <= ta && tc <= tp {
                Ev::Complete(completion.unwrap().1)
            } else if arrival.is_some() && ta <= tp {
                Ev::Arrive(arrival.unwrap().1)
            } else if let Some((_, p)) = placement {
                Ev::Place(p)
            } else {
                break;
            };

            match ev {
                Ev::Complete(pos) => {
                    let a = active.swap_remove(pos);
                    let rep = &mut reports[a.i];
                    rep.finish_s = a.ready_s;
                    rep.frag_p50_ms = a.hist.quantile(0.50);
                    rep.frag_p99_ms = a.hist.quantile(0.99);
                    rep.machine_spent_s = a.machine.spent_s;
                    tel.completed += 1;
                    makespan = makespan.max(a.ready_s);
                    magellan_obs::event_at(
                        sim_ns(a.ready_s),
                        "tenant_completed",
                        &[("tenant", EvVal::U(a.i as u64))],
                    );
                    // A slot freed: activate the best queued tenant
                    // (priority desc, then arrival order).
                    if active.len() < cfg.max_active_tenants && !queue.is_empty() {
                        let qpos = (0..queue.len())
                            .min_by_key(|&q| {
                                (std::cmp::Reverse(subs[queue[q]].tenant.priority.rank()), q)
                            })
                            .unwrap_or(0);
                        let i = queue.remove(qpos);
                        activate!(i, a.ready_s);
                    }
                }
                Ev::Arrive(i) => {
                    arr_idx += 1;
                    tel.arrived += 1;
                    let t = subs[i].tenant.arrival_s;
                    makespan = makespan.max(t);
                    magellan_obs::event_at(
                        sim_ns(t),
                        "tenant_arrived",
                        &[("tenant", EvVal::U(i as u64))],
                    );
                    let est = estimate_workload(&subs[i], cfg);
                    match admit(&est, &subs[i].tenant.quota, active.len(), queue.len(), cfg) {
                        Ok(true) => {
                            reports[i].admission = Admission::Admitted;
                            tel.admitted += 1;
                            activate!(i, t);
                        }
                        Ok(false) => {
                            reports[i].admission = Admission::AdmittedAfterQueue;
                            tel.queued += 1;
                            queue.push(i);
                            magellan_obs::event_at(
                                sim_ns(t),
                                "tenant_queued",
                                &[("tenant", EvVal::U(i as u64))],
                            );
                        }
                        Err(reason) => {
                            let why: &'static str = match reason {
                                RejectReason::QueueFull => "queue_full",
                                RejectReason::Quota { currency } => currency,
                            };
                            magellan_obs::event_at(
                                sim_ns(t),
                                "tenant_rejected",
                                &[
                                    ("tenant", EvVal::U(i as u64)),
                                    ("reason", EvVal::S(why)),
                                ],
                            );
                            reports[i].admission = Admission::Rejected(reason);
                            tel.rejected += 1;
                        }
                    }
                }
                Ev::Place(pos) => {
                    let a = &mut active[pos];
                    let (frag, extra) = a.pending.take().unwrap_or((
                        Fragment { engine: Engine::UserInteraction, duration_s: 0.0 },
                        0.0,
                    ));
                    let start = match frag.engine {
                        Engine::UserInteraction => a.ready_s,
                        Engine::Crowd => {
                            let mut slot = 0usize;
                            for (s, &t) in crowd_free.iter().enumerate() {
                                if t < crowd_free[slot] {
                                    slot = s;
                                }
                            }
                            let start = a.ready_s.max(crowd_free.get(slot).copied().unwrap_or(0.0));
                            if let Some(t) = crowd_free.get_mut(slot) {
                                *t = start + frag.duration_s;
                            }
                            crowd_served += 1;
                            start
                        }
                        Engine::Batch => {
                            let mut slot = 0usize;
                            for (s, &t) in batch_free.iter().enumerate() {
                                if t < batch_free[slot] {
                                    slot = s;
                                }
                            }
                            let start = a.ready_s.max(batch_free[slot]);
                            batch_free[slot] = start + frag.duration_s;
                            start
                        }
                    };
                    let finish = start + frag.duration_s;
                    let latency_ms = ((finish - a.ready_s) * 1000.0).round().max(0.0) as u64;
                    a.hist.record(latency_ms);
                    magellan_obs::hist_record("magellan_service_fragment_latency_ms", latency_ms);
                    magellan_obs::hist_record(
                        &format!(
                            "magellan_service_fragment_latency_ms{{tenant=\"{}\"}}",
                            subs[a.i].tenant.name
                        ),
                        latency_ms,
                    );
                    magellan_obs::record_span_at(
                        None,
                        engine_span_name(frag.engine),
                        (a.i as u64) << 32 | a.next as u64,
                        sim_ns(start),
                        sim_ns(finish),
                    );
                    let e = busy.entry(engine_span_name(frag.engine)).or_insert((frag.engine, 0.0));
                    e.1 += frag.duration_s;
                    if extra > 0.0 {
                        let e = busy
                            .entry(engine_span_name(Engine::Batch))
                            .or_insert((Engine::Batch, 0.0));
                        e.1 += extra;
                    }
                    if frag.engine == Engine::Batch {
                        a.machine.charge_s(frag.duration_s + extra);
                    }
                    a.vtime += frag.duration_s / a.weight;
                    a.next += 1;
                    a.ready_s = finish;
                    makespan = makespan.max(finish);
                }
            }
        }

        debug_assert!(queue.is_empty(), "every queued tenant eventually activates");

        // Publish per-tenant SLO gauges and service-wide counters.
        for (i, rep) in reports.iter().enumerate() {
            if !rep.admission.accepted() {
                continue;
            }
            let tenant = &subs[i].tenant.name;
            magellan_obs::gauge_set(
                &format!("magellan_service_fragment_latency_p50_ms{{tenant=\"{tenant}\"}}"),
                rep.frag_p50_ms as f64,
            );
            magellan_obs::gauge_set(
                &format!("magellan_service_fragment_latency_p99_ms{{tenant=\"{tenant}\"}}"),
                rep.frag_p99_ms as f64,
            );
            let slo_ok = rep.slo_ok(cfg.slo_p99_ms);
            magellan_obs::gauge_set(
                &format!("magellan_service_slo_ok{{tenant=\"{tenant}\"}}"),
                if slo_ok { 1.0 } else { 0.0 },
            );
            if !slo_ok {
                // An SLO violation is a flight-recorder trigger: the dump
                // (written below, at end of scheduling, so its content is
                // a pure function of the final canonical snapshot) shows
                // which tenants blew their p99 and by how much.
                magellan_obs::flight_on_failure(
                    "slo_violation",
                    &[
                        ("tenant_idx", magellan_obs::EvVal::U(i as u64)),
                        ("p99_ms", magellan_obs::EvVal::U(rep.frag_p99_ms)),
                        ("slo_p99_ms", magellan_obs::EvVal::U(cfg.slo_p99_ms)),
                    ],
                );
            }
        }
        magellan_obs::gauge_set("magellan_service_makespan_seconds", makespan);
        tel.publish();
        if let Some(path) = magellan_obs::flight_autodump() {
            magellan_obs::log!(info, "flight-recorder dump written to {path}");
        }

        // `busy` is keyed by the static engine span name, so iteration
        // (and therefore the report) is already deterministic.
        let busy: Vec<(Engine, f64)> = busy.into_values().collect();
        Ok(ServiceReport {
            tenants: reports,
            makespan_s: makespan,
            busy,
            crowd_served,
            telemetry: tel,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_core::checkpoint::MemStore;

    fn synth(i: usize, arrival_s: f64, crowd: bool, quota: TenantQuota) -> TenantSubmission<'static> {
        TenantSubmission {
            tenant: TenantSpec {
                name: format!("t{i}"),
                arrival_s,
                priority: Priority::Normal,
                weight: 1,
                quota,
                task_seed: 1000 + i as u64,
            },
            workload: Workload::Synthetic(SyntheticTask {
                rows: (200, 200),
                questions_blocking: 40,
                questions_matching: 60,
                n_candidates: 5_000,
                crowd,
                on_cloud: true,
            }),
        }
    }

    #[test]
    fn impossible_configurations_are_typed_errors() {
        let err = MatchService::new(ServiceConfig { batch_slots: 0, ..Default::default() })
            .err()
            .expect("zero batch slots must not construct");
        assert!(matches!(err, MagellanError::Config { .. }) && err.fatal());
        let err = MatchService::new(ServiceConfig { max_active_tenants: 0, ..Default::default() })
            .err()
            .expect("zero active tenants must not construct");
        assert!(matches!(err, MagellanError::Config { .. }));
        // Zero-weight tenants are rejected before any simulation.
        let svc = MatchService::new(ServiceConfig::default()).unwrap();
        let mut sub = synth(0, 0.0, false, TenantQuota::unlimited());
        sub.tenant.weight = 0;
        assert!(matches!(svc.run(&[sub]), Err(MagellanError::Config { .. })));
    }

    #[test]
    fn admission_rejects_over_quota_and_overload_deterministically() {
        // Crowd estimate: 100 questions × 5 votes × $0.02 = $10.
        let tight = TenantQuota { label_dollars: 5.0, ..TenantQuota::unlimited() };
        let cfg = ServiceConfig {
            max_active_tenants: 2,
            max_queue: 3,
            ..Default::default()
        };
        let svc = MatchService::new(cfg).unwrap();
        let mut subs: Vec<_> =
            (0..10).map(|i| synth(i, 0.0, false, TenantQuota::unlimited())).collect();
        subs[1] = synth(1, 0.0, true, tight);
        let report = svc.run(&subs).unwrap();
        let rej = report.rejection_set();
        // Tenant 1 is over quota; 0,2 activate; 3,4,5 queue; 6–9 shed.
        assert_eq!(
            rej,
            vec![
                (1, "quota_exceeded:label_dollars".to_string()),
                (6, "queue_full".to_string()),
                (7, "queue_full".to_string()),
                (8, "queue_full".to_string()),
                (9, "queue_full".to_string()),
            ]
        );
        assert_eq!(report.telemetry.admitted, 2);
        assert_eq!(report.telemetry.queued, 3);
        assert_eq!(report.telemetry.rejected, 5);
        assert_eq!(report.telemetry.completed, 5);
        assert!(matches!(report.tenants[4].admission, Admission::AdmittedAfterQueue));
        assert!(report.tenants[4].queue_wait_s > 0.0);
        // The same submissions replay to the same decisions and makespan.
        let again = svc.run(&subs).unwrap();
        assert_eq!(again.rejection_set(), rej);
        assert_eq!(again.makespan_s.to_bits(), report.makespan_s.to_bits());
    }

    #[test]
    fn accepted_outcomes_are_bit_identical_to_solo_runs() {
        let cfg = ServiceConfig {
            max_active_tenants: 2,
            batch_slots: 2,
            max_queue: 8,
            ..Default::default()
        };
        let svc = MatchService::new(cfg).unwrap();
        let subs: Vec<_> = (0..6)
            .map(|i| synth(i, i as f64 * 2.0, i % 2 == 0, TenantQuota::unlimited()))
            .collect();
        let report = svc.run(&subs).unwrap();
        for (i, t) in report.accepted() {
            // Same tenant, alone, different arrival time and zero
            // contention: the outcome row must match bit for bit.
            let solo_sub = synth(i, 0.0, i % 2 == 0, TenantQuota::unlimited());
            let solo = svc.run(&[solo_sub]).unwrap();
            assert_eq!(
                t.outcome.as_ref().unwrap(),
                solo.tenants[0].outcome.as_ref().unwrap(),
                "tenant {i} outcome must not depend on co-tenants"
            );
        }
    }

    #[test]
    fn fair_share_prefers_high_priority_then_low_virtual_time() {
        let cfg = ServiceConfig {
            max_active_tenants: 4,
            batch_slots: 1,
            policy: DegradationPolicy::none(),
            ..Default::default()
        };
        let svc = MatchService::new(cfg).unwrap();
        let mut hi = synth(0, 0.0, false, TenantQuota::unlimited());
        hi.tenant.priority = Priority::High;
        let mut lo = synth(1, 0.0, false, TenantQuota::unlimited());
        lo.tenant.priority = Priority::Low;
        let report = svc.run(&[hi, lo]).unwrap();
        assert!(
            report.tenants[0].finish_s < report.tenants[1].finish_s,
            "identical workloads contending for one batch slot: high priority finishes first"
        );
        // Weight asymmetry: the heavier tenant accumulates virtual time
        // slower, so it wins equal-priority ties for the shared slot.
        let mut heavy = synth(2, 0.0, false, TenantQuota::unlimited());
        heavy.tenant.weight = 4;
        let light = synth(3, 0.0, false, TenantQuota::unlimited());
        let report = svc.run(&[light, heavy]).unwrap();
        assert!(report.tenants[1].finish_s <= report.tenants[0].finish_s);
    }

    #[test]
    fn degradation_policy_sheds_crowd_and_disables_speculation() {
        let cfg = ServiceConfig {
            max_active_tenants: 4,
            crowd_slots: 1,
            policy: DegradationPolicy {
                rules: vec![
                    DegradationRule {
                        trigger: DegradeTrigger::CrowdBacklogAtLeast(2),
                        action: DegradeAction::ShedCrowdToUser,
                    },
                    DegradationRule {
                        trigger: DegradeTrigger::BatchBacklogAtLeast(1),
                        action: DegradeAction::DisableSpeculation,
                    },
                ],
            },
            ..Default::default()
        };
        let svc = MatchService::new(cfg).unwrap();
        let subs: Vec<_> = (0..4).map(|i| synth(i, 0.0, true, TenantQuota::unlimited())).collect();
        let report = svc.run(&subs).unwrap();
        assert!(report.telemetry.crowd_shed > 0, "crowd backlog must trigger shedding");
        assert!(report.telemetry.speculation_disabled > 0);
        assert!(report.shed_rate() > 0.0 && report.shed_rate() <= 1.0);
        assert!(report.tenants.iter().any(|t| t.shed_crowd_fragments > 0));
        // Shedding reroutes schedule fragments, never touches outcomes.
        for (i, t) in report.accepted() {
            let solo = svc.run(&[synth(i, 0.0, true, TenantQuota::unlimited())]).unwrap();
            assert_eq!(t.outcome.as_ref().unwrap(), solo.tenants[0].outcome.as_ref().unwrap());
        }
        // No crowd engine at all: every crowd fragment is shed.
        let no_crowd = MatchService::new(ServiceConfig {
            crowd_slots: 0,
            policy: DegradationPolicy::none(),
            ..Default::default()
        })
        .unwrap();
        let report = no_crowd.run(&[synth(0, 0.0, true, TenantQuota::unlimited())]).unwrap();
        assert_eq!(report.crowd_served, 0);
        assert!(report.telemetry.crowd_shed > 0);
    }

    #[test]
    fn kill_and_resume_is_bit_identical_to_an_uninterrupted_run() {
        let subs = |n: usize| -> Vec<TenantSubmission<'static>> {
            (0..n).map(|i| synth(i, i as f64, i % 2 == 1, TenantQuota::unlimited())).collect()
        };
        let base = ServiceConfig { max_active_tenants: 2, max_queue: 8, ..Default::default() };
        let golden = MatchService::new(base.clone())
            .unwrap()
            .run(&subs(5))
            .unwrap();

        let mut store = MemStore::default();
        let killer = MatchService::new(ServiceConfig {
            kill_after_tenants: Some(2),
            ..base.clone()
        })
        .unwrap();
        let err = killer.run_with_checkpoint(&subs(5), &mut store).unwrap_err();
        assert!(matches!(err, MagellanError::Killed { after_phase: "service" }));

        let resumed = MatchService::new(base)
            .unwrap()
            .run_with_checkpoint(&subs(5), &mut store)
            .unwrap();
        assert_eq!(resumed.makespan_s.to_bits(), golden.makespan_s.to_bits());
        assert_eq!(resumed.rejection_set(), golden.rejection_set());
        for (g, r) in golden.tenants.iter().zip(&resumed.tenants) {
            assert_eq!(g.outcome, r.outcome);
            assert_eq!(g.finish_s.to_bits(), r.finish_s.to_bits());
            assert_eq!(g.frag_p99_ms, r.frag_p99_ms);
        }
    }

    #[test]
    fn corrupt_service_checkpoints_are_fatal_not_half_parsed() {
        let subs = vec![synth(0, 0.0, false, TenantQuota::unlimited())];
        let svc = MatchService::new(ServiceConfig::default()).unwrap();

        // No checksum trailer at all.
        let mut store = MemStore::default();
        store.save("emsvc v1\nruns 0\nend\n").unwrap();
        let err = svc.run_with_checkpoint(&subs, &mut store).unwrap_err();
        assert!(err.fatal() && err.to_string().contains("checksum"));

        // A digit flipped under a stale checksum.
        let mut runs = BTreeMap::new();
        runs.insert(0usize, run_workload(&subs[0], &svc.config).unwrap());
        let good = runs_to_text(&runs);
        assert!(runs_from_text(&good, &subs).is_ok());
        let tampered = good.replacen("run 0", "run 9", 1);
        let mut store = MemStore::default();
        store.save(&tampered).unwrap();
        let err = svc.run_with_checkpoint(&subs, &mut store).unwrap_err();
        assert!(err.fatal() && err.to_string().contains("checksum mismatch"));

        // Bad magic is diagnosed as such, before the checksum.
        let mut store = MemStore::default();
        store.save("emckpt v1\n").unwrap();
        let err = svc.run_with_checkpoint(&subs, &mut store).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn service_checkpoints_roundtrip_float_bits_exactly() {
        let subs: Vec<_> = (0..3).map(|i| synth(i, 0.0, i == 1, TenantQuota::unlimited())).collect();
        let cfg = ServiceConfig::default();
        let mut runs = BTreeMap::new();
        for (i, sub) in subs.iter().enumerate() {
            runs.insert(i, run_workload(sub, &cfg).unwrap());
        }
        let text = runs_to_text(&runs);
        let back = runs_from_text(&text, &subs).unwrap();
        assert_eq!(back.len(), 3);
        for (i, r) in &runs {
            let b = &back[i];
            assert_eq!(b.outcome, r.outcome);
            assert_eq!(b.questions_blocking, r.questions_blocking);
            assert_eq!(b.questions_matching, r.questions_matching);
            assert_eq!(b.label_engine, r.label_engine);
        }
    }

    #[test]
    fn estimates_and_policy_table_are_stable() {
        let sub = synth(0, 0.0, true, TenantQuota::unlimited());
        let cfg = ServiceConfig::default();
        let est = estimate_workload(&sub, &cfg);
        assert_eq!(est.label_dollars, 100.0 * 5.0 * 0.02);
        // machine: 0.01 × 400 rows + 0.0005 × 5000 candidates = 6.5 s
        assert_eq!(est.machine_time_s, 6.5);
        assert!(est.compute_dollars > 0.0);
        let table = DegradationPolicy::default().table();
        assert!(table.contains("shed_crowd_to_user"));
        assert!(table.contains("disable_speculation"));
        assert!(table.contains("downgrade_priority"));
    }
}
