//! # magellan-datagen
//!
//! Synthetic EM dataset generators with gold standards.
//!
//! The paper evaluates PyMatcher and CloudMatcher on proprietary industrial
//! and domain-science datasets (Walmart products, AmFam vehicles and
//! addresses, Brazilian cattle ranches, ...). Those datasets are not
//! available, so this crate builds the closest synthetic equivalents: for
//! each deployment row of Tables 1 and 2 there is a generator producing two
//! tables of the same scale and, crucially, the same *dirt profile* —
//! typos, abbreviations, token reorderings, missing values, format drift —
//! because dirt, size, and match density are what drive the accuracy shapes
//! those tables report.
//!
//! Every scenario carries its gold match set, which powers the
//! oracle/noisy labelers and the final precision/recall scoring.
//!
//! Notable pathological profiles reproduced:
//!
//! * **vehicles** — heavy missingness, enough that even the oracle's
//!   underlying signal is weak (the AmFam story of §5.2);
//! * **vendors** — a slice of records (the "Brazilian vendors") carry a
//!   *generic placeholder address*, making those pairs undecidable; the
//!   `vendors_no_brazil` variant drops them and accuracy recovers
//!   (Table 2's "Vendors (no Brazil)" rerun).

#![warn(missing_docs)]

pub mod dirt;
pub mod domains;
pub mod scenario;
pub mod words;

pub use dirt::DirtModel;
pub use scenario::{EmScenario, ScenarioConfig};
