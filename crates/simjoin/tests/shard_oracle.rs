//! Property oracle for the out-of-core tier: over *any* random pair of
//! string collections — nulls, empties, and heavy token skew included —
//! the hash-sharded join must be **bit-identical** (same `(l, r)` pair
//! sequence, exact same f64 similarity bits) to the monolithic join, for
//! every tested shard count K, worker count, measure, and probe side.
//!
//! This is the determinism contract that lets the executor swap the
//! sharded engine in under a memory budget without re-blessing any golden
//! output: the shard count is a pure memory-profile knob.

use magellan_par::ParConfig;
use magellan_simjoin::collection::TokenizedCollection;
use magellan_simjoin::{
    join_tokenized_par_side, join_tokenized_sharded, ProbeSide, SetSimMeasure,
};
use magellan_textsim::tokenize::WhitespaceTokenizer;
use proptest::prelude::*;

/// Small alphabet ⇒ dense overlap; optional ⇒ null records; empty string
/// ⇒ empty token sets. All three stress shard routing edge cases.
fn soup(max_len: usize) -> impl Strategy<Value = Vec<Option<String>>> {
    proptest::collection::vec(
        proptest::option::weighted(0.85, "[abc]{0,2}( [abc]{1,2}){0,4}"),
        0..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Grid: K ∈ {1, 4, 16} × workers ∈ {1, 8}, three measures, both
    /// forced probe sides plus Auto.
    #[test]
    fn sharded_join_is_bit_identical_to_monolithic(
        left in soup(24),
        right in soup(24),
        seed in any::<u8>(),
    ) {
        let tok = WhitespaceTokenizer::new();
        let coll = TokenizedCollection::build(&left, &right, &tok);
        // Rotate measure/side by the random seed so the full cross product
        // is covered across cases without a 3×3 inner loop per case.
        let measure = match seed % 3 {
            0 => SetSimMeasure::Jaccard(0.3),
            1 => SetSimMeasure::Cosine(0.4),
            _ => SetSimMeasure::OverlapSize(1),
        };
        let side = match (seed / 3) % 3 {
            0 => ProbeSide::Auto,
            1 => ProbeSide::Left,
            _ => ProbeSide::Right,
        };
        let (expect, _) =
            join_tokenized_par_side(&coll, measure, side, &ParConfig::serial());
        for k in [1usize, 4, 16] {
            for workers in [1usize, 8] {
                let cfg = if workers == 1 {
                    ParConfig::serial()
                } else {
                    ParConfig::workers(workers)
                };
                let (got, _, stats) =
                    join_tokenized_sharded(&coll, measure, side, k, &cfg);
                // Bit-identity: JoinPair derives PartialEq over (l, r, sim)
                // where sim is the raw f64 — equality here is bit-level for
                // the non-NaN sims a join can produce.
                prop_assert_eq!(
                    &got, &expect,
                    "K={} workers={} measure={:?} side={:?}", k, workers, measure, side
                );
                prop_assert_eq!(stats.n_shards, k);
                let total: usize = stats.shard_records.iter().sum();
                prop_assert!(
                    total == coll.left.len() || total == coll.right.len(),
                    "every indexed record lands in exactly one shard"
                );
            }
        }
    }
}
