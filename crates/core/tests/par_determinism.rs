//! The determinism contract of the `magellan-par` executor, enforced end
//! to end: **parallel output is bit-identical to serial for any worker
//! count and any chunk size** — same matches, same order, same feature
//! matrix — including empty tables, 1-row tables, odd sizes, and chunk
//! sizes that do not divide the input.

use magellan_block::{
    AttrEquivalenceBlocker, BlackBoxBlocker, Blocker, HashBlocker, OverlapBlocker,
    SimJoinBlocker, SortedNeighborhoodBlocker,
};
use magellan_core::exec::{parallel_map, ProductionExecutor};
use magellan_core::par::ParConfig;
use magellan_core::rules::RuleLayer;
use magellan_core::EmWorkflow;
use magellan_datagen::domains::persons;
use magellan_datagen::{DirtModel, ScenarioConfig};
use magellan_features::{
    extract_feature_matrix, extract_feature_matrix_par, Feature, FeatureKind, TokSpecF,
};
use magellan_ml::model::ConstantClassifier;
use magellan_ml::{predict_proba_batch, Classifier, Dataset, RandomForestLearner};
use magellan_simjoin::{set_sim_join, SetSimMeasure};
use magellan_table::{Dtype, Table, Value};
use proptest::prelude::*;

/// The worker counts every property is checked against.
const WORKERS: [usize; 5] = [1, 2, 3, 7, 16];
/// Chunk sizes chosen to not divide most input lengths.
const CHUNKS: [Option<usize>; 4] = [None, Some(1), Some(3), Some(7)];

fn configs() -> Vec<ParConfig> {
    let mut out = Vec::new();
    for w in WORKERS {
        for c in CHUNKS {
            let mut cfg = ParConfig::workers(w);
            cfg.chunk_size = c;
            out.push(cfg);
        }
    }
    out
}

/// Build a table with `id`, `name`, `state` columns from optional strings.
fn table(name: &str, rows: &[(Option<String>, Option<String>)]) -> Table {
    let data: Vec<Vec<Value>> = rows
        .iter()
        .enumerate()
        .map(|(i, (n, s))| {
            vec![
                Value::Str(format!("{name}{i}")),
                n.clone().map_or(Value::Null, Value::Str),
                s.clone().map_or(Value::Null, Value::Str),
            ]
        })
        .collect();
    Table::from_rows(
        name,
        &[("id", Dtype::Str), ("name", Dtype::Str), ("state", Dtype::Str)],
        data,
    )
    .unwrap()
}

fn row_strategy() -> impl Strategy<Value = (Option<String>, Option<String>)> {
    (
        proptest::option::weighted(0.9, "([a-z]{1,6} ){0,2}[a-z]{1,6}"),
        proptest::option::weighted(0.9, "[a-c]{2}"),
    )
}

/// Tables of 0..12 rows — covers empty, 1-row, and odd sizes.
fn tables_strategy(
) -> impl Strategy<Value = (Vec<(Option<String>, Option<String>)>, Vec<(Option<String>, Option<String>)>)>
{
    (
        proptest::collection::vec(row_strategy(), 0..12),
        proptest::collection::vec(row_strategy(), 0..12),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every built-in blocker: `block_par` returns the same candidate set
    /// as `block` for every worker count × chunk size.
    #[test]
    fn blockers_par_equal_serial((ra, rb) in tables_strategy()) {
        let a = table("a", &ra);
        let b = table("b", &rb);
        let blockers: Vec<Box<dyn Blocker>> = vec![
            Box::new(AttrEquivalenceBlocker::on("state")),
            Box::new(HashBlocker {
                l_attr: "state".into(),
                r_attr: "state".into(),
                n_buckets: 4,
            }),
            Box::new(OverlapBlocker::words("name", 1)),
            Box::new(OverlapBlocker {
                l_attr: "name".into(),
                r_attr: "name".into(),
                overlap_size: 2,
                qgram: Some(3),
                shards: 1,
            }),
            Box::new(SimJoinBlocker {
                l_attr: "name".into(),
                r_attr: "name".into(),
                measure: SetSimMeasure::Jaccard(0.4),
                qgram: None,
                shards: 1,
            }),
            // Sharded variants must emit the same candidate set as the
            // monolithic ones above (covered pairwise in block's own tests;
            // here they ride the serial-vs-parallel determinism check).
            Box::new(OverlapBlocker::words("name", 1).with_shards(4)),
            Box::new(SimJoinBlocker {
                l_attr: "name".into(),
                r_attr: "name".into(),
                measure: SetSimMeasure::Jaccard(0.4),
                qgram: None,
                shards: 1,
            }
            .with_shards(3)),
            Box::new(SortedNeighborhoodBlocker {
                l_attr: "name".into(),
                r_attr: "name".into(),
                window: 3,
            }),
            Box::new(BlackBoxBlocker::new("parity", |a, ra, b, rb| {
                let _ = (a, b);
                (ra + rb) % 2 == 0
            })),
        ];
        for blocker in &blockers {
            let serial = blocker.block(&a, &b).unwrap();
            for cfg in configs() {
                let (par, stats) = blocker.block_par(&a, &b, &cfg).unwrap();
                prop_assert_eq!(
                    par.pairs(),
                    serial.pairs(),
                    "{} diverged at {:?}",
                    blocker.name(),
                    cfg
                );
                prop_assert!(stats.chunks_stolen <= stats.chunks_total);
            }
        }
    }

    /// Sim-join: parallel probe partitioning returns the exact serial pair
    /// stream (same pairs, same order, same similarity bits).
    #[test]
    fn simjoin_par_equals_serial((ra, rb) in tables_strategy()) {
        use magellan_simjoin::{join_tokenized_par, TokenizedCollection};
        use magellan_textsim::tokenize::AlphanumericTokenizer;
        let left: Vec<Option<String>> = ra.iter().map(|(n, _)| n.clone()).collect();
        let right: Vec<Option<String>> = rb.iter().map(|(n, _)| n.clone()).collect();
        let tok = AlphanumericTokenizer::as_set();
        for measure in [
            SetSimMeasure::Jaccard(0.3),
            SetSimMeasure::Cosine(0.5),
            SetSimMeasure::OverlapSize(1),
        ] {
            let serial = set_sim_join(&left, &right, &tok, measure);
            let coll = TokenizedCollection::build(&left, &right, &tok);
            for cfg in configs() {
                let (par, _) = join_tokenized_par(&coll, measure, &cfg);
                prop_assert_eq!(par.len(), serial.len());
                for (x, y) in par.iter().zip(&serial) {
                    prop_assert_eq!(x.l, y.l);
                    prop_assert_eq!(x.r, y.r);
                    prop_assert_eq!(x.sim.to_bits(), y.sim.to_bits());
                }
            }
        }
    }

    /// Feature extraction: the parallel matrix is bit-identical to the
    /// serial one (NaN patterns included).
    #[test]
    fn feature_matrix_par_equals_serial((ra, rb) in tables_strategy()) {
        let a = table("a", &ra);
        let b = table("b", &rb);
        let features = vec![
            Feature::new("name", "name", FeatureKind::Jaccard(TokSpecF::Word)),
            Feature::new("name", "name", FeatureKind::JaroWinkler),
            Feature::new("state", "state", FeatureKind::ExactMatch),
        ];
        // All cross pairs (small tables, exhaustive is fine).
        let pairs: Vec<(u32, u32)> = (0..ra.len() as u32)
            .flat_map(|x| (0..rb.len() as u32).map(move |y| (x, y)))
            .collect();
        let serial = extract_feature_matrix(&pairs, &a, &b, &features).unwrap();
        for cfg in configs() {
            let (par, stats) =
                extract_feature_matrix_par(&pairs, &a, &b, &features, &cfg).unwrap();
            prop_assert_eq!(&par.names, &serial.names);
            prop_assert_eq!(&par.pairs, &serial.pairs);
            prop_assert_eq!(par.rows.len(), serial.rows.len());
            for (x, y) in par.rows.iter().zip(&serial.rows) {
                let xb: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
                let yb: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(xb, yb);
            }
            prop_assert_eq!(stats.items, pairs.len());
        }
    }

    /// `parallel_map` preserves index order for awkward lengths.
    #[test]
    fn parallel_map_is_ordered(n in 0usize..200, w in 1usize..17) {
        let out = parallel_map(n, w, |i| i * 31 + 7);
        prop_assert_eq!(out, (0..n).map(|i| i * 31 + 7).collect::<Vec<_>>());
    }
}

/// Forest training is bit-identical for any worker count: per-tree RNGs
/// are derived from `(seed, tree index)`, never from scheduling.
#[test]
fn forest_training_is_worker_count_invariant() {
    let mut data = Dataset::with_dims(3);
    for i in 0..120 {
        let x = (i % 17) as f64 / 17.0;
        let y = (i % 5) as f64 / 5.0;
        let z = (i % 3) as f64 / 3.0;
        data.push(&[x, y, z], x + y > 0.9);
    }
    let fit = |w: usize| {
        RandomForestLearner {
            n_trees: 9,
            seed: 42,
            n_workers: w,
            ..Default::default()
        }
        .fit_forest(&data)
    };
    let reference = fit(1);
    let grid: Vec<Vec<f64>> = (0..50)
        .map(|i| vec![(i % 7) as f64 / 7.0, (i % 11) as f64 / 11.0, 0.5])
        .collect();
    for w in WORKERS {
        let forest = fit(w);
        for row in &grid {
            assert_eq!(
                forest.predict_proba(row).to_bits(),
                reference.predict_proba(row).to_bits(),
                "forest diverged at {w} workers"
            );
        }
    }
    // Batch scoring equals per-row scoring for every config.
    let serial: Vec<u64> = grid
        .iter()
        .map(|r| reference.predict_proba(r).to_bits())
        .collect();
    for cfg in configs() {
        let batch = predict_proba_batch(&reference, &grid, &cfg);
        let bits: Vec<u64> = batch.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, serial, "batch scoring diverged at {cfg:?}");
    }
}

/// The full production run — blocking, extraction, prediction, rules —
/// returns identical matches for every worker count, and the report
/// surfaces the per-phase executor counters.
#[test]
fn production_run_is_worker_count_invariant() {
    let s = persons(&ScenarioConfig {
        size_a: 120,
        size_b: 120,
        n_matches: 40,
        dirt: DirtModel::light(),
        seed: 9,
    });
    let workflow = EmWorkflow {
        blocker: Box::new(OverlapBlocker::words("name", 1)),
        features: vec![
            Feature::new("name", "name", FeatureKind::Jaccard(TokSpecF::Word)),
            Feature::new("name", "name", FeatureKind::JaroWinkler),
        ],
        matcher: Box::new(ConstantClassifier { proba: 1.0 }),
        rule_layer: RuleLayer::empty(),
        threshold: 0.5,
    };
    let reference = ProductionExecutor::new(1)
        .run(&workflow, &s.table_a, &s.table_b)
        .unwrap();
    for w in WORKERS {
        let report = ProductionExecutor::new(w)
            .run(&workflow, &s.table_a, &s.table_b)
            .unwrap();
        assert_eq!(report.matches, reference.matches, "{w} workers changed matches");
        assert_eq!(report.n_candidates, reference.n_candidates);
        // Counter surface: phases report their ParStats.
        assert_eq!(report.counters.blocking.n_workers, w);
        assert_eq!(report.counters.blocking.items, 120);
        assert_eq!(report.counters.matching.items, 2 * report.n_candidates);
        assert_eq!(report.counters.matching.worker_busy.len(), w);
        assert!(report.counters.pairs_per_sec() >= 0.0);
        assert!(
            report.counters.chunks_stolen()
                <= report.counters.blocking.chunks_total
                    + report.counters.matching.chunks_total
        );
    }
}

/// Degenerate inputs: empty and single-row tables run through the whole
/// parallel path without panicking and still match serial.
#[test]
fn degenerate_tables_are_handled() {
    let empty = table("e", &[]);
    let one = table("o", &[(Some("ann smith".into()), Some("aa".into()))]);
    let blocker = OverlapBlocker::words("name", 1);
    for (x, y) in [(&empty, &empty), (&empty, &one), (&one, &empty), (&one, &one)] {
        let serial = blocker.block(x, y).unwrap();
        for cfg in configs() {
            let (par, _) = blocker.block_par(x, y, &cfg).unwrap();
            assert_eq!(par.pairs(), serial.pairs());
        }
    }
}
