//! Phase-level checkpointing for the production executor.
//!
//! §4.1's production stage runs for hours over full tables; a process
//! death at hour three should not restart blocking from scratch. The
//! executor therefore writes a durable [`Checkpoint`] after each phase —
//! the candidate set after blocking, the match set when done — in a small
//! line-oriented text format (`emckpt v1`), consistent with every other
//! persistence surface in this workspace (workflows, models).
//!
//! The format is deliberately dumb: a corrupt or truncated checkpoint is
//! a **fatal** [`MagellanError::Checkpoint`] (retrying cannot fix bad
//! bytes), while an I/O blip during save/load is **transient** and the
//! executor retries it under its [`magellan_faults::RetryPolicy`].
//!
//! Stores are pluggable via [`CheckpointStore`]: [`MemStore`] backs the
//! chaos suite, [`FileStore`] backs real runs, and [`FlakyStore`] wraps
//! either with seeded transient I/O faults from a
//! [`magellan_faults::FaultPlan`] so the retry loop is exercised
//! deterministically.

use std::fmt;
use std::io::Write as _;
use std::path::PathBuf;

use magellan_faults::FaultPlan;

use crate::error::MagellanError;

/// The checkpointable phases of a production run, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Candidate generation over the two tables.
    Blocking,
    /// Feature extraction + prediction + rule layer.
    Matching,
}

impl Phase {
    /// Stable lowercase name used in checkpoints and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Blocking => "blocking",
            Phase::Matching => "matching",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A durable snapshot of a production run after some phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Checkpoint {
    /// Blocking finished: the candidate set survives a restart.
    Blocked {
        /// Candidate pairs `(a_row, b_row)` in blocker output order.
        candidates: Vec<(u32, u32)>,
    },
    /// The whole run finished: the match set and candidate count survive.
    Done {
        /// Predicted match pairs in decision order.
        matches: Vec<(u32, u32)>,
        /// Candidate pairs that were examined.
        n_candidates: usize,
    },
}

impl Checkpoint {
    /// The phase whose completion this checkpoint records.
    pub fn phase(&self) -> Phase {
        match self {
            Checkpoint::Blocked { .. } => Phase::Blocking,
            Checkpoint::Done { .. } => Phase::Matching,
        }
    }

    /// Serialize to the `emckpt v1` text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("emckpt v1\n");
        match self {
            Checkpoint::Blocked { candidates } => {
                out.push_str("phase blocked\n");
                write_pairs(&mut out, candidates);
            }
            Checkpoint::Done {
                matches,
                n_candidates,
            } => {
                out.push_str("phase done\n");
                out.push_str(&format!("n_candidates {n_candidates}\n"));
                write_pairs(&mut out, matches);
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parse the `emckpt v1` text format. Any deviation — wrong magic,
    /// unknown phase, bad pair syntax, missing `end` — is a fatal
    /// [`MagellanError::Checkpoint`] carrying the offending line number.
    pub fn from_text(text: &str) -> Result<Checkpoint, MagellanError> {
        let mut lines = text.lines().enumerate();
        let (_, magic) = lines
            .next()
            .ok_or_else(|| corrupt(1, "empty checkpoint"))?;
        if magic.trim() != "emckpt v1" {
            return Err(corrupt(1, format!("bad magic `{magic}`")));
        }
        let (_, phase_line) = lines
            .next()
            .ok_or_else(|| corrupt(2, "missing phase line"))?;
        let phase = phase_line
            .trim()
            .strip_prefix("phase ")
            .ok_or_else(|| corrupt(2, format!("expected `phase ...`, got `{phase_line}`")))?;
        match phase {
            "blocked" => {
                let candidates = read_pairs(&mut lines)?;
                expect_end(&mut lines)?;
                Ok(Checkpoint::Blocked { candidates })
            }
            "done" => {
                let (no, line) = lines
                    .next()
                    .ok_or_else(|| corrupt(3, "missing n_candidates line"))?;
                let n_candidates = line
                    .trim()
                    .strip_prefix("n_candidates ")
                    .and_then(|v| v.parse::<usize>().ok())
                    .ok_or_else(|| {
                        corrupt(no + 1, format!("expected `n_candidates <usize>`, got `{line}`"))
                    })?;
                let matches = read_pairs(&mut lines)?;
                expect_end(&mut lines)?;
                Ok(Checkpoint::Done {
                    matches,
                    n_candidates,
                })
            }
            other => Err(corrupt(2, format!("unknown phase `{other}`"))),
        }
    }
}

fn write_pairs(out: &mut String, pairs: &[(u32, u32)]) {
    out.push_str(&format!("pairs {}\n", pairs.len()));
    for (a, b) in pairs {
        out.push_str(&format!("{a} {b}\n"));
    }
}

fn read_pairs<'a>(
    lines: &mut impl Iterator<Item = (usize, &'a str)>,
) -> Result<Vec<(u32, u32)>, MagellanError> {
    let (no, header) = lines
        .next()
        .ok_or_else(|| corrupt(0, "missing pairs header"))?;
    let n = header
        .trim()
        .strip_prefix("pairs ")
        .and_then(|v| v.parse::<usize>().ok())
        .ok_or_else(|| corrupt(no + 1, format!("expected `pairs <len>`, got `{header}`")))?;
    let mut pairs = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let (no, line) = lines
            .next()
            .ok_or_else(|| corrupt(0, "truncated pair list"))?;
        let mut it = line.trim().split_whitespace();
        let pair = (|| {
            let a = it.next()?.parse::<u32>().ok()?;
            let b = it.next()?.parse::<u32>().ok()?;
            if it.next().is_some() {
                return None;
            }
            Some((a, b))
        })()
        .ok_or_else(|| corrupt(no + 1, format!("bad pair `{line}`")))?;
        pairs.push(pair);
    }
    Ok(pairs)
}

fn expect_end<'a>(
    lines: &mut impl Iterator<Item = (usize, &'a str)>,
) -> Result<(), MagellanError> {
    match lines.next() {
        Some((_, l)) if l.trim() == "end" => Ok(()),
        Some((no, l)) => Err(corrupt(no + 1, format!("expected `end`, got `{l}`"))),
        None => Err(corrupt(0, "missing `end` terminator (truncated checkpoint)")),
    }
}

fn corrupt(line: usize, msg: impl fmt::Display) -> MagellanError {
    MagellanError::Checkpoint {
        message: if line == 0 {
            format!("corrupt checkpoint: {msg}")
        } else {
            format!("corrupt checkpoint at line {line}: {msg}")
        },
        transient: false,
    }
}

/// Where checkpoints live. `save`/`load` may fail transiently (I/O);
/// callers retry under a [`magellan_faults::RetryPolicy`]. `load`
/// returning `Ok(None)` means "no checkpoint yet" — a fresh run.
pub trait CheckpointStore {
    /// Durably replace the stored checkpoint text.
    fn save(&mut self, text: &str) -> Result<(), MagellanError>;
    /// Read back the stored checkpoint text, if any.
    fn load(&mut self) -> Result<Option<String>, MagellanError>;
    /// Discard any stored checkpoint.
    fn clear(&mut self) -> Result<(), MagellanError>;
}

/// In-memory store for tests and the chaos suite.
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    text: Option<String>,
}

impl MemStore {
    /// Empty store.
    pub fn new() -> Self {
        MemStore::default()
    }

    /// The raw stored text, for assertions.
    pub fn raw(&self) -> Option<&str> {
        self.text.as_deref()
    }
}

impl CheckpointStore for MemStore {
    fn save(&mut self, text: &str) -> Result<(), MagellanError> {
        self.text = Some(text.to_string());
        Ok(())
    }

    fn load(&mut self) -> Result<Option<String>, MagellanError> {
        Ok(self.text.clone())
    }

    fn clear(&mut self) -> Result<(), MagellanError> {
        self.text = None;
        Ok(())
    }
}

/// File-backed store: writes to a sibling temp file then renames, so a
/// death mid-save leaves the previous checkpoint intact.
#[derive(Debug, Clone)]
pub struct FileStore {
    path: PathBuf,
}

impl FileStore {
    /// Store at `path`. The parent directory must exist.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        FileStore { path: path.into() }
    }

    /// The checkpoint path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl CheckpointStore for FileStore {
    fn save(&mut self, text: &str) -> Result<(), MagellanError> {
        let tmp = self.path.with_extension("tmp");
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
        std::fs::rename(&tmp, &self.path)?;
        Ok(())
    }

    fn load(&mut self) -> Result<Option<String>, MagellanError> {
        match std::fs::read_to_string(&self.path) {
            Ok(s) => Ok(Some(s)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn clear(&mut self) -> Result<(), MagellanError> {
        match std::fs::remove_file(&self.path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

/// Wraps any store with seeded transient I/O failures drawn from a
/// [`FaultPlan`], so checkpoint retry loops can be exercised
/// deterministically. Each operation site (save/load/clear) fails for a
/// bounded run of consecutive attempts, then succeeds — mirroring the
/// plan's `max_failures_per_site` convergence guarantee.
#[derive(Debug, Clone)]
pub struct FlakyStore<S> {
    /// The real store.
    pub inner: S,
    /// Where the injected faults come from.
    pub plan: FaultPlan,
    ops: [FlakyOp; 3],
}

#[derive(Debug, Clone, Copy, Default)]
struct FlakyOp {
    /// Distinct logical operation count (bumps on success).
    op: u64,
    /// Consecutive failed attempts of the current logical operation.
    attempt: u32,
}

/// Operation sites for [`FlakyStore`]'s fault keying.
const OP_SAVE: u64 = 0x5a;
const OP_LOAD: u64 = 0x10;
const OP_CLEAR: u64 = 0xc1;

impl<S> FlakyStore<S> {
    /// Wrap `inner`, drawing faults from `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FlakyStore {
            inner,
            plan,
            ops: [FlakyOp::default(); 3],
        }
    }

    /// Returns an injected transient error, or advances to success.
    fn gate(&mut self, site: usize, tag: u64, what: &str) -> Result<(), MagellanError> {
        let st = &mut self.ops[site];
        if self.plan.io_fails(tag.wrapping_add(st.op << 8), st.attempt) {
            st.attempt += 1;
            return Err(MagellanError::Checkpoint {
                message: format!("injected transient I/O failure during checkpoint {what}"),
                transient: true,
            });
        }
        st.attempt = 0;
        st.op += 1;
        Ok(())
    }
}

impl<S: CheckpointStore> CheckpointStore for FlakyStore<S> {
    fn save(&mut self, text: &str) -> Result<(), MagellanError> {
        self.gate(0, OP_SAVE, "save")?;
        self.inner.save(text)
    }

    fn load(&mut self) -> Result<Option<String>, MagellanError> {
        self.gate(1, OP_LOAD, "load")?;
        self.inner.load()
    }

    fn clear(&mut self) -> Result<(), MagellanError> {
        self.gate(2, OP_CLEAR, "clear")?;
        self.inner.clear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_round_trips() {
        let ck = Checkpoint::Blocked {
            candidates: vec![(0, 1), (2, 3), (7, 7)],
        };
        assert_eq!(ck.phase(), Phase::Blocking);
        let text = ck.to_text();
        assert!(text.starts_with("emckpt v1\n"));
        assert_eq!(Checkpoint::from_text(&text).unwrap(), ck);
    }

    #[test]
    fn done_round_trips() {
        let ck = Checkpoint::Done {
            matches: vec![(1, 2), (5, 9)],
            n_candidates: 42,
        };
        assert_eq!(ck.phase(), Phase::Matching);
        assert_eq!(Checkpoint::from_text(&ck.to_text()).unwrap(), ck);
        // Empty match set round-trips too.
        let ck = Checkpoint::Done {
            matches: vec![],
            n_candidates: 0,
        };
        assert_eq!(Checkpoint::from_text(&ck.to_text()).unwrap(), ck);
    }

    #[test]
    fn corrupt_checkpoints_are_fatal_with_line_numbers() {
        for (text, needle) in [
            ("", "empty"),
            ("not a checkpoint\n", "bad magic"),
            ("emckpt v1\n", "missing phase"),
            ("emckpt v1\nphase warp\npairs 0\nend\n", "unknown phase"),
            ("emckpt v1\nphase blocked\npairs two\nend\n", "pairs"),
            ("emckpt v1\nphase blocked\npairs 2\n1 2\n", "truncated"),
            ("emckpt v1\nphase blocked\npairs 1\n1 2 3\nend\n", "bad pair"),
            ("emckpt v1\nphase blocked\npairs 1\nx y\nend\n", "bad pair"),
            ("emckpt v1\nphase done\npairs 0\nend\n", "n_candidates"),
            ("emckpt v1\nphase blocked\npairs 0\nEND\n", "expected `end`"),
        ] {
            let err = Checkpoint::from_text(text).unwrap_err();
            assert!(err.fatal(), "{text:?} should be fatal");
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should mention {needle:?}");
        }
        // Line numbers point at the offending line.
        let err = Checkpoint::from_text("emckpt v1\nphase blocked\npairs 1\nbad\nend\n")
            .unwrap_err();
        assert!(err.to_string().contains("line 4"), "{err}");
    }

    #[test]
    fn mem_store_round_trips_and_clears() {
        let mut s = MemStore::new();
        assert!(s.load().unwrap().is_none());
        s.save("hello").unwrap();
        assert_eq!(s.load().unwrap().as_deref(), Some("hello"));
        s.clear().unwrap();
        assert!(s.load().unwrap().is_none());
    }

    #[test]
    fn file_store_round_trips_and_survives_missing_file() {
        let dir = std::env::temp_dir().join(format!(
            "magellan-ckpt-test-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let mut s = FileStore::new(dir.join("run.emckpt"));
        assert!(s.load().unwrap().is_none());
        let ck = Checkpoint::Blocked {
            candidates: vec![(3, 4)],
        };
        s.save(&ck.to_text()).unwrap();
        let back = Checkpoint::from_text(&s.load().unwrap().unwrap()).unwrap();
        assert_eq!(back, ck);
        s.clear().unwrap();
        assert!(s.load().unwrap().is_none());
        s.clear().unwrap(); // idempotent
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flaky_store_fails_transiently_then_converges() {
        let plan = FaultPlan {
            io_error_per_mille: 1000, // every site draws at least one failure
            ..FaultPlan::seeded(3)
        };
        let mut s = FlakyStore::new(MemStore::new(), plan);
        let mut failures = 0u32;
        let text = Checkpoint::Blocked { candidates: vec![] }.to_text();
        loop {
            match s.save(&text) {
                Ok(()) => break,
                Err(e) => {
                    assert!(e.transient(), "injected I/O faults must be transient");
                    failures += 1;
                    assert!(failures <= plan.max_failures_per_site, "must converge");
                }
            }
        }
        assert!(failures >= 1, "per_mille=1000 should inject at least once");
        // The same logical op retried is deterministic: a fresh store with
        // the same plan fails the same number of times.
        let mut s2 = FlakyStore::new(MemStore::new(), plan);
        let mut failures2 = 0u32;
        while s2.save(&text).is_err() {
            failures2 += 1;
        }
        assert_eq!(failures, failures2);
        // Load eventually works and returns what save stored.
        let loaded = loop {
            match s.load() {
                Ok(v) => break v,
                Err(e) => assert!(e.transient()),
            }
        };
        assert_eq!(loaded.as_deref(), Some(text.as_str()));
    }
}
