//! The filter-verify set-similarity join: an adaptive CSR engine.
//!
//! The engine runs a four-stage pruning cascade per probe record:
//!
//! 1. **Size filter** — each probe token's CSR postings list is
//!    size-sorted, so the admissible partner sizes are a binary-searched
//!    contiguous window ([`PrefixIndex::size_window`]); out-of-window
//!    postings are skipped wholesale.
//! 2. **Accumulating positional filter** (PPJoin-style) — per-candidate
//!    overlap counters accumulate across *all* prefix collisions; after
//!    each collision the candidate's remaining-token upper bound
//!    (`cnt + min(remaining_x, remaining_y)`) is checked against the
//!    required `min_overlap` and the candidate is abandoned the moment it
//!    cannot qualify.
//! 3. **Suffix-resumed bounded verification** — for survivors, the
//!    counted prefix overlap is *resumed* (not recomputed): only the
//!    token ranges that can still hold uncounted shared tokens are
//!    merged, through [`crate::verify::overlap_sorted_bounded`], which
//!    early-exits on failure and gallops on heavy set-size skew.
//! 4. **Cost-based probe-side selection** — the smaller collection (by
//!    total tokens) is indexed and the larger probed, with pair
//!    orientation remapped so output is **bit-identical** either way
//!    (every measure's similarity and `min_overlap` are symmetric in the
//!    two set sizes, the filters are conservative, and verification is
//!    exact).
//!
//! Per-stage kill counters are reported through
//! [`magellan_par::JoinStats`]; all counters are pure functions of
//! (probe record, index), so they are identical for any worker count.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

use magellan_par::{JoinStats, ParConfig, ParStats};
use magellan_textsim::tokenize::Tokenizer;

use crate::collection::TokenizedCollection;
use crate::filters;
use crate::index::PrefixIndex;
use crate::verify::{overlap_sorted_bounded_with, verify_kernel};

/// A similarity measure + threshold for a set-similarity join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SetSimMeasure {
    /// Jaccard similarity ≥ threshold (threshold in `(0, 1]`).
    Jaccard(f64),
    /// Cosine (Ochiai) similarity ≥ threshold (threshold in `(0, 1]`).
    Cosine(f64),
    /// Dice similarity ≥ threshold (threshold in `(0, 1]`).
    Dice(f64),
    /// Absolute overlap `|x ∩ y|` ≥ size (size ≥ 1).
    OverlapSize(usize),
}

impl SetSimMeasure {
    pub(crate) fn validate(&self) {
        match self {
            SetSimMeasure::Jaccard(t) | SetSimMeasure::Cosine(t) | SetSimMeasure::Dice(t) => {
                assert!(
                    *t > 0.0 && *t <= 1.0,
                    "threshold must be in (0, 1], got {t}"
                );
            }
            SetSimMeasure::OverlapSize(c) => {
                assert!(*c >= 1, "overlap size must be at least 1");
            }
        }
    }

    /// Prefix length of a set of size `s` on either side of the join.
    pub(crate) fn prefix_len(&self, s: usize) -> usize {
        match *self {
            SetSimMeasure::Jaccard(t) => filters::jaccard_prefix_len(s, t),
            SetSimMeasure::Cosine(t) => filters::cosine_prefix_len(s, t),
            SetSimMeasure::Dice(t) => filters::dice_prefix_len(s, t),
            SetSimMeasure::OverlapSize(c) => filters::overlap_prefix_len(s, c),
        }
    }

    /// Admissible partner sizes for a set of size `s`.
    pub(crate) fn size_bounds(&self, s: usize) -> (usize, usize) {
        match *self {
            SetSimMeasure::Jaccard(t) => filters::jaccard_size_bounds(s, t),
            SetSimMeasure::Cosine(t) => filters::cosine_size_bounds(s, t),
            SetSimMeasure::Dice(t) => filters::dice_size_bounds(s, t),
            SetSimMeasure::OverlapSize(c) => (c, usize::MAX),
        }
    }

    /// Similarity value reported for a verified pair. **Symmetric** in
    /// `(sx, sy)` for every measure — the probe-side swap depends on it.
    pub(crate) fn similarity(&self, sx: usize, sy: usize, overlap: usize) -> f64 {
        match self {
            SetSimMeasure::Jaccard(_) => overlap as f64 / (sx + sy - overlap) as f64,
            SetSimMeasure::Cosine(_) => overlap as f64 / ((sx * sy) as f64).sqrt(),
            SetSimMeasure::Dice(_) => 2.0 * overlap as f64 / (sx + sy) as f64,
            SetSimMeasure::OverlapSize(_) => overlap as f64,
        }
    }

    /// Minimum intersection size a pair of these sizes needs to qualify.
    /// Also symmetric in `(sx, sy)`.
    pub(crate) fn min_overlap(&self, sx: usize, sy: usize) -> usize {
        match *self {
            SetSimMeasure::Jaccard(t) => filters::jaccard_min_overlap(sx, sy, t),
            SetSimMeasure::Cosine(t) => filters::cosine_min_overlap(sx, sy, t),
            SetSimMeasure::Dice(t) => filters::dice_min_overlap(sx, sy, t),
            SetSimMeasure::OverlapSize(c) => c,
        }
    }

    /// Does a pair with the given sizes and exact overlap qualify?
    pub(crate) fn qualifies(&self, sx: usize, sy: usize, overlap: usize) -> bool {
        overlap >= self.min_overlap(sx, sy)
    }
}

/// One qualifying pair: left record index, right record index, similarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinPair {
    /// Index into the left collection.
    pub l: usize,
    /// Index into the right collection.
    pub r: usize,
    /// The measure's similarity value (overlap size for `OverlapSize`).
    pub sim: f64,
}

/// Which collection the join probes with (the other side is indexed).
/// Output is **bit-identical** for every choice; only cost differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeSide {
    /// Cost-based: index the smaller collection (fewer total tokens),
    /// probe with the larger. Ties probe with the left (the historical
    /// orientation).
    #[default]
    Auto,
    /// Probe with the left collection, index the right.
    Left,
    /// Probe with the right collection, index the left.
    Right,
}

/// The resolved orientation of one join run.
pub(crate) struct ProbePlan<'a> {
    pub(crate) probe: &'a [Vec<u32>],
    pub(crate) indexed: &'a [Vec<u32>],
    /// `true` when probing with the *right* collection — emitted pairs
    /// then put the indexed rid in `l` and the probe rid in `r`.
    pub(crate) swap: bool,
}

impl<'a> ProbePlan<'a> {
    pub(crate) fn choose(coll: &'a TokenizedCollection, side: ProbeSide) -> Self {
        let swap = match side {
            ProbeSide::Left => false,
            ProbeSide::Right => true,
            ProbeSide::Auto => {
                let lt: usize = coll.left.iter().map(Vec::len).sum();
                let rt: usize = coll.right.iter().map(Vec::len).sum();
                // Probe with the larger side (index the smaller); ties
                // keep the historical probe-left orientation.
                rt > lt
            }
        };
        if swap {
            ProbePlan {
                probe: &coll.right,
                indexed: &coll.left,
                swap: true,
            }
        } else {
            ProbePlan {
                probe: &coll.left,
                indexed: &coll.right,
                swap: false,
            }
        }
    }
}

/// Per-candidate accumulator for the positional filter, fused with its
/// validity stamp so one random access per collision touches one cache
/// line instead of two.
#[derive(Clone, Copy)]
struct Slot {
    /// `stamp == probe stamp` ⇔ the rest of the slot is live for this
    /// probe. Stamps are drawn from a process-wide counter (one block per
    /// join region), so a slot left over from *any* earlier join or chunk
    /// can never false-match — which is what lets the scratch live in
    /// thread-local storage and be reused instead of reallocated.
    stamp: u64,
    /// Prefix collisions counted so far; [`DEAD`] once abandoned.
    cnt: u32,
    /// Probe-side position of the last collision.
    px: u32,
    /// Indexed-side position of the last collision.
    py: u32,
    /// Cached `min_overlap` for this pair's sizes.
    need: u32,
}

/// Sentinel marking a candidate killed by the positional filter.
const DEAD: u32 = u32::MAX;

/// Reusable probe scratch (stamp-validated, never cleared).
pub(crate) struct Scratch {
    slots: Vec<Slot>,
    /// Candidates touched by the current probe, in first-touch order.
    touched: Vec<u32>,
}

impl Scratch {
    fn new(n_indexed: usize) -> Self {
        let mut s = Scratch {
            slots: Vec::new(),
            touched: Vec::new(),
        };
        s.ensure(n_indexed);
        s
    }

    /// Grow (never shrink) to cover `n_indexed` records. Existing slots
    /// keep their stamps — stale entries are unreachable by construction,
    /// so growth is the only maintenance reuse ever needs.
    pub(crate) fn ensure(&mut self, n_indexed: usize) {
        if self.slots.len() < n_indexed {
            self.slots.resize(
                n_indexed,
                Slot {
                    stamp: u64::MAX,
                    cnt: 0,
                    px: 0,
                    py: 0,
                    need: 0,
                },
            );
        }
    }
}

/// Process-wide probe-stamp allocator. Each join region reserves one
/// contiguous block of stamps (one per probe record), so stamps are
/// unique across every join and chunk a thread's scratch ever serves.
pub(crate) static PROBE_STAMPS: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    /// The worker's probe scratch. Chunks used to allocate (and zero) an
    /// O(n_indexed) slot array *each*; since the chunk count scales with
    /// the worker count, that overhead grew exactly when parallelism was
    /// supposed to help. The thread-local is allocated once per thread
    /// and revalidated purely by stamps.
    pub(crate) static PROBE_SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new(0));
}

/// Join two string collections. `None` / empty-token records never match
/// (a positive threshold is unreachable for an empty set).
///
/// Returns pairs sorted by `(l, r)`.
///
/// ```
/// use magellan_simjoin::{set_sim_join, SetSimMeasure};
/// use magellan_textsim::tokenize::WhitespaceTokenizer;
///
/// let left = vec![Some("dave smith"), Some("joe wilson")];
/// let right = vec![Some("david smith"), Some("dave smith")];
/// let pairs = set_sim_join(&left, &right, &WhitespaceTokenizer::new(),
///                          SetSimMeasure::Jaccard(0.9));
/// assert_eq!(pairs.len(), 1);
/// assert_eq!((pairs[0].l, pairs[0].r, pairs[0].sim), (0, 1, 1.0));
/// ```
pub fn set_sim_join<S: AsRef<str>>(
    left: &[Option<S>],
    right: &[Option<S>],
    tokenizer: &dyn Tokenizer,
    measure: SetSimMeasure,
) -> Vec<JoinPair> {
    set_sim_join_stats(left, right, tokenizer, measure).0
}

/// [`set_sim_join`] also returning the pruning-cascade telemetry.
pub fn set_sim_join_stats<S: AsRef<str>>(
    left: &[Option<S>],
    right: &[Option<S>],
    tokenizer: &dyn Tokenizer,
    measure: SetSimMeasure,
) -> (Vec<JoinPair>, JoinStats) {
    measure.validate();
    let coll = TokenizedCollection::build(left, right, tokenizer);
    join_tokenized_stats(&coll, measure, ProbeSide::Auto)
}

/// Join a pre-tokenized collection (lets callers reuse tokenization).
pub fn join_tokenized(coll: &TokenizedCollection, measure: SetSimMeasure) -> Vec<JoinPair> {
    join_tokenized_stats(coll, measure, ProbeSide::Auto).0
}

/// Serial join with an explicit probe side and full [`JoinStats`].
/// Output (pair set, order, and bit-exact similarities) is identical for
/// every [`ProbeSide`].
pub fn join_tokenized_stats(
    coll: &TokenizedCollection,
    measure: SetSimMeasure,
    side: ProbeSide,
) -> (Vec<JoinPair>, JoinStats) {
    measure.validate();
    let plan = ProbePlan::choose(coll, side);
    let index = PrefixIndex::build(plan.indexed, |s| measure.prefix_len(s));
    magellan_obs::span_res_add("csr_index_bytes", index.index_bytes() as u64);
    let stamp_base = PROBE_STAMPS.fetch_add(plan.probe.len() as u64, Ordering::Relaxed);
    let mut out = Vec::new();
    let mut stats = JoinStats::default();
    PROBE_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        scratch.ensure(plan.indexed.len());
        for (p, x) in plan.probe.iter().enumerate() {
            probe_one(
                p,
                stamp_base + p as u64,
                x,
                plan.indexed,
                &index,
                measure,
                plan.swap,
                &mut scratch,
                &mut out,
                &mut stats,
            );
        }
    });
    out.sort_unstable_by_key(|a| (a.l, a.r));
    stats.pairs = out.len();
    stats.probe_swaps = plan.swap as usize;
    // Re-express the cascade counters as `magellan_simjoin_*` registry
    // metrics (no-op when observability is disabled); the struct remains
    // the report-facing view.
    stats.publish();
    (out, stats)
}

/// Probe a single record against the prefix index through the
/// size → positional → suffix cascade. Pure in `(probe record, index)`:
/// emitted pairs and every counter increment are chunking-independent.
#[allow(clippy::too_many_arguments)]
pub(crate) fn probe_one(
    probe_rid: usize,
    stamp: u64,
    x: &[u32],
    indexed: &[Vec<u32>],
    index: &PrefixIndex,
    measure: SetSimMeasure,
    swap: bool,
    scratch: &mut Scratch,
    out: &mut Vec<JoinPair>,
    stats: &mut JoinStats,
) {
    let sx = x.len();
    if sx == 0 {
        return;
    }
    stats.probes += 1;
    let (lo, hi) = measure.size_bounds(sx);
    let probe_len = measure.prefix_len(sx).min(sx);
    scratch.touched.clear();

    // Stage 1 + 2: collect prefix collisions, size windows first, then
    // the accumulating positional bound per collision.
    let size_lo = lo.min(u32::MAX as usize) as u32;
    let size_hi = hi.min(u32::MAX as usize) as u32;
    // `min_overlap` memo: postings are size-sorted, so runs of candidates
    // share a size — recompute the (float-ceil) bound only on size change.
    let mut memo_sy = u32::MAX;
    let mut memo_need = 0u32;
    for (px, &tok) in x[..probe_len].iter().enumerate() {
        let list = index.postings(tok);
        // The size filter as two binary searches over the size-sorted
        // postings list: one contiguous in-window range.
        let a = list.partition_point(|p| p.size < size_lo);
        let b = list.partition_point(|p| p.size <= size_hi);
        stats.killed_by_size += list.len() - (b - a);
        for p in &list[a..b] {
            let slot = &mut scratch.slots[p.rid as usize];
            if slot.stamp != stamp {
                slot.stamp = stamp;
                slot.cnt = 0;
                if p.size != memo_sy {
                    memo_sy = p.size;
                    memo_need = measure.min_overlap(sx, p.size as usize) as u32;
                }
                slot.need = memo_need;
                stats.candidates += 1;
                scratch.touched.push(p.rid);
            } else if slot.cnt == DEAD {
                continue;
            }
            slot.cnt += 1;
            slot.px = px as u32;
            slot.py = p.pos;
            // Positional bound: every uncounted shared token exceeds the
            // current collision token (anything smaller in both sets is
            // already a counted prefix collision), so it must live in
            // both remainders.
            let rem = (sx - px - 1).min((p.size - p.pos - 1) as usize);
            if (slot.cnt as usize) + rem < slot.need as usize {
                slot.cnt = DEAD;
                stats.killed_by_position += 1;
            }
        }
    }

    // Stage 3: suffix-resumed bounded verification of the survivors.
    // `cnt` already equals |x[..probe_len] ∩ y[..plen_y]| — only the
    // ranges that can hold *uncounted* shared tokens are merged. With
    // wx/wy the last prefix tokens: if wx ≤ wy every uncounted shared
    // token is > wx, hence in x's suffix and past y's last collision;
    // symmetrically otherwise.
    for &rid in &scratch.touched {
        let st = scratch.slots[rid as usize];
        if st.cnt == DEAD {
            continue;
        }
        let rid = rid as usize;
        let y = &indexed[rid];
        let sy = y.len();
        let plen_y = index.prefix_len(rid);
        let cnt = st.cnt as usize;
        let need = st.need as usize;
        let (rest_x, rest_y) = if x[probe_len - 1] <= y[plen_y - 1] {
            (&x[probe_len..], &y[st.py as usize + 1..])
        } else {
            (&x[st.px as usize + 1..], &y[plen_y..])
        };
        stats.verified += 1;
        // Selection telemetry: which kernel answers this merge is a pure
        // function of the operand lengths (and the process-wide mode), so
        // the split is worker-count invariant like every other counter.
        let kernel = verify_kernel(rest_x, rest_y);
        match kernel {
            magellan_textsim::kernels::Kernel::Gallop => stats.kernel_gallop += 1,
            magellan_textsim::kernels::Kernel::Bitset => stats.kernel_bitset += 1,
            _ => stats.kernel_merge += 1,
        }
        match overlap_sorted_bounded_with(
            kernel,
            rest_x,
            rest_y,
            need.saturating_sub(cnt),
            &mut stats.verify_steps,
        ) {
            None => stats.killed_by_suffix += 1,
            Some(sub) => {
                let overlap = cnt + sub;
                debug_assert!(measure.qualifies(sx, sy, overlap));
                let (l, r) = if swap { (rid, probe_rid) } else { (probe_rid, rid) };
                out.push(JoinPair {
                    l,
                    r,
                    sim: measure.similarity(sx, sy, overlap),
                });
            }
        }
    }
}

/// Multi-threaded variant of [`set_sim_join`]: probes are partitioned
/// across the `magellan-par` work-stealing pool (the production-stage
/// "Dask" role in the paper). Results are identical to the serial join.
pub fn set_sim_join_parallel<S: AsRef<str> + Sync>(
    left: &[Option<S>],
    right: &[Option<S>],
    tokenizer: &dyn Tokenizer,
    measure: SetSimMeasure,
    n_workers: usize,
) -> Vec<JoinPair> {
    measure.validate();
    let coll = TokenizedCollection::build(left, right, tokenizer);
    join_tokenized_parallel(&coll, measure, n_workers)
}

/// Multi-threaded variant of [`join_tokenized`].
pub fn join_tokenized_parallel(
    coll: &TokenizedCollection,
    measure: SetSimMeasure,
    n_workers: usize,
) -> Vec<JoinPair> {
    join_tokenized_par(coll, measure, &ParConfig::workers(n_workers)).0
}

/// Work-stealing probe-side join: probe records are chunked, chunks are
/// claimed dynamically by idle workers, and per-chunk outputs are merged in
/// chunk order — the result is **bit-identical** to [`join_tokenized`] for
/// any worker count (each probe is a pure function of its record and the
/// shared index; the final `(l, r)` sort is independent of chunking).
/// Returns the region's [`ParStats`], with [`ParStats::join`] filled with
/// the cascade's kill counters (themselves worker-count invariant).
pub fn join_tokenized_par(
    coll: &TokenizedCollection,
    measure: SetSimMeasure,
    cfg: &ParConfig,
) -> (Vec<JoinPair>, ParStats) {
    join_tokenized_par_side(coll, measure, ProbeSide::Auto, cfg)
}

/// [`join_tokenized_par`] with an explicit probe side.
pub fn join_tokenized_par_side(
    coll: &TokenizedCollection,
    measure: SetSimMeasure,
    side: ProbeSide,
    cfg: &ParConfig,
) -> (Vec<JoinPair>, ParStats) {
    measure.validate();
    let plan = ProbePlan::choose(coll, side);
    let index = PrefixIndex::build(plan.indexed, |s| measure.prefix_len(s));
    magellan_obs::span_res_add("csr_index_bytes", index.index_bytes() as u64);
    let stamp_base = PROBE_STAMPS.fetch_add(plan.probe.len() as u64, Ordering::Relaxed);
    let (chunks, mut stats) = magellan_par::chunk_map(plan.probe.len(), cfg, |range| {
        // Reuse the worker's thread-local scratch: stamps make stale
        // slots (from other chunks, other joins, other probe sides)
        // unreachable, so no per-chunk allocation or zeroing happens.
        PROBE_SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            scratch.ensure(plan.indexed.len());
            // Nested under the pool's `chunk` span: kernel dispatch and
            // verification merges are this scope's self-time in profiles.
            let _verify = magellan_obs::span("verify", range.start as u64);
            let mut out = Vec::new();
            let mut js = JoinStats::default();
            for p in range {
                probe_one(
                    p,
                    stamp_base + p as u64,
                    &plan.probe[p],
                    plan.indexed,
                    &index,
                    measure,
                    plan.swap,
                    &mut scratch,
                    &mut out,
                    &mut js,
                );
            }
            (out, js)
        })
    });
    let mut out = Vec::new();
    let mut js = JoinStats::default();
    for (chunk_pairs, chunk_js) in chunks {
        out.extend(chunk_pairs);
        js.merge(&chunk_js);
    }
    out.sort_unstable_by_key(|a| (a.l, a.r));
    js.pairs = out.len();
    js.probe_swaps = plan.swap as usize;
    // Same counters, two surfaces: the merged struct rides along in
    // `ParStats` for reports, and the registry gets the canonical
    // `magellan_simjoin_*` series (deterministic: every field is a pure
    // function of the join inputs, so 1-worker and 8-worker runs publish
    // identical values).
    js.publish();
    stats.join = js;
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_textsim::setsim;
    use magellan_textsim::tokenize::{QgramTokenizer, WhitespaceTokenizer};

    fn some(items: &[&str]) -> Vec<Option<String>> {
        items.iter().map(|s| Some((*s).to_owned())).collect()
    }

    /// Naive reference join via the full cross product.
    fn naive(
        left: &[Option<String>],
        right: &[Option<String>],
        tokenizer: &dyn magellan_textsim::tokenize::Tokenizer,
        measure: SetSimMeasure,
    ) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (l, a) in left.iter().enumerate() {
            for (r, b) in right.iter().enumerate() {
                let (Some(a), Some(b)) = (a, b) else { continue };
                let ta = tokenizer.tokenize(a);
                let tb = tokenizer.tokenize(b);
                if ta.is_empty() || tb.is_empty() {
                    continue;
                }
                let ok = match measure {
                    SetSimMeasure::Jaccard(t) => setsim::jaccard(&ta, &tb) >= t - 1e-9,
                    SetSimMeasure::Cosine(t) => setsim::cosine(&ta, &tb) >= t - 1e-9,
                    SetSimMeasure::Dice(t) => setsim::dice(&ta, &tb) >= t - 1e-9,
                    SetSimMeasure::OverlapSize(c) => setsim::overlap_size(&ta, &tb) >= c,
                };
                if ok {
                    out.push((l, r));
                }
            }
        }
        out
    }

    fn pairs(join: &[JoinPair]) -> Vec<(usize, usize)> {
        join.iter().map(|p| (p.l, p.r)).collect()
    }

    fn soup(seed: u64, n: usize, max_len: usize, vocab: usize) -> Vec<Option<String>> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        (0..n)
            .map(|_| {
                let n = 1 + next() % max_len;
                Some(
                    (0..n)
                        .map(|_| format!("t{}", next() % vocab))
                        .collect::<Vec<_>>()
                        .join(" "),
                )
            })
            .collect()
    }

    #[test]
    fn jaccard_join_matches_naive() {
        let left = some(&[
            "dave smith madison",
            "joe wilson san jose",
            "dan smith middleton",
        ]);
        let right = some(&[
            "david smith madison",
            "daniel smith middleton",
            "dave smith madison",
        ]);
        let tok = WhitespaceTokenizer::new();
        for t in [0.3, 0.5, 0.8, 1.0] {
            let fast = set_sim_join(&left, &right, &tok, SetSimMeasure::Jaccard(t));
            let slow = naive(&left, &right, &tok, SetSimMeasure::Jaccard(t));
            assert_eq!(pairs(&fast), slow, "threshold {t}");
        }
    }

    #[test]
    fn exact_threshold_one_means_equal_sets() {
        let left = some(&["a b c", "x y"]);
        let right = some(&["c b a", "x z"]);
        let tok = WhitespaceTokenizer::new();
        let out = set_sim_join(&left, &right, &tok, SetSimMeasure::Jaccard(1.0));
        assert_eq!(pairs(&out), vec![(0, 0)]);
        assert_eq!(out[0].sim, 1.0);
    }

    #[test]
    fn qgram_join_finds_typos() {
        let left = some(&["mississippi"]);
        let right = some(&["mississipi", "minneapolis"]);
        let tok = QgramTokenizer::as_set(3);
        let out = set_sim_join(&left, &right, &tok, SetSimMeasure::Jaccard(0.6));
        assert_eq!(pairs(&out), vec![(0, 0)]);
    }

    #[test]
    fn overlap_size_join() {
        let left = some(&["a b c d", "a"]);
        let right = some(&["c d e", "z"]);
        let tok = WhitespaceTokenizer::new();
        let out = set_sim_join(&left, &right, &tok, SetSimMeasure::OverlapSize(2));
        assert_eq!(pairs(&out), vec![(0, 0)]);
        assert_eq!(out[0].sim, 2.0);
    }

    #[test]
    fn nulls_and_empties_never_match() {
        let left: Vec<Option<String>> = vec![None, Some("   ".into()), Some("a".into())];
        let right = some(&["a"]);
        let tok = WhitespaceTokenizer::new();
        let out = set_sim_join(&left, &right, &tok, SetSimMeasure::Jaccard(0.5));
        assert_eq!(pairs(&out), vec![(2, 0)]);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_panics() {
        let tok = WhitespaceTokenizer::new();
        let l = some(&["a"]);
        set_sim_join(&l, &l, &tok, SetSimMeasure::Jaccard(0.0));
    }

    #[test]
    fn parallel_equals_serial() {
        let left = soup(7, 200, 6, 40);
        let right = soup(8, 200, 6, 40);
        let tok = WhitespaceTokenizer::new();
        for measure in [
            SetSimMeasure::Jaccard(0.6),
            SetSimMeasure::Cosine(0.7),
            SetSimMeasure::Dice(0.65),
            SetSimMeasure::OverlapSize(2),
        ] {
            let serial = set_sim_join(&left, &right, &tok, measure);
            let par = set_sim_join_parallel(&left, &right, &tok, measure, 4);
            assert_eq!(serial, par, "{measure:?}");
        }
    }

    #[test]
    fn cosine_and_dice_match_naive_on_random_soup() {
        let left = soup(99, 60, 5, 25);
        let right = soup(100, 60, 5, 25);
        let tok = WhitespaceTokenizer::new();
        for measure in [SetSimMeasure::Cosine(0.6), SetSimMeasure::Dice(0.6)] {
            let fast = set_sim_join(&left, &right, &tok, measure);
            let mut fast = pairs(&fast);
            fast.sort_unstable();
            let mut slow = naive(&left, &right, &tok, measure);
            slow.sort_unstable();
            assert_eq!(fast, slow, "{measure:?}");
        }
    }

    #[test]
    fn reported_similarity_is_exact() {
        let left = some(&["a b c"]);
        let right = some(&["b c d"]);
        let tok = WhitespaceTokenizer::new();
        let out = set_sim_join(&left, &right, &tok, SetSimMeasure::Jaccard(0.3));
        assert_eq!(out.len(), 1);
        assert!((out[0].sim - 0.5).abs() < 1e-12);
    }

    /// The three probe sides must agree **bit-for-bit** — same pair set,
    /// same order, same f64 similarities — on asymmetric collections.
    #[test]
    fn probe_side_is_output_invariant() {
        let tok = WhitespaceTokenizer::new();
        // Deliberately lopsided: left is much bigger than right, so Auto
        // probes left; also run the forced orientations.
        let left = soup(41, 300, 7, 30);
        let right = soup(43, 40, 4, 30);
        let coll = TokenizedCollection::build(&left, &right, &tok);
        for measure in [
            SetSimMeasure::Jaccard(0.5),
            SetSimMeasure::Cosine(0.6),
            SetSimMeasure::Dice(0.6),
            SetSimMeasure::OverlapSize(2),
        ] {
            let (auto, s_auto) = join_tokenized_stats(&coll, measure, ProbeSide::Auto);
            let (l, _) = join_tokenized_stats(&coll, measure, ProbeSide::Left);
            let (r, s_r) = join_tokenized_stats(&coll, measure, ProbeSide::Right);
            assert_eq!(auto, l, "{measure:?} auto vs left");
            assert_eq!(auto, r, "{measure:?} auto vs right");
            assert_eq!(s_auto.pairs, auto.len());
            assert_eq!(s_r.probe_swaps, 1, "forced right probe records a swap");
        }
    }

    /// Cascade counters are internally consistent and worker-count
    /// invariant.
    #[test]
    fn join_stats_are_consistent_and_worker_invariant() {
        let tok = WhitespaceTokenizer::new();
        let left = soup(17, 150, 6, 20);
        let right = soup(19, 150, 6, 20);
        let coll = TokenizedCollection::build(&left, &right, &tok);
        let measure = SetSimMeasure::Jaccard(0.5);
        let (out, serial) = join_tokenized_stats(&coll, measure, ProbeSide::Auto);
        // Every generated candidate is either killed by position or
        // verified; verification either kills by suffix or emits a pair.
        assert_eq!(
            serial.candidates,
            serial.killed_by_position + serial.verified
        );
        assert_eq!(serial.verified, serial.killed_by_suffix + out.len());
        assert_eq!(serial.pairs, out.len());
        assert!(serial.probes > 0 && serial.verify_steps > 0);
        // Every verification merge is attributed to exactly one kernel.
        assert_eq!(
            serial.kernel_merge + serial.kernel_gallop + serial.kernel_bitset,
            serial.verified
        );
        for workers in [1, 4] {
            let (pout, pstats) =
                join_tokenized_par(&coll, measure, &ParConfig::workers(workers));
            assert_eq!(pout, out, "workers={workers}");
            let pj = pstats.join;
            assert_eq!(
                (
                    pj.probes,
                    pj.candidates,
                    pj.killed_by_size,
                    pj.killed_by_position,
                    pj.killed_by_suffix,
                    pj.verified,
                    pj.verify_steps,
                    pj.pairs,
                    pj.kernel_merge,
                    pj.kernel_gallop,
                    pj.kernel_bitset
                ),
                (
                    serial.probes,
                    serial.candidates,
                    serial.killed_by_size,
                    serial.killed_by_position,
                    serial.killed_by_suffix,
                    serial.verified,
                    serial.verify_steps,
                    serial.pairs,
                    serial.kernel_merge,
                    serial.kernel_gallop,
                    serial.kernel_bitset
                ),
                "workers={workers}"
            );
        }
    }

    /// Regression: a ≥16× record-length skew must reach the galloping
    /// verify kernel (the symmetric soups above never do — their operand
    /// ratios stay under `GALLOP_RATIO`), and the result must still match
    /// the reference engine bit-for-bit.
    #[test]
    fn size_skew_exercises_the_gallop_kernel() {
        let tok = WhitespaceTokenizer::new();
        // 200 short probe records (2–5 tokens) vs 12 long indexed records
        // (120 tokens): suffix merges pit a handful of probe tokens
        // against ~100-token indexed remainders.
        let left = soup(31, 200, 5, 400);
        let mut state = 33u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let right: Vec<Option<String>> = (0..12)
            .map(|_| {
                Some(
                    (0..120)
                        .map(|_| format!("t{}", next() % 400))
                        .collect::<Vec<_>>()
                        .join(" "),
                )
            })
            .collect();
        let coll = TokenizedCollection::build(&left, &right, &tok);
        let measure = SetSimMeasure::OverlapSize(2);
        let (pairs, stats) = join_tokenized_stats(&coll, measure, ProbeSide::Left);
        assert!(
            stats.kernel_gallop > 0,
            "size-skew workload must fire the gallop kernel (verified={})",
            stats.verified
        );
        assert_eq!(
            pairs,
            crate::reference::join_tokenized_hashmap(&coll, measure),
            "gallop path diverged from the reference engine"
        );
    }

    /// The CSR engine agrees bit-for-bit with the preserved HashMap
    /// reference engine.
    #[test]
    fn csr_engine_equals_reference_engine() {
        let tok = WhitespaceTokenizer::new();
        let left = soup(5, 120, 6, 30);
        let right = soup(6, 120, 6, 30);
        let coll = TokenizedCollection::build(&left, &right, &tok);
        for measure in [
            SetSimMeasure::Jaccard(0.4),
            SetSimMeasure::Cosine(0.7),
            SetSimMeasure::Dice(0.6),
            SetSimMeasure::OverlapSize(3),
        ] {
            let new = join_tokenized(&coll, measure);
            let old = crate::reference::join_tokenized_hashmap(&coll, measure);
            assert_eq!(new, old, "{measure:?}");
        }
    }
}
