//! The deterministic profiling tier: aggregate a canonical snapshot's
//! span forest by *name path* into an [`ObsProfile`] tree carrying
//! cumulative invocation counts, total vs. self time, and summed
//! resource attribution — then export it as collapsed-stack text
//! (flamegraph `folded` format) or JSON.
//!
//! Self-time is attributed per span *instance*: each instance's self
//! time is its duration minus the summed durations of its direct
//! children, computed over the snapshot's canonical DFS order, then
//! accumulated into the aggregated node. Because the input order is
//! canonical (never scheduling order) and a pinned clock makes every
//! duration reproducible, both exports are byte-identical run-to-run at
//! any worker count — the same contract the Chrome-trace exporter keeps.

use crate::{ClockMode, ObsSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One aggregated node in the profile tree: every span instance that
/// shares this node's name *path* (root name, …, this name) folds into
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// Span name at this path position.
    pub name: &'static str,
    /// Cumulative invocation count (span instances folded in).
    pub calls: u64,
    /// Summed wall/pinned duration of all instances (ns).
    pub total_ns: u64,
    /// Summed duration *not* covered by direct children (ns).
    pub self_ns: u64,
    /// Resource attribution summed across instances, by kind.
    pub res: BTreeMap<&'static str, u64>,
    /// Child nodes sorted by name.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Child node by name, if present.
    pub fn child(&self, name: &str) -> Option<&ProfileNode> {
        self.children.iter().find(|c| c.name == name)
    }
}

/// A canonical-ordered profile tree aggregated from one snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsProfile {
    /// Clock mode of the snapshot this profile was built from.
    pub clock: ClockMode,
    /// Root nodes sorted by name.
    pub roots: Vec<ProfileNode>,
    /// Spans the recorder discarded (bounded buffers) — the profile is
    /// missing their time.
    pub dropped_spans: usize,
}

struct Builder {
    name: &'static str,
    calls: u64,
    total_ns: u64,
    self_ns: u64,
    res: BTreeMap<&'static str, u64>,
    children: BTreeMap<&'static str, usize>,
}

impl ObsProfile {
    /// Aggregate `snap`'s canonical span forest by name path.
    pub fn from_snapshot(snap: &ObsSnapshot) -> Self {
        let mut arena: Vec<Builder> = Vec::new();
        let mut roots: BTreeMap<&'static str, usize> = BTreeMap::new();
        // Open instance stack: (depth, arena idx, duration, child dur sum).
        let mut open: Vec<(u16, usize, u64, u64)> = Vec::new();
        let close = |open: &mut Vec<(u16, usize, u64, u64)>, arena: &mut Vec<Builder>| {
            if let Some((_, idx, dur, child_sum)) = open.pop() {
                arena[idx].self_ns = arena[idx]
                    .self_ns
                    .saturating_add(dur.saturating_sub(child_sum));
                if let Some(top) = open.last_mut() {
                    top.3 = top.3.saturating_add(dur);
                }
            }
        };
        for (i, s) in snap.spans.iter().enumerate() {
            let d = snap.depths[i];
            while open.last().is_some_and(|&(od, ..)| od >= d) {
                close(&mut open, &mut arena);
            }
            let parent = open.last().map(|&(_, pidx, ..)| pidx);
            let existing = match parent {
                Some(p) => arena[p].children.get(s.name).copied(),
                None => roots.get(s.name).copied(),
            };
            let idx = match existing {
                Some(idx) => idx,
                None => {
                    let idx = arena.len();
                    arena.push(Builder {
                        name: s.name,
                        calls: 0,
                        total_ns: 0,
                        self_ns: 0,
                        res: BTreeMap::new(),
                        children: BTreeMap::new(),
                    });
                    match parent {
                        Some(p) => arena[p].children.insert(s.name, idx),
                        None => roots.insert(s.name, idx),
                    };
                    idx
                }
            };
            let dur = s.end_ns.saturating_sub(s.start_ns);
            let b = &mut arena[idx];
            b.calls += 1;
            b.total_ns = b.total_ns.saturating_add(dur);
            for &(kind, bytes) in &s.res {
                let slot = b.res.entry(kind).or_insert(0);
                *slot = slot.saturating_add(bytes);
            }
            open.push((d, idx, dur, 0));
        }
        while !open.is_empty() {
            close(&mut open, &mut arena);
        }

        fn freeze(arena: &[Builder], children: &BTreeMap<&'static str, usize>) -> Vec<ProfileNode> {
            children
                .values()
                .map(|&idx| {
                    let b = &arena[idx];
                    ProfileNode {
                        name: b.name,
                        calls: b.calls,
                        total_ns: b.total_ns,
                        self_ns: b.self_ns,
                        res: b.res.clone(),
                        children: freeze(arena, &b.children),
                    }
                })
                .collect()
        }
        ObsProfile {
            clock: snap.clock,
            roots: freeze(&arena, &roots),
            dropped_spans: snap.dropped_spans,
        }
    }

    /// Node at the given name path, if present.
    pub fn node(&self, path: &[&str]) -> Option<&ProfileNode> {
        let (first, rest) = path.split_first()?;
        let mut cur = self.roots.iter().find(|n| n.name == *first)?;
        for name in rest {
            cur = cur.child(name)?;
        }
        Some(cur)
    }

    /// Collapsed-stack ("folded") export: one line per name path,
    /// `root;child;leaf self_ns`, in canonical (sorted) DFS order —
    /// ready for `flamegraph.pl` / `inferno`.
    pub fn to_collapsed(&self) -> String {
        fn walk(out: &mut String, prefix: &str, node: &ProfileNode) {
            let path = if prefix.is_empty() {
                node.name.to_owned()
            } else {
                format!("{prefix};{}", node.name)
            };
            let _ = writeln!(out, "{path} {}", node.self_ns);
            for c in &node.children {
                walk(out, &path, c);
            }
        }
        let mut out = String::new();
        for r in &self.roots {
            walk(&mut out, "", r);
        }
        out
    }

    /// JSON export: the full tree with calls, total/self time, and
    /// resource attribution per node. Byte-deterministic (sorted maps,
    /// integer fields only).
    pub fn to_json(&self) -> String {
        fn node_json(out: &mut String, node: &ProfileNode) {
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"calls\":{},\"total_ns\":{},\"self_ns\":{}",
                node.name, node.calls, node.total_ns, node.self_ns
            );
            if !node.res.is_empty() {
                out.push_str(",\"res\":{");
                for (i, (k, v)) in node.res.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{k}\":{v}");
                }
                out.push('}');
            }
            if !node.children.is_empty() {
                out.push_str(",\"children\":[");
                for (i, c) in node.children.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    node_json(out, c);
                }
                out.push(']');
            }
            out.push('}');
        }
        let clock = match self.clock {
            ClockMode::Wall => "wall",
            ClockMode::Pinned => "pinned",
        };
        let mut out = format!(
            "{{\"clock\":\"{clock}\",\"dropped_spans\":{},\"roots\":[",
            self.dropped_spans
        );
        for (i, r) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            node_json(&mut out, r);
        }
        out.push_str("]}");
        out
    }

    /// Write the profile to `path`: `.json` selects [`ObsProfile::to_json`],
    /// anything else the collapsed-stack format.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        let body = if path.ends_with(".json") {
            self.to_json()
        } else {
            self.to_collapsed()
        };
        std::fs::write(path, body)
    }
}

impl ObsSnapshot {
    /// Aggregate this snapshot into an [`ObsProfile`].
    pub fn profile(&self) -> ObsProfile {
        ObsProfile::from_snapshot(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{span_id, SpanRec};

    fn rec(parent: u64, name: &'static str, key: u64, t0: u64, t1: u64) -> SpanRec {
        SpanRec {
            id: span_id(parent, name, key),
            parent,
            name,
            key,
            start_ns: t0,
            end_ns: t1,
            lane: 0,
            res: Vec::new(),
        }
    }

    fn sample() -> ObsSnapshot {
        let run = rec(0, "run", 0, 0, 100);
        let mut p0 = rec(run.id, "phase", 0, 0, 60);
        p0.res.push(("csr_index_bytes", 1_000));
        let p1 = rec(run.id, "phase", 1, 60, 90);
        let c0 = rec(p0.id, "chunk", 0, 0, 20);
        let c1 = rec(p0.id, "chunk", 1, 20, 45);
        let c2 = rec(p1.id, "chunk", 0, 60, 70);
        ObsSnapshot::build(
            ClockMode::Pinned,
            vec![c2, p1, c0, run, c1, p0],
            vec![],
            std::collections::BTreeMap::new(),
            0,
            0,
        )
    }

    #[test]
    fn self_time_and_calls_aggregate_by_name_path() {
        let prof = sample().profile();
        let run = prof.node(&["run"]).unwrap();
        assert_eq!(run.calls, 1);
        assert_eq!(run.total_ns, 100);
        // run covers 100ns; its direct children (two phases) cover 60+30.
        assert_eq!(run.self_ns, 10);
        let phase = prof.node(&["run", "phase"]).unwrap();
        assert_eq!(phase.calls, 2);
        assert_eq!(phase.total_ns, 90);
        // phase0 self = 60-(20+25)=15, phase1 self = 30-10=20.
        assert_eq!(phase.self_ns, 35);
        assert_eq!(phase.res.get("csr_index_bytes"), Some(&1_000));
        let chunk = prof.node(&["run", "phase", "chunk"]).unwrap();
        assert_eq!(chunk.calls, 3);
        assert_eq!(chunk.total_ns, 55);
        assert_eq!(chunk.self_ns, 55, "leaves keep all their time");
    }

    #[test]
    fn collapsed_export_is_canonical() {
        let prof = sample().profile();
        assert_eq!(
            prof.to_collapsed(),
            "run 10\nrun;phase 35\nrun;phase;chunk 55\n"
        );
    }

    #[test]
    fn json_export_parses_and_carries_res() {
        let prof = sample().profile();
        let txt = prof.to_json();
        let parsed = crate::parse_json(&txt).expect("valid JSON");
        assert_eq!(
            parsed.get("clock").and_then(|c| c.as_str()),
            Some("pinned")
        );
        let roots = parsed.get("roots").and_then(|r| r.as_array()).unwrap();
        assert_eq!(roots.len(), 1);
        let total = roots[0].get("total_ns").and_then(|v| v.as_f64()).unwrap();
        assert_eq!(total, 100.0);
    }

    #[test]
    fn self_time_never_goes_negative_on_overlapping_children() {
        // A child recorded *longer* than its parent (clock skew between
        // lanes in wall mode) must saturate, not underflow.
        let run = rec(0, "run", 0, 0, 10);
        let over = rec(run.id, "chunk", 0, 0, 50);
        let snap = ObsSnapshot::build(
            ClockMode::Wall,
            vec![run, over],
            vec![],
            std::collections::BTreeMap::new(),
            0,
            0,
        );
        let prof = snap.profile();
        assert_eq!(prof.node(&["run"]).unwrap().self_ns, 0);
    }
}
