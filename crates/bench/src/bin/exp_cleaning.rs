//! §5.3 ablation — "data cleaning is critical for EM": detect, isolate,
//! clean.
//!
//! The paper's Vendors story: a slice of Brazilian vendors carried generic
//! placeholder addresses, accuracy collapsed, and "once we removed such
//! vendors from the data, the accuracy significantly improved". Table 2
//! shows that as the separate "Vendors (no Brazil)" row.
//!
//! Here the removal is done *by the cleaning tools*, not by regenerating
//! data: run CloudMatcher on the dirty vendors task, then use
//! `detect_generic_values` + `isolate_rows` to split off the undecidable
//! slice, rerun on the clean part, and report both rows.

use magellan_bench::score;
use magellan_core::clean::{detect_generic_values, isolate_rows};
use magellan_core::labeling::OracleLabeler;
use magellan_datagen::domains::vendors;
use magellan_datagen::{DirtModel, ScenarioConfig};
use magellan_falcon::{run_falcon, FalconConfig};

fn main() {
    // Experiment narration is leveled logging: MAGELLAN_LOG=off silences it.
    magellan_obs::init_bin_logging(magellan_obs::Level::Info);
    let s = vendors(
        &ScenarioConfig {
            size_a: 1200,
            size_b: 1200,
            n_matches: 400,
            dirt: DirtModel::moderate(),
            seed: 321,
        },
        0.25, // the Brazilian-vendor fraction
    );
    let cfg = FalconConfig::default();

    // --- Run 1: the dirty task, as submitted. ---
    let mut labeler = OracleLabeler::new(s.gold.clone(), "id", "id");
    let dirty_report = run_falcon(&s.table_a, &s.table_b, "id", "id", &mut labeler, &cfg)
        .expect("falcon on dirty vendors");
    let m_dirty = score(&dirty_report.matches, &s.table_a, &s.table_b, &s.gold);
    magellan_obs::log!(info, "Vendors (dirty):      {m_dirty}");

    // --- The cleaning toolchain. ---
    let generic = detect_generic_values(&s.table_a, "address", 10, 0.01)
        .expect("generic-value detection");
    magellan_obs::log!(info, "\ndetected generic placeholder addresses:");
    for g in &generic {
        magellan_obs::log!(info, "  `{}` on {} rows ({:.1}% of table A)", g.value, g.count, 100.0 * g.fraction);
    }
    let (a_clean, a_dirty) =
        isolate_rows(&s.table_a, "address", &generic).expect("isolate A");
    let generic_b = detect_generic_values(&s.table_b, "address", 10, 0.01).unwrap();
    let (b_clean, b_dirty) = isolate_rows(&s.table_b, "address", &generic_b).unwrap();
    magellan_obs::log!(info, 
        "isolated: A {} clean / {} dirty; B {} clean / {} dirty",
        a_clean.nrows(),
        a_dirty.nrows(),
        b_clean.nrows(),
        b_dirty.nrows()
    );

    // Gold restricted to the clean sides.
    let a_ids: std::collections::HashSet<String> = a_clean
        .rows()
        .map(|r| a_clean.value_by_name(r, "id").unwrap().display_string())
        .collect();
    let b_ids: std::collections::HashSet<String> = b_clean
        .rows()
        .map(|r| b_clean.value_by_name(r, "id").unwrap().display_string())
        .collect();
    let gold_clean: std::collections::HashSet<(String, String)> = s
        .gold
        .iter()
        .filter(|(x, y)| a_ids.contains(x) && b_ids.contains(y))
        .cloned()
        .collect();

    // --- Run 2: the cleaned task. ---
    let mut labeler = OracleLabeler::new(gold_clean.clone(), "id", "id");
    let clean_report = run_falcon(&a_clean, &b_clean, "id", "id", &mut labeler, &cfg)
        .expect("falcon on cleaned vendors");
    let m_clean = magellan_core::evaluate::evaluate_matches(
        &clean_report.matches,
        &a_clean,
        &b_clean,
        "id",
        "id",
        &gold_clean,
    )
    .expect("score");
    magellan_obs::log!(info, "\nVendors (cleaned):    {m_clean}");
    magellan_obs::log!(info, 
        "\npaper shape: dirty F1 collapses; isolating the generic-address slice\n\
         recovers accuracy (Table 2's `Vendors` -> `Vendors (no Brazil)` rows)."
    );
    magellan_obs::log!(info, 
        "F1: {:.1}% -> {:.1}%  ({} rows routed back to the domain experts)",
        100.0 * m_dirty.f1(),
        100.0 * m_clean.f1(),
        a_dirty.nrows() + b_dirty.nrows()
    );
}
