//! Quickstart: match the paper's Fig. 1 toy tables end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the PyMatcher development-stage guide (Fig. 2) on the exact
//! two tables the paper's Fig. 1 shows, and recovers its two gold matches
//! (a1, b1) and (a3, b2).

use magellan_block::{Blocker, OverlapBlocker};
use magellan_core::evaluate::evaluate_matches;
use magellan_features::{extract_feature_matrix, generate_features};
use magellan_ml::{Dataset, DecisionTreeLearner, Learner};
use magellan_table::Catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The exact tables of Fig. 1.
    let scenario = magellan_datagen::domains::figure1_example();
    let (a, b) = (&scenario.table_a, &scenario.table_b);
    println!("{a}");
    println!("{b}");

    // Register key metadata in the catalog (the guide's "managing
    // metadata" step) — commands downstream re-validate it.
    let mut catalog = Catalog::new();
    catalog.set_key(a, "id")?;
    catalog.set_key(b, "id")?;

    // Block: keep pairs sharing at least one name token.
    let blocker = OverlapBlocker::words("name", 1);
    let candidates = blocker.block(a, b)?;
    println!(
        "blocker `{}` kept {} of {} cross pairs",
        blocker.name(),
        candidates.len(),
        a.nrows() * b.nrows()
    );
    let cand_table = candidates.to_table("C", a, b, &mut catalog)?;
    println!("{cand_table}");

    // Features: the automatic type-driven grid.
    let features = generate_features(a, b, &["id"])?;
    println!("generated {} features, e.g.:", features.len());
    for f in features.iter().take(3) {
        println!("  {}", f.name);
    }
    let matrix = extract_feature_matrix(candidates.pairs(), a, b, &features)?;

    // Label the candidates from the gold standard (in a real project this
    // is the human labeling step) and train a matcher.
    let labels: Vec<bool> = matrix
        .pairs
        .iter()
        .map(|&(ra, rb)| {
            let a_id = a.value_by_name(ra as usize, "id").unwrap().display_string();
            let b_id = b.value_by_name(rb as usize, "id").unwrap().display_string();
            scenario.is_match(&a_id, &b_id)
        })
        .collect();
    let mut train = Dataset::new(matrix.names.clone());
    for (row, &y) in matrix.rows.iter().zip(&labels) {
        train.push(row, y);
    }
    let matcher = DecisionTreeLearner::default().fit(&train);

    // Predict and evaluate.
    let predicted: magellan_block::CandidateSet = matrix
        .pairs
        .iter()
        .zip(&matrix.rows)
        .filter_map(|(&p, row)| matcher.predict(row).then_some(p))
        .collect();
    let ids = magellan_core::evaluate::pairs_to_ids(&predicted, a, b, "id", "id")?;
    println!("predicted matches:");
    for (x, y) in &ids {
        println!("  ({x}, {y})");
    }
    let metrics = evaluate_matches(&predicted, a, b, "id", "id", &scenario.gold)?;
    println!("{metrics}");
    assert!(ids.contains(&("a1".to_owned(), "b1".to_owned())));
    assert!(ids.contains(&("a3".to_owned(), "b2".to_owned())));
    Ok(())
}
