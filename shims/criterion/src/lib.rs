//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace ships a
//! tiny wall-clock harness that implements the criterion API subset its
//! benches use: [`Criterion::benchmark_group`], [`BenchmarkGroup`] with
//! `sample_size` / `bench_function` / `bench_with_input` / `finish`,
//! [`BenchmarkId::new`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Each benchmark is warmed up once, run for `sample_size` samples, and a
//! `name ... median x per iter (n samples)` line is printed. No statistics
//! beyond the median, no HTML reports, no comparison against baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier — defers to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A named benchmark within a group (`group/name/param`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter rendering.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }
}

/// Runs the measured closure and collects samples.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `f`, one invocation per sample.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f()); // warm-up
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
        }
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    b.samples.sort_unstable();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or(Duration::ZERO);
    println!(
        "{label:<56} median {median:>12?} ({} samples)",
        b.samples.len()
    );
}

/// A set of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure under `group/name`.
    pub fn bench_function(
        &mut self,
        name: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, name),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Benchmark a closure that receives `input`, under the given id.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// End the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Apply CLI configuration (accepted and ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmark a closure under a bare name.
    pub fn bench_function(
        &mut self,
        name: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.to_string(), 10, &mut f);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run() {
        let mut c = Criterion::default().configure_from_args();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3);
            g.bench_function("direct", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert!(ran >= 3, "bencher must call the closure");
    }
}
