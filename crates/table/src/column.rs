//! Typed, nullable column storage.

use crate::error::TableError;
use crate::value::{Dtype, Value, ValueRef};
use crate::Result;

/// A single column of a [`crate::Table`]: one typed vector of nullable
/// cells. Column-oriented storage keeps the hot EM loops (tokenize a string
/// attribute, compare a numeric attribute) cache-friendly and allocation-free.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Boolean column.
    Bool(Vec<Option<bool>>),
    /// Integer column.
    Int(Vec<Option<i64>>),
    /// Float column.
    Float(Vec<Option<f64>>),
    /// String column.
    Str(Vec<Option<String>>),
}

impl Column {
    /// An empty column of the given dtype with reserved capacity.
    pub fn with_capacity(dtype: Dtype, cap: usize) -> Self {
        match dtype {
            Dtype::Bool => Column::Bool(Vec::with_capacity(cap)),
            Dtype::Int => Column::Int(Vec::with_capacity(cap)),
            Dtype::Float => Column::Float(Vec::with_capacity(cap)),
            Dtype::Str => Column::Str(Vec::with_capacity(cap)),
        }
    }

    /// The dtype of the column.
    pub fn dtype(&self) -> Dtype {
        match self {
            Column::Bool(_) => Dtype::Bool,
            Column::Int(_) => Dtype::Int,
            Column::Float(_) => Dtype::Float,
            Column::Str(_) => Dtype::Str,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            Column::Bool(v) => v.len(),
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// True if the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow the cell at `row`.
    pub fn get(&self, row: usize) -> ValueRef<'_> {
        match self {
            Column::Bool(v) => v[row].map_or(ValueRef::Null, ValueRef::Bool),
            Column::Int(v) => v[row].map_or(ValueRef::Null, ValueRef::Int),
            Column::Float(v) => v[row].map_or(ValueRef::Null, ValueRef::Float),
            Column::Str(v) => v[row]
                .as_deref()
                .map_or(ValueRef::Null, ValueRef::Str),
        }
    }

    /// Append a value, enforcing the dtype. `Value::Null` fits any column.
    pub fn push(&mut self, value: Value, column_name: &str) -> Result<()> {
        match (self, value) {
            (Column::Bool(v), Value::Bool(b)) => v.push(Some(b)),
            (Column::Int(v), Value::Int(i)) => v.push(Some(i)),
            (Column::Float(v), Value::Float(f)) => v.push(Some(f)),
            // Int literals are accepted into float columns; EM feature tables
            // are float-typed but generators often produce whole numbers.
            (Column::Float(v), Value::Int(i)) => v.push(Some(i as f64)),
            (Column::Str(v), Value::Str(s)) => v.push(Some(s)),
            (Column::Bool(v), Value::Null) => v.push(None),
            (Column::Int(v), Value::Null) => v.push(None),
            (Column::Float(v), Value::Null) => v.push(None),
            (Column::Str(v), Value::Null) => v.push(None),
            (col, value) => {
                return Err(TableError::TypeMismatch {
                    column: column_name.to_owned(),
                    expected: col.dtype(),
                    found: value.dtype().expect("null handled above"),
                })
            }
        }
        Ok(())
    }

    /// Overwrite the cell at `row`.
    pub fn set(&mut self, row: usize, value: Value, column_name: &str) -> Result<()> {
        match (self, value) {
            (Column::Bool(v), Value::Bool(b)) => v[row] = Some(b),
            (Column::Int(v), Value::Int(i)) => v[row] = Some(i),
            (Column::Float(v), Value::Float(f)) => v[row] = Some(f),
            (Column::Float(v), Value::Int(i)) => v[row] = Some(i as f64),
            (Column::Str(v), Value::Str(s)) => v[row] = Some(s),
            (Column::Bool(v), Value::Null) => v[row] = None,
            (Column::Int(v), Value::Null) => v[row] = None,
            (Column::Float(v), Value::Null) => v[row] = None,
            (Column::Str(v), Value::Null) => v[row] = None,
            (col, value) => {
                return Err(TableError::TypeMismatch {
                    column: column_name.to_owned(),
                    expected: col.dtype(),
                    found: value.dtype().expect("null handled above"),
                })
            }
        }
        Ok(())
    }

    /// Append all cells of a same-dtype column (the batch-flush path of
    /// streaming ingest). Panics on dtype mismatch — callers validate.
    pub fn append(&mut self, other: Column) {
        match (self, other) {
            (Column::Bool(v), Column::Bool(mut o)) => v.append(&mut o),
            (Column::Int(v), Column::Int(mut o)) => v.append(&mut o),
            (Column::Float(v), Column::Float(mut o)) => v.append(&mut o),
            (Column::Str(v), Column::Str(mut o)) => v.append(&mut o),
            _ => panic!("Column::append dtype mismatch (caller must validate)"),
        }
    }

    /// Number of null cells.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Bool(v) => v.iter().filter(|c| c.is_none()).count(),
            Column::Int(v) => v.iter().filter(|c| c.is_none()).count(),
            Column::Float(v) => v.iter().filter(|c| c.is_none()).count(),
            Column::Str(v) => v.iter().filter(|c| c.is_none()).count(),
        }
    }

    /// A new column containing the cells at `rows`, in order. Indices may
    /// repeat (sampling with replacement) and must be in bounds.
    pub fn take(&self, rows: &[usize]) -> Column {
        match self {
            Column::Bool(v) => Column::Bool(rows.iter().map(|&r| v[r]).collect()),
            Column::Int(v) => Column::Int(rows.iter().map(|&r| v[r]).collect()),
            Column::Float(v) => Column::Float(rows.iter().map(|&r| v[r]).collect()),
            Column::Str(v) => Column::Str(rows.iter().map(|&r| v[r].clone()).collect()),
        }
    }

    /// Direct access to string cells (hot path for tokenizers/blockers).
    pub fn as_str_slice(&self) -> Option<&[Option<String>]> {
        match self {
            Column::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Direct access to integer cells.
    pub fn as_int_slice(&self) -> Option<&[Option<i64>]> {
        match self {
            Column::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Direct access to float cells.
    pub fn as_float_slice(&self) -> Option<&[Option<f64>]> {
        match self {
            Column::Float(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut c = Column::with_capacity(Dtype::Str, 2);
        c.push(Value::from("x"), "s").unwrap();
        c.push(Value::Null, "s").unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0), ValueRef::Str("x"));
        assert!(c.get(1).is_null());
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut c = Column::with_capacity(Dtype::Int, 1);
        let err = c.push(Value::from("oops"), "n").unwrap_err();
        assert!(matches!(err, TableError::TypeMismatch { .. }));
    }

    #[test]
    fn int_coerces_into_float_column() {
        let mut c = Column::with_capacity(Dtype::Float, 1);
        c.push(Value::Int(3), "f").unwrap();
        assert_eq!(c.get(0), ValueRef::Float(3.0));
    }

    #[test]
    fn take_duplicates_and_reorders() {
        let mut c = Column::with_capacity(Dtype::Int, 3);
        for i in 0..3 {
            c.push(Value::Int(i), "n").unwrap();
        }
        let t = c.take(&[2, 0, 2]);
        assert_eq!(t.get(0), ValueRef::Int(2));
        assert_eq!(t.get(1), ValueRef::Int(0));
        assert_eq!(t.get(2), ValueRef::Int(2));
    }

    #[test]
    fn set_overwrites_and_nulls() {
        let mut c = Column::with_capacity(Dtype::Bool, 1);
        c.push(Value::Bool(true), "b").unwrap();
        c.set(0, Value::Null, "b").unwrap();
        assert!(c.get(0).is_null());
        assert!(c.set(0, Value::Int(1), "b").is_err());
    }
}
