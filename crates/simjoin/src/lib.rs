//! # magellan-simjoin
//!
//! Scalable string similarity joins: the Rust analog of Magellan's
//! `py_stringsimjoin` package (Appendix A), which the paper notes was so
//! broadly useful it ended up installed on Kaggle.
//!
//! Given two collections of strings, a tokenizer, a similarity measure, and
//! a threshold, a join returns every cross pair whose similarity meets the
//! threshold — without examining the full cross product. The classic
//! filter-verify architecture is used:
//!
//! 1. **tokenize** both sides with set semantics and re-map tokens to
//!    integer ids ordered rarest-first ([`collection`]);
//! 2. **size filter**: discard pairs whose token-set sizes alone make the
//!    threshold unreachable ([`filters`]);
//! 3. **prefix filter**: index only each set's short *prefix* of rarest
//!    tokens; pairs sharing no prefix token cannot reach the threshold
//!    ([`filters`], [`index`]);
//! 4. **verify**: compute the exact similarity on the surviving candidates
//!    ([`join`], [`verify`]).
//!
//! The join is an **adaptive CSR engine**: a flat token-id-indexed
//! postings layout with size-sorted lists ([`index`]), PPJoin-style
//! accumulating positional + suffix pruning, bounded galloping
//! verification ([`verify`]), and cost-based probe-side selection
//! ([`join::ProbeSide`]) — all under an output-identical contract pinned
//! against the preserved pre-CSR engine ([`reference`]). Per-stage kill
//! counters surface through [`magellan_par::JoinStats`].
//!
//! The **out-of-core tier** ([`shard`]) hash-partitions the indexed side
//! into K shards (splitmix64 of each record's rarest token), builds and
//! probes one shard index at a time under a fixed memory budget
//! ([`shard::shards_for_budget`]), and merges candidate streams into the
//! same `(l, r)`-sorted order — bit-identical to the monolithic join at
//! any (K, worker count).
//!
//! The **incremental tier** ([`incremental`]) maintains the same join
//! under record insert/delete/update: tombstoned CSR postings + a tail
//! overlay, periodic compaction, and delta probes that emit signed
//! [`incremental::PairDelta`]s in O(delta) — with the live view held
//! bit-identical to a from-scratch batch join after every batch.
//!
//! Supported measures: Jaccard, cosine, Dice, absolute overlap
//! ([`join::set_sim_join`]) and edit distance ([`editjoin::edit_distance_join`]).
//! Every join has a multi-threaded variant used by the production-stage
//! executor (the `magellan-par` work-stealing pool — the paper's Dask
//! role); parallel output is bit-identical to serial for any worker count.

#![warn(missing_docs)]

pub mod collection;
pub mod editjoin;
pub mod filters;
pub mod incremental;
pub mod index;
pub mod join;
pub mod reference;
pub mod shard;
pub mod verify;

pub use collection::TokenizedCollection;
pub use incremental::{IncrementalJoin, PairDelta, RecordMutation, Side};
pub use join::{
    join_tokenized, join_tokenized_par, join_tokenized_par_side, join_tokenized_stats,
    set_sim_join, set_sim_join_parallel, set_sim_join_stats, JoinPair, ProbeSide, SetSimMeasure,
};
pub use magellan_par::JoinStats;
pub use reference::join_tokenized_hashmap;
pub use shard::{join_tokenized_sharded, shards_for_budget, ShardStats};
pub use verify::{overlap_sorted_bounded, overlap_sorted_bounded_with};
