//! The bench-regression observatory.
//!
//! Every `exp_*` binary emits a `BENCH_<name>.json` summary; the repo
//! checks in one baseline per experiment. This module turns the prose
//! performance floors of ROADMAP.md (simjoin ≥2×, feature cache ≥3×,
//! incremental ≥10×, emtbl scan ≥2×, obs overhead <50%) into a
//! machine-enforced gate:
//!
//! * **floors** — every metric in [`registry`] with a `bound` must meet
//!   it in the checked-in baseline (`check-baselines`, run in CI);
//! * **regressions** — a fresh run compared against the baseline must
//!   not regress any registered metric beyond its direction-aware
//!   relative tolerance (`check`, run locally after regenerating);
//! * **history** — every recorded run appends one compacted JSON line to
//!   `results/history/<experiment>.jsonl`, so the perf trajectory across
//!   PRs is queryable instead of being overwritten in place.
//!
//! JSON parsing rides on `magellan_obs::parse_json` — no external
//! dependency, same parser the trace validators use.

use magellan_obs::{parse_json, Json};
use std::fmt::Write as _;
use std::path::Path;

/// Which way "better" points for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger is better (speedups, throughput).
    HigherIsBetter,
    /// Smaller is better (overhead, latency, pause times).
    LowerIsBetter,
}

/// One gated metric: where it lives, which way is better, how much
/// relative movement the gate tolerates, and an optional hard bound
/// (minimum for higher-is-better, maximum for lower-is-better).
#[derive(Debug, Clone)]
pub struct MetricSpec {
    /// The `experiment` field of the owning BENCH file.
    pub experiment: &'static str,
    /// Dotted path into the JSON; numeric segments index arrays
    /// (`"results.0.speedup"`, `"scan.speedup"`).
    pub path: &'static str,
    /// Which way is better.
    pub direction: Direction,
    /// Allowed relative regression vs. the baseline (0.35 = 35%).
    pub rel_tol: f64,
    /// Hard bound enforced on every run *and* on the checked-in
    /// baseline itself — the ROADMAP floors, machine-enforced.
    pub bound: Option<f64>,
}

/// One gate failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Metric that failed.
    pub path: String,
    /// What went wrong, human-readable.
    pub message: String,
}

/// The registered gates, one entry per metric. Floors mirror ROADMAP.md;
/// tolerances are deliberately loose (perf is machine-dependent — the
/// gate catches rot, not noise).
pub fn registry() -> Vec<MetricSpec> {
    use Direction::*;
    let m = |experiment, path, direction, rel_tol, bound| MetricSpec {
        experiment,
        path,
        direction,
        rel_tol,
        bound,
    };
    vec![
        // simjoin: CSR prefix join ≥2× over the hashmap join at w=1.
        m("simjoin", "skewed_speedup_w1", HigherIsBetter, 0.35, Some(2.0)),
        // feature cache: prepared extraction ≥3× over scalar at w=1.
        m("feature_extraction", "results.0.speedup", HigherIsBetter, 0.35, Some(3.0)),
        // incremental engine: delta batch ≥10× over full rebuild.
        m("incremental", "delta_vs_rebuild_speedup", HigherIsBetter, 0.35, Some(10.0)),
        m("incremental", "updates_per_sec", HigherIsBetter, 0.60, None),
        // out-of-core: emtbl scan ≥2× over CSV re-parse.
        m("outofcore", "scan.speedup", HigherIsBetter, 0.35, Some(2.0)),
        // flattened forest: never slower than the arena walker at w=1.
        m("forest_inference", "speedup_w1", HigherIsBetter, 0.35, Some(1.0)),
        // observability: measured overhead non-negative and under the 50%
        // guard. Two bounds, no relative gate — a clamped noisy percentage
        // has no meaningful "relative regression".
        m("obs_overhead", "overhead_pct", LowerIsBetter, f64::INFINITY, Some(50.0)),
        m("obs_overhead", "overhead_pct", HigherIsBetter, f64::INFINITY, Some(0.0)),
        // service layer: admission throughput (loose — pure wall clock).
        m("service_layer", "tenants_per_sec", HigherIsBetter, 0.60, None),
    ]
}

/// The checked-in baseline file for an experiment name.
pub fn baseline_file(experiment: &str) -> Option<&'static str> {
    Some(match experiment {
        "simjoin" => "BENCH_simjoin.json",
        "feature_extraction" => "BENCH_feature_extraction.json",
        "incremental" => "BENCH_incremental.json",
        "outofcore" => "BENCH_outofcore.json",
        "forest_inference" => "BENCH_forest_inference.json",
        "obs_overhead" => "BENCH_obs.json",
        "service_layer" => "BENCH_service.json",
        _ => return None,
    })
}

/// Resolve a dotted path (numeric segments index arrays) to an `f64`.
pub fn lookup(json: &Json, path: &str) -> Option<f64> {
    let mut cur = json;
    for seg in path.split('.') {
        cur = match seg.parse::<usize>() {
            Ok(i) => cur.idx(i)?,
            Err(_) => cur.get(seg)?,
        };
    }
    cur.as_f64()
}

/// The `experiment` field of a parsed BENCH file.
pub fn experiment_name(json: &Json) -> Option<String> {
    json.get("experiment")?.as_str().map(str::to_owned)
}

fn bound_violation(spec: &MetricSpec, v: f64) -> Option<Violation> {
    let b = spec.bound?;
    let ok = match spec.direction {
        Direction::HigherIsBetter => v >= b,
        Direction::LowerIsBetter => v <= b,
    };
    let sense = match spec.direction {
        Direction::HigherIsBetter => "under floor",
        Direction::LowerIsBetter => "over ceiling",
    };
    (!ok).then(|| Violation {
        path: spec.path.to_owned(),
        message: format!("{} = {v} is {sense} {b}", spec.path),
    })
}

/// Enforce hard bounds on one BENCH file (`check-baselines` mode).
pub fn check_bounds(json: &Json) -> Vec<Violation> {
    let Some(exp) = experiment_name(json) else {
        return vec![Violation {
            path: "experiment".into(),
            message: "missing `experiment` field".into(),
        }];
    };
    let mut out = Vec::new();
    for spec in registry().iter().filter(|s| s.experiment == exp) {
        match lookup(json, spec.path) {
            Some(v) => out.extend(bound_violation(spec, v)),
            None => out.push(Violation {
                path: spec.path.to_owned(),
                message: format!("registered metric `{}` missing from file", spec.path),
            }),
        }
    }
    out
}

/// Compare a fresh run against its baseline: hard bounds on the new run
/// plus direction-aware relative-tolerance regression checks.
pub fn compare(baseline: &Json, current: &Json) -> Vec<Violation> {
    let mut out = check_bounds(current);
    let Some(exp) = experiment_name(current) else {
        return out;
    };
    if experiment_name(baseline).as_deref() != Some(exp.as_str()) {
        out.push(Violation {
            path: "experiment".into(),
            message: "baseline and current are different experiments".into(),
        });
        return out;
    }
    for spec in registry().iter().filter(|s| s.experiment == exp) {
        let (Some(base), Some(cur)) =
            (lookup(baseline, spec.path), lookup(current, spec.path))
        else {
            continue; // missing-metric case already reported by bounds
        };
        if base == 0.0 {
            continue;
        }
        let regression = match spec.direction {
            Direction::HigherIsBetter => (base - cur) / base.abs(),
            Direction::LowerIsBetter => (cur - base) / base.abs(),
        };
        if regression > spec.rel_tol {
            out.push(Violation {
                path: spec.path.to_owned(),
                message: format!(
                    "{}: {cur} regressed {:.1}% from baseline {base} (tolerance {:.0}%)",
                    spec.path,
                    regression * 100.0,
                    spec.rel_tol * 100.0
                ),
            });
        }
    }
    out
}

/// Append one compacted line for this run to
/// `<history_dir>/<experiment>.jsonl` (append-only run history).
pub fn record_history(history_dir: &Path, bench_text: &str) -> Result<String, String> {
    let json = parse_json(bench_text)?;
    let exp = experiment_name(&json).ok_or("missing `experiment` field")?;
    let compact: String = {
        // Strip insignificant whitespace without reserializing: copy
        // everything except whitespace outside strings.
        let mut out = String::with_capacity(bench_text.len());
        let mut in_str = false;
        let mut escaped = false;
        for c in bench_text.chars() {
            if in_str {
                out.push(c);
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
            } else if c == '"' {
                in_str = true;
                out.push(c);
            } else if !c.is_whitespace() {
                out.push(c);
            }
        }
        out
    };
    std::fs::create_dir_all(history_dir).map_err(|e| e.to_string())?;
    let path = history_dir.join(format!("{exp}.jsonl"));
    let mut line = compact;
    line.push('\n');
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| e.to_string())?;
    f.write_all(line.as_bytes()).map_err(|e| e.to_string())?;
    Ok(path.display().to_string())
}

/// Render a human-readable report for a set of violations.
pub fn report(title: &str, violations: &[Violation]) -> String {
    let mut out = String::new();
    if violations.is_empty() {
        let _ = writeln!(out, "benchdiff: {title}: OK");
    } else {
        let _ = writeln!(out, "benchdiff: {title}: {} violation(s)", violations.len());
        for v in violations {
            let _ = writeln!(out, "  REGRESSION {}", v.message);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{"experiment":"incremental","delta_vs_rebuild_speedup":28.8,"updates_per_sec":77245}"#;

    #[test]
    fn lookup_walks_objects_and_arrays() {
        let j = parse_json(r#"{"a":{"b":[{"c":2.5}]}}"#).unwrap();
        assert_eq!(lookup(&j, "a.b.0.c"), Some(2.5));
        assert_eq!(lookup(&j, "a.b.1.c"), None);
        assert_eq!(lookup(&j, "a.x"), None);
    }

    #[test]
    fn bounds_pass_good_and_fail_regressed() {
        let good = parse_json(GOOD).unwrap();
        assert!(check_bounds(&good).is_empty());
        let bad = parse_json(
            r#"{"experiment":"incremental","delta_vs_rebuild_speedup":4.0,"updates_per_sec":77245}"#,
        )
        .unwrap();
        let v = check_bounds(&bad);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("under floor 10"));
    }

    #[test]
    fn compare_is_direction_aware() {
        let base = parse_json(GOOD).unwrap();
        // Better in both metrics: no violation.
        let better = parse_json(
            r#"{"experiment":"incremental","delta_vs_rebuild_speedup":40.0,"updates_per_sec":99000}"#,
        )
        .unwrap();
        assert!(compare(&base, &better).is_empty());
        // updates_per_sec down 70% (> 60% tol) but still above no floor:
        // exactly one regression violation.
        let worse = parse_json(
            r#"{"experiment":"incremental","delta_vs_rebuild_speedup":28.0,"updates_per_sec":23000}"#,
        )
        .unwrap();
        let v = compare(&base, &worse);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("updates_per_sec"));
    }

    #[test]
    fn obs_overhead_ceiling_is_lower_is_better() {
        let ok = parse_json(r#"{"experiment":"obs_overhead","overhead_pct":12.0}"#).unwrap();
        assert!(check_bounds(&ok).is_empty());
        let bad = parse_json(r#"{"experiment":"obs_overhead","overhead_pct":61.0}"#).unwrap();
        assert_eq!(check_bounds(&bad).len(), 1);
    }

    #[test]
    fn history_appends_compact_lines() {
        let dir = std::env::temp_dir().join(format!("magellan_benchdiff_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let pretty = "{\n  \"experiment\": \"incremental\",\n  \"delta_vs_rebuild_speedup\": 28.8,\n  \"updates_per_sec\": 77245\n}";
        let p1 = record_history(&dir, pretty).unwrap();
        let p2 = record_history(&dir, pretty).unwrap();
        assert_eq!(p1, p2);
        let body = std::fs::read_to_string(&p1).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"experiment":"incremental","delta_vs_rebuild_speedup":28.8,"updates_per_sec":77245}"#
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_checked_in_baseline_has_a_file_mapping() {
        for spec in registry() {
            assert!(
                baseline_file(spec.experiment).is_some(),
                "no BENCH file mapped for {}",
                spec.experiment
            );
        }
    }
}
