//! Figure 2 — the development-stage how-to guide, narrated step by step.
//!
//! The figure's story: tables too big to iterate on are down-sampled
//! (1M → 100K in the paper; scaled here), the user experiments with
//! blockers X and Y and picks one, blocks, samples and labels, runs cross
//! validation over two learners (the figure shows F1 = 0.93 for the
//! winner), selects the matcher, predicts over C, and quality-checks.

use magellan_bench::score;
use magellan_block::{AttrEquivalenceBlocker, Blocker, OverlapBlocker};
use magellan_core::labeling::OracleLabeler;
use magellan_core::pipeline::{run_development_stage, DevConfig};
use magellan_datagen::domains::persons;
use magellan_datagen::{DirtModel, ScenarioConfig};
use magellan_features::generate_features;
use magellan_ml::{DecisionTreeLearner, Learner, RandomForestLearner};

fn main() {
    // Experiment narration is leveled logging: MAGELLAN_LOG=off silences it.
    magellan_obs::init_bin_logging(magellan_obs::Level::Info);
    // Scaled stand-in for the figure's two 1M-tuple tables.
    let s = persons(&ScenarioConfig {
        size_a: 8_000,
        size_b: 8_000,
        n_matches: 2_500,
        dirt: DirtModel::light(),
        seed: 42,
    });
    let (a, b) = (&s.table_a, &s.table_b);
    magellan_obs::log!(info, "Fig. 2 walkthrough — development stage");
    magellan_obs::log!(info, "input tables A: {} tuples, B: {} tuples", a.nrows(), b.nrows());

    let features = generate_features(a, b, &["id"]).expect("features");
    let mut labeler = OracleLabeler::new(s.gold.clone(), "id", "id");
    // The figure's two matchers U and V.
    let u = DecisionTreeLearner::default();
    let v = RandomForestLearner {
        n_trees: 12,
        ..Default::default()
    };
    let learners: Vec<&dyn Learner> = vec![&u, &v];
    // The figure's two blockers X and Y.
    let blockers: Vec<Box<dyn Blocker>> = vec![
        Box::new(OverlapBlocker::words("name", 1)),
        Box::new(AttrEquivalenceBlocker::on("city")),
    ];
    let cfg = DevConfig {
        down_sample_to: Some(2_000), // the "down sample" arrow of the figure
        sample_size: 500,            // |S| labeled pairs
        ..Default::default()
    };
    let (workflow, report) =
        run_development_stage(a, b, blockers, features, &learners, &mut labeler, &cfg)
            .expect("development stage");

    magellan_obs::log!(info, "\nstep 1  down sample: A' , B' = 2000-tuple working tables");
    magellan_obs::log!(info, "step 2  blocker experiments:");
    for c in &report.blocker_choices {
        magellan_obs::log!(info, 
            "        {:45} |C| = {:7}, est. recall {:.2}",
            c.name, c.n_candidates, c.est_recall
        );
    }
    magellan_obs::log!(info, "        selected blocker: {}", report.chosen_blocker);
    magellan_obs::log!(info, "step 3  blocked: |C| = {}", report.n_candidates);
    magellan_obs::log!(info, 
        "step 4  sampled + labeled {} pairs ({:.0}% positive)",
        report.questions,
        100.0 * report.label_positive_rate
    );
    magellan_obs::log!(info, "step 5  cross validation:");
    for cv in &report.cv_reports {
        magellan_obs::log!(info, 
            "        matcher {:20} F1 = {:.2} (P {:.2} / R {:.2})",
            cv.learner,
            cv.mean_f1(),
            cv.mean_precision(),
            cv.mean_recall()
        );
    }
    magellan_obs::log!(info, "        selected matcher: {}", report.chosen_matcher);
    magellan_obs::log!(info, "step 6  quality check on holdout: {}", report.holdout);

    // Production: run the captured workflow over the full tables.
    let exec = magellan_core::exec::ProductionExecutor::new(4);
    let prod = exec.run(&workflow, a, b).expect("production run");
    let m = score(&prod.matches, a, b, &s.gold);
    magellan_obs::log!(info, 
        "\nproduction stage: {} candidates on full tables, {:?} machine time, {}",
        prod.n_candidates,
        prod.timings.total(),
        m
    );
    magellan_obs::log!(info, "\npaper shape: winning matcher CV F1 in the ~0.9 range; end-to-end P/R high.");
}
