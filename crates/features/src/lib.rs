//! # magellan-features
//!
//! Feature engineering for EM: the "Creating Feature Vectors" step of the
//! PyMatcher guide (Table 3), including the two "pain point" tools the
//! paper names — **automatic feature creation** and **manual (declarative)
//! feature creation**.
//!
//! Given two tables, [`autogen::generate_features`] infers each shared
//! attribute's type (numeric / boolean / short / medium / long string) and
//! instantiates the appropriate tokenizer × similarity-measure grid,
//! producing features named exactly the way the paper prints them, e.g.
//! `jaccard(3gram(A.name), 3gram(B.name))`.
//!
//! The generated feature set is an ordinary `Vec<Feature>` that users
//! "delete features from ... and declaratively define more features then
//! add them" (§4.1's customizability principle) — a [`feature::Feature`]
//! is plain data plus a compute function, so the set is fully editable.
//!
//! [`fvtable::extract_feature_matrix`] evaluates a feature set over
//! candidate row pairs, yielding the dense matrix the matchers in
//! `magellan-ml` consume. Missing attribute values produce `NaN` entries,
//! which the learners are specified to handle.
//!
//! Batch extraction runs through the [`prepared`] layer: a
//! [`prepared::PreparedPair`] cache tokenizes each referenced record
//! **once** per distinct `(attribute, tokenizer)` combination, interning
//! tokens into dense `u32` ids so the set measures become allocation-free
//! merge intersections — bit-identical to the per-pair scalar path, which
//! is kept as [`fvtable::extract_feature_matrix_scalar`] for reference and
//! benchmarking.

#![warn(missing_docs)]

pub mod autogen;
pub mod feature;
pub mod fvtable;
pub mod prepared;
pub mod types;

pub use autogen::generate_features;
pub use feature::{Feature, FeatureKind, TokSpecF};
pub use fvtable::{
    extract_feature_matrix, extract_feature_matrix_par, extract_feature_matrix_scalar,
    extract_feature_matrix_scalar_par, FeatureMatrix,
};
pub use prepared::{extract_with_prepared, FeaturePlan, PreparedPair, StreamingPreparedPair};
pub use types::{infer_attr_type, AttrType};
