//! Linear models: logistic regression and linear SVM, both trained with
//! mini-batch SGD over standardized features.
//!
//! Standardization statistics are learned at fit time and baked into the
//! classifier, so callers never pre-scale. `NaN` features are imputed as
//! the feature's training mean (i.e. 0 after standardization).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::model::{Classifier, Learner};

/// Per-feature standardization fitted on training data.
#[derive(Debug, Clone)]
struct Scaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Scaler {
    fn fit(data: &Dataset) -> Self {
        let k = data.n_features();
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for i in 0..data.len() {
            for (j, &x) in data.row(i).iter().enumerate() {
                if !x.is_nan() {
                    sums[j] += x;
                    counts[j] += 1;
                }
            }
        }
        let means: Vec<f64> = sums
            .iter()
            .zip(&counts)
            .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
            .collect();
        let mut sq = vec![0.0f64; k];
        for i in 0..data.len() {
            for (j, &x) in data.row(i).iter().enumerate() {
                if !x.is_nan() {
                    sq[j] += (x - means[j]).powi(2);
                }
            }
        }
        let stds: Vec<f64> = sq
            .iter()
            .zip(&counts)
            .map(|(s, &c)| {
                if c == 0 {
                    1.0
                } else {
                    let v = (s / c as f64).sqrt();
                    if v < 1e-12 {
                        1.0
                    } else {
                        v
                    }
                }
            })
            .collect();
        Scaler { means, stds }
    }

    fn transform_into(&self, row: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(row.iter().enumerate().map(|(j, &x)| {
            if x.is_nan() {
                0.0
            } else {
                (x - self.means[j]) / self.stds[j]
            }
        }));
    }
}

/// A trained linear decision function `w·x + b` behind a link.
#[derive(Debug, Clone)]
pub struct LinearClassifier {
    weights: Vec<f64>,
    bias: f64,
    scaler: Scaler,
    /// Sigmoid output (logistic) vs. margin squashing (SVM).
    logistic: bool,
}

impl LinearClassifier {
    /// Raw decision value `w·x + b` on the standardized example.
    pub fn decision(&self, row: &[f64]) -> f64 {
        let mut z = Vec::with_capacity(row.len());
        self.scaler.transform_into(row, &mut z);
        self.bias
            + self
                .weights
                .iter()
                .zip(&z)
                .map(|(w, x)| w * x)
                .sum::<f64>()
    }

    /// Learned weights (standardized space).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Classifier for LinearClassifier {
    fn predict_proba(&self, row: &[f64]) -> f64 {
        let d = self.decision(row);
        if self.logistic {
            1.0 / (1.0 + (-d).exp())
        } else {
            // Squash the SVM margin through a logistic link so the output
            // is probability-like; the 0.5 operating point is the margin 0.
            1.0 / (1.0 + (-2.0 * d).exp())
        }
    }
}

/// L2-regularized logistic regression trained with mini-batch SGD.
#[derive(Debug, Clone)]
pub struct LogisticRegressionLearner {
    /// Full passes over the data.
    pub epochs: usize,
    /// Initial learning rate (decays as `1/(1+t·decay)`).
    pub learning_rate: f64,
    /// L2 penalty strength.
    pub l2: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for LogisticRegressionLearner {
    fn default() -> Self {
        LogisticRegressionLearner {
            epochs: 60,
            learning_rate: 0.3,
            l2: 1e-4,
            seed: 7,
        }
    }
}

impl Learner for LogisticRegressionLearner {
    fn name(&self) -> &str {
        "logistic_regression"
    }

    fn fit(&self, data: &Dataset) -> Box<dyn Classifier> {
        Box::new(fit_linear(
            data,
            self.epochs,
            self.learning_rate,
            self.l2,
            self.seed,
            true,
        ))
    }
}

/// Linear SVM (hinge loss) trained with SGD (Pegasos-style).
#[derive(Debug, Clone)]
pub struct LinearSvmLearner {
    /// Full passes over the data.
    pub epochs: usize,
    /// Initial learning rate.
    pub learning_rate: f64,
    /// L2 penalty strength.
    pub l2: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for LinearSvmLearner {
    fn default() -> Self {
        LinearSvmLearner {
            epochs: 60,
            learning_rate: 0.3,
            l2: 1e-4,
            seed: 7,
        }
    }
}

impl Learner for LinearSvmLearner {
    fn name(&self) -> &str {
        "linear_svm"
    }

    fn fit(&self, data: &Dataset) -> Box<dyn Classifier> {
        Box::new(fit_linear(
            data,
            self.epochs,
            self.learning_rate,
            self.l2,
            self.seed,
            false,
        ))
    }
}

fn fit_linear(
    data: &Dataset,
    epochs: usize,
    lr0: f64,
    l2: f64,
    seed: u64,
    logistic: bool,
) -> LinearClassifier {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let scaler = Scaler::fit(data);
    let k = data.n_features();
    let mut w = vec![0.0f64; k];
    let mut b = 0.0f64;
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut z = Vec::with_capacity(k);
    let mut t = 0usize;
    for _ in 0..epochs {
        order.shuffle(&mut rng);
        for &i in &order {
            let lr = lr0 / (1.0 + 0.01 * t as f64);
            t += 1;
            scaler.transform_into(data.row(i), &mut z);
            let y = if data.label(i) { 1.0 } else { -1.0 };
            let margin: f64 = b + w.iter().zip(&z).map(|(w, x)| w * x).sum::<f64>();
            // Gradient of the per-example loss wrt the decision value.
            let g = if logistic {
                // d/dm log(1 + e^{-ym}) = -y * sigmoid(-ym)
                -y / (1.0 + (y * margin).exp())
            } else if y * margin < 1.0 {
                -y
            } else {
                0.0
            };
            for (wj, xj) in w.iter_mut().zip(&z) {
                *wj -= lr * (g * xj + l2 * *wj);
            }
            b -= lr * g;
        }
    }
    LinearClassifier {
        weights: w,
        bias: b,
        scaler,
        logistic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn blob_data(seed: u64, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::with_dims(2);
        for _ in 0..n {
            let pos: bool = rng.gen_bool(0.5);
            let (cx, cy) = if pos { (1.0, 1.0) } else { (-1.0, -1.0) };
            d.push(
                &[cx + rng.gen_range(-0.7..0.7), cy + rng.gen_range(-0.7..0.7)],
                pos,
            );
        }
        d
    }

    fn accuracy(c: &dyn Classifier, d: &Dataset) -> f64 {
        let correct = (0..d.len())
            .filter(|&i| c.predict(d.row(i)) == d.label(i))
            .count();
        correct as f64 / d.len() as f64
    }

    #[test]
    fn logistic_learns_separable_data() {
        let train = blob_data(1, 300);
        let test = blob_data(2, 150);
        let c = LogisticRegressionLearner::default().fit(&train);
        assert!(accuracy(c.as_ref(), &test) > 0.95);
    }

    #[test]
    fn svm_learns_separable_data() {
        let train = blob_data(3, 300);
        let test = blob_data(4, 150);
        let c = LinearSvmLearner::default().fit(&train);
        assert!(accuracy(c.as_ref(), &test) > 0.95);
    }

    #[test]
    fn probabilities_are_calibrated_directionally() {
        let train = blob_data(5, 300);
        let c = LogisticRegressionLearner::default().fit(&train);
        let deep_pos = c.predict_proba(&[2.0, 2.0]);
        let deep_neg = c.predict_proba(&[-2.0, -2.0]);
        assert!(deep_pos > 0.9, "{deep_pos}");
        assert!(deep_neg < 0.1, "{deep_neg}");
        for p in [deep_pos, deep_neg] {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn nan_features_impute_to_mean() {
        let train = blob_data(6, 300);
        let c = LogisticRegressionLearner::default().fit(&train);
        // All-NaN row = all-mean row: must produce a valid probability.
        let p = c.predict_proba(&[f64::NAN, f64::NAN]);
        assert!(p.is_finite() && (0.0..=1.0).contains(&p));
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let d = Dataset::from_rows(
            &[vec![5.0, 0.1], vec![5.0, 0.9], vec![5.0, 0.2], vec![5.0, 0.8]],
            &[false, true, false, true],
        );
        let c = LogisticRegressionLearner::default().fit(&d);
        assert!(c.predict(&[5.0, 0.95]));
        assert!(!c.predict(&[5.0, 0.05]));
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let d = blob_data(7, 100);
        let c1 = LogisticRegressionLearner::default().fit(&d);
        let c2 = LogisticRegressionLearner::default().fit(&d);
        assert_eq!(c1.predict_proba(d.row(0)), c2.predict_proba(d.row(0)));
    }
}
