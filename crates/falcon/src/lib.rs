//! # magellan-falcon — self-service EM (Falcon + CloudMatcher)
//!
//! The paper's second thrust (§5): EM for *lay users* who can only answer
//! "do these two tuples match?".
//!
//! * [`active`] — query-by-committee active learning over a random forest:
//!   each round labels the pool items the trees disagree on most (vote
//!   entropy), which is what keeps Table 2's question counts in the
//!   160–1200 range instead of thousands.
//! * [`rules`] — extraction of candidate blocking rules from every
//!   root→"No"-leaf path of the forest's trees (Fig. 4), precision
//!   evaluation against labeled pairs, and conversion of the executable
//!   subset into a `magellan-block` rule blocker.
//! * [`workflow`] — the end-to-end Falcon workflow (Fig. 3): sample →
//!   active-learn forest → extract + verify blocking rules → execute rules
//!   → active-learn matcher on the candidate set → predict at the vote
//!   threshold α.
//! * [`cloud`] — CloudMatcher: concurrent EM workflows decomposed into
//!   engine-tagged fragments (user-interaction / crowd / batch), a
//!   *metamanager* that interleaves fragments across workflows, and the
//!   cost/latency accounting behind Table 2's crowd-$, compute-$ and time
//!   columns.
//! * [`service`] — the multi-tenant CloudMatcher service core: admission
//!   control against Table 2 budget currencies, weighted fair-share +
//!   priority scheduling of DAG fragments across the three engines, and
//!   policy-driven graceful degradation (shed crowd → disable
//!   speculation → downgrade priority), all bit-deterministic.
//! * [`services`] — the Table 4 service registry (basic + composite).
//! * [`smurf`] — Smurf-lite: learning blocking rules *without* labels via
//!   confident pseudo-labels, reproducing the §5.3 claim of a 43–76%
//!   labeling-effort reduction at equal accuracy.

#![warn(missing_docs)]

pub mod active;
pub mod cloud;
pub mod rules;
pub mod service;
pub mod services;
pub mod smurf;
pub mod workflow;

pub use active::{active_learn, ActiveLearnConfig, ActiveLearnOutcome};
pub use cloud::{
    schedule_fragments, schedule_fragments_with_recovery, try_schedule_fragments,
    try_schedule_fragments_with_recovery, CloudMatcher, CostModel, Engine, Fragment,
    LabelingMode, ScheduleRecoveryOptions, ScheduleReport, ScheduleTelemetry, TaskOutcome,
    TaskSpec,
};
pub use service::{
    estimate_workload, Admission, DegradationPolicy, DegradationRule, DegradeAction,
    DegradeTrigger, MatchService, Priority, RejectReason, ServiceConfig, ServiceCostModel,
    ServiceReport, ServiceTelemetry, SyntheticTask, TenantQuota, TenantReport, TenantSpec,
    TenantSubmission, Workload, WorkloadEstimate,
};
pub use rules::{extract_blocking_rules, ExtractedRule};
pub use workflow::{run_falcon, FalconConfig, FalconReport};
