//! End-to-end phase costs: feature extraction, active-learning rounds, and
//! the production executor at several worker counts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use magellan_block::{Blocker, OverlapBlocker};
use magellan_core::exec::ProductionExecutor;
use magellan_core::labeling::{Labeler, OracleLabeler};
use magellan_core::pipeline::{run_development_stage, DevConfig};
use magellan_core::EmWorkflow;
use magellan_datagen::domains::persons;
use magellan_datagen::{DirtModel, ScenarioConfig};
use magellan_falcon::active::{active_learn, ActiveLearnConfig};
use magellan_features::{extract_feature_matrix, generate_features};
use magellan_ml::{Learner, RandomForestLearner};

fn scenario(n: usize) -> magellan_datagen::EmScenario {
    persons(&ScenarioConfig {
        size_a: n,
        size_b: n,
        n_matches: n / 3,
        dirt: DirtModel::light(),
        seed: 17,
    })
}

fn bench_feature_extraction(c: &mut Criterion) {
    let mut g = c.benchmark_group("feature_extraction");
    g.sample_size(10);
    let s = scenario(1500);
    let features = generate_features(&s.table_a, &s.table_b, &["id"]).unwrap();
    let cands = OverlapBlocker::words("name", 1)
        .block(&s.table_a, &s.table_b)
        .unwrap();
    g.bench_function(format!("{}_pairs_x_{}_features", cands.len(), features.len()), |b| {
        b.iter(|| {
            black_box(
                extract_feature_matrix(cands.pairs(), &s.table_a, &s.table_b, &features)
                    .unwrap(),
            )
        })
    });
    g.finish();
}

fn bench_active_learning(c: &mut Criterion) {
    let mut g = c.benchmark_group("active_learning");
    g.sample_size(10);
    let s = scenario(1500);
    let features = generate_features(&s.table_a, &s.table_b, &["id"]).unwrap();
    let cands = OverlapBlocker::words("name", 1)
        .block(&s.table_a, &s.table_b)
        .unwrap();
    let matrix =
        extract_feature_matrix(cands.pairs(), &s.table_a, &s.table_b, &features).unwrap();
    g.bench_function("session_over_candidates", |b| {
        b.iter(|| {
            let mut oracle = OracleLabeler::new(s.gold.clone(), "id", "id");
            black_box(active_learn(
                &matrix,
                |i| {
                    let (ra, rb) = matrix.pairs[i];
                    oracle
                        .label(&s.table_a, ra as usize, &s.table_b, rb as usize)
                        .as_bool()
                },
                &ActiveLearnConfig::default(),
            ))
        })
    });
    g.finish();
}

fn trained_workflow(s: &magellan_datagen::EmScenario) -> EmWorkflow {
    let features = generate_features(&s.table_a, &s.table_b, &["id"]).unwrap();
    let mut labeler = OracleLabeler::new(s.gold.clone(), "id", "id");
    let forest = RandomForestLearner {
        n_trees: 10,
        ..Default::default()
    };
    let learners: Vec<&dyn Learner> = vec![&forest];
    run_development_stage(
        &s.table_a,
        &s.table_b,
        vec![Box::new(OverlapBlocker::words("name", 1))],
        features,
        &learners,
        &mut labeler,
        &DevConfig::default(),
    )
    .unwrap()
    .0
}

fn bench_production_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("production_executor");
    g.sample_size(10);
    let s = scenario(2000);
    let workflow = trained_workflow(&s);
    for workers in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            let exec = ProductionExecutor::new(w);
            b.iter(|| black_box(exec.run(&workflow, &s.table_a, &s.table_b).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_feature_extraction,
    bench_active_learning,
    bench_production_scaling
);
criterion_main!(benches);
