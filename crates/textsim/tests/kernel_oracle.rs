//! The kernel-oracle harness: the enforcement arm of the kernel tier's
//! bit-identity contract (DESIGN.md §7.2).
//!
//! One grid — **kernel × input-shape class × seed × worker count** —
//! checks every intersection kernel against the preserved scalar
//! reference ([`kernels::intersect_scalar`], byte-identical to the PR 3
//! `intern::intersect_size_sorted` walk) and checks **exact-`f64`
//! equality** of all four similarity measures built on the counts.
//!
//! ## Registering a kernel
//!
//! Add the variant to [`kernels::Kernel`], route it in
//! [`kernels::dispatch`], and it is in the grid: `REGISTRY` enumerates
//! `Kernel` exhaustively, so a new variant that skips `dispatch` fails
//! to compile and one that diverges from the scalar count fails here on
//! the first adversarial shape.
//!
//! ## Seeds and workers
//!
//! The CI `kernel-oracle` job sets `KERNEL_ORACLE_SEEDS=4` (default 2);
//! each seed redraws every randomized shape class. The worker axis runs
//! the identical pair set on 1/2/4/8 threads — this is what proves the
//! bitset kernel's thread-local rasterization scratch never leaks state
//! across calls or threads.

use magellan_textsim::intern;
use magellan_textsim::kernels::{self, Kernel, KernelMode};
use proptest::prelude::*;
use proptest::test_runner::TestRng;

/// Every kernel under contract. Exhaustive over [`Kernel`] — extend this
/// array when registering a new kernel (the match below won't let you
/// forget the dispatch route).
const REGISTRY: [Kernel; 4] = [Kernel::Scalar, Kernel::Merge, Kernel::Gallop, Kernel::Bitset];

/// The adversarial input-shape classes from the issue grid. Each class
/// draws a *pair* of sorted deduplicated id sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    /// One or both sides empty (OOV-clamped probe slices).
    Empty,
    /// Single-element sides, hit and miss.
    Singleton,
    /// `a == b` (every element intersects).
    FullOverlap,
    /// Value ranges that never touch.
    Disjoint,
    /// ≥16× length skew (the gallop trigger) with sparse overlap.
    Skew16x,
    /// Dense runs hugging the top of the `u32` range (span arithmetic
    /// overflow bait for the bitset kernel).
    DenseU32Range,
    /// Unconstrained sparse soup (the merge default).
    SparseRandom,
}

const SHAPES: [Shape; 7] = [
    Shape::Empty,
    Shape::Singleton,
    Shape::FullOverlap,
    Shape::Disjoint,
    Shape::Skew16x,
    Shape::DenseU32Range,
    Shape::SparseRandom,
];

/// Cases drawn per (shape, seed) cell.
const CASES_PER_CELL: usize = 48;

/// Oracle seeds: `KERNEL_ORACLE_SEEDS` (count, CI sets 4) or 2.
fn seeds() -> Vec<u64> {
    let n: u64 = std::env::var("KERNEL_ORACLE_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    (0..n.max(1)).map(|i| 0x6b65726e + 101 * i).collect()
}

fn sorted_dedup(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v.dedup();
    v
}

/// Draw one id-set pair of the given shape class.
fn draw_pair(shape: Shape, rng: &mut TestRng) -> (Vec<u32>, Vec<u32>) {
    match shape {
        Shape::Empty => {
            let other = sorted_dedup((0..rng.below(20)).map(|_| rng.below(1000) as u32).collect());
            if rng.below(2) == 0 {
                (Vec::new(), other)
            } else {
                (other, Vec::new())
            }
        }
        Shape::Singleton => {
            let x = rng.below(1 << 20) as u32;
            let y = if rng.below(2) == 0 { x } else { x.wrapping_add(1 + rng.below(100) as u32) };
            (vec![x], vec![y])
        }
        Shape::FullOverlap => {
            let a = sorted_dedup(
                (0..1 + rng.below(300)).map(|_| rng.below(1 << 16) as u32).collect(),
            );
            (a.clone(), a)
        }
        Shape::Disjoint => {
            let split = 1_000_000 + rng.below(1 << 20) as u32;
            let a = sorted_dedup((0..1 + rng.below(200)).map(|_| rng.below(split as u64) as u32).collect());
            let b = sorted_dedup(
                (0..1 + rng.below(200)).map(|_| split + rng.below(1 << 20) as u32).collect(),
            );
            (a, b)
        }
        Shape::Skew16x => {
            let long = sorted_dedup((0..800 + rng.below(800)).map(|_| rng.below(1 << 18) as u32).collect());
            let short_len = 1 + rng.below((long.len() / 16).max(1) as u64) as usize;
            // Half the probes sampled from the long side (hits), half random.
            let short = sorted_dedup(
                (0..short_len)
                    .map(|i| {
                        if i % 2 == 0 {
                            long[rng.below(long.len() as u64) as usize]
                        } else {
                            rng.below(1 << 18) as u32
                        }
                    })
                    .collect(),
            );
            (short, long)
        }
        Shape::DenseU32Range => {
            let len_a = 32 + rng.below(256) as u32;
            let len_b = 32 + rng.below(256) as u32;
            let start_a = u32::MAX - len_a - rng.below(64) as u32;
            let start_b = u32::MAX - len_b - rng.below(64) as u32;
            let a: Vec<u32> = (start_a..start_a + len_a).collect();
            let b: Vec<u32> = (start_b..start_b + len_b).collect();
            (a, b)
        }
        Shape::SparseRandom => {
            let a = sorted_dedup(
                (0..rng.below(400)).map(|_| (rng.below(1 << 24)) as u32).collect(),
            );
            let b = sorted_dedup(
                (0..rng.below(400)).map(|_| (rng.below(1 << 24)) as u32).collect(),
            );
            (a, b)
        }
    }
}

/// The four similarity measures as pure functions of
/// `(|A|, |B|, |A ∩ B|)`, arithmetic mirrored expression-for-expression
/// from `intern::*_ids` — the expected values the measures must hit
/// bit-for-bit when fed each kernel's count.
fn measures(la: usize, lb: usize, inter: usize) -> [f64; 4] {
    let jaccard = if la == 0 && lb == 0 {
        1.0
    } else {
        inter as f64 / (la + lb - inter) as f64
    };
    let dice = if la == 0 && lb == 0 {
        1.0
    } else {
        2.0 * inter as f64 / (la + lb) as f64
    };
    let cosine = if la == 0 && lb == 0 {
        1.0
    } else if la == 0 || lb == 0 {
        0.0
    } else {
        inter as f64 / ((la as f64) * (lb as f64)).sqrt()
    };
    let overlap = if la == 0 && lb == 0 {
        1.0
    } else if la == 0 || lb == 0 {
        0.0
    } else {
        inter as f64 / la.min(lb) as f64
    };
    [jaccard, dice, cosine, overlap]
}

/// One grid cell check: every registered kernel (both argument orders)
/// against the scalar count, then all four measures at exact-`f64`
/// equality through the production `intern::*_ids` entry points.
fn check_pair(a: &[u32], b: &[u32]) {
    assert!(kernels::is_sorted_dedup(a) && kernels::is_sorted_dedup(b));
    let want = kernels::intersect_scalar(a, b);
    for k in REGISTRY {
        assert_eq!(
            kernels::dispatch(k, a, b),
            want,
            "{k:?} diverged on |a|={} |b|={}",
            a.len(),
            b.len()
        );
        assert_eq!(kernels::dispatch(k, b, a), want, "{k:?} not symmetric");
    }
    assert_eq!(kernels::intersect_auto(a, b), want, "adaptive dispatch diverged");
    let [jac, dice, cos, ovl] = measures(a.len(), b.len(), want);
    assert_eq!(intern::jaccard_ids(a, b).to_bits(), jac.to_bits());
    assert_eq!(intern::dice_ids(a, b).to_bits(), dice.to_bits());
    assert_eq!(intern::cosine_ids(a, b).to_bits(), cos.to_bits());
    assert_eq!(intern::overlap_coefficient_ids(a, b).to_bits(), ovl.to_bits());
    assert_eq!(intern::overlap_size_ids(a, b), want);
}

/// Materialize the full pair set for one seed (every shape × case).
fn grid_pairs(seed: u64) -> Vec<(Vec<u32>, Vec<u32>)> {
    let mut rng = TestRng::new(seed);
    let mut pairs = Vec::with_capacity(SHAPES.len() * CASES_PER_CELL);
    for shape in SHAPES {
        for _ in 0..CASES_PER_CELL {
            pairs.push(draw_pair(shape, &mut rng));
        }
    }
    pairs
}

/// The core grid: kernel × shape class × seed, single-threaded.
#[test]
fn oracle_grid_single_worker() {
    for seed in seeds() {
        for (a, b) in grid_pairs(seed) {
            check_pair(&a, &b);
        }
    }
}

/// The worker axis: the identical pair set checked concurrently on
/// 1/2/4/8 threads. Every thread runs every kernel on its chunk; this
/// is the test that would catch cross-call or cross-thread state leaks
/// in the bitset kernel's thread-local scratch.
#[test]
fn oracle_grid_worker_counts() {
    let pairs: Vec<_> = seeds().into_iter().flat_map(grid_pairs).collect();
    for workers in [1usize, 2, 4, 8] {
        std::thread::scope(|s| {
            let chunk = pairs.len().div_ceil(workers);
            for slice in pairs.chunks(chunk) {
                s.spawn(move || {
                    for (a, b) in slice {
                        check_pair(a, b);
                    }
                });
            }
        });
    }
}

/// The mode switch is output-invisible: the whole grid answers
/// identically with the adaptive tier pinned to the scalar reference.
#[test]
fn oracle_grid_scalar_mode_invisible() {
    let pairs = grid_pairs(seeds()[0]);
    let adaptive: Vec<u64> = pairs
        .iter()
        .map(|(a, b)| intern::jaccard_ids(a, b).to_bits())
        .collect();
    kernels::set_mode(KernelMode::ScalarReference);
    let pinned: Vec<u64> = pairs
        .iter()
        .map(|(a, b)| intern::jaccard_ids(a, b).to_bits())
        .collect();
    kernels::set_mode(KernelMode::Adaptive);
    assert_eq!(adaptive, pinned);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Free-form proptest arm of the grid: unconstrained sorted-dedup
    /// pairs with occasional shared draws so overlap is nontrivial.
    #[test]
    fn oracle_random_pairs(
        raw_a in proptest::collection::vec(0u32..1 << 22, 0..300),
        raw_b in proptest::collection::vec(0u32..1 << 22, 0..300),
        share in 0usize..4,
    ) {
        let mut a = raw_a;
        let b = sorted_dedup(raw_b);
        // Splice some of b into a so random pairs aren't near-disjoint.
        a.extend(b.iter().step_by(share + 1).copied());
        let a = sorted_dedup(a);
        check_pair(&a, &b);
        prop_assert_eq!(
            kernels::intersect_auto(&a, &b),
            kernels::intersect_scalar(&a, &b)
        );
    }

    /// Dense low-range pairs (the bitset selector's home turf).
    #[test]
    fn oracle_random_dense_pairs(
        start_a in 0u32..512,
        start_b in 0u32..512,
        len_a in 24usize..300,
        len_b in 24usize..300,
        stride in 1u32..3,
    ) {
        let a: Vec<u32> = (0..len_a as u32).map(|i| start_a + i * stride).collect();
        let b: Vec<u32> = (0..len_b as u32).map(|i| start_b + i).collect();
        check_pair(&a, &b);
    }
}
