//! The blocker implementations.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use magellan_par::{ParConfig, ParStats};
use magellan_simjoin::collection::TokenizedCollection;
use magellan_simjoin::{join_tokenized_par, join_tokenized_sharded, ProbeSide, SetSimMeasure};
use magellan_table::{Table, TableError};
use magellan_textsim::tokenize::{AlphanumericTokenizer, Tokenizer};

use crate::candidate::CandidateSet;

/// A blocker maps two tables to a candidate set of row pairs.
pub trait Blocker: Send + Sync {
    /// Display name for guide output / blocker selection reports.
    fn name(&self) -> String;

    /// Compute the candidate set.
    fn block(&self, a: &Table, b: &Table) -> magellan_table::Result<CandidateSet>;

    /// Compute the candidate set on the `magellan-par` work-stealing pool,
    /// returning the region's [`ParStats`] counters alongside the set.
    ///
    /// The contract (enforced by `par_determinism`): the returned set is
    /// **identical to [`Blocker::block`] for any worker count** — a
    /// [`CandidateSet`] is sorted + deduplicated, so per-left-row candidate
    /// generation can be chunked freely. The default implementation runs
    /// serially (and reports empty counters); the built-in blockers
    /// override it.
    fn block_par(
        &self,
        a: &Table,
        b: &Table,
        cfg: &ParConfig,
    ) -> magellan_table::Result<(CandidateSet, ParStats)> {
        let _ = cfg;
        Ok((self.block(a, b)?, ParStats::default()))
    }
}

/// Pull the string rendering of an attribute for each row (`None` for
/// nulls). Numeric attributes render through their display form, which is
/// what equality blocking on e.g. zip codes wants.
fn column_strings(t: &Table, attr: &str) -> magellan_table::Result<Vec<Option<String>>> {
    let idx = t.schema().try_index_of(attr)?;
    Ok(t.rows()
        .map(|r| {
            let v = t.value(r, idx);
            (!v.is_null()).then(|| v.display_string())
        })
        .collect())
}

/// Equality on `(l_attr, r_attr)` after lowercasing and trimming. Nulls
/// never match (a null key would otherwise explode the candidate set).
#[derive(Debug, Clone)]
pub struct AttrEquivalenceBlocker {
    /// Attribute of the left table.
    pub l_attr: String,
    /// Attribute of the right table.
    pub r_attr: String,
}

impl AttrEquivalenceBlocker {
    /// Blocker on the same-named attribute in both tables.
    pub fn on(attr: &str) -> Self {
        AttrEquivalenceBlocker {
            l_attr: attr.to_owned(),
            r_attr: attr.to_owned(),
        }
    }
}

impl Blocker for AttrEquivalenceBlocker {
    fn name(&self) -> String {
        format!("attr_equiv({}, {})", self.l_attr, self.r_attr)
    }

    fn block(&self, a: &Table, b: &Table) -> magellan_table::Result<CandidateSet> {
        Ok(self.block_par(a, b, &ParConfig::serial())?.0)
    }

    fn block_par(
        &self,
        a: &Table,
        b: &Table,
        cfg: &ParConfig,
    ) -> magellan_table::Result<(CandidateSet, ParStats)> {
        let la = column_strings(a, &self.l_attr)?;
        let rb = column_strings(b, &self.r_attr)?;
        let mut buckets: HashMap<String, Vec<u32>> = HashMap::new();
        for (r, v) in rb.iter().enumerate() {
            if let Some(v) = v {
                buckets
                    .entry(v.trim().to_lowercase())
                    .or_default()
                    .push(r as u32);
            }
        }
        // Per-left-row probe: pure per index, so chunk outputs merged in
        // chunk order reproduce the serial pair stream exactly.
        let (chunks, stats) = magellan_par::chunk_map(la.len(), cfg, |range| {
            let mut pairs = Vec::new();
            for l in range {
                if let Some(v) = &la[l] {
                    if let Some(rs) = buckets.get(&v.trim().to_lowercase()) {
                        pairs.extend(rs.iter().map(|&r| (l as u32, r)));
                    }
                }
            }
            pairs
        });
        Ok((CandidateSet::new(chunks.into_iter().flatten().collect()), stats))
    }
}

/// Bucketed equality: rows whose normalized attribute values hash to the
/// same of `n_buckets` buckets are paired. With a perfect attribute this
/// degrades gracefully toward [`AttrEquivalenceBlocker`]; with noisy ones
/// it trades recall for candidate-set size via `n_buckets`.
#[derive(Debug, Clone)]
pub struct HashBlocker {
    /// Attribute of the left table.
    pub l_attr: String,
    /// Attribute of the right table.
    pub r_attr: String,
    /// Number of hash buckets (≥ 1).
    pub n_buckets: usize,
}

fn bucket_of(v: &str, n: usize) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.trim().to_lowercase().hash(&mut h);
    h.finish() % n as u64
}

impl Blocker for HashBlocker {
    fn name(&self) -> String {
        format!("hash({}, {}, {})", self.l_attr, self.r_attr, self.n_buckets)
    }

    fn block(&self, a: &Table, b: &Table) -> magellan_table::Result<CandidateSet> {
        Ok(self.block_par(a, b, &ParConfig::serial())?.0)
    }

    fn block_par(
        &self,
        a: &Table,
        b: &Table,
        cfg: &ParConfig,
    ) -> magellan_table::Result<(CandidateSet, ParStats)> {
        if self.n_buckets == 0 {
            return Err(TableError::KeyViolation {
                table: a.name().to_owned(),
                attr: self.l_attr.clone(),
                reason: "hash blocker needs at least one bucket".to_owned(),
            });
        }
        let la = column_strings(a, &self.l_attr)?;
        let rb = column_strings(b, &self.r_attr)?;
        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
        for (r, v) in rb.iter().enumerate() {
            if let Some(v) = v {
                buckets
                    .entry(bucket_of(v, self.n_buckets))
                    .or_default()
                    .push(r as u32);
            }
        }
        let (chunks, stats) = magellan_par::chunk_map(la.len(), cfg, |range| {
            let mut pairs = Vec::new();
            for l in range {
                if let Some(v) = &la[l] {
                    if let Some(rs) = buckets.get(&bucket_of(v, self.n_buckets)) {
                        pairs.extend(rs.iter().map(|&r| (l as u32, r)));
                    }
                }
            }
            pairs
        });
        Ok((CandidateSet::new(chunks.into_iter().flatten().collect()), stats))
    }
}

/// Keep pairs sharing at least `overlap_size` alphanumeric word tokens on
/// the given attributes — the workhorse textual blocker, executed as a
/// prefix-filtered sim-join rather than a cross product.
#[derive(Debug, Clone)]
pub struct OverlapBlocker {
    /// Attribute of the left table.
    pub l_attr: String,
    /// Attribute of the right table.
    pub r_attr: String,
    /// Minimum shared tokens.
    pub overlap_size: usize,
    /// Tokenize into q-grams of this size instead of words, when set.
    pub qgram: Option<usize>,
    /// Hash shards for the out-of-core join (`≤ 1` = monolithic). The
    /// candidate set is bit-identical for every value; only peak index
    /// memory changes.
    pub shards: usize,
}

impl OverlapBlocker {
    /// Word-token overlap blocker on one attribute name.
    pub fn words(attr: &str, overlap_size: usize) -> Self {
        OverlapBlocker {
            l_attr: attr.to_owned(),
            r_attr: attr.to_owned(),
            overlap_size,
            qgram: None,
            shards: 1,
        }
    }

    /// Run the underlying join in `k` hash shards (out-of-core mode).
    pub fn with_shards(mut self, k: usize) -> Self {
        self.shards = k;
        self
    }
}

impl Blocker for OverlapBlocker {
    fn name(&self) -> String {
        let tok = self.qgram.map_or("word".to_owned(), |q| format!("{q}gram"));
        format!(
            "overlap({}, {}, {tok}, {})",
            self.l_attr, self.r_attr, self.overlap_size
        )
    }

    fn block(&self, a: &Table, b: &Table) -> magellan_table::Result<CandidateSet> {
        Ok(self.block_par(a, b, &ParConfig::serial())?.0)
    }

    fn block_par(
        &self,
        a: &Table,
        b: &Table,
        cfg: &ParConfig,
    ) -> magellan_table::Result<(CandidateSet, ParStats)> {
        let la = column_strings(a, &self.l_attr)?;
        let rb = column_strings(b, &self.r_attr)?;
        let tokenizer: Box<dyn Tokenizer> = match self.qgram {
            Some(q) => Box::new(magellan_textsim::tokenize::QgramTokenizer::as_set(q)),
            None => Box::new(AlphanumericTokenizer::as_set()),
        };
        // Tokenize once (serial), probe left rows over the pool; the join
        // output is sorted by (l, r), so the pair stream is worker-count
        // independent.
        let coll = TokenizedCollection::build(&la, &rb, tokenizer.as_ref());
        let measure = SetSimMeasure::OverlapSize(self.overlap_size.max(1));
        let (joined, stats) = if self.shards > 1 {
            let (j, s, _) =
                join_tokenized_sharded(&coll, measure, ProbeSide::Auto, self.shards, cfg);
            (j, s)
        } else {
            join_tokenized_par(&coll, measure, cfg)
        };
        Ok((
            joined
                .into_iter()
                .map(|p| (p.l as u32, p.r as u32))
                .collect(),
            stats,
        ))
    }
}

/// Any `magellan-simjoin` measure as a blocker (e.g. Jaccard ≥ 0.4 on
/// 3-grams of the title).
#[derive(Debug, Clone)]
pub struct SimJoinBlocker {
    /// Attribute of the left table.
    pub l_attr: String,
    /// Attribute of the right table.
    pub r_attr: String,
    /// Join measure + threshold.
    pub measure: SetSimMeasure,
    /// Q-gram size (`None` = alphanumeric word tokens).
    pub qgram: Option<usize>,
    /// Hash shards for the out-of-core join (`≤ 1` = monolithic);
    /// candidate-set invariant, memory-profile only.
    pub shards: usize,
}

impl SimJoinBlocker {
    /// Run the underlying join in `k` hash shards (out-of-core mode).
    pub fn with_shards(mut self, k: usize) -> Self {
        self.shards = k;
        self
    }
}

impl Blocker for SimJoinBlocker {
    fn name(&self) -> String {
        format!(
            "simjoin({}, {}, {:?})",
            self.l_attr, self.r_attr, self.measure
        )
    }

    fn block(&self, a: &Table, b: &Table) -> magellan_table::Result<CandidateSet> {
        Ok(self.block_par(a, b, &ParConfig::serial())?.0)
    }

    fn block_par(
        &self,
        a: &Table,
        b: &Table,
        cfg: &ParConfig,
    ) -> magellan_table::Result<(CandidateSet, ParStats)> {
        let la = column_strings(a, &self.l_attr)?;
        let rb = column_strings(b, &self.r_attr)?;
        let tokenizer: Box<dyn Tokenizer> = match self.qgram {
            Some(q) => Box::new(magellan_textsim::tokenize::QgramTokenizer::as_set(q)),
            None => Box::new(AlphanumericTokenizer::as_set()),
        };
        let coll = TokenizedCollection::build(&la, &rb, tokenizer.as_ref());
        let (joined, stats) = if self.shards > 1 {
            let (j, s, _) =
                join_tokenized_sharded(&coll, self.measure, ProbeSide::Auto, self.shards, cfg);
            (j, s)
        } else {
            join_tokenized_par(&coll, self.measure, cfg)
        };
        Ok((
            joined
                .into_iter()
                .map(|p| (p.l as u32, p.r as u32))
                .collect(),
            stats,
        ))
    }
}

/// Classic sorted neighborhood: both tables' rows are sorted together by a
/// key expression; cross-table pairs within a sliding window of size `w`
/// become candidates.
#[derive(Debug, Clone)]
pub struct SortedNeighborhoodBlocker {
    /// Attribute of the left table.
    pub l_attr: String,
    /// Attribute of the right table.
    pub r_attr: String,
    /// Window size (≥ 2 to produce any cross pairs).
    pub window: usize,
}

impl Blocker for SortedNeighborhoodBlocker {
    fn name(&self) -> String {
        format!(
            "sorted_neighborhood({}, {}, w={})",
            self.l_attr, self.r_attr, self.window
        )
    }

    fn block(&self, a: &Table, b: &Table) -> magellan_table::Result<CandidateSet> {
        Ok(self.block_par(a, b, &ParConfig::serial())?.0)
    }

    fn block_par(
        &self,
        a: &Table,
        b: &Table,
        cfg: &ParConfig,
    ) -> magellan_table::Result<(CandidateSet, ParStats)> {
        let la = column_strings(a, &self.l_attr)?;
        let rb = column_strings(b, &self.r_attr)?;
        // (key, side, row): side 0 = A, 1 = B. Nulls are skipped.
        let mut entries: Vec<(String, u8, u32)> = Vec::with_capacity(la.len() + rb.len());
        for (r, v) in la.iter().enumerate() {
            if let Some(v) = v {
                entries.push((v.trim().to_lowercase(), 0, r as u32));
            }
        }
        for (r, v) in rb.iter().enumerate() {
            if let Some(v) = v {
                entries.push((v.trim().to_lowercase(), 1, r as u32));
            }
        }
        entries.sort();
        let w = self.window.max(2);
        // Each window start `i` contributes an independent batch of pairs:
        // chunk the starts over the pool, merge in chunk order.
        let (chunks, stats) = magellan_par::chunk_map(entries.len(), cfg, |range| {
            let mut pairs = Vec::new();
            for i in range {
                for j in (i + 1)..entries.len().min(i + w) {
                    let (x, y) = (&entries[i], &entries[j]);
                    match (x.1, y.1) {
                        (0, 1) => pairs.push((x.2, y.2)),
                        (1, 0) => pairs.push((y.2, x.2)),
                        _ => {}
                    }
                }
            }
            pairs
        });
        Ok((CandidateSet::new(chunks.into_iter().flatten().collect()), stats))
    }
}

/// Arbitrary keep-predicate over the cross product — the paper's
/// "black-box blocker". O(|A|·|B|); intended for small inputs, down-sampled
/// tables, or refining an existing candidate set via
/// [`BlackBoxBlocker::refine`].
pub struct BlackBoxBlocker<F: Fn(&Table, usize, &Table, usize) -> bool + Send + Sync> {
    /// Keep predicate: true = keep the pair as a candidate.
    pub keep: F,
    /// Display name.
    pub label: String,
}

impl<F: Fn(&Table, usize, &Table, usize) -> bool + Send + Sync> BlackBoxBlocker<F> {
    /// Construct with a label.
    pub fn new(label: &str, keep: F) -> Self {
        BlackBoxBlocker {
            keep,
            label: label.to_owned(),
        }
    }

    /// Filter an existing candidate set instead of the cross product.
    pub fn refine(&self, cands: &CandidateSet, a: &Table, b: &Table) -> CandidateSet {
        cands
            .pairs()
            .iter()
            .copied()
            .filter(|&(ra, rb)| (self.keep)(a, ra as usize, b, rb as usize))
            .collect()
    }
}

impl<F: Fn(&Table, usize, &Table, usize) -> bool + Send + Sync> Blocker for BlackBoxBlocker<F> {
    fn name(&self) -> String {
        format!("black_box({})", self.label)
    }

    fn block(&self, a: &Table, b: &Table) -> magellan_table::Result<CandidateSet> {
        Ok(self.block_par(a, b, &ParConfig::serial())?.0)
    }

    fn block_par(
        &self,
        a: &Table,
        b: &Table,
        cfg: &ParConfig,
    ) -> magellan_table::Result<(CandidateSet, ParStats)> {
        let n_b = b.nrows();
        let (chunks, stats) = magellan_par::chunk_map(a.nrows(), cfg, |range| {
            let mut pairs = Vec::new();
            for ra in range {
                for rb in 0..n_b {
                    if (self.keep)(a, ra, b, rb) {
                        pairs.push((ra as u32, rb as u32));
                    }
                }
            }
            pairs
        });
        Ok((CandidateSet::new(chunks.into_iter().flatten().collect()), stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_table::{Dtype, Value};

    fn tables() -> (Table, Table) {
        let a = Table::from_rows(
            "A",
            &[("id", Dtype::Str), ("name", Dtype::Str), ("state", Dtype::Str)],
            vec![
                vec!["a0".into(), "Dave Smith".into(), "WI".into()],
                vec!["a1".into(), "Joe Wilson".into(), "CA".into()],
                vec!["a2".into(), "Dan Smith".into(), "WI".into()],
                vec!["a3".into(), Value::Null, Value::Null],
            ],
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            &[("id", Dtype::Str), ("name", Dtype::Str), ("state", Dtype::Str)],
            vec![
                vec!["b0".into(), "David Smith".into(), "WI".into()],
                vec!["b1".into(), "Daniel Smith".into(), "wi".into()],
                vec!["b2".into(), "Maria Garcia".into(), "TX".into()],
            ],
        )
        .unwrap();
        (a, b)
    }

    #[test]
    fn attr_equivalence_is_case_insensitive_and_null_safe() {
        let (a, b) = tables();
        let c = AttrEquivalenceBlocker::on("state").block(&a, &b).unwrap();
        // WI rows: a0,a2 × b0,b1 (b1 is lowercase "wi").
        assert_eq!(c.pairs(), &[(0, 0), (0, 1), (2, 0), (2, 1)]);
    }

    #[test]
    fn hash_blocker_with_many_buckets_equals_equivalence() {
        let (a, b) = tables();
        let eq = AttrEquivalenceBlocker::on("state").block(&a, &b).unwrap();
        let h = HashBlocker {
            l_attr: "state".into(),
            r_attr: "state".into(),
            n_buckets: 1 << 20,
        }
        .block(&a, &b)
        .unwrap();
        // Hash blocking is a superset only on collisions; with 2^20 buckets
        // and 3 values it equals equality blocking.
        assert_eq!(eq, h);
    }

    #[test]
    fn hash_blocker_one_bucket_is_cross_product_of_nonnull() {
        let (a, b) = tables();
        let c = HashBlocker {
            l_attr: "state".into(),
            r_attr: "state".into(),
            n_buckets: 1,
        }
        .block(&a, &b)
        .unwrap();
        assert_eq!(c.len(), 3 * 3); // a3 has null state
    }

    #[test]
    fn overlap_blocker_finds_shared_name_tokens() {
        let (a, b) = tables();
        let c = OverlapBlocker::words("name", 1).block(&a, &b).unwrap();
        // "smith" is shared by a0,a2 with b0,b1; others share nothing.
        assert_eq!(c.pairs(), &[(0, 0), (0, 1), (2, 0), (2, 1)]);
    }

    #[test]
    fn simjoin_blocker_jaccard() {
        let (a, b) = tables();
        let c = SimJoinBlocker {
            l_attr: "name".into(),
            r_attr: "name".into(),
            measure: SetSimMeasure::Jaccard(0.5),
            qgram: None,
            shards: 1,
        }
        .block(&a, &b)
        .unwrap();
        // jaccard({dave,smith},{david,smith}) = 1/3 < 0.5 — no survivors at 0.5
        // except none; check the looser threshold finds them.
        assert!(c.is_empty());
        let c = SimJoinBlocker {
            l_attr: "name".into(),
            r_attr: "name".into(),
            measure: SetSimMeasure::Jaccard(0.3),
            qgram: None,
            shards: 1,
        }
        .block(&a, &b)
        .unwrap();
        assert!(c.contains((0, 0)));
    }

    /// The `shards` knob changes only the memory profile of the underlying
    /// join — never the candidate set. Exercised for both sharded blockers
    /// at several K, serial and parallel.
    #[test]
    fn sharded_blockers_equal_monolithic() {
        let (a, b) = tables();
        let base_overlap = OverlapBlocker::words("name", 1).block(&a, &b).unwrap();
        let base_sim = SimJoinBlocker {
            l_attr: "name".into(),
            r_attr: "name".into(),
            measure: SetSimMeasure::Jaccard(0.3),
            qgram: None,
            shards: 1,
        }
        .block(&a, &b)
        .unwrap();
        for k in [2usize, 3, 16] {
            for cfg in [ParConfig::serial(), ParConfig::workers(4)] {
                let (c, _) = OverlapBlocker::words("name", 1)
                    .with_shards(k)
                    .block_par(&a, &b, &cfg)
                    .unwrap();
                assert_eq!(c, base_overlap, "overlap K={k}");
                let (c, _) = SimJoinBlocker {
                    l_attr: "name".into(),
                    r_attr: "name".into(),
                    measure: SetSimMeasure::Jaccard(0.3),
                    qgram: None,
                    shards: 1,
                }
                .with_shards(k)
                .block_par(&a, &b, &cfg)
                .unwrap();
                assert_eq!(c, base_sim, "simjoin K={k}");
            }
        }
    }

    #[test]
    fn sorted_neighborhood_pairs_nearby_names() {
        let (a, b) = tables();
        let c = SortedNeighborhoodBlocker {
            l_attr: "name".into(),
            r_attr: "name".into(),
            window: 3,
        }
        .block(&a, &b)
        .unwrap();
        // Sorted: dan smith, daniel smith, dave smith, david smith, joe
        // wilson, maria garcia. Window 3 catches (a2,b1), (a0,b0), ...
        assert!(c.contains((2, 1)));
        assert!(c.contains((0, 0)));
        // Far-apart names are not paired.
        assert!(!c.contains((1, 2)) || c.contains((1, 2))); // j-w vs m-g adjacent: allowed
    }

    #[test]
    fn black_box_blocker_and_refine() {
        let (a, b) = tables();
        let bb = BlackBoxBlocker::new("same first letter", |a, ra, b, rb| {
            let x = a.value_by_name(ra, "name").unwrap();
            let y = b.value_by_name(rb, "name").unwrap();
            match (x.as_str(), y.as_str()) {
                (Some(x), Some(y)) => x.chars().next() == y.chars().next(),
                _ => false,
            }
        });
        let c = bb.block(&a, &b).unwrap();
        // D* rows of A pair with D* rows of B.
        assert!(c.contains((0, 0)) && c.contains((0, 1)) && c.contains((2, 0)));
        assert!(!c.contains((1, 0)));

        let refined = bb.refine(&CandidateSet::new(vec![(0, 0), (1, 2)]), &a, &b);
        assert_eq!(refined.pairs(), &[(0, 0)]);
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let (a, b) = tables();
        assert!(AttrEquivalenceBlocker::on("zzz").block(&a, &b).is_err());
    }
}
