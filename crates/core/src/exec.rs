//! The production-stage executor.
//!
//! §4.1: "We have developed tools that can execute these commands on a
//! multi-core single machine, using customized code or Dask." This module
//! is that Dask substitute: it runs a captured [`crate::EmWorkflow`] over
//! the full tables on the `magellan-par` work-stealing pool, and reports
//! per-phase wall-clock timings (the "Machine" time column of Table 2)
//! *and* per-phase executor counters — pairs/sec, chunks stolen, and
//! per-worker busy time ([`PhaseCounters`]).
//!
//! The executor inherits the pool's determinism contract: a production run
//! produces **bit-identical matches for any worker count**, which is what
//! lets the lab stage (small samples, one core) hand a workflow to the
//! production stage (full tables, many cores) without re-validating it.

use std::time::{Duration, Instant};

use magellan_block::CandidateSet;
use magellan_features::extract_feature_matrix_par;
use magellan_par::{ParConfig, ParStats};
use magellan_table::Table;

use crate::workflow::EmWorkflow;

/// Per-phase timings of a production run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Blocking wall-clock.
    pub blocking: Duration,
    /// Feature extraction + prediction wall-clock.
    pub matching: Duration,
}

impl PhaseTimings {
    /// Total machine time.
    pub fn total(&self) -> Duration {
        self.blocking + self.matching
    }
}

/// Per-phase executor counters of a production run: the [`ParStats`] of
/// every parallel region, folded per phase.
#[derive(Debug, Clone, Default)]
pub struct PhaseCounters {
    /// Blocking-phase counters (candidate generation / sim-join probes).
    pub blocking: ParStats,
    /// Matching-phase counters (feature extraction + prediction, merged).
    pub matching: ParStats,
}

impl PhaseCounters {
    /// Candidate pairs scored per second of matching wall-clock.
    pub fn pairs_per_sec(&self) -> f64 {
        self.matching.throughput()
    }

    /// Chunks executed by a worker other than their static-partition owner,
    /// across both phases.
    pub fn chunks_stolen(&self) -> usize {
        self.blocking.chunks_stolen + self.matching.chunks_stolen
    }

    /// Per-worker busy time across both phases.
    pub fn worker_busy(&self) -> Vec<Duration> {
        let mut total = ParStats::default();
        total.merge(&self.blocking);
        total.merge(&self.matching);
        total.worker_busy
    }
}

/// Result of a production run.
pub struct ProductionReport {
    /// Predicted matches.
    pub matches: CandidateSet,
    /// Candidate pairs examined.
    pub n_candidates: usize,
    /// Wall-clock per phase.
    pub timings: PhaseTimings,
    /// Executor counters per phase.
    pub counters: PhaseCounters,
    /// Worker threads used.
    pub n_workers: usize,
}

/// Multi-core workflow executor.
#[derive(Debug, Clone, Copy)]
pub struct ProductionExecutor {
    /// Worker threads for every phase (≥ 1).
    pub n_workers: usize,
}

impl ProductionExecutor {
    /// Executor with the given parallelism.
    pub fn new(n_workers: usize) -> Self {
        ProductionExecutor {
            n_workers: n_workers.max(1),
        }
    }

    /// Run the workflow over full tables.
    ///
    /// Every phase runs on the `magellan-par` pool: blocking via
    /// [`magellan_block::Blocker::block_par`], feature extraction via
    /// [`extract_feature_matrix_par`], prediction via
    /// [`magellan_par::map_indexed`]. The matches are identical for any
    /// `n_workers` (see `crates/core/tests/par_determinism.rs`).
    pub fn run(
        &self,
        workflow: &EmWorkflow,
        a: &Table,
        b: &Table,
    ) -> magellan_table::Result<ProductionReport> {
        let cfg = ParConfig::workers(self.n_workers);

        let t0 = Instant::now();
        let (candidates, blocking_stats) = workflow.blocker.block_par(a, b, &cfg)?;
        let blocking = t0.elapsed();

        let t1 = Instant::now();
        let pairs = candidates.pairs();
        let (matrix, extract_stats) =
            extract_feature_matrix_par(pairs, a, b, &workflow.features, &cfg)?;
        let (predicted, predict_stats) = magellan_par::map_indexed(matrix.len(), &cfg, |i| {
            workflow.matcher.predict_proba(&matrix.rows[i]) >= workflow.threshold
        });
        // The rule layer is a cheap per-row pass over the already-extracted
        // matrix; it stays serial so its decisions are trivially ordered.
        let decisions: Vec<(u32, u32)> = workflow
            .rule_layer
            .apply(&matrix, &predicted)
            .into_iter()
            .zip(pairs.iter().copied())
            .filter_map(|(d, p)| d.then_some(p))
            .collect();
        let matching = t1.elapsed();

        let mut matching_stats = extract_stats;
        matching_stats.merge(&predict_stats);

        Ok(ProductionReport {
            matches: CandidateSet::new(decisions),
            n_candidates: pairs.len(),
            timings: PhaseTimings { blocking, matching },
            counters: PhaseCounters {
                blocking: blocking_stats,
                matching: matching_stats,
            },
            n_workers: self.n_workers,
        })
    }
}

/// A general parallel map over row chunks, exposed for workloads that
/// don't fit the workflow shape (e.g. per-row cleaning in the guide's
/// pre-processing step). `out[i] == f(i)` for every worker count.
pub fn parallel_map<T: Send, F: Fn(usize) -> T + Sync>(
    n: usize,
    n_workers: usize,
    f: F,
) -> Vec<T> {
    magellan_par::map_indexed(n, &ParConfig::workers(n_workers), f).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleLayer;
    use magellan_block::OverlapBlocker;
    use magellan_datagen::domains::persons;
    use magellan_datagen::{DirtModel, ScenarioConfig};
    use magellan_features::{Feature, FeatureKind, TokSpecF};
    use magellan_ml::model::ConstantClassifier;

    fn workflow() -> EmWorkflow {
        EmWorkflow {
            blocker: Box::new(OverlapBlocker::words("name", 1)),
            features: vec![
                Feature::new("name", "name", FeatureKind::Jaccard(TokSpecF::Word)),
                Feature::new("name", "name", FeatureKind::JaroWinkler),
            ],
            matcher: Box::new(ConstantClassifier { proba: 1.0 }),
            rule_layer: RuleLayer::new(vec![crate::rules::MatchRule::reject(
                "weak",
                vec![(
                    "jaccard(word(A.name), word(B.name))".into(),
                    crate::rules::Cmp::Lt,
                    0.5,
                )],
            )]),
            threshold: 0.5,
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let s = persons(&ScenarioConfig {
            size_a: 300,
            size_b: 300,
            n_matches: 100,
            dirt: DirtModel::light(),
            seed: 21,
        });
        let wf = workflow();
        let serial = ProductionExecutor::new(1).run(&wf, &s.table_a, &s.table_b).unwrap();
        let parallel = ProductionExecutor::new(4).run(&wf, &s.table_a, &s.table_b).unwrap();
        assert_eq!(serial.matches, parallel.matches);
        assert_eq!(serial.n_candidates, parallel.n_candidates);
        assert_eq!(parallel.n_workers, 4);
        assert!(serial.timings.total() > Duration::ZERO);
    }

    #[test]
    fn report_surfaces_phase_counters() {
        let s = persons(&ScenarioConfig {
            size_a: 200,
            size_b: 200,
            n_matches: 60,
            dirt: DirtModel::light(),
            seed: 5,
        });
        let wf = workflow();
        let report = ProductionExecutor::new(3).run(&wf, &s.table_a, &s.table_b).unwrap();
        // Blocking counters reflect the probe loop over table A's rows.
        assert_eq!(report.counters.blocking.n_workers, 3);
        assert_eq!(report.counters.blocking.items, 200);
        assert!(report.counters.blocking.chunks_total >= 1);
        // Matching counters fold extraction + prediction: both regions walk
        // every candidate pair once.
        assert_eq!(report.counters.matching.items, 2 * report.n_candidates);
        assert_eq!(report.counters.matching.worker_busy.len(), 3);
        assert!(report.counters.pairs_per_sec() >= 0.0);
        assert!(report.counters.chunks_stolen() <= report.counters.blocking.chunks_total
            + report.counters.matching.chunks_total);
        assert_eq!(report.counters.worker_busy().len(), 3);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, 4, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        let out = parallel_map(3, 8, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
        let empty: Vec<usize> = parallel_map(0, 4, |i| i);
        assert!(empty.is_empty());
    }
}
