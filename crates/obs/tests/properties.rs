//! Property tests for the observability layer (ISSUE 5 satellite):
//!
//! * histogram record/merge — merge is associative and commutative,
//!   bucket counts are exact, and a snapshot's exports are bit-identical
//!   no matter how samples are sharded across "workers";
//! * span nesting under injected panics — `catch_unwind` leaves no
//!   dangling spans on the thread-local stack.

use magellan_obs::{span, span_id, EvVal, Histogram, Obs};
use proptest::prelude::*;

fn sample() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        1u64..16,
        1u64..1_000_000,
        proptest::prelude::any::<u64>(),
    ]
}

fn record_all(vs: &[u64]) -> Histogram {
    let mut h = Histogram::default();
    for &v in vs {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn histogram_bucket_counts_are_exact(vs in proptest::collection::vec(sample(), 0..200)) {
        let h = record_all(&vs);
        prop_assert_eq!(h.count, vs.len() as u64);
        let mut sum = 0u64;
        for &v in &vs {
            sum = sum.saturating_add(v);
        }
        prop_assert_eq!(h.sum, sum);
        // Every sample lands in exactly the bucket its log2 says, and the
        // bucket's le bound brackets it.
        for k in 0..magellan_obs::N_BUCKETS {
            let expect = vs.iter().filter(|&&v| Histogram::bucket_index(v) == k).count() as u64;
            prop_assert_eq!(h.buckets[k], expect);
            if h.buckets[k] > 0 {
                let le = Histogram::bucket_le(k);
                prop_assert!(vs.iter().any(|&v| v <= le && Histogram::bucket_index(v) == k));
            }
        }
        prop_assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative(
        a in proptest::collection::vec(sample(), 0..100),
        b in proptest::collection::vec(sample(), 0..100),
        c in proptest::collection::vec(sample(), 0..100),
    ) {
        let (ha, hb, hc) = (record_all(&a), record_all(&b), record_all(&c));

        // Commutative: a⊕b == b⊕a.
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        // Associative: (a⊕b)⊕c == a⊕(b⊕c).
        let mut ab_c = ab.clone();
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Merge of shards == recording the concatenation.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&ab_c, &record_all(&all));
    }

    #[test]
    fn snapshot_is_bit_identical_across_worker_counts(
        vs in proptest::collection::vec(sample(), 1..200),
        n_workers in 1usize..8,
    ) {
        // One recorder records everything serially; the other has the same
        // samples recorded from `n_workers` threads in racy order. The
        // registry (and its Prometheus text) must come out byte-identical.
        let serial = Obs::pinned();
        {
            let _g = serial.install();
            for &v in &vs {
                magellan_obs::hist_record("magellan_obs_prop_hist", v);
                magellan_obs::counter_add("magellan_obs_prop_total", v % 17);
            }
        }
        let sharded = Obs::pinned();
        std::thread::scope(|s| {
            for w in 0..n_workers {
                let sharded = &sharded;
                let vs = &vs;
                s.spawn(move || {
                    let _g = sharded.install();
                    for (i, &v) in vs.iter().enumerate() {
                        if i % n_workers == w {
                            magellan_obs::hist_record("magellan_obs_prop_hist", v);
                            magellan_obs::counter_add("magellan_obs_prop_total", v % 17);
                        }
                    }
                });
            }
        });
        let a = serial.snapshot();
        let b = sharded.snapshot();
        prop_assert_eq!(a.metrics.clone(), b.metrics.clone());
        prop_assert_eq!(a.to_prometheus(), b.to_prometheus());
    }

    #[test]
    fn catch_unwind_leaves_no_dangling_spans(
        depth in 1usize..6,
        panic_at in 0usize..6,
        post in 1u64..4,
    ) {
        let panic_at = panic_at % depth;
        let obs = Obs::pinned();
        let _g = obs.install();
        let root = span("run", 0);
        let root_id = root.id().unwrap();

        // Open `depth` nested spans; panic somewhere in the middle.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fn go(d: usize, depth: usize, panic_at: usize) {
                if d == depth {
                    return;
                }
                let _s = span("nest", d as u64);
                magellan_obs::event("tick", &[("d", EvVal::U(d as u64))]);
                if d == panic_at {
                    panic!("injected");
                }
                go(d + 1, depth, panic_at);
            }
            go(0, depth, panic_at);
        }));
        prop_assert!(result.is_err());

        // The unwind dropped every nested guard: the innermost open span
        // is the root again, and new spans parent under it.
        prop_assert_eq!(magellan_obs::current_span(), Some(root_id));
        for k in 0..post {
            let s = span("after", k);
            prop_assert_eq!(s.id(), Some(span_id(root_id, "after", k)));
        }
        drop(root);
        prop_assert_eq!(magellan_obs::current_span(), None);

        let snap = obs.snapshot();
        // Every opened span was recorded exactly once (panicked ones too).
        prop_assert_eq!(snap.spans_named("run").len(), 1);
        prop_assert_eq!(snap.spans_named("nest").len(), panic_at + 1);
        prop_assert_eq!(snap.spans_named("after").len(), post as usize);
        // And nesting survived: run -> nest(0) -> ... -> nest(panic_at).
        prop_assert_eq!(snap.max_depth() as usize, 1 + (panic_at + 1).max(1));
    }
}
