//! Cross-crate integration: the full PyMatcher development + production
//! path, and the full Falcon path, on generated scenarios.

use magellan_block::{AttrEquivalenceBlocker, Blocker, OverlapBlocker};
use magellan_core::evaluate::evaluate_matches;
use magellan_core::exec::ProductionExecutor;
use magellan_core::labeling::OracleLabeler;
use magellan_core::pipeline::{run_development_stage, DevConfig};
use magellan_core::rules::{Cmp, MatchRule, RuleLayer};
use magellan_datagen::domains;
use magellan_datagen::{DirtModel, ScenarioConfig};
use magellan_falcon::{run_falcon, FalconConfig};
use magellan_features::generate_features;
use magellan_ml::{DecisionTreeLearner, Learner, RandomForestLearner};

fn scenario(name: &str, seed: u64) -> magellan_datagen::EmScenario {
    domains::by_name(
        name,
        &ScenarioConfig {
            size_a: 500,
            size_b: 500,
            n_matches: 160,
            dirt: DirtModel::light(),
            seed,
        },
    )
    .expect("known scenario")
}

#[test]
fn pymatcher_end_to_end_on_products() {
    let s = scenario("products", 1);
    let features = generate_features(&s.table_a, &s.table_b, &["id"]).unwrap();
    let mut labeler = OracleLabeler::new(s.gold.clone(), "id", "id");
    let tree = DecisionTreeLearner::default();
    let forest = RandomForestLearner {
        n_trees: 10,
        ..Default::default()
    };
    let learners: Vec<&dyn Learner> = vec![&tree, &forest];
    let blockers: Vec<Box<dyn Blocker>> = vec![
        Box::new(OverlapBlocker::words("title", 1)),
        Box::new(AttrEquivalenceBlocker::on("brand")),
    ];
    let (workflow, report) = run_development_stage(
        &s.table_a,
        &s.table_b,
        blockers,
        features,
        &learners,
        &mut labeler,
        &DevConfig::default(),
    )
    .unwrap();
    assert!(report.questions <= 400 + 60); // sample + calibration labels

    let out = workflow.execute(&s.table_a, &s.table_b).unwrap();
    let m = evaluate_matches(&out.matches(), &s.table_a, &s.table_b, "id", "id", &s.gold)
        .unwrap();
    assert!(m.f1() > 0.75, "products end-to-end F1 {m}");
}

#[test]
fn production_executor_matches_workflow_execute() {
    let s = scenario("persons", 2);
    let features = generate_features(&s.table_a, &s.table_b, &["id"]).unwrap();
    let mut labeler = OracleLabeler::new(s.gold.clone(), "id", "id");
    let forest = RandomForestLearner {
        n_trees: 8,
        ..Default::default()
    };
    let learners: Vec<&dyn Learner> = vec![&forest];
    let (workflow, _) = run_development_stage(
        &s.table_a,
        &s.table_b,
        vec![Box::new(OverlapBlocker::words("name", 1))],
        features,
        &learners,
        &mut labeler,
        &DevConfig::default(),
    )
    .unwrap();

    let direct = workflow.execute(&s.table_a, &s.table_b).unwrap().matches();
    for workers in [1, 3, 7] {
        let prod = ProductionExecutor::new(workers)
            .run(&workflow, &s.table_a, &s.table_b)
            .unwrap();
        assert_eq!(prod.matches, direct, "worker count {workers} changed results");
    }
}

#[test]
fn rule_layer_rescues_a_permissive_matcher() {
    // §6: "the most accurate EM workflows are likely to involve a
    // combination of ML and rules." Demonstrated in its clearest form: a
    // deliberately permissive matcher (accepts every candidate) plus a
    // hand-crafted reject rule. The rule layer must strictly improve
    // precision, and reject-only layers can never add false positives.
    let s = scenario("persons", 3);
    let features = generate_features(&s.table_a, &s.table_b, &["id"]).unwrap();
    let mut workflow = magellan_core::EmWorkflow {
        blocker: Box::new(OverlapBlocker::words("name", 1)),
        features,
        matcher: Box::new(magellan_ml::model::ConstantClassifier { proba: 1.0 }),
        rule_layer: RuleLayer::empty(),
        threshold: 0.5,
    };
    let plain = workflow.execute(&s.table_a, &s.table_b).unwrap().matches();
    let m_plain =
        evaluate_matches(&plain, &s.table_a, &s.table_b, "id", "id", &s.gold).unwrap();

    workflow.rule_layer = RuleLayer::new(vec![MatchRule::reject(
        "weak name guard",
        vec![(
            "jaccard(word(A.name), word(B.name))".into(),
            Cmp::Lt,
            0.4,
        )],
    )]);
    let ruled = workflow.execute(&s.table_a, &s.table_b).unwrap().matches();
    let m_ruled =
        evaluate_matches(&ruled, &s.table_a, &s.table_b, "id", "id", &s.gold).unwrap();

    assert!(
        m_ruled.precision() > m_plain.precision() + 0.1,
        "rule layer should lift precision: {} -> {}",
        m_plain.precision(),
        m_ruled.precision()
    );
    // Reject-only layers shrink the predicted set: FPs cannot grow.
    assert!(m_ruled.fp <= m_plain.fp);
    assert!(ruled.len() <= plain.len());
}

#[test]
fn falcon_end_to_end_on_restaurants() {
    let s = scenario("restaurants", 4);
    let mut labeler = OracleLabeler::new(s.gold.clone(), "id", "id");
    let report = run_falcon(
        &s.table_a,
        &s.table_b,
        "id",
        "id",
        &mut labeler,
        &FalconConfig::default(),
    )
    .unwrap();
    let m = evaluate_matches(&report.matches, &s.table_a, &s.table_b, "id", "id", &s.gold)
        .unwrap();
    assert!(m.f1() > 0.7, "falcon restaurants F1 {m}");
    assert!(report.total_questions() <= 1200, "paper's question ceiling");
}

#[test]
fn figure1_example_matches_recovered_by_falcon_features() {
    // The quickstart path, condensed: gold matches of the paper's Fig. 1
    // toy survive blocking and a trained tree.
    let s = domains::figure1_example();
    let blocker = OverlapBlocker::words("name", 1);
    let cands = blocker.block(&s.table_a, &s.table_b).unwrap();
    assert!(cands.contains((0, 0)) && cands.contains((2, 1)));
}

#[test]
fn single_table_dedup_end_to_end() {
    // §2: "matching tuples within a single table". Collapse a two-table
    // scenario into one table, dedup-block it, train on oracle labels,
    // and recover the duplicate pairs.
    let (t, gold) = scenario("persons", 6).into_dedup();
    let cands = magellan_block::dedup_block(&OverlapBlocker::words("name", 1), &t).unwrap();
    assert!(!cands.is_empty());
    // No self pairs, no mirrors.
    for &(x, y) in cands.pairs() {
        assert!(x < y);
    }

    let features = generate_features(&t, &t, &["id"]).unwrap();
    let matrix =
        magellan_features::extract_feature_matrix(cands.pairs(), &t, &t, &features).unwrap();
    let mut oracle = OracleLabeler::new(gold.clone(), "id", "id");
    use magellan_core::labeling::Labeler;
    let mut data = magellan_ml::Dataset::new(matrix.names.clone());
    for (row, &(ra, rb)) in matrix.rows.iter().zip(&matrix.pairs) {
        let y = oracle.label(&t, ra as usize, &t, rb as usize).as_bool();
        data.push(row, y);
    }
    let forest = RandomForestLearner {
        n_trees: 10,
        ..Default::default()
    }
    .fit_forest(&data);
    let predicted: magellan_block::CandidateSet = matrix
        .pairs
        .iter()
        .zip(&matrix.rows)
        .filter_map(|(&p, row)| magellan_ml::Classifier::predict(&forest, row).then_some(p))
        .collect();
    let m = evaluate_matches(&predicted, &t, &t, "id", "id", &gold).unwrap();
    assert!(m.f1() > 0.8, "dedup F1 {m}");
}

/// Golden end-to-end run: every number below is pinned on the fixed-seed
/// products scenario. Any change to datagen, blocking, feature extraction,
/// sampling, training, calibration, or the parallel executor that shifts
/// one of these values is a behavioural change — review it deliberately
/// and re-pin, never loosen the assertions to make the test pass.
///
/// The whole path is seeded and scheduling-free (the `magellan-par`
/// determinism contract), so the values are stable across processes and
/// worker counts; the test exercises both a serial and a parallel
/// production run to prove it.
#[test]
fn golden_pymatcher_products_run_is_pinned() {
    let s = scenario("products", 1);
    assert_eq!(s.gold.len(), 160, "datagen drifted: gold size");

    let features = generate_features(&s.table_a, &s.table_b, &["id"]).unwrap();
    let mut labeler = OracleLabeler::new(s.gold.clone(), "id", "id");
    let tree = DecisionTreeLearner::default();
    let forest = RandomForestLearner {
        n_trees: 10,
        ..Default::default()
    };
    let learners: Vec<&dyn Learner> = vec![&tree, &forest];
    let blockers: Vec<Box<dyn Blocker>> = vec![
        Box::new(OverlapBlocker::words("title", 1)),
        Box::new(AttrEquivalenceBlocker::on("brand")),
    ];
    let (workflow, report) = run_development_stage(
        &s.table_a,
        &s.table_b,
        blockers,
        features,
        &learners,
        &mut labeler,
        &DevConfig::default(),
    )
    .unwrap();

    // Development stage: label budget, matcher selection, operating point.
    assert_eq!(report.questions, 460);
    assert_eq!(report.chosen_matcher, "random_forest");
    assert_eq!(workflow.threshold, 0.5);

    // Production stage: candidate volume and match quality, identical for
    // a serial and a parallel executor.
    for workers in [1, 4] {
        let prod = ProductionExecutor::new(workers)
            .run(&workflow, &s.table_a, &s.table_b)
            .unwrap();
        assert_eq!(prod.n_candidates, 43_353, "{workers} workers");
        assert_eq!(prod.matches.len(), 152, "{workers} workers");
        let m = evaluate_matches(&prod.matches, &s.table_a, &s.table_b, "id", "id", &s.gold)
            .unwrap();
        assert_eq!((m.tp, m.fp, m.fn_), (152, 0, 8), "{workers} workers");
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 0.95);
        assert!(
            (m.f1() - 0.974_358_974_358_974_3).abs() < 1e-15,
            "F1 {}",
            m.f1()
        );
    }
}
