//! Discrete event records: things that *happen* rather than *take time*
//! (fault injected, retry scheduled, backoff slept, checkpoint written,
//! fragment degraded, straggler speculated, worker died/recovered).

/// A small, allocation-light event field value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvVal {
    /// Unsigned integer payload (chunk index, attempt, …).
    U(u64),
    /// Floating payload (seconds of backoff, ratios, …).
    F(f64),
    /// Static string payload (phase name, fault kind, …).
    S(&'static str),
}

/// One recorded occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRec {
    /// Time on the recorder's clock (ns).
    pub t_ns: u64,
    /// Static event name (e.g. `"fault_injected"`, `"backoff_slept"`).
    pub name: &'static str,
    /// Innermost open span at record time (`0` = none).
    pub span: u64,
    /// Key/value payload.
    pub fields: Vec<(&'static str, EvVal)>,
}
