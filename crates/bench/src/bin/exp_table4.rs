//! Table 4 — the list of CloudMatcher services (basic + composite), from
//! the live service registry.

use magellan_falcon::services::{services, ServiceKind};

fn main() {
    println!("Table 4 analog — CloudMatcher services");
    for kind in [ServiceKind::Basic, ServiceKind::Composite] {
        println!(
            "\n== {} services ==",
            match kind {
                ServiceKind::Basic => "basic",
                ServiceKind::Composite => "composite",
            }
        );
        for s in services().into_iter().filter(|s| s.kind == kind) {
            println!("  {:26} [{:?}] {}", s.name, s.engine, s.description);
            println!("  {:26}  impl: {}", "", s.implemented_by);
            if !s.composes.is_empty() {
                println!("  {:26}  composes: {}", "", s.composes.join(", "));
            }
        }
    }
    let n_basic = services().iter().filter(|s| s.kind == ServiceKind::Basic).count();
    let n_comp = services().iter().filter(|s| s.kind == ServiceKind::Composite).count();
    println!("\n{n_basic} basic + {n_comp} composite services (paper: 18 basic + composites incl. Falcon)");
}
