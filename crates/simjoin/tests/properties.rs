//! Property tests: every sim-join must return *exactly* the pairs the naive
//! cross-product verification returns — the filters may never drop a
//! qualifying pair (no false negatives) nor admit an unqualified one after
//! verification (no false positives).

use magellan_par::ParConfig;
use magellan_simjoin::editjoin::edit_distance_join;
use magellan_simjoin::{
    join_tokenized_hashmap, join_tokenized_par_side, join_tokenized_stats, set_sim_join,
    JoinPair, ProbeSide, SetSimMeasure, TokenizedCollection,
};
use magellan_textsim::seqsim::levenshtein;
use magellan_textsim::setsim;
use magellan_textsim::tokenize::{Tokenizer, WhitespaceTokenizer};
use proptest::prelude::*;

fn strings() -> impl Strategy<Value = Vec<Option<String>>> {
    proptest::collection::vec(
        proptest::option::weighted(0.9, "[ab]{0,3}( [ab]{1,3}){0,3}"),
        1..25,
    )
}

fn naive_set(
    left: &[Option<String>],
    right: &[Option<String>],
    measure: SetSimMeasure,
) -> Vec<(usize, usize)> {
    let tok = WhitespaceTokenizer::new();
    let mut out = Vec::new();
    for (l, a) in left.iter().enumerate() {
        for (r, b) in right.iter().enumerate() {
            let (Some(a), Some(b)) = (a, b) else { continue };
            let ta = tok.tokenize(a);
            let tb = tok.tokenize(b);
            if ta.is_empty() || tb.is_empty() {
                continue;
            }
            let ok = match measure {
                SetSimMeasure::Jaccard(t) => setsim::jaccard(&ta, &tb) >= t - 1e-9,
                SetSimMeasure::Cosine(t) => setsim::cosine(&ta, &tb) >= t - 1e-9,
                SetSimMeasure::Dice(t) => setsim::dice(&ta, &tb) >= t - 1e-9,
                SetSimMeasure::OverlapSize(c) => setsim::overlap_size(&ta, &tb) >= c,
            };
            if ok {
                out.push((l, r));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn jaccard_join_equals_naive(left in strings(), right in strings(), t in 0.05f64..1.0) {
        let tok = WhitespaceTokenizer::new();
        let fast: Vec<(usize, usize)> = set_sim_join(&left, &right, &tok, SetSimMeasure::Jaccard(t))
            .into_iter().map(|p| (p.l, p.r)).collect();
        prop_assert_eq!(fast, naive_set(&left, &right, SetSimMeasure::Jaccard(t)));
    }

    #[test]
    fn cosine_join_equals_naive(left in strings(), right in strings(), t in 0.05f64..1.0) {
        let tok = WhitespaceTokenizer::new();
        let fast: Vec<(usize, usize)> = set_sim_join(&left, &right, &tok, SetSimMeasure::Cosine(t))
            .into_iter().map(|p| (p.l, p.r)).collect();
        prop_assert_eq!(fast, naive_set(&left, &right, SetSimMeasure::Cosine(t)));
    }

    #[test]
    fn dice_join_equals_naive(left in strings(), right in strings(), t in 0.05f64..1.0) {
        let tok = WhitespaceTokenizer::new();
        let fast: Vec<(usize, usize)> = set_sim_join(&left, &right, &tok, SetSimMeasure::Dice(t))
            .into_iter().map(|p| (p.l, p.r)).collect();
        prop_assert_eq!(fast, naive_set(&left, &right, SetSimMeasure::Dice(t)));
    }

    #[test]
    fn overlap_join_equals_naive(left in strings(), right in strings(), c in 1usize..4) {
        let tok = WhitespaceTokenizer::new();
        let fast: Vec<(usize, usize)> = set_sim_join(&left, &right, &tok, SetSimMeasure::OverlapSize(c))
            .into_iter().map(|p| (p.l, p.r)).collect();
        prop_assert_eq!(fast, naive_set(&left, &right, SetSimMeasure::OverlapSize(c)));
    }

    /// The full oracle grid for the CSR engine: random token soups ×
    /// all four measures × thresholds {0.3, 0.6, 0.8, 1.0} (mapped to
    /// small absolute counts for `OverlapSize`) × probe sides
    /// {Auto, Left, Right} × worker counts {1, 4}. Every cell must be
    /// **bit-identical** — same `(l, r)` pair set in the same order and
    /// the exact same f64 similarity — to the naive cross-product oracle
    /// and to the preserved pre-CSR HashMap engine.
    #[test]
    fn csr_engine_grid_equals_naive_oracle(left in strings(), right in strings()) {
        let tok = WhitespaceTokenizer::new();
        let coll = TokenizedCollection::build(&left, &right, &tok);
        let measures = [
            SetSimMeasure::Jaccard(0.3), SetSimMeasure::Jaccard(0.6),
            SetSimMeasure::Jaccard(0.8), SetSimMeasure::Jaccard(1.0),
            SetSimMeasure::Cosine(0.3), SetSimMeasure::Cosine(0.6),
            SetSimMeasure::Cosine(0.8), SetSimMeasure::Cosine(1.0),
            SetSimMeasure::Dice(0.3), SetSimMeasure::Dice(0.6),
            SetSimMeasure::Dice(0.8), SetSimMeasure::Dice(1.0),
            SetSimMeasure::OverlapSize(1), SetSimMeasure::OverlapSize(2),
            SetSimMeasure::OverlapSize(3),
        ];
        for measure in measures {
            // Naive cross-product oracle, with exact similarities from
            // the same `setsim` arithmetic the engine must reproduce.
            let mut oracle: Vec<JoinPair> = Vec::new();
            for (l, a) in left.iter().enumerate() {
                for (r, b) in right.iter().enumerate() {
                    let (Some(a), Some(b)) = (a, b) else { continue };
                    let ta = tok.tokenize(a);
                    let tb = tok.tokenize(b);
                    if ta.is_empty() || tb.is_empty() {
                        continue;
                    }
                    let (ok, sim) = match measure {
                        SetSimMeasure::Jaccard(t) => {
                            let s = setsim::jaccard(&ta, &tb);
                            (s >= t - 1e-9, s)
                        }
                        SetSimMeasure::Cosine(t) => {
                            let s = setsim::cosine(&ta, &tb);
                            (s >= t - 1e-9, s)
                        }
                        SetSimMeasure::Dice(t) => {
                            let s = setsim::dice(&ta, &tb);
                            (s >= t - 1e-9, s)
                        }
                        SetSimMeasure::OverlapSize(c) => {
                            let s = setsim::overlap_size(&ta, &tb);
                            (s >= c, s as f64)
                        }
                    };
                    if ok {
                        oracle.push(JoinPair { l, r, sim });
                    }
                }
            }
            let reference = join_tokenized_hashmap(&coll, measure);
            prop_assert_eq!(&reference, &oracle, "reference vs oracle {:?}", measure);
            for side in [ProbeSide::Auto, ProbeSide::Left, ProbeSide::Right] {
                let (serial, stats) = join_tokenized_stats(&coll, measure, side);
                prop_assert_eq!(&serial, &oracle, "serial {:?} {:?}", measure, side);
                prop_assert_eq!(stats.pairs, oracle.len());
                for workers in [1usize, 4] {
                    let (par, pstats) = join_tokenized_par_side(
                        &coll, measure, side, &ParConfig::workers(workers));
                    prop_assert_eq!(&par, &oracle,
                        "par {:?} {:?} workers={}", measure, side, workers);
                    prop_assert_eq!(pstats.join.pairs, oracle.len());
                }
            }
        }
    }

    #[test]
    fn edit_join_equals_naive(
        left in proptest::collection::vec(proptest::option::weighted(0.9, "[ab]{0,6}"), 1..20),
        right in proptest::collection::vec(proptest::option::weighted(0.9, "[ab]{0,6}"), 1..20),
        d in 0usize..3,
    ) {
        let fast: Vec<(usize, usize)> = edit_distance_join(&left, &right, d)
            .into_iter().map(|p| (p.l, p.r)).collect();
        let mut slow = Vec::new();
        for (l, a) in left.iter().enumerate() {
            for (r, b) in right.iter().enumerate() {
                if let (Some(a), Some(b)) = (a, b) {
                    if levenshtein(a, b) <= d {
                        slow.push((l, r));
                    }
                }
            }
        }
        prop_assert_eq!(fast, slow);
    }
}
