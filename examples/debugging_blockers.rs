//! The blocking-debugger pain-point tool in action.
//!
//! ```text
//! cargo run --release --example debugging_blockers
//! ```
//!
//! The paper's guide warns that an over-aggressive blocker silently kills
//! matches before anyone labels anything — which is why PyMatcher ships a
//! dedicated blocking debugger (Table 3, column D). This example blocks a
//! product catalog with a too-strict equality blocker, lets the debugger
//! surface the near-miss pairs it killed, then loosens the blocker and
//! shows the recall recovering.

use magellan_block::debugger::{debug_blocker, estimate_recall};
use magellan_block::metrics::evaluate_blocking;
use magellan_block::{AttrEquivalenceBlocker, Blocker, OverlapBlocker};
use magellan_datagen::domains::products;
use magellan_datagen::{DirtModel, ScenarioConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = products(&ScenarioConfig {
        size_a: 600,
        size_b: 600,
        n_matches: 200,
        dirt: DirtModel::moderate(),
        seed: 7,
    });
    let (a, b) = (&scenario.table_a, &scenario.table_b);

    // Attempt 1: exact title equality. Catalogs render titles differently,
    // so this is (quietly) catastrophic.
    let strict = AttrEquivalenceBlocker::on("title");
    let c1 = strict.block(a, b)?;
    let r1 = evaluate_blocking(&c1, a, b, "id", "id", &scenario.gold)?;
    println!(
        "blocker {:40} candidates={:6} true recall={:.2}",
        strict.name(),
        r1.n_candidates,
        r1.recall()
    );

    // The debugger needs no gold labels: it estimates recall and lists the
    // most-similar killed pairs.
    let est = estimate_recall(&c1, a, b, &["title", "brand"], 0.65)?;
    println!("label-free recall estimate: {est:.2}");
    let dropped = debug_blocker(&c1, a, b, &["title", "brand"], 5, 0.3)?;
    println!("top killed near-misses:");
    for d in &dropped {
        let ta = a.value_by_name(d.l_row, "title")?.display_string();
        let tb = b.value_by_name(d.r_row, "title")?.display_string();
        println!("  sim={:.2}  {ta:40} | {tb}", d.sim);
    }

    // Attempt 2: loosen to 2-token overlap on the title, as the debugger
    // output suggests (the killed pairs share brand + model tokens).
    let loose = OverlapBlocker::words("title", 2);
    let c2 = loose.block(a, b)?;
    let r2 = evaluate_blocking(&c2, a, b, "id", "id", &scenario.gold)?;
    println!(
        "\nblocker {:40} candidates={:6} true recall={:.2} (reduction {:.3})",
        loose.name(),
        r2.n_candidates,
        r2.recall(),
        r2.reduction_ratio()
    );

    assert!(r2.recall() > r1.recall() + 0.3, "loosening must recover recall");
    assert!(!dropped.is_empty(), "debugger must surface killed pairs");
    Ok(())
}
