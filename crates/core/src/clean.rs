//! Data cleaning: the §5.3 lesson.
//!
//! > "Our experience also made clear that data cleaning is critical for EM
//! > (e.g., see the 'Vendors' and 'Addresses' cases). It is important that
//! > we can detect dirty data, isolate it, and then clean it, to maximize
//! > EM accuracy."
//!
//! This module provides that toolchain: value normalizers, a detector for
//! *generic placeholder values* (the Brazilian-vendor failure signature —
//! one address string shared by many unrelated records), and an isolator
//! that splits a table into its clean and dirty parts so the clean part
//! can be matched and the dirty part routed back to the domain experts.

use std::collections::HashSet;

use magellan_table::{Table, Value};

/// String normalization operations, applied in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalizeOp {
    /// Lowercase the value.
    Lowercase,
    /// Trim and collapse internal whitespace runs to single spaces.
    CollapseWhitespace,
    /// Remove ASCII punctuation characters.
    StripPunctuation,
}

/// Apply normalization ops to one string.
pub fn normalize(s: &str, ops: &[NormalizeOp]) -> String {
    let mut out = s.to_owned();
    for op in ops {
        out = match op {
            NormalizeOp::Lowercase => out.to_lowercase(),
            NormalizeOp::CollapseWhitespace => {
                out.split_whitespace().collect::<Vec<_>>().join(" ")
            }
            NormalizeOp::StripPunctuation => out
                .chars()
                .filter(|c| !c.is_ascii_punctuation())
                .collect(),
        };
    }
    out
}

/// Return a copy of the table with `attr` normalized in place.
pub fn normalize_column(
    table: &Table,
    attr: &str,
    ops: &[NormalizeOp],
) -> magellan_table::Result<Table> {
    let idx = table.schema().try_index_of(attr)?;
    // `take` (not `clone`) so the result is a fresh table identity: the
    // catalog must not treat normalized data as the registered original.
    let all: Vec<usize> = (0..table.nrows()).collect();
    let mut out = table.take(&all);
    for r in 0..table.nrows() {
        if let Some(s) = table.value(r, idx).as_str() {
            out.set_value(r, attr, Value::Str(normalize(s, ops)))?;
        }
    }
    Ok(out)
}

/// A value flagged as a probable generic placeholder.
#[derive(Debug, Clone, PartialEq)]
pub struct GenericValue {
    /// The (normalized) value.
    pub value: String,
    /// How many rows carry it.
    pub count: usize,
    /// Fraction of non-null rows carrying it.
    pub fraction: f64,
}

/// Detect generic placeholder values in an attribute: values repeated at
/// least `min_count` times *and* covering at least `min_fraction` of the
/// non-null rows. On real master data, a street address shared by dozens
/// of unrelated vendors is not an address — it is a form default.
///
/// Values are compared after lowercasing and whitespace collapsing.
pub fn detect_generic_values(
    table: &Table,
    attr: &str,
    min_count: usize,
    min_fraction: f64,
) -> magellan_table::Result<Vec<GenericValue>> {
    let idx = table.schema().try_index_of(attr)?;
    let mut freq: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    let mut nonnull = 0usize;
    for r in table.rows() {
        if let Some(s) = table.value(r, idx).as_str() {
            nonnull += 1;
            *freq
                .entry(normalize(
                    s,
                    &[NormalizeOp::Lowercase, NormalizeOp::CollapseWhitespace],
                ))
                .or_insert(0) += 1;
        }
    }
    if nonnull == 0 {
        return Ok(Vec::new());
    }
    let mut out: Vec<GenericValue> = freq
        .into_iter()
        .filter(|(_, c)| *c >= min_count)
        .map(|(value, count)| GenericValue {
            value,
            count,
            fraction: count as f64 / nonnull as f64,
        })
        .filter(|g| g.fraction >= min_fraction)
        .collect();
    out.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.value.cmp(&b.value)));
    Ok(out)
}

/// Split a table into `(clean, dirty)` by whether `attr` carries one of
/// the flagged values (normalized comparison). Nulls go to the clean side
/// (missing is not the same pathology as generic).
pub fn isolate_rows(
    table: &Table,
    attr: &str,
    generic: &[GenericValue],
) -> magellan_table::Result<(Table, Table)> {
    let idx = table.schema().try_index_of(attr)?;
    let flagged: HashSet<&str> = generic.iter().map(|g| g.value.as_str()).collect();
    let mut clean_rows = Vec::new();
    let mut dirty_rows = Vec::new();
    for r in table.rows() {
        let is_dirty = table
            .value(r, idx)
            .as_str()
            .map(|s| {
                flagged.contains(
                    normalize(s, &[NormalizeOp::Lowercase, NormalizeOp::CollapseWhitespace])
                        .as_str(),
                )
            })
            .unwrap_or(false);
        if is_dirty {
            dirty_rows.push(r);
        } else {
            clean_rows.push(r);
        }
    }
    Ok((table.take(&clean_rows), table.take(&dirty_rows)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_table::Dtype;

    fn vendors() -> Table {
        let mut rows = Vec::new();
        for i in 0..20 {
            rows.push(vec![
                Value::Str(format!("v{i}")),
                Value::Str(format!("{i} oak street")),
            ]);
        }
        // A generic placeholder shared by 10 rows, with case/space drift.
        for i in 20..30 {
            let addr = if i % 2 == 0 {
                "Rua   Principal S N".to_owned()
            } else {
                "rua principal s n".to_owned()
            };
            rows.push(vec![Value::Str(format!("v{i}")), Value::Str(addr)]);
        }
        rows.push(vec![Value::Str("v30".into()), Value::Null]);
        Table::from_rows("V", &[("id", Dtype::Str), ("address", Dtype::Str)], rows).unwrap()
    }

    #[test]
    fn normalize_ops_compose() {
        let s = normalize(
            "  Rua   PRINCIPAL, s/n!  ",
            &[
                NormalizeOp::Lowercase,
                NormalizeOp::StripPunctuation,
                NormalizeOp::CollapseWhitespace,
            ],
        );
        assert_eq!(s, "rua principal sn");
    }

    #[test]
    fn normalize_column_returns_new_table() {
        let t = vendors();
        let cleaned = normalize_column(&t, "address", &[NormalizeOp::Lowercase]).unwrap();
        assert_ne!(t.id(), cleaned.id());
        assert_eq!(
            cleaned.value_by_name(20, "address").unwrap().as_str(),
            Some("rua   principal s n")
        );
        // Nulls survive untouched.
        assert!(cleaned.value_by_name(30, "address").unwrap().is_null());
    }

    #[test]
    fn detects_the_generic_address() {
        let t = vendors();
        let generic = detect_generic_values(&t, "address", 5, 0.1).unwrap();
        assert_eq!(generic.len(), 1);
        assert_eq!(generic[0].value, "rua principal s n");
        assert_eq!(generic[0].count, 10);
        assert!((generic[0].fraction - 10.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn thresholds_suppress_ordinary_repetition() {
        let t = vendors();
        // min_count above the placeholder's count: nothing flagged.
        assert!(detect_generic_values(&t, "address", 11, 0.0).unwrap().is_empty());
        // fraction bar too high: nothing flagged.
        assert!(detect_generic_values(&t, "address", 5, 0.5).unwrap().is_empty());
    }

    #[test]
    fn isolate_splits_clean_and_dirty() {
        let t = vendors();
        let generic = detect_generic_values(&t, "address", 5, 0.1).unwrap();
        let (clean, dirty) = isolate_rows(&t, "address", &generic).unwrap();
        assert_eq!(dirty.nrows(), 10);
        assert_eq!(clean.nrows(), 21); // 20 real + the null row
        for r in dirty.rows() {
            let v = dirty.value_by_name(r, "address").unwrap().display_string();
            assert!(v.to_lowercase().contains("rua"));
        }
    }

    #[test]
    fn empty_and_unknown_columns() {
        let t = Table::from_rows("E", &[("x", Dtype::Str)], vec![]).unwrap();
        assert!(detect_generic_values(&t, "x", 1, 0.0).unwrap().is_empty());
        assert!(detect_generic_values(&t, "nope", 1, 0.0).is_err());
    }
}
