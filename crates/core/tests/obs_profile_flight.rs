//! Determinism contract for the v2 observability layer: the
//! [`ObsProfile`] collapsed-stack export and the flight-recorder dump
//! are **byte-identical at any worker count** under a pinned clock —
//! across the post-PR-5 tiers (stream sessions, the multi-tenant
//! service) and under injected faults, where the flight recorder must
//! leave a parseable post-mortem artifact.

use magellan_block::OverlapBlocker;
use magellan_core::checkpoint::MemStore;
use magellan_core::exec::{ProductionExecutor, RecoveryOptions};
use magellan_core::rules::RuleLayer;
use magellan_core::{EmWorkflow, StreamSession, TextGen};
use magellan_datagen::domains::persons;
use magellan_datagen::{DirtModel, EmScenario, ScenarioConfig};
use magellan_falcon::service::{
    MatchService, Priority, ServiceConfig, SyntheticTask, TenantQuota, TenantSpec,
    TenantSubmission, Workload,
};
use magellan_faults::{ArrivalPlan, FaultPlan, SimClock, StreamPlan};
use magellan_features::{Feature, FeatureKind, TokSpecF};
use magellan_ml::model::ConstantClassifier;
use magellan_ml::{Dataset, FlatForest, RandomForestLearner};
use magellan_obs::{Obs, ObsSnapshot};
use magellan_par::ParConfig;
use magellan_simjoin::SetSimMeasure;

/// Chunk size pinned for every run: chunk spans must not depend on the
/// worker count (the default chunk size adapts to it).
const CHUNK: usize = 16;

fn par(workers: usize) -> ParConfig {
    let mut cfg = ParConfig::workers(workers);
    cfg.chunk_size = Some(CHUNK);
    cfg
}

// ---------------------------------------------------------------------
// Stream sessions
// ---------------------------------------------------------------------

fn stream_forest() -> FlatForest {
    let mut d = Dataset::with_dims(2);
    for i in 0..60 {
        let hi = i % 2 == 0;
        let base = if hi { 0.8 } else { 0.15 };
        d.push(&[base + 0.01 * (i % 7) as f64, base + 0.01 * ((i + 3) % 5) as f64], hi);
    }
    FlatForest::from_forest(
        &RandomForestLearner {
            n_trees: 5,
            ..Default::default()
        }
        .fit_forest(&d),
    )
}

/// Drive a seeded churn stream under a pinned recorder and export.
fn stream_pinned(workers: usize) -> ObsSnapshot {
    let obs = Obs::pinned();
    let _g = obs.install();
    let mut session = StreamSession::new(
        SetSimMeasure::Jaccard(0.4),
        vec![
            Feature::new("text", "text", FeatureKind::Jaccard(TokSpecF::Word)),
            Feature::new("text", "text", FeatureKind::Dice(TokSpecF::Word)),
        ],
        stream_forest(),
        0.5,
        par(workers),
    );
    let plan = StreamPlan::churn(7);
    let gen = TextGen {
        vocab: 12,
        min_tokens: 4,
        max_tokens: 7,
    };
    let mut clock = SimClock::new();
    for _ in 0..6 {
        session.run_plan_batch(&plan, &gen, 8, &mut clock, 1.0).expect("stream batch");
    }
    assert!(session.n_candidates() > 0, "fixture too sparse to exercise the stream");
    obs.snapshot()
}

#[test]
fn stream_session_pinned_exports_are_byte_identical_across_worker_counts() {
    let snap1 = stream_pinned(1);
    let prom1 = snap1.to_prometheus();
    let trace1 = snap1.to_chrome_trace();
    let prof1 = snap1.profile().to_collapsed();

    // The new StreamSession phase spans made it into the trace, and the
    // ingest profile attributes self-time to each phase.
    for name in ["delta_join", "mirror_mutations", "patch_candidates", "rescore_dirty"] {
        assert!(
            !snap1.spans_named(name).is_empty(),
            "missing stream phase span {name:?}"
        );
        assert!(prof1.contains(name), "profile lost stream phase {name:?}");
    }

    let snap8 = stream_pinned(8);
    assert_eq!(snap8.to_prometheus(), prom1, "stream Prometheus diverged at 8 workers");
    assert_eq!(snap8.to_chrome_trace(), trace1, "stream Chrome trace diverged at 8 workers");
    assert_eq!(snap8.profile().to_collapsed(), prof1, "stream profile diverged at 8 workers");
}

// ---------------------------------------------------------------------
// Service overload
// ---------------------------------------------------------------------

/// A seeded fleet packed far past the service's capacity, with an SLO
/// tight enough that violations are guaranteed — the flight recorder
/// must capture them.
fn overload_fleet(n: u32) -> Vec<TenantSubmission<'static>> {
    let plan = ArrivalPlan::poisson(17, n, 0.5);
    (0..n)
        .map(|i| TenantSubmission {
            tenant: TenantSpec {
                name: format!("t{i}"),
                arrival_s: plan.arrival_s(i),
                priority: Priority::from_class(plan.priority_class(i, 3)),
                weight: plan.weight(i, 4),
                quota: TenantQuota::unlimited(),
                task_seed: 0x5EED_0000 + u64::from(i),
            },
            workload: Workload::Synthetic(SyntheticTask {
                rows: (300 + 40 * (i as usize % 5), 300),
                questions_blocking: 30,
                questions_matching: 50,
                n_candidates: 4_000 + 500 * (i as usize % 6),
                crowd: i % 3 == 0,
                on_cloud: i % 2 == 0,
            }),
        })
        .collect()
}

fn service_pinned() -> (Obs, ObsSnapshot) {
    let obs = Obs::pinned();
    let snap = {
        let _g = obs.install();
        let cfg = ServiceConfig {
            batch_slots: 2,
            crowd_slots: 1,
            max_active_tenants: 4,
            max_queue: 24,
            slo_p99_ms: 1, // unmeetable: every accepted tenant violates
            faults: FaultPlan::seeded(4242),
            ..Default::default()
        };
        MatchService::new(cfg)
            .expect("service config")
            .run(&overload_fleet(24))
            .expect("service run");
        obs.snapshot()
    };
    (obs, snap)
}

#[test]
fn service_overload_pinned_exports_and_flight_dump_are_byte_identical() {
    let (obs1, snap1) = service_pinned();
    let prom1 = snap1.to_prometheus();
    let trace1 = snap1.to_chrome_trace();
    let dump1 = obs1.flight_dump_json();

    // SLO violations fired and were captured as flight failures.
    assert!(obs1.failure_count() > 0, "overload fleet produced no SLO violations");
    assert!(dump1.contains("slo_violation"), "flight dump lost the SLO failures");
    let parsed = magellan_obs::parse_json(&dump1).expect("flight dump parses");
    assert_eq!(parsed.get("magellan_flight").and_then(|v| v.as_f64()), Some(1.0));
    assert!(parsed.get("seed").is_some(), "dump must be keyed by seed");
    // Worker count keys the artifact *path*, never the body — the body
    // stays byte-identical across worker counts.
    assert!(parsed.get("workers").is_none());

    // The whole service run is a deterministic simulation: a second run
    // reproduces every export byte (the cross-run face of the contract;
    // the service itself holds no real threads to vary).
    let (obs2, snap2) = service_pinned();
    assert_eq!(snap2.to_prometheus(), prom1, "service Prometheus diverged across runs");
    assert_eq!(snap2.to_chrome_trace(), trace1, "service Chrome trace diverged across runs");
    assert_eq!(obs2.flight_dump_json(), dump1, "service flight dump diverged across runs");
}

// ---------------------------------------------------------------------
// Profile + flight dump across worker counts, under injected faults
// ---------------------------------------------------------------------

fn scenario() -> EmScenario {
    persons(&ScenarioConfig {
        size_a: 160,
        size_b: 160,
        n_matches: 50,
        dirt: DirtModel::light(),
        seed: 33,
    })
}

fn workflow() -> EmWorkflow {
    EmWorkflow {
        blocker: Box::new(OverlapBlocker::words("name", 1)),
        features: vec![
            Feature::new("name", "name", FeatureKind::Jaccard(TokSpecF::Word)),
            Feature::new("name", "name", FeatureKind::JaroWinkler),
        ],
        matcher: Box::new(ConstantClassifier { proba: 1.0 }),
        rule_layer: RuleLayer::empty(),
        threshold: 0.5,
    }
}

/// Fault-injected recovery run (plan stays inside the retry budget) under
/// a pinned recorder; returns the recorder for flight access plus the
/// snapshot.
fn run_pinned_faulted(workers: usize, s: &EmScenario) -> (Obs, ObsSnapshot) {
    magellan_core::par::silence_contained_panics();
    let obs = Obs::pinned();
    let snap = {
        let _g = obs.install();
        let mut store = MemStore::default();
        let opts = RecoveryOptions {
            faults: FaultPlan::seeded(99),
            ..RecoveryOptions::default()
        };
        let report = ProductionExecutor::new(workers)
            .with_chunk_size(CHUNK)
            .run_with_recovery(&workflow(), &s.table_a, &s.table_b, &mut store, &opts)
            .expect("recovery run");
        assert!(report.recovery.panics_contained > 0, "fault plan never fired");
        obs.snapshot()
    };
    (obs, snap)
}

#[test]
fn profile_and_flight_dump_are_byte_identical_at_1_2_4_8_workers() {
    let s = scenario();
    let (obs1, snap1) = run_pinned_faulted(1, &s);
    let folded1 = snap1.profile().to_collapsed();
    let dump1 = obs1.flight_dump_json();

    // Contained panics were captured as flight failures with their chunk
    // coordinates, and the profile attributes the retry level.
    assert!(obs1.failure_count() > 0);
    assert!(dump1.contains("panic_contained"));
    assert!(folded1.contains("retry"), "profile lost the retry level:\n{folded1}");
    // Collapsed lines are "path self_ns" and the tree roots at `run`.
    assert!(folded1.lines().all(|l| l.rsplit_once(' ').is_some()));
    assert!(folded1.starts_with("run "));

    for workers in [2, 4, 8] {
        let (obsw, snapw) = run_pinned_faulted(workers, &s);
        assert_eq!(
            snapw.profile().to_collapsed(),
            folded1,
            "collapsed profile diverged at {workers} workers"
        );
        assert_eq!(
            obsw.flight_dump_json(),
            dump1,
            "flight dump diverged at {workers} workers"
        );
    }
}

#[test]
fn flight_dump_file_is_keyed_by_seed_and_workers_in_the_path() {
    let s = scenario();
    let (obs, _snap) = run_pinned_faulted(4, &s);
    let dir = std::env::temp_dir().join(format!("magellan_flight_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let tmpl = dir.join("flight_{seed}_w{workers}.json");
    let path = obs
        .write_flight_dump(tmpl.to_str().expect("utf8 temp path"))
        .expect("flight dump writes");
    // The template placeholders resolved to the run context…
    assert!(path.contains("flight_99_w4.json"), "unexpected artifact path {path}");
    // …and the artifact body is the canonical dump, parseable as JSON.
    // (No byte-compare against a fresh `flight_dump_json` here: each dump
    // advances the counter-delta baseline, so a second dump legitimately
    // reports zero deltas.)
    let body = std::fs::read_to_string(&path).expect("artifact readable");
    let parsed = magellan_obs::parse_json(&body).expect("artifact parses");
    assert_eq!(parsed.get("magellan_flight").and_then(|v| v.as_f64()), Some(1.0));
    assert_eq!(parsed.get("seed").and_then(|v| v.as_f64()), Some(99.0));
    assert!(parsed
        .get("failure_events")
        .and_then(|v| v.as_array())
        .is_some_and(|a| !a.is_empty()));
    let _ = std::fs::remove_dir_all(&dir);
}
