//! The production-stage executor.
//!
//! §4.1: "We have developed tools that can execute these commands on a
//! multi-core single machine, using customized code or Dask." This module
//! is that Dask substitute: it runs a captured [`crate::EmWorkflow`] over
//! the full tables, fanning the feature-extraction + predict loop out over
//! crossbeam scoped threads, and reports per-phase wall-clock timings (the
//! "Machine" time column of Table 2).

use std::time::{Duration, Instant};

use magellan_block::CandidateSet;
use magellan_features::extract_feature_matrix;
use magellan_table::Table;

use crate::workflow::EmWorkflow;

/// Per-phase timings of a production run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Blocking wall-clock.
    pub blocking: Duration,
    /// Feature extraction + prediction wall-clock.
    pub matching: Duration,
}

impl PhaseTimings {
    /// Total machine time.
    pub fn total(&self) -> Duration {
        self.blocking + self.matching
    }
}

/// Result of a production run.
pub struct ProductionReport {
    /// Predicted matches.
    pub matches: CandidateSet,
    /// Candidate pairs examined.
    pub n_candidates: usize,
    /// Wall-clock per phase.
    pub timings: PhaseTimings,
    /// Worker threads used.
    pub n_workers: usize,
}

/// Multi-core workflow executor.
#[derive(Debug, Clone, Copy)]
pub struct ProductionExecutor {
    /// Worker threads for the matching phase (≥ 1).
    pub n_workers: usize,
}

impl ProductionExecutor {
    /// Executor with the given parallelism.
    pub fn new(n_workers: usize) -> Self {
        ProductionExecutor {
            n_workers: n_workers.max(1),
        }
    }

    /// Run the workflow over full tables.
    pub fn run(
        &self,
        workflow: &EmWorkflow,
        a: &Table,
        b: &Table,
    ) -> magellan_table::Result<ProductionReport> {
        let t0 = Instant::now();
        let candidates = workflow.blocker.block(a, b)?;
        let blocking = t0.elapsed();

        let t1 = Instant::now();
        let pairs = candidates.pairs();
        let decisions = if self.n_workers == 1 || pairs.len() < 2 * self.n_workers {
            let matrix = extract_feature_matrix(pairs, a, b, &workflow.features)?;
            let predicted: Vec<bool> = matrix
                .rows
                .iter()
                .map(|row| workflow.matcher.predict_proba(row) >= workflow.threshold)
                .collect();
            workflow
                .rule_layer
                .apply(&matrix, &predicted)
                .into_iter()
                .zip(pairs.iter().copied())
                .filter_map(|(d, p)| d.then_some(p))
                .collect::<Vec<_>>()
        } else {
            let chunk = pairs.len().div_ceil(self.n_workers);
            let mut partials: Vec<magellan_table::Result<Vec<(u32, u32)>>> =
                Vec::with_capacity(self.n_workers);
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = pairs
                    .chunks(chunk)
                    .map(|slice| {
                        scope.spawn(move |_| -> magellan_table::Result<Vec<(u32, u32)>> {
                            let matrix =
                                extract_feature_matrix(slice, a, b, &workflow.features)?;
                            let predicted: Vec<bool> = matrix
                                .rows
                                .iter()
                                .map(|row| {
                                    workflow.matcher.predict_proba(row) >= workflow.threshold
                                })
                                .collect();
                            Ok(workflow
                                .rule_layer
                                .apply(&matrix, &predicted)
                                .into_iter()
                                .zip(slice.iter().copied())
                                .filter_map(|(d, p)| d.then_some(p))
                                .collect())
                        })
                    })
                    .collect();
                for h in handles {
                    partials.push(h.join().expect("production worker panicked"));
                }
            })
            .expect("crossbeam scope");
            let mut out = Vec::new();
            for p in partials {
                out.extend(p?);
            }
            out
        };
        let matching = t1.elapsed();

        Ok(ProductionReport {
            matches: CandidateSet::new(decisions),
            n_candidates: pairs.len(),
            timings: PhaseTimings { blocking, matching },
            n_workers: self.n_workers,
        })
    }
}

/// A general parallel map over row chunks, exposed for workloads that
/// don't fit the workflow shape (e.g. per-row cleaning in the guide's
/// pre-processing step).
pub fn parallel_map<T: Send, F: Fn(usize) -> T + Sync>(
    n: usize,
    n_workers: usize,
    f: F,
) -> Vec<T> {
    let n_workers = n_workers.max(1);
    if n_workers == 1 || n < 2 * n_workers {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(n_workers);
    let mut partials: Vec<Vec<T>> = Vec::with_capacity(n_workers);
    crossbeam::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..n_workers)
            .map(|w| {
                scope.spawn(move |_| {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(n);
                    (lo..hi).map(f).collect::<Vec<T>>()
                })
            })
            .collect();
        for h in handles {
            partials.push(h.join().expect("parallel_map worker panicked"));
        }
    })
    .expect("crossbeam scope");
    partials.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleLayer;
    use magellan_block::OverlapBlocker;
    use magellan_datagen::domains::persons;
    use magellan_datagen::{DirtModel, ScenarioConfig};
    use magellan_features::{Feature, FeatureKind, TokSpecF};
    use magellan_ml::model::ConstantClassifier;

    fn workflow() -> EmWorkflow {
        EmWorkflow {
            blocker: Box::new(OverlapBlocker::words("name", 1)),
            features: vec![
                Feature::new("name", "name", FeatureKind::Jaccard(TokSpecF::Word)),
                Feature::new("name", "name", FeatureKind::JaroWinkler),
            ],
            matcher: Box::new(ConstantClassifier { proba: 1.0 }),
            rule_layer: RuleLayer::new(vec![crate::rules::MatchRule::reject(
                "weak",
                vec![(
                    "jaccard(word(A.name), word(B.name))".into(),
                    crate::rules::Cmp::Lt,
                    0.5,
                )],
            )]),
            threshold: 0.5,
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let s = persons(&ScenarioConfig {
            size_a: 300,
            size_b: 300,
            n_matches: 100,
            dirt: DirtModel::light(),
            seed: 21,
        });
        let wf = workflow();
        let serial = ProductionExecutor::new(1).run(&wf, &s.table_a, &s.table_b).unwrap();
        let parallel = ProductionExecutor::new(4).run(&wf, &s.table_a, &s.table_b).unwrap();
        assert_eq!(serial.matches, parallel.matches);
        assert_eq!(serial.n_candidates, parallel.n_candidates);
        assert_eq!(parallel.n_workers, 4);
        assert!(serial.timings.total() > Duration::ZERO);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, 4, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        let out = parallel_map(3, 8, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
        let empty: Vec<usize> = parallel_map(0, 4, |i| i);
        assert!(empty.is_empty());
    }
}
