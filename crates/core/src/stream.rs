//! The streaming daemon tier: `magellan serve` for entity matching.
//!
//! The paper's production stage is batch: block, extract, score, done.
//! But matching workloads rarely stand still — catalogs take inserts,
//! corrections rewrite records, retractions delete them. Rebuilding the
//! whole pipeline per change is O(corpus); this module keeps a **live
//! matched view** maintained in O(delta) per batch by composing the
//! incremental tiers grown underneath it:
//!
//! * [`magellan_simjoin::IncrementalJoin`] — delta-maintained candidate
//!   generation (tombstoned CSR + tail overlay, signed pair deltas);
//! * [`magellan_block::CandidateSet::apply_deltas`] — the candidate set
//!   patched in one merge pass;
//! * [`magellan_features::StreamingPreparedPair`] — per-record cache
//!   invalidation, so only dirty records re-tokenize;
//! * [`magellan_ml::FlatForest::rescore_dirty`] — model scores recomputed
//!   for dirty pairs only.
//!
//! ## Determinism contract
//!
//! After **any** stream prefix, [`StreamSession::matched_pairs`] is
//! bit-identical — exact `f64` score bits, identical pair sets — to a
//! from-scratch rebuild over the current records
//! ([`StreamSession::rebuild_oracle`]), at any worker count. The argument
//! composes: the join engine's live view equals a batch join (its own
//! contract), and features/scores are pure per-pair functions of record
//! text, so restricting recomputation to dirty pairs cannot change what
//! any pair scores.
//!
//! ## Durability
//!
//! [`StreamSession::checkpoint_text`] serializes the session as
//! `emstream v1` — record texts, the live candidate view (similarity
//! bits), all model scores (probability bits), per-side index generations,
//! and the stream cursor — under the same FNV-1a trailer convention as
//! `emckpt v1`. A daemon killed mid-stream resumes via
//! [`StreamSession::restore_from_text`] and replays the remaining
//! [`magellan_faults::StreamPlan`] suffix to the identical view.

use std::collections::BTreeMap;

use magellan_block::CandidateSet;
use magellan_faults::{SimClock, StreamOp, StreamPlan};
use magellan_features::{Feature, StreamingPreparedPair};
use magellan_ml::FlatForest;
use magellan_par::ParConfig;
use magellan_simjoin::{
    IncrementalJoin, JoinPair, PairDelta, RecordMutation, SetSimMeasure, Side,
};
use magellan_table::{Dtype, Schema, Table, Value};
use magellan_textsim::tokenize::AlphanumericTokenizer;

use crate::checkpoint::{append_checksum, verify_checksum};
use crate::error::MagellanError;

/// Deterministic synthetic record text for seeded streams: `n_tokens`
/// words drawn from a `vocab`-sized universe, all decided by `seed`.
#[derive(Debug, Clone, Copy)]
pub struct TextGen {
    /// Distinct token universe size.
    pub vocab: u32,
    /// Minimum tokens per record.
    pub min_tokens: u32,
    /// Maximum tokens per record (inclusive).
    pub max_tokens: u32,
}

impl Default for TextGen {
    fn default() -> Self {
        TextGen {
            vocab: 400,
            min_tokens: 4,
            max_tokens: 9,
        }
    }
}

fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl TextGen {
    /// The record text for one stream-plan text seed.
    pub fn text(&self, seed: u64) -> String {
        let span = (self.max_tokens - self.min_tokens + 1) as u64;
        let n = self.min_tokens as u64 + mix64(seed) % span;
        let mut out = String::new();
        for i in 0..n {
            if i > 0 {
                out.push(' ');
            }
            let tok = mix64(seed ^ (i + 1)) % self.vocab as u64;
            out.push_str(&format!("tok{tok}"));
        }
        out
    }
}

/// What one ingested batch did — the daemon's per-tick report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamBatchReport {
    /// 1-based index of this batch in the session's lifetime.
    pub batch: u64,
    /// Mutations applied.
    pub mutations: usize,
    /// Candidate pairs that newly qualified.
    pub pairs_added: usize,
    /// Candidate pairs that stopped qualifying.
    pub pairs_removed: usize,
    /// Pairs re-featurized and re-scored (== `pairs_added`).
    pub dirty_pairs: usize,
    /// Index compactions triggered by this batch.
    pub compactions: u64,
    /// Live candidate pairs after the batch.
    pub live_candidates: usize,
    /// Live matched pairs (score ≥ threshold) after the batch.
    pub live_matches: usize,
}

/// A live, incrementally-maintained EM pipeline over two record streams.
///
/// Owns the delta join engine, the streaming feature store (two
/// single-attribute `(id, text)` tables), a flattened random forest, and
/// the score map. See the module docs for the determinism contract.
pub struct StreamSession {
    engine: IncrementalJoin,
    tokenizer: AlphanumericTokenizer,
    store: StreamingPreparedPair,
    features: Vec<Feature>,
    forest: FlatForest,
    candidates: CandidateSet,
    scores: BTreeMap<(usize, usize), f64>,
    threshold: f64,
    par: ParConfig,
    batches: u64,
    ops: u64,
}

fn stream_schema() -> Schema {
    Schema::from_pairs(&[("id", Dtype::Str), ("text", Dtype::Str)])
        .expect("static stream schema is valid")
}

impl StreamSession {
    /// A fresh session: empty collections, nothing matched.
    ///
    /// `features` must reference only the `text` attribute on both sides
    /// (validated on first extraction); `threshold` is the match operating
    /// point over the forest's probability.
    pub fn new(
        measure: SetSimMeasure,
        features: Vec<Feature>,
        forest: FlatForest,
        threshold: f64,
        par: ParConfig,
    ) -> Self {
        let a = Table::with_capacity("stream_left", stream_schema(), 0);
        let b = Table::with_capacity("stream_right", stream_schema(), 0);
        StreamSession {
            engine: IncrementalJoin::new(measure),
            tokenizer: AlphanumericTokenizer::as_set(),
            store: StreamingPreparedPair::new(a, b),
            features,
            forest,
            candidates: CandidateSet::default(),
            scores: BTreeMap::new(),
            threshold,
            par,
            batches: 0,
            ops: 0,
        }
    }

    /// Batches ingested so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Stream-plan steps consumed so far (the resume cursor).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Live candidate pairs (the join's delta-maintained view).
    pub fn n_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// The live matched view: `(left rid, right rid) → probability` for
    /// every candidate whose score clears the threshold, sorted by pair.
    pub fn matched_pairs(&self) -> Vec<((usize, usize), f64)> {
        self.scores
            .iter()
            .filter(|(_, &p)| p >= self.threshold)
            .map(|(&k, &p)| (k, p))
            .collect()
    }

    /// Number of live matched pairs.
    pub fn n_matches(&self) -> usize {
        self.scores.values().filter(|&&p| p >= self.threshold).count()
    }

    /// The underlying delta join engine (generations, pause telemetry).
    pub fn engine(&self) -> &IncrementalJoin {
        &self.engine
    }

    /// Apply one mutation batch through the whole incremental pipeline:
    /// delta join → candidate patch → dirty-pair featurization → dirty-pair
    /// rescore. Cost is O(batch × affected neighborhoods), never O(corpus).
    pub fn ingest(&mut self, batch: &[RecordMutation]) -> Result<StreamBatchReport, MagellanError> {
        self.batches += 1;
        let _span = magellan_obs::span("stream_batch", self.batches);

        // 1. Delta join: signed candidate-pair deltas.
        let delta_span = magellan_obs::span("delta_join", 0);
        let (deltas, stats) = self.engine.apply_batch(batch, &self.tokenizer, &self.par);
        drop(delta_span);

        // 2. Mirror the mutations into the feature store's tables —
        //    insertion order matches the engine's rid assignment, so row
        //    ids line up by construction.
        let mirror_span = magellan_obs::span("mirror_mutations", 0);
        for op in batch {
            match op {
                RecordMutation::Insert { side, text } => {
                    let left = matches!(side, Side::Left);
                    let rid = self.store.tables().0.nrows() * usize::from(left)
                        + self.store.tables().1.nrows() * usize::from(!left);
                    let prefix = if left { 'l' } else { 'r' };
                    let row = vec![
                        Value::Str(format!("{prefix}{rid}")),
                        text.clone().map(Value::Str).unwrap_or(Value::Null),
                    ];
                    self.store.push_row(left, row).map_err(MagellanError::Table)?;
                }
                RecordMutation::Delete { side, rid } => {
                    self.store
                        .set_value(matches!(side, Side::Left), *rid, "text", Value::Null)
                        .map_err(MagellanError::Table)?;
                }
                RecordMutation::Update { side, rid, text } => {
                    let v = text.clone().map(Value::Str).unwrap_or(Value::Null);
                    self.store
                        .set_value(matches!(side, Side::Left), *rid, "text", v)
                        .map_err(MagellanError::Table)?;
                }
            }
        }
        debug_assert_eq!(self.store.tables().0.nrows(), self.engine.n_records(Side::Left));
        debug_assert_eq!(self.store.tables().1.nrows(), self.engine.n_records(Side::Right));
        drop(mirror_span);

        // 3. Patch the candidate set and retire dead scores.
        let patch_span = magellan_obs::span("patch_candidates", 0);
        let applied = self.candidates.apply_deltas(&deltas);
        let mut dirty: Vec<(usize, usize)> = Vec::new();
        for d in &deltas {
            match d {
                PairDelta::Removed { l, r } => {
                    self.scores.remove(&(*l, *r));
                }
                PairDelta::Added(p) => dirty.push((p.l, p.r)),
            }
        }
        drop(patch_span);

        // 4. Featurize + rescore exactly the dirty pairs.
        let rescore_span = magellan_obs::span("rescore_dirty", 0);
        if !dirty.is_empty() {
            let pairs_u32: Vec<(u32, u32)> =
                dirty.iter().map(|&(l, r)| (l as u32, r as u32)).collect();
            let (matrix, _fstats) = self
                .store
                .extract(&pairs_u32, &self.features, &self.par)
                .map_err(MagellanError::Table)?;
            let keyed: Vec<((usize, usize), Vec<f64>)> = dirty
                .iter()
                .copied()
                .zip(matrix.rows)
                .collect();
            for ((l, r), p) in self.forest.rescore_dirty(&keyed, &self.par) {
                self.scores.insert((l, r), p);
            }
        }
        drop(rescore_span);

        let report = StreamBatchReport {
            batch: self.batches,
            mutations: batch.len(),
            pairs_added: applied.added,
            pairs_removed: applied.removed,
            dirty_pairs: dirty.len(),
            compactions: stats.compactions as u64,
            live_candidates: self.candidates.len(),
            live_matches: self.n_matches(),
        };
        magellan_obs::counter_add("magellan_stream_batches_total", 1);
        magellan_obs::counter_add("magellan_stream_mutations_total", batch.len() as u64);
        magellan_obs::counter_add("magellan_stream_dirty_pairs_total", dirty.len() as u64);
        magellan_obs::gauge_set("magellan_stream_live_matches", report.live_matches as f64);
        magellan_obs::gauge_set(
            "magellan_stream_live_candidates",
            report.live_candidates as f64,
        );
        Ok(report)
    }

    /// Materialize the next `n` stream-plan steps into concrete mutations
    /// against the current alive populations. Victim selectors reduce
    /// modulo the pre-batch alive set (deterministic across kill/resume —
    /// the checkpoint restores the same population); an op against an
    /// empty side degrades to an insert.
    pub fn synth_batch(&self, plan: &StreamPlan, gen: &TextGen, n: usize) -> Vec<RecordMutation> {
        let alive = |side: Side| -> Vec<usize> {
            self.engine
                .texts(side)
                .iter()
                .enumerate()
                .filter_map(|(rid, t)| t.as_ref().map(|_| rid))
                .collect()
        };
        let (alive_l, alive_r) = (alive(Side::Left), alive(Side::Right));
        let mut out = Vec::with_capacity(n);
        for step in self.ops..self.ops + n as u64 {
            let op = plan.op(step);
            let side_of = |left: bool| if left { Side::Left } else { Side::Right };
            let pick = |left: bool, victim: u64| -> Option<usize> {
                let pool = if left { &alive_l } else { &alive_r };
                (!pool.is_empty()).then(|| pool[(victim % pool.len() as u64) as usize])
            };
            let text = || Some(gen.text(plan.text_seed(step)));
            out.push(match op {
                StreamOp::Insert { left } => RecordMutation::Insert {
                    side: side_of(left),
                    text: text(),
                },
                StreamOp::Delete { left, victim } => match pick(left, victim) {
                    Some(rid) => RecordMutation::Delete {
                        side: side_of(left),
                        rid,
                    },
                    None => RecordMutation::Insert {
                        side: side_of(left),
                        text: text(),
                    },
                },
                StreamOp::Update { left, victim } => match pick(left, victim) {
                    Some(rid) => RecordMutation::Update {
                        side: side_of(left),
                        rid,
                        text: text(),
                    },
                    None => RecordMutation::Insert {
                        side: side_of(left),
                        text: text(),
                    },
                },
            });
        }
        out
    }

    /// One daemon tick: synthesize the next `batch_size` plan steps,
    /// ingest them, and advance the simulated clock by `dt_s`. The stream
    /// cursor ([`StreamSession::ops`]) moves so the next tick continues
    /// where this one left off.
    pub fn run_plan_batch(
        &mut self,
        plan: &StreamPlan,
        gen: &TextGen,
        batch_size: usize,
        clock: &mut SimClock,
        dt_s: f64,
    ) -> Result<StreamBatchReport, MagellanError> {
        let batch = self.synth_batch(plan, gen, batch_size);
        self.ops += batch_size as u64;
        let report = self.ingest(&batch)?;
        clock.advance_s(dt_s);
        Ok(report)
    }

    /// The from-scratch oracle: rebuild the entire pipeline — batch join,
    /// cold feature extraction, full-matrix scoring — over the current
    /// records and return the matched view. O(corpus); exists to *prove*
    /// the live view right, not to serve queries.
    pub fn rebuild_oracle(&self) -> Result<Vec<((usize, usize), f64)>, MagellanError> {
        let pairs = self.engine.rebuild_from_scratch(&self.tokenizer);
        let mut a = Table::with_capacity("oracle_left", stream_schema(), 0);
        for (rid, t) in self.engine.texts(Side::Left).iter().enumerate() {
            a.push_row(vec![
                Value::Str(format!("l{rid}")),
                t.clone().map(Value::Str).unwrap_or(Value::Null),
            ])
            .map_err(MagellanError::Table)?;
        }
        let mut b = Table::with_capacity("oracle_right", stream_schema(), 0);
        for (rid, t) in self.engine.texts(Side::Right).iter().enumerate() {
            b.push_row(vec![
                Value::Str(format!("r{rid}")),
                t.clone().map(Value::Str).unwrap_or(Value::Null),
            ])
            .map_err(MagellanError::Table)?;
        }
        let pairs_u32: Vec<(u32, u32)> =
            pairs.iter().map(|p| (p.l as u32, p.r as u32)).collect();
        let mut cold = StreamingPreparedPair::new(a, b);
        let (matrix, _) = cold
            .extract(&pairs_u32, &self.features, &self.par)
            .map_err(MagellanError::Table)?;
        let probs = self.forest.predict_proba_batch(&matrix.rows, &self.par);
        let mut out: Vec<((usize, usize), f64)> = pairs
            .iter()
            .zip(probs)
            .filter(|(_, p)| *p >= self.threshold)
            .map(|(jp, p)| ((jp.l, jp.r), p))
            .collect();
        out.sort_by_key(|&(k, _)| k);
        Ok(out)
    }

    // -----------------------------------------------------------------
    // Checkpointing (`emstream v1`)
    // -----------------------------------------------------------------

    /// Serialize the session as `emstream v1` text: stream cursors, index
    /// generations, both sides' record texts (hex-encoded, null-aware),
    /// the live candidate view with exact similarity bits, and every model
    /// score with exact probability bits — all under the shared FNV-1a
    /// trailer. Model, features, measure, and threshold are *not* stored;
    /// the resuming caller supplies the identical configuration, exactly
    /// like the service layer reattaches label engines on resume.
    pub fn checkpoint_text(&self) -> String {
        let mut out = String::from("emstream v1\n");
        out.push_str(&format!("cursor batches {} ops {}\n", self.batches, self.ops));
        out.push_str(&format!(
            "gens left {} right {} vocab {}\n",
            self.engine.index_generation(Side::Left),
            self.engine.index_generation(Side::Right),
            self.engine.vocab_generation(),
        ));
        for (tag, side) in [("ltexts", Side::Left), ("rtexts", Side::Right)] {
            let texts = self.engine.texts(side);
            out.push_str(&format!("{tag} {}\n", texts.len()));
            for t in texts {
                match t {
                    Some(s) => {
                        out.push_str("t ");
                        for b in s.as_bytes() {
                            out.push_str(&format!("{b:02x}"));
                        }
                        out.push('\n');
                    }
                    None => out.push_str("t -\n"),
                }
            }
        }
        let live = self.engine.live_pairs();
        out.push_str(&format!("live {}\n", live.len()));
        for p in &live {
            out.push_str(&format!("{} {} {:016x}\n", p.l, p.r, p.sim.to_bits()));
        }
        out.push_str(&format!("scores {}\n", self.scores.len()));
        for (&(l, r), &p) in &self.scores {
            out.push_str(&format!("{l} {r} {:016x}\n", p.to_bits()));
        }
        out.push_str("end\n");
        append_checksum(&mut out);
        out
    }

    /// Restore a session from `emstream v1` text plus the (identical)
    /// configuration it was created with. Index generations are pinned to
    /// the stored values, so generation monotonicity survives the crash;
    /// the live view and all score bits restore exactly.
    pub fn restore_from_text(
        text: &str,
        measure: SetSimMeasure,
        features: Vec<Feature>,
        forest: FlatForest,
        threshold: f64,
        par: ParConfig,
    ) -> Result<StreamSession, MagellanError> {
        let magic = text.lines().next().ok_or_else(|| stream_corrupt("empty checkpoint"))?;
        if magic.trim() != "emstream v1" {
            return Err(stream_corrupt(format!("bad magic `{magic}`")));
        }
        let payload = verify_checksum(text)?;
        let mut lines = payload.lines();
        lines.next(); // magic
        let cursor = lines
            .next()
            .ok_or_else(|| stream_corrupt("missing cursor line"))?;
        let c: Vec<&str> = cursor.split_whitespace().collect();
        if c.len() != 5 || c[0] != "cursor" || c[1] != "batches" || c[3] != "ops" {
            return Err(stream_corrupt(format!("bad cursor line `{cursor}`")));
        }
        let batches: u64 = c[2].parse().map_err(|_| stream_corrupt("bad batches"))?;
        let ops: u64 = c[4].parse().map_err(|_| stream_corrupt("bad ops"))?;
        let gens = lines.next().ok_or_else(|| stream_corrupt("missing gens line"))?;
        let g: Vec<&str> = gens.split_whitespace().collect();
        if g.len() != 7 || g[0] != "gens" {
            return Err(stream_corrupt(format!("bad gens line `{gens}`")));
        }
        let lgen: u64 = g[2].parse().map_err(|_| stream_corrupt("bad left gen"))?;
        let rgen: u64 = g[4].parse().map_err(|_| stream_corrupt("bad right gen"))?;

        let mut read_texts = |tag: &str| -> Result<Vec<Option<String>>, MagellanError> {
            let header = lines
                .next()
                .ok_or_else(|| stream_corrupt(format!("missing `{tag}` header")))?;
            let n: usize = header
                .strip_prefix(tag)
                .and_then(|v| v.trim().parse().ok())
                .ok_or_else(|| stream_corrupt(format!("bad `{tag}` header `{header}`")))?;
            let mut texts = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let line = lines
                    .next()
                    .ok_or_else(|| stream_corrupt("truncated text list"))?;
                let body = line
                    .strip_prefix("t ")
                    .ok_or_else(|| stream_corrupt(format!("bad text line `{line}`")))?;
                if body == "-" {
                    texts.push(None);
                } else {
                    texts.push(Some(hex_to_string(body)?));
                }
            }
            Ok(texts)
        };
        let left_texts = read_texts("ltexts")?;
        let right_texts = read_texts("rtexts")?;

        let mut read_pairs = |tag: &str| -> Result<Vec<(usize, usize, u64)>, MagellanError> {
            let header = lines
                .next()
                .ok_or_else(|| stream_corrupt(format!("missing `{tag}` header")))?;
            let n: usize = header
                .strip_prefix(tag)
                .and_then(|v| v.trim().parse().ok())
                .ok_or_else(|| stream_corrupt(format!("bad `{tag}` header `{header}`")))?;
            let mut out = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let line = lines.next().ok_or_else(|| stream_corrupt("truncated pair list"))?;
                let f: Vec<&str> = line.split_whitespace().collect();
                let parsed = (|| {
                    if f.len() != 3 {
                        return None;
                    }
                    Some((
                        f[0].parse::<usize>().ok()?,
                        f[1].parse::<usize>().ok()?,
                        u64::from_str_radix(f[2], 16).ok()?,
                    ))
                })()
                .ok_or_else(|| stream_corrupt(format!("bad pair line `{line}`")))?;
                out.push(parsed);
            }
            Ok(out)
        };
        let live = read_pairs("live")?;
        let scores = read_pairs("scores")?;
        match lines.next() {
            Some(l) if l.trim() == "end" => {}
            other => {
                return Err(stream_corrupt(format!(
                    "expected `end`, got `{}`",
                    other.unwrap_or("<eof>")
                )))
            }
        }

        let tokenizer = AlphanumericTokenizer::as_set();
        let live_pairs: Vec<JoinPair> = live
            .iter()
            .map(|&(l, r, bits)| JoinPair {
                l,
                r,
                sim: f64::from_bits(bits),
            })
            .collect();
        let engine = IncrementalJoin::restore(
            measure,
            &tokenizer,
            left_texts.clone(),
            right_texts.clone(),
            live_pairs,
            lgen,
            rgen,
        );
        let mut a = Table::with_capacity("stream_left", stream_schema(), left_texts.len());
        for (rid, t) in left_texts.iter().enumerate() {
            a.push_row(vec![
                Value::Str(format!("l{rid}")),
                t.clone().map(Value::Str).unwrap_or(Value::Null),
            ])
            .map_err(MagellanError::Table)?;
        }
        let mut b = Table::with_capacity("stream_right", stream_schema(), right_texts.len());
        for (rid, t) in right_texts.iter().enumerate() {
            b.push_row(vec![
                Value::Str(format!("r{rid}")),
                t.clone().map(Value::Str).unwrap_or(Value::Null),
            ])
            .map_err(MagellanError::Table)?;
        }
        let candidates: CandidateSet = live
            .iter()
            .map(|&(l, r, _)| (l as u32, r as u32))
            .collect();
        Ok(StreamSession {
            engine,
            tokenizer,
            store: StreamingPreparedPair::new(a, b),
            features,
            forest,
            candidates,
            scores: scores
                .into_iter()
                .map(|(l, r, bits)| ((l, r), f64::from_bits(bits)))
                .collect(),
            threshold,
            par,
            batches,
            ops,
        })
    }
}

fn hex_to_string(hex: &str) -> Result<String, MagellanError> {
    if hex.len() % 2 != 0 {
        return Err(stream_corrupt("odd-length hex text"));
    }
    let mut bytes = Vec::with_capacity(hex.len() / 2);
    for i in (0..hex.len()).step_by(2) {
        let b = u8::from_str_radix(&hex[i..i + 2], 16)
            .map_err(|_| stream_corrupt(format!("bad hex byte `{}`", &hex[i..i + 2])))?;
        bytes.push(b);
    }
    String::from_utf8(bytes).map_err(|_| stream_corrupt("checkpointed text is not UTF-8"))
}

fn stream_corrupt(msg: impl std::fmt::Display) -> MagellanError {
    MagellanError::Checkpoint {
        message: format!("corrupt stream checkpoint: {msg}"),
        transient: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_features::{FeatureKind, TokSpecF};
    use magellan_ml::{Dataset, RandomForestLearner};

    fn fixture_forest(n_features: usize) -> FlatForest {
        // A tiny forest over synthetic feature rows: positive when the
        // set-similarity features are high. Deterministic via fixed data.
        let mut d = Dataset::with_dims(n_features);
        for i in 0..60 {
            let hi = i % 2 == 0;
            let base = if hi { 0.8 } else { 0.15 };
            let row: Vec<f64> = (0..n_features)
                .map(|j| base + 0.01 * ((i + j) % 7) as f64)
                .collect();
            d.push(&row, hi);
        }
        let forest = RandomForestLearner {
            n_trees: 5,
            ..Default::default()
        }
        .fit_forest(&d);
        FlatForest::from_forest(&forest)
    }

    fn stream_features() -> Vec<Feature> {
        vec![
            Feature::new("text", "text", FeatureKind::Jaccard(TokSpecF::Word)),
            Feature::new("text", "text", FeatureKind::Dice(TokSpecF::Word)),
            Feature::new("text", "text", FeatureKind::JaroWinkler),
        ]
    }

    fn session(workers: usize) -> StreamSession {
        StreamSession::new(
            SetSimMeasure::Jaccard(0.4),
            stream_features(),
            fixture_forest(3),
            0.5,
            if workers <= 1 {
                ParConfig::serial()
            } else {
                ParConfig::workers(workers)
            },
        )
    }

    fn drive(s: &mut StreamSession, seed: u64, batches: usize, batch_size: usize) {
        let plan = StreamPlan::churn(seed);
        let gen = TextGen::default();
        let mut clock = SimClock::new();
        for _ in 0..batches {
            s.run_plan_batch(&plan, &gen, batch_size, &mut clock, 1.0).unwrap();
        }
    }

    /// The live matched view is bit-identical to the from-scratch oracle
    /// after every batch of a seeded churn stream.
    #[test]
    fn live_view_matches_oracle_after_every_batch() {
        let mut s = session(1);
        let plan = StreamPlan::churn(7);
        let gen = TextGen {
            vocab: 12,
            min_tokens: 4,
            max_tokens: 7,
        };
        let mut clock = SimClock::new();
        let mut saw_match = false;
        for _ in 0..12 {
            s.run_plan_batch(&plan, &gen, 8, &mut clock, 1.0).unwrap();
            let live = s.matched_pairs();
            let oracle = s.rebuild_oracle().unwrap();
            assert_eq!(live.len(), oracle.len());
            for ((lk, lp), (ok, op)) in live.iter().zip(&oracle) {
                assert_eq!(lk, ok);
                assert_eq!(lp.to_bits(), op.to_bits(), "score bits diverged at {lk:?}");
            }
            saw_match |= !live.is_empty();
        }
        assert!(saw_match, "stream never produced a match — fixture too sparse");
        assert_eq!(clock.now_s(), 12.0);
    }

    /// Worker count never changes the view (serial vs 4 workers).
    #[test]
    fn stream_is_worker_count_invariant() {
        let mut a = session(1);
        let mut b = session(4);
        drive(&mut a, 11, 10, 6);
        drive(&mut b, 11, 10, 6);
        let (va, vb) = (a.matched_pairs(), b.matched_pairs());
        assert_eq!(va.len(), vb.len());
        for ((ka, pa), (kb, pb)) in va.iter().zip(&vb) {
            assert_eq!(ka, kb);
            assert_eq!(pa.to_bits(), pb.to_bits());
        }
        assert_eq!(a.n_candidates(), b.n_candidates());
    }

    /// Kill the daemon mid-stream, restore from the checkpoint, replay the
    /// remaining plan suffix: the final view is identical to the unkilled
    /// run, and index generations stay pinned across the crash.
    #[test]
    fn checkpoint_resume_replays_identically() {
        // Unkilled reference: 14 batches straight through.
        let mut whole = session(1);
        drive(&mut whole, 23, 14, 7);

        // Killed run: 6 batches, checkpoint, "crash", restore, 8 more.
        let mut first = session(1);
        drive(&mut first, 23, 6, 7);
        let ckpt = first.checkpoint_text();
        let gen_l = first.engine().index_generation(Side::Left);
        let gen_r = first.engine().index_generation(Side::Right);
        drop(first);
        let mut resumed = StreamSession::restore_from_text(
            &ckpt,
            SetSimMeasure::Jaccard(0.4),
            stream_features(),
            fixture_forest(3),
            0.5,
            ParConfig::serial(),
        )
        .unwrap();
        assert_eq!(resumed.batches(), 6);
        assert_eq!(resumed.ops(), 42);
        assert_eq!(resumed.engine().index_generation(Side::Left), gen_l);
        assert_eq!(resumed.engine().index_generation(Side::Right), gen_r);
        drive(&mut resumed, 23, 8, 7);

        let (vw, vr) = (whole.matched_pairs(), resumed.matched_pairs());
        assert_eq!(vw.len(), vr.len(), "resumed run diverged in match count");
        for ((kw, pw), (kr, pr)) in vw.iter().zip(&vr) {
            assert_eq!(kw, kr);
            assert_eq!(pw.to_bits(), pr.to_bits());
        }
        // And the resumed view still equals its own oracle.
        let oracle = resumed.rebuild_oracle().unwrap();
        assert_eq!(vr.len(), oracle.len());
    }

    /// Corruption in any checkpoint section is a fatal, precise error.
    #[test]
    fn corrupt_checkpoints_are_fatal() {
        let mut s = session(1);
        drive(&mut s, 5, 3, 5);
        let good = s.checkpoint_text();
        let restore = |t: &str| {
            StreamSession::restore_from_text(
                t,
                SetSimMeasure::Jaccard(0.4),
                stream_features(),
                fixture_forest(3),
                0.5,
                ParConfig::serial(),
            )
        };
        assert!(restore(&good).is_ok());
        assert!(restore("").is_err());
        assert!(restore("emckpt v1\n").is_err());
        let torn = &good[..good.len() / 2];
        assert!(restore(torn).is_err());
        let tampered = good.replace("cursor batches 3", "cursor batches 4");
        assert!(restore(&tampered).is_err(), "checksum must catch tampering");
    }
}
