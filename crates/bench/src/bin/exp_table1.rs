//! Table 1 — real-world deployment of PyMatcher.
//!
//! For each deployment row of the paper's Table 1 we generate the closest
//! synthetic scenario, run the incumbent solution (a hand-tuned
//! exact/rule pipeline, standing in for "the EM workflow in production")
//! and the PyMatcher development-stage pipeline, and report both. The
//! paper's claim to reproduce: PyMatcher finds workflows significantly
//! better than production workflows (notably on recall), with small teams
//! (here: zero humans — an oracle labeler answering a few hundred
//! questions).

use magellan_bench::score;
use magellan_block::{AttrEquivalenceBlocker, Blocker, OverlapBlocker};
use magellan_core::labeling::OracleLabeler;
use magellan_core::pipeline::{run_development_stage, DevConfig};
use magellan_datagen::domains;
use magellan_datagen::{DirtModel, ScenarioConfig};
use magellan_features::generate_features;
use magellan_ml::{DecisionTreeLearner, Learner, RandomForestLearner};

struct Deployment {
    /// Table 1 row this stands in for.
    paper_row: &'static str,
    scenario: &'static str,
    dirt: DirtModel,
    /// Attribute driving the incumbent's exact-match rule.
    incumbent_attr: &'static str,
    /// Attribute for PyMatcher's candidate blockers.
    text_attr: &'static str,
}

fn main() {
    // Experiment narration is leveled logging: MAGELLAN_LOG=off silences it.
    magellan_obs::init_bin_logging(magellan_obs::Level::Info);
    let deployments = [
        Deployment {
            paper_row: "Walmart (products)",
            scenario: "products",
            dirt: DirtModel::moderate(),
            incumbent_attr: "title",
            text_attr: "title",
        },
        Deployment {
            paper_row: "Economics (UW)",
            scenario: "citations",
            dirt: DirtModel::moderate(),
            incumbent_attr: "title",
            text_attr: "title",
        },
        Deployment {
            paper_row: "Land Use (UW)",
            scenario: "ranches",
            dirt: DirtModel::moderate(),
            incumbent_attr: "owner",
            text_attr: "owner",
        },
        Deployment {
            paper_row: "Recruit (restaurants)",
            scenario: "restaurants",
            dirt: DirtModel::moderate(),
            incumbent_attr: "name",
            text_attr: "name",
        },
        Deployment {
            paper_row: "Marshfield Clinic",
            scenario: "persons",
            dirt: DirtModel::moderate(),
            incumbent_attr: "name",
            text_attr: "name",
        },
        Deployment {
            paper_row: "Limnology (UW)",
            scenario: "addresses",
            dirt: DirtModel::light(),
            incumbent_attr: "street",
            text_attr: "street",
        },
    ];

    magellan_obs::log!(info, "Table 1 analog — PyMatcher vs incumbent production workflow");
    magellan_obs::log!(info, 
        "{:24} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>6} | production?",
        "deployment", "inc P%", "inc R%", "inc F1%", "py P%", "py R%", "py F1%", "quest"
    );
    for d in &deployments {
        let cfg = ScenarioConfig {
            size_a: 1200,
            size_b: 1200,
            n_matches: 400,
            dirt: d.dirt,
            seed: 0xDEAD ^ d.paper_row.len() as u64,
        };
        let s = domains::by_name(d.scenario, &cfg).expect("known scenario");
        let (a, b) = (&s.table_a, &s.table_b);

        // Incumbent: exact equality on the incumbent attribute.
        let incumbent = AttrEquivalenceBlocker::on(d.incumbent_attr)
            .block(a, b)
            .expect("incumbent blocker");
        let m_inc = score(&incumbent, a, b, &s.gold);

        // PyMatcher development-stage pipeline.
        let features = generate_features(a, b, &["id"]).expect("features");
        let mut labeler = OracleLabeler::new(s.gold.clone(), "id", "id");
        let tree = DecisionTreeLearner::default();
        let forest = RandomForestLearner {
            n_trees: 12,
            ..Default::default()
        };
        let learners: Vec<&dyn Learner> = vec![&tree, &forest];
        let blockers: Vec<Box<dyn Blocker>> = vec![
            Box::new(OverlapBlocker::words(d.text_attr, 1)),
            Box::new(AttrEquivalenceBlocker::on(d.incumbent_attr)),
        ];
        let (workflow, report) = run_development_stage(
            a,
            b,
            blockers,
            features,
            &learners,
            &mut labeler,
            &DevConfig {
                sample_size: 400,
                ..Default::default()
            },
        )
        .expect("development stage");
        let out = workflow.execute(a, b).expect("workflow execution");
        let m_py = score(&out.matches(), a, b, &s.gold);

        // The paper's "pushed into production" criterion: clearly better.
        let production = if m_py.f1() > m_inc.f1() + 0.02 { "yes" } else { "no" };
        magellan_obs::log!(info, 
            "{:24} {:8.1} {:8.1} {:8.1} | {:8.1} {:8.1} {:8.1} {:6} | {}",
            d.paper_row,
            100.0 * m_inc.precision(),
            100.0 * m_inc.recall(),
            100.0 * m_inc.f1(),
            100.0 * m_py.precision(),
            100.0 * m_py.recall(),
            100.0 * m_py.f1(),
            report.questions,
            production
        );
    }
    magellan_obs::log!(info, "\npaper shape: PyMatcher beats the incumbent pipeline, chiefly on recall,");
    magellan_obs::log!(info, "and goes to production in most deployments (6 of 8 in the paper).");
}
