//! Hash-sharded out-of-core set-similarity join.
//!
//! The CSR prefix index over a 10M-row indexed side can dwarf RAM. This
//! module partitions the **indexed** side into `K` shards by a
//! splitmix64 hash of each record's rarest token (its first id under the
//! rarest-first order; empty records go to shard 0 — they can never
//! match anyway), then builds the index and runs the probe cascade one
//! shard at a time. Peak index memory is the largest single shard
//! (~1/K of the monolithic build for any reasonably spread hash) while
//! the full pair set still comes out.
//!
//! **Bit-identity argument** (pinned by the `shard_oracle` test grid):
//! every indexed record lives in exactly one shard, so the union over
//! shards of each probe's candidate set equals its monolithic candidate
//! set; [`probe_one`] is a pure function of `(probe record, indexed
//! record)` — the size/positional/suffix filters are conservative and
//! verification is exact, so a pair's presence and its f64 similarity
//! never depend on which other records share the index; and the final
//! `(l, r)` sort erases both shard order and chunk order. Hence the
//! merged stream is bit-identical to the monolithic join at any
//! `(K, worker count)`.
//!
//! Cascade counters ([`magellan_par::JoinStats`]) merge across shards
//! and remain worker-count invariant at fixed `K`; `probes` scales with
//! `K` (each non-empty probe record walks every shard) and the
//! size-filter kill count is unchanged (postings are partitioned, and
//! in-window membership is per posting).

use magellan_par::{JoinStats, ParConfig, ParStats};

use crate::collection::TokenizedCollection;
use crate::index::{estimate_index_bytes, PrefixIndex};
use crate::join::{probe_one, JoinPair, ProbePlan, ProbeSide, SetSimMeasure, PROBE_SCRATCH, PROBE_STAMPS};

/// Memory + partitioning telemetry of one sharded join run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardStats {
    /// Shards the indexed side was cut into.
    pub n_shards: usize,
    /// Indexed records per shard.
    pub shard_records: Vec<usize>,
    /// Largest single-shard index — the run's peak index residency.
    pub peak_index_bytes: usize,
    /// Sum of all shard indexes (≈ monolithic postings + K× the fixed
    /// per-record/per-token arrays).
    pub total_index_bytes: usize,
    /// What one monolithic index over the same side would allocate.
    pub monolithic_index_bytes: usize,
}

impl ShardStats {
    /// Publish the shard gauges to the metrics registry (no-op when
    /// observability is disabled). Deterministic: every value is a pure
    /// function of the join inputs and `K`.
    pub fn publish(&self) {
        magellan_obs::gauge_set("magellan_simjoin_shards", self.n_shards as f64);
        // Byte gauges are *peaks*: repeated joins on one recorder keep the
        // high-water mark instead of clobbering it last-write-wins.
        magellan_obs::gauge_max(
            "magellan_simjoin_shard_peak_index_bytes",
            self.peak_index_bytes as f64,
        );
        magellan_obs::gauge_max(
            "magellan_simjoin_shard_total_index_bytes",
            self.total_index_bytes as f64,
        );
        magellan_obs::gauge_max(
            "magellan_simjoin_monolithic_index_bytes",
            self.monolithic_index_bytes as f64,
        );
    }
}

/// The finalizer step of splitmix64 — a cheap, well-mixed 64-bit hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Which shard an indexed record belongs to: hash of its rarest token.
/// Empty records (nulls) park in shard 0 and never produce postings.
fn shard_of(rec: &[u32], n_shards: usize) -> usize {
    match rec.first() {
        Some(&tok) => (splitmix64(u64::from(tok)) % n_shards as u64) as usize,
        None => 0,
    }
}

/// Shard count that keeps every single-shard index under `budget_bytes`.
/// Starts from the even-spread lower bound (`monolithic / budget`), then
/// checks the **actual** hash partition: each shard repeats the
/// `(max token + 1)`-sized offsets array and the spread is never
/// perfectly even, so the naive division under-shards. At least 1; a
/// zero budget degrades to the monolithic join; if no K fits (a single
/// rarest-token group can bound the peak from below — co-hashed records
/// never separate), the record count is returned as the densest cut
/// available.
pub fn shards_for_budget(
    coll: &TokenizedCollection,
    measure: SetSimMeasure,
    side: ProbeSide,
    budget_bytes: usize,
) -> usize {
    let plan = ProbePlan::choose(coll, side);
    let est = estimate_index_bytes(plan.indexed, |s| measure.prefix_len(s));
    if budget_bytes == 0 || est <= budget_bytes {
        return 1;
    }
    let n_records = plan.indexed.len();
    let mut k = est.div_ceil(budget_bytes).max(2);
    while k < n_records {
        if predicted_peak_bytes(plan.indexed, measure, k) <= budget_bytes {
            return k;
        }
        k += 1;
    }
    n_records.max(1)
}

/// Exact per-shard index bytes of the hash partition at `K`, maximized
/// over shards — the same accounting as [`estimate_index_bytes`], folded
/// in one pass without materializing the partition.
fn predicted_peak_bytes(indexed: &[Vec<u32>], measure: SetSimMeasure, k: usize) -> usize {
    let mut n_postings = vec![0usize; k];
    let mut max_token = vec![0u32; k];
    let mut n_records = vec![0usize; k];
    for rec in indexed {
        let s = shard_of(rec, k);
        n_records[s] += 1;
        let plen = measure.prefix_len(rec.len()).min(rec.len());
        n_postings[s] += plen;
        for &tok in &rec[..plen] {
            max_token[s] = max_token[s].max(tok);
        }
    }
    (0..k)
        .map(|s| {
            let n_tokens = if n_postings[s] == 0 {
                0
            } else {
                max_token[s] as usize + 1
            };
            n_postings[s] * std::mem::size_of::<crate::index::Posting>()
                + (n_tokens + 1) * std::mem::size_of::<u32>()
                + n_records[s] * std::mem::size_of::<u32>()
        })
        .max()
        .unwrap_or(0)
}

/// Hash-sharded variant of [`crate::join_tokenized_par_side`]: same pair
/// stream (bit-identical, `(l, r)`-sorted), built one shard index at a
/// time. `n_shards == 1` is exactly the monolithic join (same code path
/// modulo the local-rid remap, which is then the identity).
///
/// Fault injection composes per shard: the chunk-fault region of `cfg`
/// is offset by the shard number, so seeded chaos plans exercise
/// different shards independently while staying deterministic.
pub fn join_tokenized_sharded(
    coll: &TokenizedCollection,
    measure: SetSimMeasure,
    side: ProbeSide,
    n_shards: usize,
    cfg: &ParConfig,
) -> (Vec<JoinPair>, ParStats, ShardStats) {
    measure.validate();
    assert!(n_shards >= 1, "need at least one shard");
    let plan = ProbePlan::choose(coll, side);
    let monolithic_index_bytes = estimate_index_bytes(plan.indexed, |s| measure.prefix_len(s));

    // Partition the indexed side; local rid order within a shard follows
    // global rid order, so shard builds are deterministic.
    let mut shard_rids: Vec<Vec<u32>> = vec![Vec::new(); n_shards];
    for (rid, rec) in plan.indexed.iter().enumerate() {
        shard_rids[shard_of(rec, n_shards)].push(rid as u32);
    }

    // One stamp block covers the whole run: probe p against shard s gets
    // stamp base + s·|probe| + p, unique across shards, joins, chunks.
    let n_probe = plan.probe.len();
    let stamp_base =
        PROBE_STAMPS.fetch_add((n_probe as u64) * (n_shards as u64), std::sync::atomic::Ordering::Relaxed);

    let mut out = Vec::new();
    let mut js = JoinStats::default();
    let mut par = ParStats::default();
    let mut shard_stats = ShardStats {
        n_shards,
        shard_records: shard_rids.iter().map(Vec::len).collect(),
        monolithic_index_bytes,
        ..ShardStats::default()
    };

    for (s, rids) in shard_rids.iter().enumerate() {
        // Materialize the shard's records under local rids 0..m and
        // build its index — the only index alive at this point.
        let build_span = magellan_obs::span("shard_build", s as u64);
        let local: Vec<Vec<u32>> = rids.iter().map(|&r| plan.indexed[r as usize].clone()).collect();
        let index = PrefixIndex::build(&local, |sz| measure.prefix_len(sz));
        let bytes = index.index_bytes();
        magellan_obs::span_res_add("shard_index_bytes", bytes as u64);
        drop(build_span);
        shard_stats.peak_index_bytes = shard_stats.peak_index_bytes.max(bytes);
        shard_stats.total_index_bytes += bytes;
        let probe_span = magellan_obs::span("shard_probe", s as u64);

        // Give each shard its own chunk-fault region so seeded chaos
        // draws independent faults per shard.
        let mut shard_cfg = cfg.clone();
        shard_cfg.faults.region = shard_cfg.faults.region.wrapping_add(s as u64);
        let shard_stamp_base = stamp_base + (s as u64) * (n_probe as u64);

        let (chunks, pstats) = magellan_par::chunk_map(n_probe, &shard_cfg, |range| {
            PROBE_SCRATCH.with(|cell| {
                let mut scratch = cell.borrow_mut();
                scratch.ensure(local.len());
                let _verify = magellan_obs::span("verify", range.start as u64);
                let mut pairs = Vec::new();
                let mut stats = JoinStats::default();
                for p in range {
                    probe_one(
                        p,
                        shard_stamp_base + p as u64,
                        &plan.probe[p],
                        &local,
                        &index,
                        measure,
                        plan.swap,
                        &mut scratch,
                        &mut pairs,
                        &mut stats,
                    );
                }
                (pairs, stats)
            })
        });
        for (chunk_pairs, chunk_js) in chunks {
            // Remap the indexed-side component from local to global rid.
            out.extend(chunk_pairs.into_iter().map(|mut p| {
                if plan.swap {
                    p.l = rids[p.l] as usize;
                } else {
                    p.r = rids[p.r] as usize;
                }
                p
            }));
            js.merge(&chunk_js);
        }
        par.merge(&pstats);
        drop(probe_span);
        // The shard's index dies here — the next shard's build is the
        // only index alive again. A span marks the teardown so peak
        // residency windows are visible in the profile.
        let drop_span = magellan_obs::span("shard_drop", s as u64);
        drop(index);
        drop(local);
        drop(drop_span);
    }

    out.sort_unstable_by_key(|a| (a.l, a.r));
    js.pairs = out.len();
    js.probe_swaps = plan.swap as usize;
    js.publish();
    shard_stats.publish();
    par.join = js;
    (out, par, shard_stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::{join_tokenized_par_side, join_tokenized_stats};
    use magellan_textsim::tokenize::WhitespaceTokenizer;

    fn soup(seed: u64, n: usize, max_len: usize, vocab: usize) -> Vec<Option<String>> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        (0..n)
            .map(|i| {
                if i % 17 == 0 {
                    return None; // sprinkle empties into every shard run
                }
                let n = 1 + next() % max_len;
                Some(
                    (0..n)
                        .map(|_| format!("t{}", next() % vocab))
                        .collect::<Vec<_>>()
                        .join(" "),
                )
            })
            .collect()
    }

    #[test]
    fn sharded_equals_monolithic_across_k_workers_and_sides() {
        let tok = WhitespaceTokenizer::new();
        let left = soup(7, 220, 6, 40);
        let right = soup(8, 180, 6, 40);
        let coll = TokenizedCollection::build(&left, &right, &tok);
        for measure in [
            SetSimMeasure::Jaccard(0.5),
            SetSimMeasure::Cosine(0.6),
            SetSimMeasure::OverlapSize(2),
        ] {
            for side in [ProbeSide::Auto, ProbeSide::Left, ProbeSide::Right] {
                let (mono, _) = join_tokenized_stats(&coll, measure, side);
                for k in [1, 2, 5, 16] {
                    for workers in [1, 4] {
                        let (sharded, pstats, sstats) = join_tokenized_sharded(
                            &coll,
                            measure,
                            side,
                            k,
                            &ParConfig::workers(workers),
                        );
                        assert_eq!(
                            sharded, mono,
                            "{measure:?} {side:?} K={k} workers={workers}"
                        );
                        assert_eq!(pstats.join.pairs, mono.len());
                        assert_eq!(sstats.n_shards, k);
                        let total: usize = sstats.shard_records.iter().sum();
                        assert!(
                            total == coll.left.len() || total == coll.right.len(),
                            "every indexed record lands in exactly one shard"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sharding_caps_peak_index_memory() {
        let tok = WhitespaceTokenizer::new();
        let left = soup(21, 40, 4, 500);
        let right = soup(23, 800, 8, 500);
        let coll = TokenizedCollection::build(&left, &right, &tok);
        let measure = SetSimMeasure::Jaccard(0.6);
        // Index the big right side explicitly.
        let (_, _, mono) =
            join_tokenized_sharded(&coll, measure, ProbeSide::Left, 1, &ParConfig::serial());
        assert_eq!(mono.peak_index_bytes, mono.monolithic_index_bytes);
        let (_, _, sharded) =
            join_tokenized_sharded(&coll, measure, ProbeSide::Left, 8, &ParConfig::serial());
        assert!(
            sharded.peak_index_bytes * 2 < mono.peak_index_bytes,
            "8 shards must cut peak index bytes at least in half \
             (peak {} vs monolithic {})",
            sharded.peak_index_bytes,
            mono.peak_index_bytes
        );
        // The budget planner's K must make the *realized* peak fit the
        // budget — it simulates the actual hash partition, not an
        // even-split division (per-shard offset arrays and hash skew
        // make the naive quotient under-shard).
        let budget = mono.monolithic_index_bytes / 4;
        let k = shards_for_budget(&coll, measure, ProbeSide::Left, budget);
        assert!(k >= 4, "a quarter budget needs at least 4 shards, got {k}");
        let (_, _, planned) =
            join_tokenized_sharded(&coll, measure, ProbeSide::Left, k, &ParConfig::serial());
        assert!(
            planned.peak_index_bytes <= budget,
            "planned K={k} realized peak {} over budget {budget}",
            planned.peak_index_bytes
        );
    }

    #[test]
    fn k_larger_than_records_and_empty_sides_work() {
        let tok = WhitespaceTokenizer::new();
        let left = soup(3, 12, 4, 10);
        let right = soup(4, 5, 4, 10);
        let coll = TokenizedCollection::build(&left, &right, &tok);
        let measure = SetSimMeasure::Jaccard(0.4);
        let (mono, _) = join_tokenized_stats(&coll, measure, ProbeSide::Left);
        let (sharded, _, sstats) =
            join_tokenized_sharded(&coll, measure, ProbeSide::Left, 64, &ParConfig::workers(2));
        assert_eq!(sharded, mono);
        assert_eq!(sstats.shard_records.len(), 64);
        // All-null collections produce no pairs and no postings.
        let nulls: Vec<Option<String>> = vec![None; 6];
        let empty_coll = TokenizedCollection::build(&nulls, &nulls, &tok);
        let (pairs, _, sstats) =
            join_tokenized_sharded(&empty_coll, measure, ProbeSide::Auto, 4, &ParConfig::serial());
        assert!(pairs.is_empty());
        assert_eq!(sstats.shard_records[0], 6, "empty records park in shard 0");
    }

    #[test]
    fn sharded_join_is_deterministic_under_injected_faults() {
        let tok = WhitespaceTokenizer::new();
        let left = soup(31, 150, 5, 30);
        let right = soup(32, 150, 5, 30);
        let coll = TokenizedCollection::build(&left, &right, &tok);
        let measure = SetSimMeasure::Jaccard(0.5);
        let (clean, _) = join_tokenized_par_side(
            &coll,
            measure,
            ProbeSide::Auto,
            &ParConfig::workers(4),
        );
        let plan = magellan_faults::FaultPlan::seeded(11);
        let cfg = ParConfig::workers(4).with_faults(plan.chunk_faults(0xb10c));
        let (faulted, pstats, _) =
            join_tokenized_sharded(&coll, measure, ProbeSide::Auto, 4, &cfg);
        assert_eq!(faulted, clean, "chunk faults must not change the pair stream");
        assert!(
            pstats.panics_contained > 0,
            "seeded plan should inject at least one chunk panic across 4 shards"
        );
    }
}
