//! Self-service EM with CloudMatcher (Fig. 5): a lay user who can only
//! answer match/no-match questions uploads two tables and gets matches.
//!
//! ```text
//! cargo run --release --example self_service
//! ```
//!
//! Runs the Falcon workflow twice — once with a single (free, fast) user
//! and once with a (paid, slow) simulated Mechanical Turk crowd — and
//! prints the Table 2 style accounting row for each.

use magellan_datagen::domains::restaurants;
use magellan_datagen::{DirtModel, ScenarioConfig};
use magellan_falcon::cloud::{LabelingMode, TaskSpec};
use magellan_falcon::{CloudMatcher, FalconConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = restaurants(&ScenarioConfig {
        size_a: 800,
        size_b: 800,
        n_matches: 250,
        dirt: DirtModel::moderate(),
        seed: 99,
    });
    println!(
        "task: match {} x {} restaurant listings ({} gold matches)\n",
        scenario.table_a.nrows(),
        scenario.table_b.nrows(),
        scenario.gold.len()
    );

    let cloud = CloudMatcher::default();
    let falcon = FalconConfig::default();

    let mk_spec = |name: &str, labeling| TaskSpec {
        name: name.to_owned(),
        table_a: &scenario.table_a,
        table_b: &scenario.table_b,
        a_key: "id".to_owned(),
        b_key: "id".to_owned(),
        gold: &scenario.gold,
        labeling,
        on_cloud: true,
        falcon: falcon.clone(),
    };

    let (outcomes, schedule) = cloud.run_tasks(&[
        mk_spec("restaurants (single user)", LabelingMode::SingleUser { error_rate: 0.0 }),
        mk_spec(
            "restaurants (crowd)",
            LabelingMode::Crowd {
                worker_error_rate: 0.1,
            },
        ),
    ])?;

    println!(
        "{:28} {:>7} {:>7} {:>6} {:>6} {:>9} {:>9} {:>10} {:>10}",
        "task", "P(%)", "R(%)", "quest", "cand", "crowd $", "compute $", "label time", "total time"
    );
    for o in &outcomes {
        println!(
            "{:28} {:7.1} {:7.1} {:6} {:6} {:9.2} {:9.4} {:>10} {:>10}",
            o.name,
            100.0 * o.precision,
            100.0 * o.recall,
            o.questions,
            o.n_candidates,
            o.crowd_cost,
            o.compute_cost,
            human_time(o.label_time_s),
            human_time(o.total_time_s()),
        );
    }
    println!(
        "\nmetamanager: serial {} vs interleaved {} ({:.1}x speedup, {} batch slots)",
        human_time(schedule.serial_total_s),
        human_time(schedule.interleaved_makespan_s),
        schedule.speedup(),
        schedule.batch_slots,
    );

    // The shapes Table 2 shows: the crowd costs dollars and takes far
    // longer; both reach high accuracy on reasonably clean data.
    let user = &outcomes[0];
    let crowd = &outcomes[1];
    assert_eq!(user.crowd_cost, 0.0);
    assert!(crowd.crowd_cost > 0.0);
    assert!(crowd.label_time_s > 5.0 * user.label_time_s);
    Ok(())
}

fn human_time(seconds: f64) -> String {
    if seconds >= 3600.0 {
        format!("{:.1}h", seconds / 3600.0)
    } else if seconds >= 60.0 {
        format!("{:.0}m", seconds / 60.0)
    } else {
        format!("{seconds:.0}s")
    }
}
