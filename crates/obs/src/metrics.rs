//! The metric value types behind the registry: counters, gauges, and
//! log₂-bucketed histograms with a deterministic, associative merge.

/// Number of histogram buckets: bucket `0` holds zeros, bucket `k ≥ 1`
/// holds values in `[2^(k-1), 2^k)` — 64 power-of-two buckets plus the
/// zero bucket cover the whole `u64` range exactly.
pub const N_BUCKETS: usize = 65;

/// A log₂-bucketed histogram over `u64` samples.
///
/// `merge` is elementwise and therefore **associative and commutative**:
/// per-worker histograms can be merged in any grouping or order and
/// produce bit-identical totals — the property `crates/obs` proptests
/// pin down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Total number of recorded samples.
    pub count: u64,
    /// Saturating sum of recorded samples.
    pub sum: u64,
    /// Bucket counts; see [`N_BUCKETS`] for the layout.
    pub buckets: [u64; N_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            buckets: [0; N_BUCKETS],
        }
    }
}

impl Histogram {
    /// Bucket index for a sample: `0` for `v == 0`, else
    /// `floor(log2(v)) + 1`.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        }
    }

    /// Inclusive upper bound of bucket `k` (the Prometheus `le` label):
    /// `0`, `1`, `3`, `7`, …, `u64::MAX`.
    pub fn bucket_le(k: usize) -> u64 {
        if k == 0 {
            0
        } else if k >= 64 {
            u64::MAX
        } else {
            (1u64 << k) - 1
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        let b = &mut self.buckets[Self::bucket_index(v)];
        *b = b.saturating_add(1);
    }

    /// Elementwise merge of another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
    }

    /// Mean of recorded samples; `0.0` when empty (never `NaN`).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `q`-quantile of the recorded samples, reported as the
    /// inclusive upper bound of the bucket holding the rank-`⌈q·count⌉`
    /// sample (the same `le` the Prometheus export would show). `q` is
    /// clamped to `[0, 1]`; an empty histogram reports `0`.
    ///
    /// Because the answer is a pure function of the bucket counts it is
    /// deterministic and merge-stable: quantiles of a merged histogram
    /// depend only on the elementwise totals, never on merge order.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return Self::bucket_le(k);
            }
        }
        Self::bucket_le(N_BUCKETS - 1)
    }
}

/// One named metric in the registry.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone saturating counter.
    Counter(u64),
    /// Last-write-wins gauge.
    Gauge(f64),
    /// Log₂-bucketed histogram.
    Histogram(Histogram),
}

impl MetricValue {
    /// Deterministic merge used when combining registries: counters add,
    /// gauges keep the maximum (order-independent), histograms merge
    /// elementwise. Mismatched kinds keep `self`.
    pub fn merge(&mut self, other: &MetricValue) {
        match (self, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => *a = a.saturating_add(*b),
            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = a.max(*b),
            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
            _ => debug_assert!(false, "merging mismatched metric kinds"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_covers_u64_exactly() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_le(0), 0);
        assert_eq!(Histogram::bucket_le(1), 1);
        assert_eq!(Histogram::bucket_le(2), 3);
        assert_eq!(Histogram::bucket_le(64), u64::MAX);
        // le(k) is the largest value mapping to bucket k.
        for k in 0..N_BUCKETS {
            assert_eq!(Histogram::bucket_index(Histogram::bucket_le(k)), k);
        }
    }

    #[test]
    fn quantiles_track_bucket_upper_bounds() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram reports 0");
        // 90 samples of value 5 (bucket le=7), 10 samples of 100 (le=127).
        for _ in 0..90 {
            h.record(5);
        }
        for _ in 0..10 {
            h.record(100);
        }
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.quantile(0.90), 7);
        assert_eq!(h.quantile(0.99), 127);
        assert_eq!(h.quantile(1.0), 127);
        // Out-of-range q clamps instead of panicking.
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
        // Merge-stability: quantiles of a merged histogram match the
        // histogram built from the concatenated stream.
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in [1u64, 2, 3, 900] {
            a.record(v);
        }
        for v in [10u64, 40, 0, 7] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        let mut whole = Histogram::default();
        for v in [1u64, 2, 3, 900, 10, 40, 0, 7] {
            whole.record(v);
        }
        for q in [0.0, 0.25, 0.5, 0.75, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn mean_is_zero_on_empty() {
        assert_eq!(Histogram::default().mean(), 0.0);
        let mut h = Histogram::default();
        h.record(4);
        h.record(8);
        assert_eq!(h.mean(), 6.0);
    }
}
