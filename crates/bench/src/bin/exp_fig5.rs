//! Figure 5 — self-service EM with CloudMatcher: several scientists submit
//! EM workflows concurrently; the metamanager interleaves their DAG
//! fragments across the user-interaction, crowd, and batch engines.
//!
//! The reproduced claim (§5.1): "CloudMatcher 0.1 does not scale, because
//! it can execute only one EM workflow at a time", while CloudMatcher 1.0
//! interleaves fragments — so the interleaved makespan lands well below
//! the serial sum.

use magellan_bench::human_time;
use magellan_datagen::domains;
use magellan_datagen::{DirtModel, ScenarioConfig};
use magellan_falcon::cloud::{Engine, LabelingMode, TaskSpec};
use magellan_falcon::{CloudMatcher, FalconConfig};

fn main() {
    // Experiment narration is leveled logging: MAGELLAN_LOG=off silences it.
    magellan_obs::init_bin_logging(magellan_obs::Level::Info);
    // Five scientists upload five EM tasks at the same time.
    let submissions = [
        ("limnology lakes", "addresses", LabelingMode::SingleUser { error_rate: 0.0 }),
        ("ranch registry", "ranches", LabelingMode::SingleUser { error_rate: 0.0 }),
        ("survey dedup", "persons", LabelingMode::Crowd { worker_error_rate: 0.1 }),
        ("paper linkage", "citations", LabelingMode::SingleUser { error_rate: 0.0 }),
        ("menu matching", "restaurants", LabelingMode::Crowd { worker_error_rate: 0.1 }),
    ];
    let scenarios: Vec<_> = submissions
        .iter()
        .enumerate()
        .map(|(i, (_, scenario, _))| {
            domains::by_name(
                scenario,
                &ScenarioConfig {
                    size_a: 1000,
                    size_b: 1000,
                    n_matches: 300,
                    dirt: DirtModel::moderate(),
                    seed: 500 + i as u64,
                },
            )
            .expect("known scenario")
        })
        .collect();
    let specs: Vec<TaskSpec<'_>> = submissions
        .iter()
        .zip(&scenarios)
        .map(|((name, _, labeling), s)| TaskSpec {
            name: (*name).to_owned(),
            table_a: &s.table_a,
            table_b: &s.table_b,
            a_key: "id".to_owned(),
            b_key: "id".to_owned(),
            gold: &s.gold,
            labeling: *labeling,
            on_cloud: true,
            falcon: FalconConfig::default(),
        })
        .collect();

    let cloud = CloudMatcher::default();
    let (outcomes, schedule) = cloud.run_tasks(&specs).expect("cloudmatcher");

    magellan_obs::log!(info, "Fig. 5 analog — concurrent self-service EM workflows\n");
    for o in &outcomes {
        magellan_obs::log!(info, 
            "  {:18} P {:5.1}%  R {:5.1}%  {:4} questions  label {:>7}  machine {:>6}",
            o.name,
            100.0 * o.precision,
            100.0 * o.recall,
            o.questions,
            human_time(o.label_time_s),
            human_time(o.machine_time_s)
        );
    }
    magellan_obs::log!(info, "\nmetamanager schedule:");
    magellan_obs::log!(info, 
        "  one-workflow-at-a-time (CloudMatcher 0.1): {}",
        human_time(schedule.serial_total_s)
    );
    magellan_obs::log!(info, 
        "  interleaved fragments  (CloudMatcher 1.0): {}  -> {:.1}x speedup",
        human_time(schedule.interleaved_makespan_s),
        schedule.speedup()
    );
    for (engine, busy) in &schedule.busy {
        let label = match engine {
            Engine::UserInteraction => "user-interaction engine",
            Engine::Crowd => "crowd engine",
            Engine::Batch => "batch engine",
        };
        magellan_obs::log!(info, "  {:24} busy {}", label, human_time(*busy));
    }
    assert!(schedule.speedup() > 1.5, "interleaving must beat serial");
}
