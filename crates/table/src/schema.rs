//! Table schemas: ordered, uniquely named, typed fields.

use crate::error::TableError;
use crate::value::Dtype;
use crate::Result;

/// A named, typed column declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (unique within a schema).
    pub name: String,
    /// Column data type.
    pub dtype: Dtype,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, dtype: Dtype) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered collection of [`Field`]s with unique names.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema, rejecting duplicate column names.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(TableError::DuplicateColumn(f.name.clone()));
            }
        }
        Ok(Schema { fields })
    }

    /// Convenience constructor from `(name, dtype)` pairs.
    pub fn from_pairs(pairs: &[(&str, Dtype)]) -> Result<Self> {
        Schema::new(
            pairs
                .iter()
                .map(|(n, d)| Field::new(*n, *d))
                .collect::<Vec<_>>(),
        )
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Position of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Position of a column by name, as an error on miss.
    pub fn try_index_of(&self, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| TableError::UnknownColumn(name.to_owned()))
    }

    /// Field at a position.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Field by name.
    pub fn field_by_name(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Column names in declaration order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// A new schema containing only `names`, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(names.len());
        for n in names {
            let f = self
                .field_by_name(n)
                .ok_or_else(|| TableError::UnknownColumn((*n).to_owned()))?;
            fields.push(f.clone());
        }
        Schema::new(fields)
    }

    /// Append a field, rejecting duplicate names.
    pub fn push(&mut self, field: Field) -> Result<()> {
        if self.index_of(&field.name).is_some() {
            return Err(TableError::DuplicateColumn(field.name));
        }
        self.fields.push(field);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::from_pairs(&[("a", Dtype::Int), ("b", Dtype::Str), ("c", Dtype::Float)]).unwrap()
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Schema::from_pairs(&[("a", Dtype::Int), ("a", Dtype::Str)]).unwrap_err();
        assert!(matches!(err, TableError::DuplicateColumn(n) if n == "a"));
    }

    #[test]
    fn index_lookup() {
        let s = abc();
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("z"), None);
        assert!(s.try_index_of("z").is_err());
    }

    #[test]
    fn projection_preserves_requested_order() {
        let s = abc();
        let p = s.project(&["c", "a"]).unwrap();
        assert_eq!(p.names(), vec!["c", "a"]);
        assert_eq!(p.field(0).dtype, Dtype::Float);
        assert!(s.project(&["nope"]).is_err());
    }

    #[test]
    fn push_rejects_existing_name() {
        let mut s = abc();
        assert!(s.push(Field::new("a", Dtype::Bool)).is_err());
        s.push(Field::new("d", Dtype::Bool)).unwrap();
        assert_eq!(s.len(), 4);
    }
}
