//! The command registry: which user-facing commands exist, for which step
//! of the how-to guide, and where they came from — the data behind the
//! paper's Table 3 ("Developing tools for the steps of the guide").

use std::fmt;

/// The steps of the PyMatcher development-stage guide (Table 3, column A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GuideStep {
    /// Read/write data.
    ReadWriteData,
    /// Down sample.
    DownSample,
    /// Data exploration.
    DataExploration,
    /// Blocking.
    Blocking,
    /// Sampling.
    Sampling,
    /// Labeling.
    Labeling,
    /// Creating feature vectors.
    CreatingFeatureVectors,
    /// Matching.
    Matching,
    /// Computing accuracy.
    ComputingAccuracy,
    /// Adding rules.
    AddingRules,
    /// Managing metadata.
    ManagingMetadata,
}

impl GuideStep {
    /// All steps in guide order.
    pub fn all() -> &'static [GuideStep] {
        &[
            GuideStep::ReadWriteData,
            GuideStep::DownSample,
            GuideStep::DataExploration,
            GuideStep::Blocking,
            GuideStep::Sampling,
            GuideStep::Labeling,
            GuideStep::CreatingFeatureVectors,
            GuideStep::Matching,
            GuideStep::ComputingAccuracy,
            GuideStep::AddingRules,
            GuideStep::ManagingMetadata,
        ]
    }
}

impl fmt::Display for GuideStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GuideStep::ReadWriteData => "Read/Write Data",
            GuideStep::DownSample => "Down Sample",
            GuideStep::DataExploration => "Data Exploration",
            GuideStep::Blocking => "Blocking",
            GuideStep::Sampling => "Sampling",
            GuideStep::Labeling => "Labeling",
            GuideStep::CreatingFeatureVectors => "Creating Feature Vectors",
            GuideStep::Matching => "Matching",
            GuideStep::ComputingAccuracy => "Computing Accuracy",
            GuideStep::AddingRules => "Adding Rules",
            GuideStep::ManagingMetadata => "Managing Metadata",
        };
        f.write_str(s)
    }
}

/// Where a command came from (Table 3, columns B–D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandOrigin {
    /// Re-used substrate functionality (pandas/scikit-learn role).
    ExistingPackage,
    /// Written for the ecosystem.
    OwnCode,
    /// A dedicated pain-point tool.
    PainPointTool,
}

/// One user-facing command.
#[derive(Debug, Clone)]
pub struct Command {
    /// Qualified name, `crate::path::function`.
    pub name: &'static str,
    /// Guide step it serves.
    pub step: GuideStep,
    /// Origin class.
    pub origin: CommandOrigin,
}

/// The full command registry of the Magellan-rs ecosystem. This is the
/// machine-readable equivalent of the paper's Table 3 and regenerates it.
pub fn commands() -> Vec<Command> {
    use CommandOrigin::*;
    use GuideStep::*;
    let c = |name, step, origin| Command { name, step, origin };
    vec![
        // Read/write data.
        c("magellan_table::csv::read_csv", ReadWriteData, OwnCode),
        c("magellan_table::csv::read_csv_path", ReadWriteData, OwnCode),
        c("magellan_table::csv::write_csv", ReadWriteData, OwnCode),
        c("magellan_table::csv::write_csv_path", ReadWriteData, OwnCode),
        c("magellan_table::Table::from_rows", ReadWriteData, OwnCode),
        c("magellan_table::Table::project", ReadWriteData, OwnCode),
        // Down sample.
        c("magellan_core::downsample::down_sample", DownSample, PainPointTool),
        c("magellan_core::downsample::down_sample_indices", DownSample, PainPointTool),
        // Data exploration.
        c("magellan_table::profile::profile_table", DataExploration, ExistingPackage),
        c("magellan_table::profile::profile_column", DataExploration, ExistingPackage),
        c("magellan_table::profile::key_candidates", DataExploration, ExistingPackage),
        // Blocking.
        c("magellan_block::AttrEquivalenceBlocker", Blocking, OwnCode),
        c("magellan_block::HashBlocker", Blocking, OwnCode),
        c("magellan_block::OverlapBlocker", Blocking, OwnCode),
        c("magellan_block::SimJoinBlocker", Blocking, OwnCode),
        c("magellan_block::SortedNeighborhoodBlocker", Blocking, OwnCode),
        c("magellan_block::BlackBoxBlocker", Blocking, OwnCode),
        c("magellan_block::RuleBasedBlocker", Blocking, OwnCode),
        c("magellan_block::CandidateSet::union", Blocking, OwnCode),
        c("magellan_block::CandidateSet::intersect", Blocking, OwnCode),
        c("magellan_block::CandidateSet::minus", Blocking, OwnCode),
        c("magellan_simjoin::set_sim_join", Blocking, OwnCode),
        c("magellan_simjoin::set_sim_join_parallel", Blocking, OwnCode),
        c("magellan_simjoin::editjoin::edit_distance_join", Blocking, OwnCode),
        c("magellan_textsim::tokenize::QgramTokenizer", Blocking, OwnCode),
        c("magellan_textsim::tokenize::AlphanumericTokenizer", Blocking, OwnCode),
        c("magellan_textsim::tokenize::WhitespaceTokenizer", Blocking, OwnCode),
        c("magellan_textsim::tokenize::DelimiterTokenizer", Blocking, OwnCode),
        c("magellan_block::debugger::debug_blocker", Blocking, PainPointTool),
        c("magellan_block::debugger::estimate_recall", Blocking, PainPointTool),
        c("magellan_block::metrics::evaluate_blocking", Blocking, OwnCode),
        c("magellan_block::CandidateSet::to_table", Blocking, OwnCode),
        c("magellan_block::dedup::dedup_block", Blocking, OwnCode),
        c("magellan_table::csv::read_csv_infer", ReadWriteData, OwnCode),
        // Sampling.
        c("magellan_core::sample::sample_pairs", Sampling, ExistingPackage),
        c("magellan_core::sample::sample_positions", Sampling, ExistingPackage),
        // Labeling.
        c("magellan_core::labeling::OracleLabeler", Labeling, OwnCode),
        c("magellan_core::labeling::NoisyLabeler", Labeling, OwnCode),
        c("magellan_core::labeling::RecordingLabeler", Labeling, PainPointTool),
        c("magellan_core::interactive::InteractiveLabeler", Labeling, PainPointTool),
        // Creating feature vectors.
        c("magellan_features::generate_features", CreatingFeatureVectors, PainPointTool),
        c("magellan_features::Feature::new", CreatingFeatureVectors, PainPointTool),
        c("magellan_features::extract_feature_matrix", CreatingFeatureVectors, OwnCode),
        c("magellan_features::infer_attr_type", CreatingFeatureVectors, OwnCode),
        c("magellan_textsim::seqsim", CreatingFeatureVectors, OwnCode),
        c("magellan_textsim::setsim", CreatingFeatureVectors, OwnCode),
        c("magellan_textsim::corpsim::TfIdfModel", CreatingFeatureVectors, OwnCode),
        // Matching.
        c("magellan_ml::DecisionTreeLearner", Matching, ExistingPackage),
        c("magellan_ml::RandomForestLearner", Matching, ExistingPackage),
        c("magellan_ml::LogisticRegressionLearner", Matching, ExistingPackage),
        c("magellan_ml::LinearSvmLearner", Matching, ExistingPackage),
        c("magellan_ml::naive_bayes::GaussianNbLearner", Matching, ExistingPackage),
        c("magellan_ml::knn::KnnLearner", Matching, ExistingPackage),
        c("magellan_ml::cv::cross_validate", Matching, ExistingPackage),
        c("magellan_ml::cv::select_matcher", Matching, OwnCode),
        c("magellan_core::pipeline::run_development_stage", Matching, OwnCode),
        c("magellan_core::exec::ProductionExecutor", Matching, OwnCode),
        c("magellan_core::persist::save_workflow", Matching, OwnCode),
        c("magellan_core::persist::load_workflow", Matching, OwnCode),
        c("magellan_ml::persist::save_forest", Matching, OwnCode),
        c("magellan_ml::persist::load_forest", Matching, OwnCode),
        c("magellan_core::debug::debug_matches", Matching, PainPointTool),
        // Computing accuracy.
        c("magellan_ml::Metrics::from_predictions", ComputingAccuracy, OwnCode),
        c("magellan_ml::Metrics::from_pair_sets", ComputingAccuracy, OwnCode),
        c("magellan_core::evaluate::evaluate_matches", ComputingAccuracy, OwnCode),
        c("magellan_core::evaluate::pairs_to_ids", ComputingAccuracy, OwnCode),
        // Adding rules.
        c("magellan_core::rules::MatchRule::accept", AddingRules, OwnCode),
        c("magellan_core::rules::MatchRule::reject", AddingRules, OwnCode),
        c("magellan_core::rules::RuleLayer", AddingRules, OwnCode),
        c("magellan_block::rules::BlockingRule", AddingRules, OwnCode),
        c("magellan_block::rules::Predicate", AddingRules, OwnCode),
        // Data exploration / cleaning (§5.3: detect, isolate, clean).
        c("magellan_core::clean::normalize_column", DataExploration, PainPointTool),
        c("magellan_core::clean::detect_generic_values", DataExploration, PainPointTool),
        c("magellan_core::clean::isolate_rows", DataExploration, PainPointTool),
        // Managing metadata.
        c("magellan_table::Catalog::set_key", ManagingMetadata, OwnCode),
        c("magellan_table::Catalog::validate_key", ManagingMetadata, OwnCode),
        c("magellan_table::Catalog::set_candidate_meta", ManagingMetadata, OwnCode),
        c("magellan_table::Catalog::validate_candidate", ManagingMetadata, OwnCode),
        c("magellan_table::Catalog::require_key", ManagingMetadata, OwnCode),
        c("magellan_table::Catalog::remove", ManagingMetadata, OwnCode),
    ]
}

/// Count commands per step (Table 3, column E).
pub fn commands_per_step() -> Vec<(GuideStep, usize)> {
    GuideStep::all()
        .iter()
        .map(|&s| (s, commands().iter().filter(|c| c.step == s).count()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_step_has_commands() {
        for (step, n) in commands_per_step() {
            assert!(n > 0, "guide step {step} has no commands");
        }
    }

    #[test]
    fn pain_point_tools_exist_for_the_named_steps() {
        // Table 3 column D names pain-point tools for: down sample,
        // blocking (debugger), feature creation, matching (debuggers),
        // labeling.
        let cmds = commands();
        for step in [
            GuideStep::DownSample,
            GuideStep::Blocking,
            GuideStep::CreatingFeatureVectors,
            GuideStep::Matching,
        ] {
            assert!(
                cmds.iter()
                    .any(|c| c.step == step && c.origin == CommandOrigin::PainPointTool),
                "no pain-point tool registered for {step}"
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let cmds = commands();
        let mut names: Vec<&str> = cmds.iter().map(|c| c.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate command names");
    }

    #[test]
    fn registry_is_reasonably_large() {
        // The paper counts 104 commands across 6 packages; our ecosystem
        // registers the user-facing core. Guard against accidental
        // shrinkage.
        assert!(commands().len() >= 60, "{}", commands().len());
    }
}
