//! Candidate-set quality metrics: recall against gold and reduction ratio.

use std::collections::HashSet;

use magellan_table::Table;

use crate::candidate::CandidateSet;

/// Blocking quality against a gold match set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingReport {
    /// Candidate pairs produced.
    pub n_candidates: usize,
    /// Gold matches retained in the candidate set.
    pub gold_kept: usize,
    /// Total gold matches.
    pub gold_total: usize,
    /// Size of the cross product.
    pub cross_product: usize,
}

impl BlockingReport {
    /// Fraction of gold matches surviving blocking (the quantity the
    /// guide's "select the best blocker" step maximizes).
    pub fn recall(&self) -> f64 {
        if self.gold_total == 0 {
            1.0
        } else {
            self.gold_kept as f64 / self.gold_total as f64
        }
    }

    /// `1 − |C| / |A×B|`: how much work blocking saved.
    pub fn reduction_ratio(&self) -> f64 {
        if self.cross_product == 0 {
            0.0
        } else {
            1.0 - self.n_candidates as f64 / self.cross_product as f64
        }
    }
}

/// Score a candidate set against gold `(a_id, b_id)` pairs. Requires the
/// key attribute names of both tables to map row indices to ids.
pub fn evaluate_blocking(
    candidates: &CandidateSet,
    a: &Table,
    b: &Table,
    a_key: &str,
    b_key: &str,
    gold: &HashSet<(String, String)>,
) -> magellan_table::Result<BlockingReport> {
    let a_idx = a.schema().try_index_of(a_key)?;
    let b_idx = b.schema().try_index_of(b_key)?;
    let cand_ids: HashSet<(String, String)> = candidates
        .pairs()
        .iter()
        .map(|&(ra, rb)| {
            (
                a.value(ra as usize, a_idx).display_string(),
                b.value(rb as usize, b_idx).display_string(),
            )
        })
        .collect();
    let gold_kept = gold.iter().filter(|p| cand_ids.contains(*p)).count();
    Ok(BlockingReport {
        n_candidates: candidates.len(),
        gold_kept,
        gold_total: gold.len(),
        cross_product: a.nrows() * b.nrows(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_table::Dtype;

    #[test]
    fn recall_and_reduction() {
        let a = Table::from_rows(
            "A",
            &[("id", Dtype::Str)],
            vec![vec!["a0".into()], vec!["a1".into()], vec!["a2".into()]],
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            &[("id", Dtype::Str)],
            vec![vec!["b0".into()], vec!["b1".into()]],
        )
        .unwrap();
        let gold: HashSet<(String, String)> = [("a0", "b0"), ("a2", "b1")]
            .into_iter()
            .map(|(x, y)| (x.to_owned(), y.to_owned()))
            .collect();
        let cands = CandidateSet::new(vec![(0, 0), (1, 1)]);
        let rep = evaluate_blocking(&cands, &a, &b, "id", "id", &gold).unwrap();
        assert_eq!(rep.gold_kept, 1);
        assert_eq!(rep.gold_total, 2);
        assert!((rep.recall() - 0.5).abs() < 1e-12);
        assert!((rep.reduction_ratio() - (1.0 - 2.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_gold_is_vacuous_recall() {
        let a = Table::from_rows("A", &[("id", Dtype::Str)], vec![vec!["a0".into()]]).unwrap();
        let b = Table::from_rows("B", &[("id", Dtype::Str)], vec![vec!["b0".into()]]).unwrap();
        let rep =
            evaluate_blocking(&CandidateSet::default(), &a, &b, "id", "id", &HashSet::new())
                .unwrap();
        assert_eq!(rep.recall(), 1.0);
        assert_eq!(rep.reduction_ratio(), 1.0);
    }

    /// Zero denominators (empty tables, empty gold) never yield NaN/∞.
    #[test]
    fn zero_denominator_ratios_are_finite() {
        let rep = BlockingReport {
            n_candidates: 0,
            gold_kept: 0,
            gold_total: 0,
            cross_product: 0,
        };
        assert_eq!(rep.recall(), 1.0); // vacuous recall
        assert_eq!(rep.reduction_ratio(), 0.0); // nothing to reduce
        assert!(rep.recall().is_finite());
        assert!(rep.reduction_ratio().is_finite());
    }
}
