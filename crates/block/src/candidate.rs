//! Candidate sets: the output of blocking.

use std::collections::HashSet;

use magellan_table::{CandidateMeta, Catalog, Dtype, Schema, Table, Value};

/// A set of candidate row pairs `(row in A, row in B)`, kept as indices
/// until materialization. Always sorted and deduplicated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CandidateSet {
    pairs: Vec<(u32, u32)>,
}

impl CandidateSet {
    /// Build from raw pairs (sorts and dedups).
    pub fn new(mut pairs: Vec<(u32, u32)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        CandidateSet { pairs }
    }

    /// The sorted, deduplicated pairs.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// Number of candidate pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no candidates survived.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Set union (blockers are often OR-ed to improve recall — the paper's
    /// guide has users experiment with blocker combinations).
    pub fn union(&self, other: &CandidateSet) -> CandidateSet {
        let mut pairs = self.pairs.clone();
        pairs.extend_from_slice(&other.pairs);
        CandidateSet::new(pairs)
    }

    /// Set intersection (AND-ing blockers raises precision).
    pub fn intersect(&self, other: &CandidateSet) -> CandidateSet {
        let other_set: HashSet<(u32, u32)> = other.pairs.iter().copied().collect();
        CandidateSet {
            pairs: self
                .pairs
                .iter()
                .copied()
                .filter(|p| other_set.contains(p))
                .collect(),
        }
    }

    /// Set difference `self − other`.
    pub fn minus(&self, other: &CandidateSet) -> CandidateSet {
        let other_set: HashSet<(u32, u32)> = other.pairs.iter().copied().collect();
        CandidateSet {
            pairs: self
                .pairs
                .iter()
                .copied()
                .filter(|p| !other_set.contains(p))
                .collect(),
        }
    }

    /// Membership test.
    pub fn contains(&self, pair: (u32, u32)) -> bool {
        self.pairs.binary_search(&pair).is_ok()
    }

    /// Materialize as an `(l_id, r_id)` table and register its FK metadata
    /// in the catalog — §4.1's space-efficiency principle: the candidate
    /// table carries only the keys.
    ///
    /// Requires both base tables to have keys registered in the catalog.
    pub fn to_table(
        &self,
        name: &str,
        a: &Table,
        b: &Table,
        catalog: &mut Catalog,
    ) -> magellan_table::Result<Table> {
        let a_key = catalog.require_key(a)?.to_owned();
        let b_key = catalog.require_key(b)?.to_owned();
        // Self-containment: re-validate the keys before emitting FKs
        // against them.
        catalog.validate_key(a)?;
        catalog.validate_key(b)?;
        let a_key_idx = a.schema().try_index_of(&a_key)?;
        let b_key_idx = b.schema().try_index_of(&b_key)?;
        let schema = Schema::from_pairs(&[("l_id", Dtype::Str), ("r_id", Dtype::Str)])?;
        let mut t = Table::with_capacity(name, schema, self.pairs.len());
        for &(ra, rb) in &self.pairs {
            t.push_row(vec![
                Value::Str(a.value(ra as usize, a_key_idx).display_string()),
                Value::Str(b.value(rb as usize, b_key_idx).display_string()),
            ])?;
        }
        let meta = CandidateMeta {
            fk_ltable: "l_id".to_owned(),
            fk_rtable: "r_id".to_owned(),
            ltable: a.id(),
            rtable: b.id(),
            ltable_key: a_key,
            rtable_key: b_key,
        };
        catalog.set_candidate_meta(&t, meta, a, b)?;
        Ok(t)
    }
}

impl FromIterator<(u32, u32)> for CandidateSet {
    fn from_iter<I: IntoIterator<Item = (u32, u32)>>(iter: I) -> Self {
        CandidateSet::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(pairs: &[(u32, u32)]) -> CandidateSet {
        CandidateSet::new(pairs.to_vec())
    }

    #[test]
    fn new_sorts_and_dedups() {
        let c = cs(&[(2, 1), (0, 0), (2, 1), (1, 5)]);
        assert_eq!(c.pairs(), &[(0, 0), (1, 5), (2, 1)]);
        assert_eq!(c.len(), 3);
        assert!(c.contains((1, 5)));
        assert!(!c.contains((9, 9)));
    }

    #[test]
    fn set_algebra() {
        let x = cs(&[(0, 0), (1, 1), (2, 2)]);
        let y = cs(&[(1, 1), (3, 3)]);
        assert_eq!(x.union(&y).pairs(), &[(0, 0), (1, 1), (2, 2), (3, 3)]);
        assert_eq!(x.intersect(&y).pairs(), &[(1, 1)]);
        assert_eq!(x.minus(&y).pairs(), &[(0, 0), (2, 2)]);
        assert!(cs(&[]).is_empty());
    }

    #[test]
    fn to_table_materializes_ids_and_registers_metadata() {
        let a = Table::from_rows(
            "A",
            &[("id", Dtype::Str), ("x", Dtype::Int)],
            vec![
                vec!["a0".into(), Value::Int(1)],
                vec!["a1".into(), Value::Int(2)],
            ],
        )
        .unwrap();
        let b = Table::from_rows(
            "B",
            &[("id", Dtype::Str)],
            vec![vec!["b0".into()], vec!["b1".into()]],
        )
        .unwrap();
        let mut catalog = Catalog::new();
        catalog.set_key(&a, "id").unwrap();
        catalog.set_key(&b, "id").unwrap();
        let c = cs(&[(0, 1), (1, 0)]);
        let t = c.to_table("C", &a, &b, &mut catalog).unwrap();
        assert_eq!(t.nrows(), 2);
        assert_eq!(t.schema().names(), vec!["l_id", "r_id"]);
        assert_eq!(t.value_by_name(0, "l_id").unwrap().as_str(), Some("a0"));
        assert_eq!(t.value_by_name(0, "r_id").unwrap().as_str(), Some("b1"));
        catalog.validate_candidate(&t, &a, &b).unwrap();
    }

    #[test]
    fn to_table_requires_registered_keys() {
        let a = Table::from_rows("A", &[("id", Dtype::Str)], vec![vec!["a0".into()]]).unwrap();
        let b = Table::from_rows("B", &[("id", Dtype::Str)], vec![vec!["b0".into()]]).unwrap();
        let mut catalog = Catalog::new();
        let c = cs(&[(0, 0)]);
        assert!(c.to_table("C", &a, &b, &mut catalog).is_err());
    }
}
