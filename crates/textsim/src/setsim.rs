//! Set/token-based similarity measures.
//!
//! All functions take token slices (as produced by a
//! [`crate::tokenize::Tokenizer`]) and treat them with set semantics,
//! deduplicating internally, matching `py_stringmatching`'s behaviour.
//! Conventions for degenerate inputs follow that package: two empty token
//! sets are maximally similar (1.0), one empty set yields 0.0.

/// Sort-dedup a token bag into a set represented as a **sorted `&str`
/// slice**. No hashing: set size and intersection are then computed by
/// the merge walk below, which is both faster for the short token sets EM
/// attributes produce and structurally identical to the interned-`u32`
/// kernels in [`crate::intern`] (the prepared batch path), keeping the
/// two paths trivially equivalent.
fn to_set<S: AsRef<str>>(tokens: &[S]) -> Vec<&str> {
    let mut v: Vec<&str> = tokens.iter().map(|t| t.as_ref()).collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// `|a ∩ b|` of two sorted deduplicated slices (merge walk).
fn intersection_size(a: &[&str], b: &[&str]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut n = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Jaccard similarity `|A ∩ B| / |A ∪ B|`.
pub fn jaccard<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    let (a, b) = (to_set(a), to_set(b));
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = intersection_size(&a, &b);
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Dice coefficient `2|A ∩ B| / (|A| + |B|)`.
pub fn dice<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    let (a, b) = (to_set(a), to_set(b));
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = intersection_size(&a, &b);
    2.0 * inter as f64 / (a.len() + b.len()) as f64
}

/// Set cosine similarity `|A ∩ B| / sqrt(|A|·|B|)` (Ochiai coefficient).
pub fn cosine<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    let (a, b) = (to_set(a), to_set(b));
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = intersection_size(&a, &b);
    inter as f64 / ((a.len() as f64) * (b.len() as f64)).sqrt()
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)`.
pub fn overlap_coefficient<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    let (a, b) = (to_set(a), to_set(b));
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = intersection_size(&a, &b);
    inter as f64 / a.len().min(b.len()) as f64
}

/// Raw overlap size `|A ∩ B|` (the measure overlap blockers threshold on).
pub fn overlap_size<S: AsRef<str>>(a: &[S], b: &[S]) -> usize {
    let (a, b) = (to_set(a), to_set(b));
    intersection_size(&a, &b)
}

/// Monge–Elkan similarity: for each token of `a`, the best secondary
/// similarity against any token of `b`, averaged. Asymmetric by design;
/// `py_stringmatching` defaults the secondary measure to Jaro–Winkler.
pub fn monge_elkan<S: AsRef<str>>(
    a: &[S],
    b: &[S],
    secondary: impl Fn(&str, &str) -> f64,
) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let total: f64 = a
        .iter()
        .map(|ta| {
            b.iter()
                .map(|tb| secondary(ta.as_ref(), tb.as_ref()))
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .sum();
    total / a.len() as f64
}

/// Monge–Elkan with the default Jaro–Winkler secondary measure.
pub fn monge_elkan_jw<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    monge_elkan(a, b, crate::seqsim::jaro_winkler)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn jaccard_known_values() {
        assert_eq!(jaccard(&toks("a b c"), &toks("b c d")), 0.5);
        assert_eq!(jaccard(&toks("a"), &toks("a")), 1.0);
        assert_eq!(jaccard(&toks("a"), &toks("b")), 0.0);
        assert_eq!(jaccard::<String>(&[], &[]), 1.0);
        assert_eq!(jaccard(&toks("a"), &[]), 0.0);
    }

    #[test]
    fn jaccard_dedupes_bags() {
        // {a} vs {a b}: 1/2 regardless of duplicate a's.
        assert_eq!(jaccard(&toks("a a a"), &toks("a b")), 0.5);
    }

    #[test]
    fn dice_known_values() {
        assert_eq!(dice(&toks("a b"), &toks("b c")), 0.5);
        assert_eq!(dice::<String>(&[], &[]), 1.0);
        assert_eq!(dice(&toks("x"), &[]), 0.0);
    }

    #[test]
    fn cosine_known_values() {
        // |inter|=1, sizes 2 and 2 -> 0.5
        assert_eq!(cosine(&toks("a b"), &toks("b c")), 0.5);
        // sizes 1 and 4, inter 1 -> 1/2
        assert_eq!(cosine(&toks("a"), &toks("a b c d")), 0.5);
        assert_eq!(cosine::<String>(&[], &[]), 1.0);
    }

    #[test]
    fn overlap_coefficient_known_values() {
        assert_eq!(overlap_coefficient(&toks("a b"), &toks("a b c d")), 1.0);
        assert_eq!(overlap_coefficient(&toks("a b"), &toks("c d")), 0.0);
        assert_eq!(overlap_size(&toks("a b c"), &toks("b c d")), 2);
    }

    #[test]
    fn monge_elkan_rewards_near_token_matches() {
        let a = toks("paul johnson");
        let b = toks("johson paule");
        let me = monge_elkan_jw(&a, &b);
        assert!(me > 0.85, "got {me}");
        // Asymmetry: singleton side can score 1.0 against a superset.
        let one = toks("smith");
        let many = toks("smith john w");
        assert_eq!(monge_elkan_jw(&one, &many), 1.0);
        assert!(monge_elkan_jw(&many, &one) < 1.0);
    }

    #[test]
    fn all_measures_bounded() {
        let pairs = [
            ("dave smith", "david smith"),
            ("", "x y"),
            ("a b c", "a b c"),
            ("q", "zzz zz z"),
        ];
        for (x, y) in pairs {
            let (a, b) = (toks(x), toks(y));
            for v in [
                jaccard(&a, &b),
                dice(&a, &b),
                cosine(&a, &b),
                overlap_coefficient(&a, &b),
                monge_elkan_jw(&a, &b),
            ] {
                assert!((0.0..=1.0).contains(&v), "{v} out of bounds for {x:?}/{y:?}");
            }
        }
    }
}
